//! Cross-crate integration tests: the whole pipeline, end to end.

use ants::automaton::{library, markov, GridAction, Walker};
use ants::core::baselines::{AutomatonStrategy, RandomWalk};
use ants::core::{apply_action, NonUniformSearch, SearchStrategy, UniformSearch};
use ants::grid::{Point, Rect, TargetPlacement};
use ants::rng::{derive_rng, Rng64};
use ants::sim::{coverage, run_trial, run_trials, Scenario};

/// The procedural Algorithm 1 and the paper's five-state PFA realise the
/// same process: equal iteration-length distributions (statistically).
#[test]
fn algorithm1_procedural_matches_compiled_pfa() {
    let d_exp = 4u32; // D = 16
    let d = 1u64 << d_exp;

    // Mean moves per iteration from the procedural strategy.
    let mut agent = NonUniformSearch::new(d).unwrap();
    let mut rng = derive_rng(1, 0);
    let (mut moves, mut iters) = (0u64, 0u64);
    while iters < 30_000 {
        let a = agent.step(&mut rng);
        if a.is_move() {
            moves += 1;
        }
        if a == GridAction::Origin {
            iters += 1;
        }
    }
    let procedural_mean = moves as f64 / iters as f64;

    // Mean moves per iteration from the compiled PFA (origin-state visits
    // delimit iterations).
    let pfa = library::algorithm1(d_exp).unwrap();
    let mut w = Walker::new(&pfa);
    let mut rng = derive_rng(2, 0);
    let mut iters = 0u64;
    while iters < 30_000 {
        let out = w.step(&mut rng);
        if out.action == GridAction::Origin {
            iters += 1;
        }
    }
    let pfa_mean = w.moves() as f64 / iters as f64;

    let rel = (procedural_mean - pfa_mean).abs() / pfa_mean;
    assert!(rel < 0.05, "iteration lengths disagree: procedural {procedural_mean}, pfa {pfa_mean}");
}

/// Full upper-bound pipeline: the facade's types compose, the engine finds
/// targets, the metrics make sense.
#[test]
fn pipeline_upper_bound() {
    let d = 16u64;
    let scenario = Scenario::builder()
        .agents(8)
        .target(TargetPlacement::UniformInBall { distance: d })
        .move_budget(2_000_000)
        .strategy(move |_| Box::new(NonUniformSearch::new(d).unwrap()))
        .build();
    let outcome = run_trials(&scenario, 30, 42);
    let s = outcome.summary();
    assert_eq!(s.trials(), 30);
    assert!(s.success_rate() > 0.95, "success {}", s.success_rate());
    assert!(s.mean_moves() > 0.0);
    assert!(s.median_moves() <= s.mean_moves() * 3.0);
    // chi footprint: plain Alg 1 at D = 16 has ell = 4, b = 3.
    assert_eq!(s.chi_footprint().ell(), 4);
}

/// Full lower-bound pipeline: a low-chi automaton leaves adversarial
/// cells, and placing the target there defeats it.
#[test]
fn pipeline_lower_bound() {
    let d = 32u64;
    let pfa = library::drift_walk(3).unwrap();
    let factory: ants::sim::StrategyFactory = {
        let pfa = pfa.clone();
        Box::new(move |_| Box::new(AutomatonStrategy::new(pfa.clone())))
    };
    let report = coverage::measure(&factory, 4, d * d, Rect::ball(d), 7);
    assert!(report.coverage() < 0.5, "low-chi coverage {}", report.coverage());
    let adversarial = report.adversarial_target().expect("cells must remain");

    // The same automaton fails to find the adversarial target in D^2 moves.
    let pfa2 = pfa.clone();
    let scenario = Scenario::builder()
        .agents(4)
        .target(TargetPlacement::Fixed(adversarial))
        .move_budget(d * d)
        .strategy(move |_| Box::new(AutomatonStrategy::new(pfa2.clone())))
        .build();
    let outcome = run_trials(&scenario, 20, 99);
    assert_eq!(
        outcome.summary().found(),
        0,
        "adversarial target was found — placement not adversarial enough"
    );

    // Algorithm 1 (above the threshold) finds that exact target.
    let scenario = Scenario::builder()
        .agents(4)
        .target(TargetPlacement::Fixed(adversarial))
        .move_budget(d * d * 3000)
        .strategy(move |_| Box::new(NonUniformSearch::new(d).unwrap()))
        .build();
    let outcome = run_trials(&scenario, 10, 100);
    assert!(
        outcome.summary().success_rate() > 0.8,
        "Algorithm 1 should find the adversarial cell: {}",
        outcome.summary().success_rate()
    );
}

/// Drift analysis agrees between the markov module and the simulator.
#[test]
fn drift_prediction_matches_simulation() {
    let pfa = library::drift_walk(2).unwrap();
    let analysis = markov::analyze(&pfa);
    let class = &analysis.recurrent_classes[0];
    let (dx, dy) = class.drift;
    // Simulate and compare the empirical mean displacement per step.
    let steps = 20_000u64;
    let mut w = Walker::new(&pfa);
    let mut rng = derive_rng(5, 0);
    for _ in 0..steps {
        w.step(&mut rng);
    }
    let p = w.position();
    let ex = p.x as f64 / steps as f64;
    let ey = p.y as f64 / steps as f64;
    assert!((ex - dx).abs() < 0.02, "x drift {ex} vs predicted {dx}");
    assert!((ey - dy).abs() < 0.02, "y drift {ey} vs predicted {dy}");
}

/// Determinism across the whole stack: a trial is a pure function of its
/// seed, even through the facade.
#[test]
fn end_to_end_determinism() {
    let scenario = Scenario::builder()
        .agents(3)
        .target(TargetPlacement::UniformInBall { distance: 10 })
        .move_budget(100_000)
        .strategy(|_| Box::new(RandomWalk::new()))
        .build();
    let a = run_trial(&scenario, 0xABCD);
    let b = run_trial(&scenario, 0xABCD);
    assert_eq!(a, b);
}

/// The uniform algorithm is genuinely uniform in D: the same agent
/// construction finds both near and far targets.
#[test]
fn uniform_algorithm_is_distance_oblivious() {
    for (d, budget) in [(4u64, 2_000_000u64), (24, 40_000_000)] {
        let scenario = Scenario::builder()
            .agents(8)
            .target(TargetPlacement::Ring { distance: d })
            .move_budget(budget)
            .strategy(|_| Box::new(UniformSearch::new(1, 8, 2).unwrap()))
            .build();
        let s = run_trials(&scenario, 10, d).summary();
        assert!(
            s.success_rate() > 0.85,
            "uniform agent failed at distance {d}: {}",
            s.success_rate()
        );
    }
}

/// Near targets are found faster than far ones by the uniform algorithm
/// (the phase structure at work).
#[test]
fn uniform_algorithm_graceful_degradation() {
    let time_at = |d: u64, seed: u64| {
        let scenario = Scenario::builder()
            .agents(4)
            .target(TargetPlacement::Ring { distance: d })
            .move_budget(100_000_000)
            .strategy(|_| Box::new(UniformSearch::new(1, 4, 2).unwrap()))
            .build();
        run_trials(&scenario, 12, seed).summary().median_moves()
    };
    let near = time_at(4, 1);
    let far = time_at(32, 2);
    assert!(near < far, "nearer food should be found sooner: near {near} vs far {far}");
}

/// Facade sanity: all re-exports resolve and basic types interoperate.
#[test]
fn facade_surface() {
    let p = Point::new(3, 4);
    assert_eq!(p.norm_max(), 4);
    let mut rng = derive_rng(0, 0);
    let _ = rng.next_u64();
    let pfa = library::random_walk();
    assert_eq!(pfa.chi(), 4.0);
    let strat = AutomatonStrategy::new(pfa);
    assert_eq!(strat.selection_complexity().chi(), 4.0);
    let oracle_path = ants::grid::oracle::return_path(p);
    assert_eq!(oracle_path.len(), 7);
    assert_eq!(apply_action(p, GridAction::Origin), Point::ORIGIN);
}
