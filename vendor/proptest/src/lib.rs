//! Minimal, dependency-free, API-compatible subset of the `proptest` crate.
//!
//! This workspace builds fully offline, so the real `proptest` cannot be
//! fetched from crates.io. This shim implements exactly the surface the
//! workspace's test-suites use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header) expanding to ordinary `#[test]` functions that draw each
//!   argument from its strategy for a configurable number of cases;
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_flat_map` and `prop_filter`;
//! * strategies for integer ranges, tuples, `any::<T>()`, `Just`, and
//!   [`collection::vec`];
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` (mapped to the
//!   std assertions — failures panic immediately; there is no shrinking).
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the panic message only. All
//!   draws are deterministic (seeded from the test's module path and name),
//!   so a failure is reproducible by re-running the test.
//! * **Deterministic runs.** The same binary always tests the same cases.
//!   Set `PROPTEST_CASES` to raise or lower the case count globally.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the test-suites import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property-based tests.
///
/// Supported grammar (the subset the workspace uses). Attributes pass
/// through, so in a test-suite each property carries `#[test]`; here the
/// expansion is a plain function the doctest can call directly:
///
/// ```
/// use proptest::prelude::*;
///
/// fn my_strategy() -> impl Strategy<Value = (u64, u64)> {
///     (0u64..50, 50u64..100)
/// }
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///
///     fn my_property(x in 0u64..100, (a, b) in my_strategy()) {
///         prop_assert!(x < 100);
///         prop_assert!(a < b);
///     }
/// }
///
/// my_property();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = $crate::test_runner::resolve_cases(config.cases);
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}
