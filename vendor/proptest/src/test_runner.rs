//! Deterministic case generation for the [`proptest!`](crate::proptest) macro.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this shim trades coverage per run
        // for a fast deterministic tier-1 suite. Raise via PROPTEST_CASES.
        ProptestConfig { cases: 64 }
    }
}

/// Apply the `PROPTEST_CASES` environment override, if present.
///
/// Panics on an unparseable or zero value: a typo'd override silently
/// falling back (or running zero cases) would turn every property into a
/// vacuous pass.
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => match v.parse::<u32>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("PROPTEST_CASES must be a positive integer, got {v:?}"),
        },
        Err(_) => configured,
    }
}

/// The RNG strategies draw from: SplitMix64, seeded from the test's name
/// and the case index so every (test, case) pair is an independent,
/// reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed from a test identifier and a case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, then mix in the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
    }

    /// Next 64 uniform bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` for `bound >= 1` (rejection sampling,
    /// no modulo bias).
    pub fn next_below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound >= 1);
        if bound == 1 {
            return 0;
        }
        let wide =
            |rng: &mut TestRng| (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        let zone = u128::MAX - (u128::MAX % bound);
        loop {
            let x = wide(self);
            if x < zone {
                return x % bound;
            }
        }
    }
}
