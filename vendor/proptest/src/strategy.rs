//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is simply a deterministic function of the [`TestRng`] stream.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every drawn value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Draw a value, build a dependent strategy from it, draw from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Reject draws failing the predicate (resampling, with a retry cap).
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence: whence.into(), f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({:?}): rejected 1000 consecutive draws", self.whence);
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "whole domain" strategy, via [`any`].
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Integer types whose ranges can act as strategies.
pub trait RangeValue: Copy {
    /// Lossless widening to the sampling domain.
    fn to_i128(self) -> i128;
    /// Narrowing back after sampling (always in range by construction).
    fn from_i128(v: i128) -> Self;
}

macro_rules! range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}
range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn sample_between<T: RangeValue>(lo: T, hi_inclusive: T, rng: &mut TestRng) -> T {
    let (lo, hi) = (lo.to_i128(), hi_inclusive.to_i128());
    debug_assert!(lo <= hi);
    // Width fits in u128 for every supported 64-bit-or-smaller type.
    let width = (hi - lo) as u128 + 1;
    let off = rng.next_below(width) as i128;
    T::from_i128(lo + off)
}

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(self.start.to_i128() < self.end.to_i128(), "empty range strategy");
        sample_between(self.start, T::from_i128(self.end.to_i128() - 1), rng)
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(self.start().to_i128() <= self.end().to_i128(), "empty range strategy");
        sample_between(*self.start(), *self.end(), rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
    (A/0, B/1, C/2, D/3, E/4, F/5);
}
