//! Minimal, dependency-free, API-compatible subset of the `criterion` crate.
//!
//! The workspace builds fully offline, so real criterion cannot be fetched.
//! This shim supports the surface `crates/bench/benches/microbench.rs` uses:
//! `Criterion::bench_function`, `benchmark_group` (with `sample_size` and
//! `finish`), `black_box`, `criterion_group!`, `criterion_main!`.
//!
//! Timing model: each benchmark is warmed up briefly, then run in batches
//! until `measurement_time` elapses; the reported figure is the median
//! per-iteration time across batches. Environment knobs:
//!
//! * `CRITERION_MEASURE_MS` — per-benchmark measurement budget in
//!   milliseconds (default 300; set e.g. 50 for a quick smoke pass);
//! * `CRITERION_JSON` — if set to a path, append one JSON line per
//!   benchmark (`{"name": ..., "median_ns": ..., "batches": ...}`) so a
//!   baseline file can be produced without parsing human output.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(1))
}

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(name.to_owned(), f);
        self
    }

    /// Start a named group; benchmark names get a `group/` prefix.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, prefix: name.to_owned() }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's stopping rule is
    /// time-based, so the sample count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(format!("{}/{}", self.prefix, name), f);
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    /// Measured per-batch durations and iteration counts.
    batches: Vec<(Duration, u64)>,
}

impl Bencher {
    /// Measure the routine. Runs it repeatedly until the measurement budget
    /// is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up + calibration: find an iteration count taking ~1ms.
        let mut per_batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            let el = t.elapsed();
            if el >= Duration::from_millis(1) || per_batch >= 1 << 30 {
                break;
            }
            per_batch *= 8;
        }
        let deadline = Instant::now() + measure_budget();
        while Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.batches.push((t.elapsed(), per_batch));
        }
    }
}

fn run_named<F>(name: String, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { batches: Vec::new() };
    f(&mut b);
    let mut per_iter: Vec<f64> =
        b.batches.iter().map(|(d, n)| d.as_secs_f64() * 1e9 / *n as f64).collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
    let median = if per_iter.is_empty() { f64::NAN } else { per_iter[per_iter.len() / 2] };
    println!("{name:<40} {median:>14.1} ns/iter ({} batches)", per_iter.len());
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"name\": \"{}\", \"median_ns\": {:.1}, \"batches\": {}}}",
            name.replace('"', "'"),
            median,
            per_iter.len()
        );
        append_line(&path, &line);
    }
}

fn append_line(path: &str, line: &str) {
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
        let _ = writeln!(f, "{line}");
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
