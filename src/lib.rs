//! # ants — searching the plane without communication
//!
//! Facade crate re-exporting the whole workspace: a production-quality
//! reproduction of *"Trade-offs between Selection Complexity and Performance
//! when Searching the Plane without Communication"* (Lenzen, Lynch, Newport,
//! Radeva; PODC 2014).
//!
//! See the individual crates for details:
//!
//! * [`grid`] — the two-dimensional lattice substrate;
//! * [`rng`] — deterministic randomness with auditable probability resolution;
//! * [`automaton`] — probabilistic finite automata and Markov-chain analysis;
//! * [`core`] — the paper's search algorithms and the `χ = b + log ℓ` metric;
//! * [`obs`] — zero-cost telemetry: per-worker sharded counters, span
//!   timers, and schema-versioned NDJSON snapshots, strictly off the
//!   determinism path;
//! * [`dp`] — the exact dynamic-programming backend: Markov kernels and
//!   absorption DPs cross-validated against the simulator;
//! * [`sim`] — the Monte-Carlo simulation engine and statistics;
//! * [`analysis`] — lower-bound machinery (coverage prediction, drift);
//! * [`workload`] — declarative workload specs: TOML-subset scenario
//!   grids with heterogeneous strategy zoos;
//! * [`bench`] — the E1–E15 experiment battery behind the
//!   [`Experiment`](ants_bench::Experiment) trait and its shared runner,
//!   plus the workload-backed [`WorkloadExperiment`](ants_bench::WorkloadExperiment);
//! * [`serve`] — the content-addressed workload service: a local NDJSON
//!   daemon ([`Server`](ants_serve::Server)) that serves cache hits
//!   without touching the pool and streams misses per cell.

#![forbid(unsafe_code)]

pub use ants_analysis as analysis;
pub use ants_automaton as automaton;
pub use ants_bench as bench;
pub use ants_core as core;
pub use ants_dp as dp;
pub use ants_grid as grid;
pub use ants_obs as obs;
pub use ants_rng as rng;
pub use ants_serve as serve;
pub use ants_sim as sim;
pub use ants_workload as workload;
