//! The labelling function's range.

use ants_grid::Direction;
use std::fmt;

/// A grid action labelling a PFA state — the range of the paper's labelling
/// function `M : S → {up, down, right, left, origin, none}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GridAction {
    /// Move one step in a direction (a *move* in the paper's metric).
    Move(Direction),
    /// Return to the origin via the oracle (not counted as moves).
    Origin,
    /// Local computation only; the agent stays put (not counted as moves).
    #[default]
    None,
}

impl GridAction {
    /// All six actions (the four moves, `Origin`, `None`).
    pub const ALL: [GridAction; 6] = [
        GridAction::Move(Direction::Up),
        GridAction::Move(Direction::Down),
        GridAction::Move(Direction::Left),
        GridAction::Move(Direction::Right),
        GridAction::Origin,
        GridAction::None,
    ];

    /// Is this one of the four move actions?
    pub fn is_move(&self) -> bool {
        matches!(self, GridAction::Move(_))
    }

    /// The displacement `(dx, dy)` of this action; `(0, 0)` for `None`.
    ///
    /// `Origin` has no fixed displacement (it teleports); this method
    /// returns `(0, 0)` for it, which is the convention used by drift
    /// computations (an origin-visiting class cannot drift away).
    pub fn delta(&self) -> (i64, i64) {
        match self {
            GridAction::Move(d) => d.delta(),
            GridAction::Origin | GridAction::None => (0, 0),
        }
    }
}

impl From<Direction> for GridAction {
    fn from(d: Direction) -> Self {
        GridAction::Move(d)
    }
}

impl fmt::Display for GridAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridAction::Move(d) => write!(f, "{d}"),
            GridAction::Origin => f.write_str("origin"),
            GridAction::None => f.write_str("none"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn move_detection() {
        assert!(GridAction::Move(Direction::Up).is_move());
        assert!(!GridAction::Origin.is_move());
        assert!(!GridAction::None.is_move());
    }

    #[test]
    fn deltas() {
        assert_eq!(GridAction::Move(Direction::Right).delta(), (1, 0));
        assert_eq!(GridAction::Origin.delta(), (0, 0));
        assert_eq!(GridAction::None.delta(), (0, 0));
    }

    #[test]
    fn from_direction() {
        let a: GridAction = Direction::Left.into();
        assert_eq!(a, GridAction::Move(Direction::Left));
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(GridAction::Move(Direction::Up).to_string(), "up");
        assert_eq!(GridAction::Origin.to_string(), "origin");
        assert_eq!(GridAction::None.to_string(), "none");
    }

    #[test]
    fn all_actions_distinct() {
        let set: std::collections::HashSet<_> = GridAction::ALL.iter().collect();
        assert_eq!(set.len(), 6);
    }
}
