//! Executing a PFA on the grid.
//!
//! A [`Walker`] realises the paper's execution semantics (Section 2): a
//! random walk on the state set `S`, where entering state `s` applies the
//! move `M(s)` to the current position. `origin` states invoke the return
//! oracle (position resets; the path back is *not* counted as moves), and
//! `none` states are local computation.

use crate::action::GridAction;
use crate::pfa::{Pfa, StateId};
use ants_grid::Point;
use ants_rng::Rng64;

/// The result of one walker step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// The state entered by this step.
    pub state: StateId,
    /// Its label (the action that was applied).
    pub action: GridAction,
    /// Position after applying the action.
    pub position: Point,
}

/// An agent executing a PFA on the grid.
///
/// ```
/// use ants_automaton::{library, Walker};
/// use ants_rng::{SeedableRng64, Xoshiro256PlusPlus};
///
/// let pfa = library::straight_line();
/// let mut w = Walker::new(&pfa);
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(0);
/// for _ in 0..5 { w.step(&mut rng); }
/// assert_eq!(w.position().x, 5);
/// assert_eq!(w.moves(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct Walker<'a> {
    pfa: &'a Pfa,
    state: StateId,
    position: Point,
    steps: u64,
    moves: u64,
    origin_returns: u64,
}

impl<'a> Walker<'a> {
    /// Create a walker at the start state and the origin.
    pub fn new(pfa: &'a Pfa) -> Self {
        Self {
            pfa,
            state: pfa.start(),
            position: Point::ORIGIN,
            steps: 0,
            moves: 0,
            origin_returns: 0,
        }
    }

    /// The underlying automaton.
    pub fn pfa(&self) -> &Pfa {
        self.pfa
    }

    /// Current state.
    pub fn state(&self) -> StateId {
        self.state
    }

    /// Current grid position.
    pub fn position(&self) -> Point {
        self.position
    }

    /// Number of Markov-chain transitions taken (the paper's *steps*,
    /// metric `M_steps`).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of grid moves taken (the paper's *moves*, metric `M_moves`).
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Number of oracle returns to the origin.
    pub fn origin_returns(&self) -> u64 {
        self.origin_returns
    }

    /// Take one step: sample the successor state and apply its action.
    pub fn step<R: Rng64 + ?Sized>(&mut self, rng: &mut R) -> StepOutcome {
        let next = self.pfa.step(self.state, rng);
        self.state = next;
        self.steps += 1;
        let action = self.pfa.label(next);
        match action {
            GridAction::Move(d) => {
                self.position = self.position.step(d);
                self.moves += 1;
            }
            GridAction::Origin => {
                self.position = Point::ORIGIN;
                self.origin_returns += 1;
            }
            GridAction::None => {}
        }
        StepOutcome { state: next, action, position: self.position }
    }

    /// Run until the target is reached or `max_steps` transitions elapse.
    ///
    /// Returns `Some((steps, moves))` at the moment the walker's position
    /// first equals `target`, `None` on timeout. The start position counts:
    /// a target at the origin is found in zero steps (the paper excludes
    /// this case, but the executor is total).
    pub fn run_until<R: Rng64 + ?Sized>(
        &mut self,
        target: Point,
        max_steps: u64,
        rng: &mut R,
    ) -> Option<(u64, u64)> {
        if self.position == target {
            return Some((self.steps, self.moves));
        }
        while self.steps < max_steps {
            let out = self.step(rng);
            if out.position == target {
                return Some((self.steps, self.moves));
            }
        }
        None
    }

    /// Run `max_steps` transitions, recording every position into the
    /// visitor callback (used for coverage measurement).
    pub fn run_visiting<R, F>(&mut self, max_steps: u64, rng: &mut R, mut visit: F)
    where
        R: Rng64 + ?Sized,
        F: FnMut(Point),
    {
        visit(self.position);
        for _ in 0..max_steps {
            let out = self.step(rng);
            visit(out.position);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use ants_rng::{SeedableRng64, Xoshiro256PlusPlus};

    #[test]
    fn straight_line_walks_right() {
        let pfa = library::straight_line();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut w = Walker::new(&pfa);
        for i in 1..=10 {
            let out = w.step(&mut rng);
            assert_eq!(out.position, Point::new(i, 0));
        }
        assert_eq!(w.steps(), 10);
        assert_eq!(w.moves(), 10);
        assert_eq!(w.origin_returns(), 0);
    }

    #[test]
    fn run_until_finds_reachable_target() {
        let pfa = library::straight_line();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut w = Walker::new(&pfa);
        let res = w.run_until(Point::new(7, 0), 100, &mut rng);
        assert_eq!(res, Some((7, 7)));
    }

    #[test]
    fn run_until_times_out_on_unreachable_target() {
        let pfa = library::straight_line();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut w = Walker::new(&pfa);
        assert_eq!(w.run_until(Point::new(-1, 0), 50, &mut rng), None);
        assert_eq!(w.steps(), 50);
    }

    #[test]
    fn run_until_origin_target_immediate() {
        let pfa = library::random_walk();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut w = Walker::new(&pfa);
        assert_eq!(w.run_until(Point::ORIGIN, 10, &mut rng), Some((0, 0)));
    }

    #[test]
    fn random_walk_moves_equal_steps() {
        // Every state of the uniform walk is a move state.
        let pfa = library::random_walk();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut w = Walker::new(&pfa);
        for _ in 0..100 {
            w.step(&mut rng);
        }
        assert_eq!(w.steps(), 100);
        assert_eq!(w.moves(), 100);
    }

    #[test]
    fn lazy_walk_moves_less_than_steps() {
        let pfa = library::lazy_random_walk();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let mut w = Walker::new(&pfa);
        for _ in 0..1000 {
            w.step(&mut rng);
        }
        assert_eq!(w.steps(), 1000);
        assert!(w.moves() < 1000, "none states must not count as moves");
        // Roughly half the steps move.
        assert!(w.moves() > 300 && w.moves() < 700, "moves = {}", w.moves());
    }

    #[test]
    fn origin_label_resets_position() {
        let pfa = library::algorithm1(2).unwrap(); // D = 4: frequent resets
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut w = Walker::new(&pfa);
        let mut saw_reset = false;
        for _ in 0..10_000 {
            let out = w.step(&mut rng);
            if out.action == GridAction::Origin {
                assert_eq!(out.position, Point::ORIGIN);
                saw_reset = true;
            }
        }
        assert!(saw_reset, "algorithm 1 with D = 4 must reset within 10k steps");
        assert!(w.origin_returns() > 0);
    }

    #[test]
    fn walk_is_deterministic_given_seed() {
        let pfa = library::random_walk();
        let run = |seed: u64| {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
            let mut w = Walker::new(&pfa);
            for _ in 0..200 {
                w.step(&mut rng);
            }
            w.position()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn run_visiting_visits_start_and_all_positions() {
        let pfa = library::straight_line();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let mut w = Walker::new(&pfa);
        let mut visited = Vec::new();
        w.run_visiting(3, &mut rng, |p| visited.push(p));
        assert_eq!(
            visited,
            vec![Point::ORIGIN, Point::new(1, 0), Point::new(2, 0), Point::new(3, 0)]
        );
    }

    #[test]
    fn random_walk_rms_displacement_scales_like_sqrt_t() {
        // Diffusive scaling: E[|X_t|^2] = t for the uniform walk.
        let pfa = library::random_walk();
        let trials = 2000;
        let t = 400u64;
        let mut total_sq = 0f64;
        for seed in 0..trials {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(1000 + seed);
            let mut w = Walker::new(&pfa);
            for _ in 0..t {
                w.step(&mut rng);
            }
            let p = w.position();
            total_sq += (p.x * p.x + p.y * p.y) as f64;
        }
        let mean_sq = total_sq / trials as f64;
        // E[|X_t|^2] = t exactly for this walk; tolerance 10%.
        assert!(
            (mean_sq - t as f64).abs() / (t as f64) < 0.10,
            "mean squared displacement {mean_sq} vs {t}"
        );
    }
}
