//! Canonical automata.
//!
//! The experiments need a zoo of concrete PFAs: the paper's own five-state
//! Algorithm 1 machine (the figure in Section 3.1), uniform and biased
//! random walks (the lower-bound exemplars), deterministic cycles
//! (periodicity tests), and a seeded generator of arbitrary small automata
//! at a given probability resolution (the E8 lower-bound sweep).
//!
//! Every automaton here honours the paper's convention `M(s₀) = origin`;
//! since none of them ever *returns* to the start state, the start is a
//! transient state feeding the recurrent movement classes.

use crate::action::GridAction;
use crate::pfa::{Pfa, PfaBuilder, StateId};
use ants_grid::Direction;
use ants_rng::{DyadicError, DyadicProb, Rng64};

/// The uniform random walk: from anywhere, each direction with probability
/// `1/4`.
///
/// Five states (origin + four moves), `b = 3`, `ℓ = 2`, `χ = 4`. The paper
/// cites Alon et al. (ref. 3) for the fact that `n` such walkers achieve
/// speed-up only `min{log n, D}` — reproduced as experiment E10.
pub fn random_walk() -> Pfa {
    let mut b = PfaBuilder::new();
    let s0 = b.add_state(GridAction::Origin);
    let dirs: Vec<StateId> = Direction::ALL.iter().map(|&d| b.add_state(d.into())).collect();
    let quarter = DyadicProb::one_over_pow2(2).expect("1/4 is representable");
    for &from in std::iter::once(&s0).chain(dirs.iter()) {
        for &to in &dirs {
            b.add_transition(from, to, quarter);
        }
    }
    b.build().expect("random walk automaton is valid by construction")
}

/// The lazy uniform random walk: stay put with probability `1/2`, else a
/// uniform direction. Aperiodic and fast-mixing; used by mixing tests.
pub fn lazy_random_walk() -> Pfa {
    let mut b = PfaBuilder::new();
    let s0 = b.add_state(GridAction::Origin);
    let rest = b.add_state(GridAction::None);
    let dirs: Vec<StateId> = Direction::ALL.iter().map(|&d| b.add_state(d.into())).collect();
    let eighth = DyadicProb::one_over_pow2(3).expect("1/8 is representable");
    let half = DyadicProb::half();
    for &from in [s0, rest].iter().chain(dirs.iter()) {
        b.add_transition(from, rest, half);
        for &to in &dirs {
            b.add_transition(from, to, eighth);
        }
    }
    b.build().expect("lazy random walk automaton is valid by construction")
}

/// A rightward-biased walk at resolution `ℓ = bias_exp`: from anywhere,
/// right with probability `1/2`, left with `1/2^bias_exp`, up and down with
/// the remaining mass split evenly.
///
/// Drift `(1/2 − 1/2^bias_exp, 0)` — the archetypal "straight line" agent
/// of Corollary 4.10.
///
/// # Errors
///
/// Returns [`DyadicError::ExponentTooLarge`] for `bias_exp > 63`.
///
/// # Panics
///
/// Panics if `bias_exp < 2` (the remaining mass would not split evenly).
pub fn drift_walk(bias_exp: u32) -> Result<Pfa, DyadicError> {
    assert!(bias_exp >= 2, "drift_walk requires bias_exp >= 2");
    let right_p = DyadicProb::half();
    let left_p = DyadicProb::one_over_pow2(bias_exp)?;
    // up = down = (1 − 1/2 − 1/2^e) / 2 = (2^{e−1} − 1) / 2^{e+1}.
    let vertical = DyadicProb::new((1u64 << (bias_exp - 1)) - 1, bias_exp + 1)?;
    let mut b = PfaBuilder::new();
    let s0 = b.add_state(GridAction::Origin);
    let up = b.add_state(Direction::Up.into());
    let down = b.add_state(Direction::Down.into());
    let left = b.add_state(Direction::Left.into());
    let right = b.add_state(Direction::Right.into());
    for from in [s0, up, down, left, right] {
        b.add_transition(from, right, right_p);
        b.add_transition(from, left, left_p);
        b.add_transition(from, up, vertical);
        b.add_transition(from, down, vertical);
    }
    Ok(b.build().expect("drift walk automaton is valid by construction"))
}

/// A deterministic straight line to the right — the extreme low-χ agent
/// (`ℓ = 0`): it covers exactly one ray of the plane.
pub fn straight_line() -> Pfa {
    let mut b = PfaBuilder::new();
    let s0 = b.add_state(GridAction::Origin);
    let right = b.add_state(Direction::Right.into());
    b.add_transition(s0, right, DyadicProb::ONE);
    b.add_transition(right, right, DyadicProb::ONE);
    b.build().expect("straight line automaton is valid by construction")
}

/// A deterministic cycle of `len` states (`len ≥ 1`); state 0 is the
/// origin-labelled start, the last state moves right, the rest are `none`.
/// The recurrent class has period exactly `len` — periodicity test rig.
pub fn cycle(len: usize) -> Pfa {
    assert!(len >= 1, "cycle requires at least one state");
    let mut b = PfaBuilder::new();
    let ids: Vec<StateId> = (0..len)
        .map(|i| {
            b.add_state(if i == 0 {
                GridAction::Origin
            } else if i == len - 1 {
                Direction::Right.into()
            } else {
                GridAction::None
            })
        })
        .collect();
    for i in 0..len {
        b.add_transition(ids[i], ids[(i + 1) % len], DyadicProb::ONE);
    }
    b.build().expect("cycle automaton is valid by construction")
}

/// The paper's five-state Algorithm 1 machine (the figure in Section 3.1)
/// for `D = 2^d_exp`.
///
/// States: `origin`, `up`, `down`, `left`, `right`. Semantics: from
/// `origin`, choose a vertical direction fairly and walk while `C_{1/D}`
/// shows heads; when the vertical walk ends, choose a horizontal direction
/// fairly and walk; when that ends, return to the origin. The transition
/// probabilities below are the figure's, derived by composing those coin
/// flips into single state transitions:
///
/// * `origin → up/down`: `½(1 − 1/D)` each;
/// * `origin → left/right`: `(1 − 1/D)/(2D)` each (vertical walk of
///   length zero);
/// * `origin → origin`: `1/D²` (both walks of length zero);
/// * `up → up` (and `down → down`): `1 − 1/D`;
/// * `up → left/right`: `(1 − 1/D)/(2D)` each; `up → origin`: `1/D²`;
/// * `left → left` (and `right → right`): `1 − 1/D`; `left → origin`: `1/D`.
///
/// `b = 3` bits; the finest probability is `Θ(1/D²)`, so `ℓ ≈ 2·log₂ D`
/// and `χ = log log D + O(1)` — exactly the regime of Theorem 3.7 before
/// composite coins shrink `ℓ` further.
///
/// # Errors
///
/// [`DyadicError::ExponentTooLarge`] if `2·d_exp + 1 > 64`.
///
/// # Panics
///
/// Panics for `d_exp < 1` (the paper assumes `D > 1`).
pub fn algorithm1(d_exp: u32) -> Result<Pfa, DyadicError> {
    assert!(d_exp >= 1, "algorithm1 requires D >= 2 (d_exp >= 1)");
    let j = d_exp;
    let d_minus_1 = (1u64 << j) - 1;
    // ½(1 − 1/D) = (D−1)/2D.
    let half_heads = DyadicProb::new(d_minus_1, j + 1)?;
    // (1 − 1/D)/(2D) = (D−1)/(2D²).
    let switch = DyadicProb::new(d_minus_1, 2 * j + 1)?;
    // 1/D².
    let both_tails = DyadicProb::one_over_pow2(2 * j)?;
    // 1 − 1/D.
    let cont = DyadicProb::new(d_minus_1, j)?;
    // 1/D.
    let stop = DyadicProb::one_over_pow2(j)?;

    let mut b = PfaBuilder::new();
    let origin = b.add_state(GridAction::Origin);
    let up = b.add_state(Direction::Up.into());
    let down = b.add_state(Direction::Down.into());
    let left = b.add_state(Direction::Left.into());
    let right = b.add_state(Direction::Right.into());

    // origin row.
    b.add_transition(origin, up, half_heads);
    b.add_transition(origin, down, half_heads);
    b.add_transition(origin, left, switch);
    b.add_transition(origin, right, switch);
    b.add_transition(origin, origin, both_tails);
    // vertical rows.
    for v in [up, down] {
        b.add_transition(v, v, cont);
        b.add_transition(v, left, switch);
        b.add_transition(v, right, switch);
        b.add_transition(v, origin, both_tails);
    }
    // horizontal rows.
    for h in [left, right] {
        b.add_transition(h, h, cont);
        b.add_transition(h, origin, stop);
    }
    Ok(b.build().expect("algorithm 1 automaton is valid by construction"))
}

/// A seeded random PFA at resolution `ℓ`: `num_states` states with random
/// move labels (state 0 is the origin start), each row an independent
/// random distribution whose probabilities are multiples of `1/2^ℓ`.
///
/// This is the population the E8 lower-bound experiment samples: arbitrary
/// algorithms with `χ(A) = ⌈log₂ num_states⌉ + log ℓ` small.
///
/// # Panics
///
/// Panics if `num_states == 0` or `ell == 0` or `ell > 16`.
pub fn random_pfa<R: Rng64 + ?Sized>(num_states: usize, ell: u32, rng: &mut R) -> Pfa {
    assert!(num_states >= 1, "need at least one state");
    assert!((1..=16).contains(&ell), "ell must be in 1..=16");
    let mut b = PfaBuilder::new();
    let ids: Vec<StateId> = (0..num_states)
        .map(|i| {
            let label = if i == 0 {
                GridAction::Origin
            } else {
                // Random move label; occasionally a `none` state.
                match rng.next_below(5) {
                    0 => Direction::Up.into(),
                    1 => Direction::Down.into(),
                    2 => Direction::Left.into(),
                    3 => Direction::Right.into(),
                    _ => GridAction::None,
                }
            };
            b.add_state(label)
        })
        .collect();
    let units = 1u64 << ell;
    for &from in &ids {
        // Multinomial: drop 2^ell unit masses onto random targets.
        let mut mass = vec![0u64; num_states];
        for _ in 0..units {
            mass[rng.next_below(num_states as u64) as usize] += 1;
        }
        for (t, &m) in mass.iter().enumerate() {
            if m > 0 {
                let p = DyadicProb::new(m, ell).expect("m <= 2^ell by construction");
                b.add_transition(from, ids[t], p);
            }
        }
    }
    b.build().expect("random automaton rows sum to one by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov;
    use ants_rng::{SeedableRng64, Xoshiro256PlusPlus};

    #[test]
    fn random_walk_shape() {
        let pfa = random_walk();
        assert_eq!(pfa.num_states(), 5);
        assert_eq!(pfa.memory_bits(), 3);
        assert_eq!(pfa.ell(), 2);
        assert_eq!(pfa.chi(), 4.0);
        assert_eq!(pfa.label(pfa.start()), GridAction::Origin);
    }

    #[test]
    fn lazy_random_walk_shape() {
        let pfa = lazy_random_walk();
        assert_eq!(pfa.num_states(), 6);
        assert_eq!(pfa.ell(), 3);
        let a = markov::analyze(&pfa);
        assert_eq!(a.recurrent_classes.len(), 1);
        assert_eq!(a.recurrent_classes[0].period, 1);
        // Half the stationary mass rests (none state) -> move mass 1/2.
        let mm = markov::move_mass(&pfa, &a.recurrent_classes[0]);
        assert!((mm - 0.5).abs() < 1e-10);
    }

    #[test]
    fn drift_walk_drift_values() {
        for e in [2u32, 3, 5, 8] {
            let pfa = drift_walk(e).unwrap();
            let a = markov::analyze(&pfa);
            assert_eq!(a.recurrent_classes.len(), 1);
            let c = &a.recurrent_classes[0];
            let expect = 0.5 - 0.5f64.powi(e as i32);
            assert!((c.drift.0 - expect).abs() < 1e-10, "e={e} drift {:?}", c.drift);
            assert!(c.drift.1.abs() < 1e-10);
            // Resolution: left needs ell = e; the vertical probability
            // (2^{e-1}-1)/2^{e+1} lies in [1/8, 1/4) so it needs ell = 3.
            assert_eq!(pfa.ell(), e.max(3));
        }
    }

    #[test]
    #[should_panic(expected = "bias_exp >= 2")]
    fn drift_walk_small_exponent_panics() {
        let _ = drift_walk(1);
    }

    #[test]
    fn straight_line_is_deterministic() {
        let pfa = straight_line();
        assert_eq!(pfa.ell(), 0);
        assert_eq!(pfa.chi(), 1.0); // b = 1, deterministic
        let a = markov::analyze(&pfa);
        assert_eq!(a.recurrent_classes[0].drift, (1.0, 0.0));
    }

    #[test]
    fn cycle_periods() {
        for len in 1..=6usize {
            let pfa = cycle(len);
            let a = markov::analyze(&pfa);
            assert_eq!(a.recurrent_classes.len(), 1);
            assert_eq!(a.recurrent_classes[0].period as usize, len, "cycle({len})");
        }
    }

    #[test]
    fn algorithm1_rows_are_stochastic_for_many_d() {
        for j in 1..=20u32 {
            let pfa = algorithm1(j).unwrap();
            assert_eq!(pfa.num_states(), 5, "D = 2^{j}");
            assert_eq!(pfa.memory_bits(), 3);
            // Building validates stochasticity; touch matrix rows too.
            for row in pfa.transition_matrix() {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn algorithm1_resolution_scales_with_d() {
        // Finest probability in ell terms is 1/D² = 1/2^{2j} -> ell = 2j
        // (the switch probability (D−1)/2D² only needs ell = j + 2 <= 2j).
        for j in [2u32, 4, 8, 16] {
            let pfa = algorithm1(j).unwrap();
            assert_eq!(pfa.ell(), 2 * j, "j = {j}");
        }
        // chi = b + log2(ell) = 3 + log2(2j) = log2(log2 D) + 4: the
        // log log D + O(1) selection complexity of Theorem 3.7's machine.
        let pfa = algorithm1(16).unwrap();
        assert!((pfa.chi() - (3.0 + (32f64).log2())).abs() < 1e-12);
    }

    #[test]
    fn algorithm1_is_irreducible() {
        let pfa = algorithm1(3).unwrap();
        let a = markov::analyze(&pfa);
        // All five states communicate (origin reachable from every state).
        assert!(a.transient.is_empty());
        assert_eq!(a.recurrent_classes.len(), 1);
        assert_eq!(a.recurrent_classes[0].states.len(), 5);
        assert!(a.recurrent_classes[0].has_origin);
    }

    #[test]
    fn algorithm1_mean_iteration_length_lemma_3_1() {
        // Lemma 3.1: expected moves per iteration R <= 2D. Under the
        // stationary distribution, the fraction of steps that are moves is
        // the move mass; an iteration ends on each origin-entry. Check the
        // simpler consequence: expected vertical run length is D.
        // P[up -> up] = 1 - 1/D, so the run is geometric with mean D - 1
        // moves after entry, i.e. D total including the entry move.
        let j = 5; // D = 32
        let pfa = algorithm1(j).unwrap();
        let up = StateId(1);
        let p_cont = pfa.probability(up, up).to_f64();
        let mean_run = 1.0 / (1.0 - p_cont);
        assert!((mean_run - 32.0).abs() < 1e-9);
    }

    #[test]
    fn random_pfa_valid_and_seeded() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for &(n, ell) in &[(1usize, 1u32), (2, 2), (5, 3), (8, 4), (16, 2)] {
            let pfa = random_pfa(n, ell, &mut rng);
            assert_eq!(pfa.num_states(), n);
            assert!(pfa.ell() <= ell, "resolution must not exceed requested ell");
            assert_eq!(pfa.label(pfa.start()), GridAction::Origin);
        }
        // Determinism.
        let mut r1 = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut r2 = Xoshiro256PlusPlus::seed_from_u64(9);
        assert_eq!(random_pfa(6, 3, &mut r1), random_pfa(6, 3, &mut r2));
    }

    #[test]
    fn random_pfa_chi_is_bounded() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let pfa = random_pfa(8, 4, &mut rng);
        // chi <= ceil(log2 8) + log2 4 = 3 + 2.
        assert!(pfa.chi() <= 5.0);
    }
}
