//! Markov-chain structure analysis — the machinery behind Section 4.
//!
//! The paper's lower bound (Theorem 4.1) rests on structural facts about
//! small Markov chains:
//!
//! * every agent falls into a *recurrent class* within `R₀ = D^{o(1)}`
//!   rounds (Lemma 4.2 / Corollary 4.3);
//! * each recurrent class has a period `t` and decomposes into `t` cyclic
//!   classes (Feller's Theorem A.1);
//! * the chain induced by `P^t` on each cyclic class mixes to its unique
//!   stationary distribution at rate `(1 − p₀^{|S|})^{⌊k/|S|⌋}`
//!   (Rosenthal's Lemma A.2 / Corollary 4.6);
//! * under the stationary distribution each class has a *drift vector*
//!   `~p = (p→ − p←, p↑ − p↓)` and the position concentrates around the
//!   line `r · ~p` (Lemma 4.9 / Corollary 4.10).
//!
//! [`analyze`] computes all of these exactly (graph structure) or to
//! numerical precision (distributions), and is consumed by
//! `ants-analysis`' coverage predictor and by the E8/E13 experiments.

use crate::action::GridAction;
use crate::matrix;
use crate::pfa::{Pfa, StateId};

/// A recurrent class and its derived quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct RecurrentClass {
    /// The member states, sorted.
    pub states: Vec<StateId>,
    /// The period `t` of the induced chain (1 = aperiodic).
    pub period: u32,
    /// The cyclic classes `G₀, …, G_{t−1}` of Feller's theorem, each
    /// sorted; `cyclic_classes.len() == period`.
    pub cyclic_classes: Vec<Vec<StateId>>,
    /// Unique stationary distribution over `states` (same order).
    pub stationary: Vec<f64>,
    /// Expected per-step displacement under the stationary distribution:
    /// `(p→ − p←, p↑ − p↓)` — Corollary 4.10's `~p`.
    pub drift: (f64, f64),
    /// Does the class contain a state labelled `origin`? (Corollary 4.5:
    /// such a class keeps returning and never explores far.)
    pub has_origin: bool,
    /// Does the class contain any move-labelled state? (Corollary 4.11's
    /// case (2): an all-`none` class stops moving entirely.)
    pub has_move: bool,
}

impl RecurrentClass {
    /// Probability mass the stationary distribution puts on a state.
    pub fn stationary_of(&self, s: StateId) -> Option<f64> {
        self.states.iter().position(|&t| t == s).map(|i| self.stationary[i])
    }

    /// Euclidean norm of the drift vector.
    pub fn drift_speed(&self) -> f64 {
        (self.drift.0 * self.drift.0 + self.drift.1 * self.drift.1).sqrt()
    }
}

/// Full structural analysis of a PFA's Markov chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainAnalysis {
    /// States not contained in any recurrent class.
    pub transient: Vec<StateId>,
    /// All recurrent classes.
    pub recurrent_classes: Vec<RecurrentClass>,
}

impl ChainAnalysis {
    /// The recurrent class containing `s`, if any.
    pub fn class_of(&self, s: StateId) -> Option<&RecurrentClass> {
        self.recurrent_classes.iter().find(|c| c.states.contains(&s))
    }

    /// Is `s` transient?
    pub fn is_transient(&self, s: StateId) -> bool {
        self.transient.contains(&s)
    }
}

/// Analyse the Markov chain of a PFA.
///
/// Runs Tarjan's SCC algorithm for the class structure, a BFS-level gcd
/// for the period, and a direct linear solve for each stationary
/// distribution.
pub fn analyze(pfa: &Pfa) -> ChainAnalysis {
    let n = pfa.num_states();
    let adj: Vec<Vec<usize>> =
        (0..n).map(|i| pfa.transitions(StateId(i)).iter().map(|(t, _)| t.0).collect()).collect();
    let sccs = tarjan_scc(&adj);
    // An SCC is recurrent iff no edge leaves it.
    let mut comp_of = vec![usize::MAX; n];
    for (ci, comp) in sccs.iter().enumerate() {
        for &s in comp {
            comp_of[s] = ci;
        }
    }
    let mut transient = Vec::new();
    let mut recurrent_classes = Vec::new();
    for (ci, comp) in sccs.iter().enumerate() {
        let leaves = comp.iter().any(|&s| adj[s].iter().any(|&t| comp_of[t] != ci));
        if leaves {
            transient.extend(comp.iter().map(|&s| StateId(s)));
            continue;
        }
        recurrent_classes.push(build_class(pfa, comp));
    }
    transient.sort();
    recurrent_classes.sort_by(|a, b| a.states.cmp(&b.states));
    ChainAnalysis { transient, recurrent_classes }
}

fn build_class(pfa: &Pfa, members: &[usize]) -> RecurrentClass {
    let mut states: Vec<usize> = members.to_vec();
    states.sort_unstable();
    let index_of = |s: usize| states.binary_search(&s).expect("member state");
    let m = states.len();
    // Restricted transition matrix.
    let mut p = vec![vec![0.0; m]; m];
    for (i, &s) in states.iter().enumerate() {
        for (t, prob) in pfa.transitions(StateId(s)) {
            // All mass stays inside a recurrent class.
            let j = index_of(t.0);
            p[i][j] += prob.to_f64();
        }
    }
    let period = class_period(&states, &p);
    let cyclic_classes = cyclic_classes(&states, &p, period);
    let stationary = matrix::stationary_distribution(&p);
    let mut drift = (0.0, 0.0);
    let mut has_origin = false;
    let mut has_move = false;
    for (i, &s) in states.iter().enumerate() {
        match pfa.label(StateId(s)) {
            GridAction::Move(d) => {
                has_move = true;
                let (dx, dy) = d.delta();
                drift.0 += stationary[i] * dx as f64;
                drift.1 += stationary[i] * dy as f64;
            }
            GridAction::Origin => has_origin = true,
            GridAction::None => {}
        }
    }
    RecurrentClass {
        states: states.iter().map(|&s| StateId(s)).collect(),
        period,
        cyclic_classes,
        stationary,
        drift,
        has_origin,
        has_move,
    }
}

/// Period of an irreducible chain: gcd over edges `(u, v)` of
/// `level(u) + 1 − level(v)` for BFS levels from an arbitrary root.
fn class_period(states: &[usize], p: &[Vec<f64>]) -> u32 {
    let m = states.len();
    if m == 1 {
        return 1;
    }
    let mut level = vec![i64::MIN; m];
    level[0] = 0;
    let mut queue = std::collections::VecDeque::from([0usize]);
    let mut g: i64 = 0;
    while let Some(u) = queue.pop_front() {
        for v in 0..m {
            if p[u][v] <= 0.0 {
                continue;
            }
            if level[v] == i64::MIN {
                level[v] = level[u] + 1;
                queue.push_back(v);
            } else {
                g = gcd(g, (level[u] + 1 - level[v]).abs());
            }
        }
    }
    if g == 0 {
        1
    } else {
        g as u32
    }
}

/// Feller's cyclic classes: group states by BFS level mod period.
fn cyclic_classes(states: &[usize], p: &[Vec<f64>], period: u32) -> Vec<Vec<StateId>> {
    let m = states.len();
    let t = period as i64;
    let mut level = vec![i64::MIN; m];
    level[0] = 0;
    let mut queue = std::collections::VecDeque::from([0usize]);
    while let Some(u) = queue.pop_front() {
        for v in 0..m {
            if p[u][v] > 0.0 && level[v] == i64::MIN {
                level[v] = level[u] + 1;
                queue.push_back(v);
            }
        }
    }
    let mut classes = vec![Vec::new(); period as usize];
    for (i, &s) in states.iter().enumerate() {
        let tau = level[i].rem_euclid(t) as usize;
        classes[tau].push(StateId(s));
    }
    for c in &mut classes {
        c.sort();
    }
    classes
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a.abs()
    } else {
        gcd(b, a % b)
    }
}

/// Iterative Tarjan SCC; returns components in reverse topological order.
fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next_index = 0usize;
    let mut sccs = Vec::new();
    // Explicit DFS stack of (node, edge-iterator position).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut ei)) = call_stack.last_mut() {
            if *ei == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ei < adj[v].len() {
                let w = adj[v][*ei];
                *ei += 1;
                if index[w] == usize::MAX {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
                call_stack.pop();
                if let Some(&mut (u, _)) = call_stack.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    sccs
}

/// Distribution over all states after `k` steps from the start state.
pub fn distribution_after(pfa: &Pfa, k: u64) -> Vec<f64> {
    let p = pfa.transition_matrix();
    let pk = matrix::mat_pow(&p, k);
    pk[pfa.start().0].clone()
}

/// Total-variation distance between the `k`-step distribution (restricted
/// to a recurrent class the start state can reach) and the class's
/// stationary distribution.
///
/// Used by the mixing experiments to verify Corollary 4.6 empirically:
/// after `β = D^{o(1)}` rounds the distance is negligible.
pub fn mixing_distance(pfa: &Pfa, class: &RecurrentClass, k: u64) -> f64 {
    let dist = distribution_after(pfa, k);
    let mut restricted: Vec<f64> = class.states.iter().map(|s| dist[s.0]).collect();
    let mass: f64 = restricted.iter().sum();
    if mass <= 0.0 {
        return 1.0; // chain has not reached the class at all
    }
    for v in &mut restricted {
        *v /= mass;
    }
    0.5 * restricted.iter().zip(class.stationary.iter()).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Rosenthal's bound (the paper's Lemma A.2): after `k` steps of a chain
/// whose `k₀`-step transitions all have probability at least `ε` into some
/// reference distribution, the distance to stationarity is at most
/// `(1 − ε)^{⌊k/k₀⌋}`.
pub fn rosenthal_bound(epsilon: f64, k: u64, k0: u64) -> f64 {
    assert!((0.0..=1.0).contains(&epsilon), "epsilon must be a probability");
    assert!(k0 > 0, "k0 must be positive");
    (1.0 - epsilon).powi((k / k0) as i32)
}

/// The paper's recurrence-time scale `R₀ = p₀^{−2^b} · 2^b · c · log D`
/// (Lemma 4.2): the number of rounds within which an always-reachable
/// state is visited w.h.p.
pub fn recurrence_time_bound(p0: f64, memory_bits: u32, c: f64, d: u64) -> f64 {
    assert!(p0 > 0.0 && p0 <= 1.0);
    let pow = 1u64 << memory_bits.min(40);
    p0.powi(-(pow as i32)) * pow as f64 * c * (d.max(2) as f64).ln()
}

/// Convenience: the drift vector an agent started in `class` follows, as
/// per-direction stationary probabilities `(p_up, p_down, p_left, p_right)`.
pub fn direction_probabilities(pfa: &Pfa, class: &RecurrentClass) -> [f64; 4] {
    let mut probs = [0.0f64; 4];
    for (i, s) in class.states.iter().enumerate() {
        if let GridAction::Move(d) = pfa.label(*s) {
            probs[d.index()] += class.stationary[i];
        }
    }
    probs
}

/// Expected displacement after `r` steps for an agent whose state is
/// stationary in `class` — the straight line of Corollary 4.10.
pub fn expected_position(class: &RecurrentClass, r: u64) -> (f64, f64) {
    (class.drift.0 * r as f64, class.drift.1 * r as f64)
}

/// Sanity helper used in tests and examples: assert the four direction
/// probabilities of a class sum to at most one.
pub fn move_mass(pfa: &Pfa, class: &RecurrentClass) -> f64 {
    direction_probabilities(pfa, class).iter().sum()
}

/// `∞`-norm distance between two distributions — the paper's `‖π₁ − π₂‖`.
pub fn linf_distance(a: &[f64], b: &[f64]) -> f64 {
    matrix::linf_distance(a, b)
}

/// Total-variation distance `½ Σ |aᵢ − bᵢ|` between two distributions.
pub fn tv_distance(a: &[f64], b: &[f64]) -> f64 {
    matrix::tv_distance(a, b)
}

/// Evolve a distribution one step: `π ↦ π P`.
pub fn evolve(pfa: &Pfa, dist: &[f64]) -> Vec<f64> {
    matrix::vec_mat(dist, &pfa.transition_matrix())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::pfa::PfaBuilder;
    use ants_grid::Direction;
    use ants_rng::DyadicProb;

    /// A chain with one transient state feeding two absorbing states.
    fn transient_chain() -> Pfa {
        let mut b = PfaBuilder::new();
        let s0 = b.add_state(GridAction::Origin);
        let s1 = b.add_state(GridAction::Move(Direction::Up));
        let s2 = b.add_state(GridAction::Move(Direction::Down));
        b.add_transition(s0, s1, DyadicProb::half());
        b.add_transition(s0, s2, DyadicProb::half());
        b.add_transition(s1, s1, DyadicProb::ONE);
        b.add_transition(s2, s2, DyadicProb::ONE);
        b.build().unwrap()
    }

    #[test]
    fn transient_and_recurrent_partition() {
        let pfa = transient_chain();
        let a = analyze(&pfa);
        assert_eq!(a.transient, vec![StateId(0)]);
        assert_eq!(a.recurrent_classes.len(), 2);
        let total: usize =
            a.transient.len() + a.recurrent_classes.iter().map(|c| c.states.len()).sum::<usize>();
        assert_eq!(total, pfa.num_states());
        assert!(a.is_transient(StateId(0)));
        assert!(!a.is_transient(StateId(1)));
    }

    #[test]
    fn absorbing_states_have_unit_drift() {
        let pfa = transient_chain();
        let a = analyze(&pfa);
        let up_class = a.class_of(StateId(1)).unwrap();
        assert_eq!(up_class.drift, (0.0, 1.0));
        assert_eq!(up_class.period, 1);
        assert!(up_class.has_move);
        assert!(!up_class.has_origin);
        let down_class = a.class_of(StateId(2)).unwrap();
        assert_eq!(down_class.drift, (0.0, -1.0));
    }

    #[test]
    fn random_walk_is_one_aperiodic_class_with_zero_drift() {
        let pfa = library::random_walk();
        let a = analyze(&pfa);
        // The origin start state is never re-entered: it is transient.
        assert_eq!(a.transient, vec![StateId(0)]);
        assert_eq!(a.recurrent_classes.len(), 1);
        let c = &a.recurrent_classes[0];
        assert_eq!(c.period, 1);
        assert!(c.drift.0.abs() < 1e-12 && c.drift.1.abs() < 1e-12);
        assert_eq!(c.states.len(), 4);
        // Uniform stationary distribution by symmetry.
        for &pi in &c.stationary {
            assert!((pi - 0.25).abs() < 1e-10);
        }
        assert!((move_mass(&pfa, c) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn two_cycle_has_period_two() {
        let mut b = PfaBuilder::new();
        let s0 = b.add_state(GridAction::Origin);
        let s1 = b.add_state(GridAction::Move(Direction::Right));
        b.add_transition(s0, s1, DyadicProb::ONE);
        b.add_transition(s1, s0, DyadicProb::ONE);
        let pfa = b.build().unwrap();
        let a = analyze(&pfa);
        assert_eq!(a.recurrent_classes.len(), 1);
        let c = &a.recurrent_classes[0];
        assert_eq!(c.period, 2);
        assert_eq!(c.cyclic_classes.len(), 2);
        assert_eq!(c.cyclic_classes[0], vec![StateId(0)]);
        assert_eq!(c.cyclic_classes[1], vec![StateId(1)]);
        // Stationary (1/2, 1/2); drift = right with mass 1/2.
        assert!((c.drift.0 - 0.5).abs() < 1e-10);
        assert!(c.has_origin);
    }

    #[test]
    fn three_cycle_period_three() {
        let mut b = PfaBuilder::new();
        let s0 = b.add_state(GridAction::Origin);
        let s1 = b.add_state(GridAction::None);
        let s2 = b.add_state(GridAction::Move(Direction::Up));
        b.add_transition(s0, s1, DyadicProb::ONE);
        b.add_transition(s1, s2, DyadicProb::ONE);
        b.add_transition(s2, s0, DyadicProb::ONE);
        let pfa = b.build().unwrap();
        let a = analyze(&pfa);
        let c = &a.recurrent_classes[0];
        assert_eq!(c.period, 3);
        assert_eq!(c.cyclic_classes.iter().map(Vec::len).collect::<Vec<_>>(), vec![1, 1, 1]);
    }

    #[test]
    fn lazy_cycle_is_aperiodic() {
        // Adding a self-loop destroys periodicity.
        let mut b = PfaBuilder::new();
        let s0 = b.add_state(GridAction::Origin);
        let s1 = b.add_state(GridAction::None);
        b.add_transition(s0, s1, DyadicProb::ONE);
        b.add_transition(s1, s0, DyadicProb::half());
        b.add_transition(s1, s1, DyadicProb::half());
        let pfa = b.build().unwrap();
        let a = analyze(&pfa);
        assert_eq!(a.recurrent_classes[0].period, 1);
    }

    #[test]
    fn stationary_is_fixed_point_of_restricted_chain() {
        let pfa = library::drift_walk(2).unwrap();
        let a = analyze(&pfa);
        let c = &a.recurrent_classes[0];
        // Recompute π P and compare.
        let idx: std::collections::HashMap<usize, usize> =
            c.states.iter().enumerate().map(|(i, s)| (s.0, i)).collect();
        let m = c.states.len();
        let mut after = vec![0.0; m];
        for (i, s) in c.states.iter().enumerate() {
            for (t, p) in pfa.transitions(*s) {
                after[idx[&t.0]] += c.stationary[i] * p.to_f64();
            }
        }
        for (a, b) in after.iter().zip(c.stationary.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn mixing_distance_decreases() {
        let pfa = library::lazy_random_walk();
        let a = analyze(&pfa);
        let c = &a.recurrent_classes[0];
        let d1 = mixing_distance(&pfa, c, 1);
        let d10 = mixing_distance(&pfa, c, 10);
        let d100 = mixing_distance(&pfa, c, 100);
        assert!(d10 <= d1 + 1e-12);
        assert!(d100 <= d10 + 1e-12);
        assert!(d100 < 1e-6, "lazy walk should mix fast, got {d100}");
    }

    #[test]
    fn rosenthal_bound_shape() {
        // More steps -> smaller bound; larger epsilon -> smaller bound.
        assert!(rosenthal_bound(0.1, 100, 10) < rosenthal_bound(0.1, 50, 10));
        assert!(rosenthal_bound(0.2, 100, 10) < rosenthal_bound(0.1, 100, 10));
        assert_eq!(rosenthal_bound(0.5, 0, 10), 1.0);
    }

    #[test]
    fn recurrence_time_grows_with_memory() {
        let r2 = recurrence_time_bound(0.5, 2, 1.0, 1024);
        let r4 = recurrence_time_bound(0.5, 4, 1.0, 1024);
        assert!(r4 > r2);
        // Lemma 4.2's scale: p0^{-2^b} * 2^b * c * log D.
        let expect = 2f64.powi(4) * 4.0 * (1024f64).ln();
        assert!((r2 - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn distribution_after_sums_to_one() {
        let pfa = library::random_walk();
        for k in [0u64, 1, 5, 50] {
            let d = distribution_after(&pfa, k);
            let s: f64 = d.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "k={k} sum={s}");
        }
    }

    #[test]
    fn direction_probabilities_match_drift() {
        let pfa = library::drift_walk(3).unwrap();
        let a = analyze(&pfa);
        let c = &a.recurrent_classes[0];
        let [up, down, left, right] = direction_probabilities(&pfa, c);
        assert!((c.drift.0 - (right - left)).abs() < 1e-12);
        assert!((c.drift.1 - (up - down)).abs() < 1e-12);
    }

    #[test]
    fn expected_position_scales_linearly() {
        let pfa = library::drift_walk(2).unwrap();
        let a = analyze(&pfa);
        let c = &a.recurrent_classes[0];
        let (x1, y1) = expected_position(c, 100);
        let (x2, y2) = expected_position(c, 200);
        assert!((x2 - 2.0 * x1).abs() < 1e-9);
        assert!((y2 - 2.0 * y1).abs() < 1e-9);
    }
}
