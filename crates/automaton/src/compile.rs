//! Compiling the paper's algorithms into explicit state machines.
//!
//! Theorem 3.7's accounting ("`b = log⌈log D/ℓ⌉ + 3` bits") refers to the
//! *state-machine representation* of `Non-Uniform-Search`. This module
//! constructs that machine explicitly: the five logical states of
//! Algorithm 1, each fibred over the `k`-valued flip counter of the
//! composite coin `coin(k, ℓ)` (Algorithm 2). The result is a [`Pfa`]
//! whose `memory_bits()`/`ell()`/`chi()` are *measured from the machine*,
//! cross-validating the procedural implementation's declared footprint.
//!
//! Machine layout, mirroring Algorithm 1's walk structure:
//!
//! * `origin(c)` — about to (re)start; vertical direction pending, counter
//!   `c` tails seen on the current composite flip;
//! * `up(c)/down(c)` — mid-vertical-walk;
//! * `left(c)/right(c)` — mid-horizontal-walk.
//!
//! Each transition flips one base coin `C_{1/2^ℓ}` (and, on walk
//! boundaries, one fair coin for the direction choice), so every non-zero
//! probability is in `{1/2^{ℓ+1}, …, 1 − 1/2^ℓ, …}` — at most resolution
//! `ℓ + 1`, as the theorem requires.

use crate::action::GridAction;
use crate::pfa::{Pfa, PfaBuilder, StateId};
use ants_grid::Direction;
use ants_rng::{DyadicError, DyadicProb};

/// Compile `Non-Uniform-Search(D = 2^d_exp, ℓ)` into its explicit PFA.
///
/// The machine has `6k` states for `k = ⌈d_exp/ℓ⌉`: a return state
/// (labelled `origin`), and six `k`-fibred roles — vertical-pending
/// counters, `up`/`down` walkers, horizontal-pending counters and
/// `left`/`right` walkers. Only the counter-zero walker states carry move
/// labels; tails-counting states are `none` (local computation), exactly
/// as the metric `M_moves` requires. Hence
/// `b = ⌈log₂ 6k⌉ = log log D + O(1)` and the machine's resolution
/// is `ℓ + 1` (the finest probability is `(1 − 1/2^ℓ)/2`).
///
/// # Errors
///
/// [`DyadicError::ExponentTooLarge`] if `ℓ + 1 > 64`.
///
/// # Panics
///
/// Panics if `d_exp == 0` or `ell == 0`.
pub fn non_uniform_search(d_exp: u32, ell: u32) -> Result<Pfa, DyadicError> {
    assert!(d_exp >= 1, "D must be at least 2");
    assert!(ell >= 1, "ell must be at least 1");
    let k = d_exp.div_ceil(ell).max(1) as usize;
    // Base coin: tails (stop-progress) with probability q = 1/2^ell.
    let q = DyadicProb::one_over_pow2(ell)?;
    // Continue-probability 1 - 1/2^ell.
    let heads = q.complement();
    // Direction choices pair a heads with a fair flip: (1 - q)/2.
    let half_heads = heads.checked_mul(&DyadicProb::half()).ok_or(DyadicError::ExponentTooLarge)?;

    let mut b = PfaBuilder::new();
    let ret = b.add_state(GridAction::Origin);
    // The vertical-pending chain is ret, vpend[0], …, vpend[k−2]: `c`
    // tails into the first vertical composite flip.
    let vpend: Vec<StateId> = (1..k).map(|_| b.add_state(GridAction::None)).collect();
    let mk_walk = |b: &mut PfaBuilder, dir: Direction| -> Vec<StateId> {
        (0..k).map(|c| b.add_state(if c == 0 { dir.into() } else { GridAction::None })).collect()
    };
    let up = mk_walk(&mut b, Direction::Up);
    let down = mk_walk(&mut b, Direction::Down);
    let hwait: Vec<StateId> = (0..k).map(|_| b.add_state(GridAction::None)).collect();
    let left = mk_walk(&mut b, Direction::Left);
    let right = mk_walk(&mut b, Direction::Right);
    b.set_start(ret);

    // Vertical pending: ret behaves like counter 0.
    let vchain: Vec<StateId> = std::iter::once(ret).chain(vpend.iter().copied()).collect();
    for (c, &s) in vchain.iter().enumerate() {
        b.add_transition(s, up[0], half_heads);
        b.add_transition(s, down[0], half_heads);
        let next = if c + 1 < k { vchain[c + 1] } else { hwait[0] };
        b.add_transition(s, next, q);
    }
    // Walking roles: heads -> move (counter resets); tails chain; the
    // k-th tails ends the walk.
    for (walk, after) in [(&up, hwait[0]), (&down, hwait[0]), (&left, ret), (&right, ret)] {
        for c in 0..k {
            b.add_transition(walk[c], walk[0], heads);
            let next = if c + 1 < k { walk[c + 1] } else { after };
            b.add_transition(walk[c], next, q);
        }
    }
    // Horizontal pending: first base flip of the horizontal coin.
    for c in 0..k {
        b.add_transition(hwait[c], left[0], half_heads);
        b.add_transition(hwait[c], right[0], half_heads);
        let next = if c + 1 < k { hwait[c + 1] } else { ret };
        b.add_transition(hwait[c], next, q);
    }
    Ok(b.build().expect("compiled machine is stochastic by construction"))
}

/// Compile the composite coin `coin(k, ℓ)` alone into a PFA gadget whose
/// two absorbing states report the outcome. Used by tests to validate the
/// `⌈log k⌉`-bit memory claim of Lemma 3.6 mechanically.
///
/// # Errors
///
/// [`DyadicError::ExponentTooLarge`] if `ℓ > 64`.
///
/// # Panics
///
/// Panics if `k == 0` or `ell == 0`.
pub fn composite_coin_gadget(k: u32, ell: u32) -> Result<Pfa, DyadicError> {
    assert!(k >= 1 && ell >= 1);
    let q = DyadicProb::one_over_pow2(ell)?;
    let heads_p = q.complement();
    let mut b = PfaBuilder::new();
    let start = b.add_state(GridAction::Origin);
    let counters: Vec<StateId> = (0..k).map(|_| b.add_state(GridAction::None)).collect();
    let heads = b.add_state(GridAction::None); // absorbing: outcome heads
    let tails = b.add_state(GridAction::None); // absorbing: outcome tails
    b.add_transition(start, counters[0], DyadicProb::ONE);
    for (i, &c) in counters.iter().enumerate() {
        b.add_transition(c, heads, heads_p);
        let next = if i + 1 < k as usize { counters[i + 1] } else { tails };
        b.add_transition(c, next, q);
    }
    b.add_transition(heads, heads, DyadicProb::ONE);
    b.add_transition(tails, tails, DyadicProb::ONE);
    Ok(b.build().expect("gadget is stochastic by construction"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov;
    use crate::walker::Walker;
    use ants_rng::{derive_rng, Rng64};

    #[test]
    fn compiled_machine_shape() {
        // D = 2^12, ell = 1: k = 12, 72 states, b = 7 = log log D + ~3.4.
        let pfa = non_uniform_search(12, 1).unwrap();
        assert_eq!(pfa.num_states(), 72);
        assert_eq!(pfa.memory_bits(), 7);
        assert!(pfa.ell() <= 2, "machine resolution {} exceeds ell + 1", pfa.ell());
        // chi = b + log ell <= log log D + O(1).
        let loglog = 12f64.log2();
        assert!(pfa.chi() <= loglog + 5.0);
    }

    #[test]
    fn compiled_machine_is_irreducible() {
        let pfa = non_uniform_search(4, 2).unwrap();
        let a = markov::analyze(&pfa);
        assert!(a.transient.is_empty(), "every state recurs in the iteration loop");
        assert_eq!(a.recurrent_classes.len(), 1);
        assert!(a.recurrent_classes[0].has_origin);
        // Zero drift by symmetry.
        let (dx, dy) = a.recurrent_classes[0].drift;
        assert!(dx.abs() < 1e-9 && dy.abs() < 1e-9, "drift ({dx}, {dy})");
    }

    #[test]
    fn compiled_walk_lengths_are_geometric_with_p_one_over_d() {
        // Mean sojourn in the `up` role should be ~D = 2^{k ell}.
        let (d_exp, ell) = (4u32, 1u32); // D = 16
        let pfa = non_uniform_search(d_exp, ell).unwrap();
        let mut rng = derive_rng(11, 0);
        let mut w = Walker::new(&pfa);
        let k = d_exp.div_ceil(ell) as usize;
        // Layout: ret, vpend (k-1), up (k), down (k), hwait (k), l, r.
        let up_start = k; // 1 + (k - 1)
        let is_up = |s: StateId| (up_start..up_start + k).contains(&s.0);
        let mut runs = Vec::new();
        let mut current = 0u64;
        for _ in 0..400_000 {
            let out = w.step(&mut rng);
            if is_up(out.state) {
                if out.action.is_move() {
                    current += 1;
                }
            } else if current > 0 {
                runs.push(current);
                current = 0;
            }
        }
        let mean = runs.iter().sum::<u64>() as f64 / runs.len() as f64;
        // Moves per vertical walk, conditioned on >= 1 move: 1 + Geom
        // with composite-tails probability 1/16 -> mean 16.
        assert!((mean - 16.0).abs() < 1.0, "mean vertical run {mean}");
    }

    #[test]
    fn gadget_outcome_probability_is_exact() {
        // Absorption probability in `tails` = 1/2^{k ell}.
        let (k, ell) = (3u32, 2u32);
        let pfa = composite_coin_gadget(k, ell).unwrap();
        let tails_state = StateId(pfa.num_states() - 1);
        let mut absorbed = 0u64;
        let trials = 1_000_000u64;
        let mut rng = derive_rng(12, 0);
        for _ in 0..trials {
            let mut s = pfa.start();
            // Walk until absorbed (at most k + 2 steps).
            for _ in 0..(k + 3) {
                s = pfa.step(s, &mut rng);
            }
            if s == tails_state {
                absorbed += 1;
            }
        }
        let f = absorbed as f64 / trials as f64;
        let expect = 1.0 / 64.0;
        assert!((f - expect).abs() < 0.002, "absorption {f} vs {expect}");
    }

    #[test]
    fn gadget_memory_matches_lemma_3_6() {
        // k + 3 states total: counter of ceil(log k) bits plus O(1).
        for k in [1u32, 2, 4, 8, 16] {
            let pfa = composite_coin_gadget(k, 1).unwrap();
            assert_eq!(pfa.num_states() as u32, k + 3);
        }
    }

    #[test]
    fn chi_matches_procedural_strategy() {
        // The compiled machine's measured chi is within O(1) of the
        // procedural CoinNonUniformSearch's declared chi (cross-crate
        // check lives in tests/integration.rs; here: internal consistency
        // as d grows).
        let chi_at = |d_exp: u32| non_uniform_search(d_exp, 1).unwrap().chi();
        let gaps: Vec<f64> =
            [8u32, 16, 32].iter().map(|&e| chi_at(e) - (e as f64).log2()).collect();
        let spread = gaps.iter().cloned().fold(f64::MIN, f64::max)
            - gaps.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread <= 1.5, "chi - log log D drifts: {gaps:?}");
    }

    #[test]
    fn compiled_machine_covers_plane_quadrants() {
        let pfa = non_uniform_search(4, 2).unwrap();
        let mut quadrants = std::collections::HashSet::new();
        for seed in 0..40 {
            let mut rng = derive_rng(100 + seed, 0);
            let mut w = Walker::new(&pfa);
            for _ in 0..2000 {
                let out = w.step(&mut rng);
                let p = out.position;
                if p.x != 0 && p.y != 0 {
                    quadrants.insert((p.x > 0, p.y > 0));
                }
            }
        }
        assert_eq!(quadrants.len(), 4, "machine must reach all quadrants");
    }

    #[test]
    fn mean_iteration_length_bounded_by_2d() {
        // Lemma 3.1 for the compiled machine: E[moves per iteration] <= 2D.
        let (d_exp, ell) = (4u32, 1u32);
        let d = 1u64 << d_exp;
        let pfa = non_uniform_search(d_exp, ell).unwrap();
        let mut rng = derive_rng(13, 0);
        let mut w = Walker::new(&pfa);
        let mut iters = 0u64;
        while iters < 20_000 {
            let out = w.step(&mut rng);
            if out.action == GridAction::Origin {
                iters += 1;
            }
        }
        let mean = w.moves() as f64 / iters as f64;
        assert!(mean <= 2.0 * d as f64 * 1.05, "iteration mean {mean}");
    }

    #[test]
    fn rng_smoke_for_unused_import() {
        let mut rng = derive_rng(1, 1);
        let _ = rng.next_u64();
    }
}
