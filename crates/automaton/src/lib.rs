//! # ants-automaton — probabilistic finite automata on the grid
//!
//! Section 2 of the paper models every agent as a probabilistic finite
//! state automaton `(S, s₀, δ)` together with a labelling function
//! `M : S → {up, down, right, left, origin, none}` mapping states to grid
//! actions, and analyses executions through the induced Markov chain. This
//! crate implements that model *literally*:
//!
//! * [`GridAction`] — the labelling function's range;
//! * [`Pfa`] / [`PfaBuilder`] — automata with **exact dyadic** transition
//!   probabilities, validated to be row-stochastic, exposing the paper's
//!   selection-complexity ingredients `b = ⌈log₂|S|⌉`, `ℓ` (resolution of
//!   the smallest transition probability) and `χ = b + log ℓ`;
//! * [`markov`] — the Section 4 machinery: transient/recurrent class
//!   decomposition, class periodicity (Feller's theorem A.1), stationary
//!   distributions, total-variation mixing, Rosenthal's bound (Lemma A.2),
//!   and per-class drift vectors (Corollary 4.10);
//! * [`Walker`] — executes a PFA on the grid, producing the paper's
//!   step/move sequences;
//! * [`compile`] — compiles Algorithms 1+2 into their explicit
//!   state-machine representation, so Theorem 3.7's memory accounting can
//!   be *measured* from a concrete machine;
//! * [`library`] — canonical automata: the paper's five-state Algorithm 1
//!   machine, uniform/lazy/biased random walks, and a seeded generator of
//!   arbitrary small PFAs for the lower-bound experiments.
//!
//! ## Example
//!
//! ```
//! use ants_automaton::{library, markov};
//! let pfa = library::random_walk();
//! assert_eq!(pfa.memory_bits(), 3); // 5 states: origin + 4 moves
//! let analysis = markov::analyze(&pfa);
//! assert_eq!(analysis.recurrent_classes.len(), 1);
//! let drift = analysis.recurrent_classes[0].drift;
//! assert!(drift.0.abs() < 1e-12 && drift.1.abs() < 1e-12); // unbiased
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
pub mod compile;
pub mod library;
pub mod markov;
mod matrix;
mod pfa;
mod walker;

pub use action::GridAction;
pub use pfa::{Pfa, PfaBuilder, PfaError, StateId};
pub use walker::{StepOutcome, Walker};
