//! Small dense-matrix utilities for Markov-chain analysis.
//!
//! Automata in this workspace have at most a few hundred states, so plain
//! `Vec<Vec<f64>>` with `O(n³)` Gaussian elimination is simpler and faster
//! than pulling in a linear-algebra dependency.

/// Multiply two square matrices.
pub(crate) fn mat_mul(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    debug_assert!(a.iter().all(|r| r.len() == n) && b.len() == n);
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i][k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i][j] += aik * b[k][j];
            }
        }
    }
    out
}

/// Matrix power by repeated squaring.
pub(crate) fn mat_pow(m: &[Vec<f64>], mut e: u64) -> Vec<Vec<f64>> {
    let n = m.len();
    let mut result: Vec<Vec<f64>> =
        (0..n).map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.0 }).collect()).collect();
    let mut base = m.to_vec();
    while e > 0 {
        if e & 1 == 1 {
            result = mat_mul(&result, &base);
        }
        base = mat_mul(&base, &base);
        e >>= 1;
    }
    result
}

/// Row vector times matrix.
pub(crate) fn vec_mat(v: &[f64], m: &[Vec<f64>]) -> Vec<f64> {
    let n = v.len();
    let mut out = vec![0.0; n];
    for (i, &vi) in v.iter().enumerate() {
        if vi == 0.0 {
            continue;
        }
        for j in 0..n {
            out[j] += vi * m[i][j];
        }
    }
    out
}

/// Solve the stationary equations `π P = π`, `Σ π = 1` for an irreducible
/// row-stochastic matrix `P`, by Gaussian elimination with partial
/// pivoting on the transposed system `(Pᵀ − I) πᵀ = 0` with the last
/// equation replaced by the normalisation constraint.
///
/// Works for periodic chains too (power iteration would not converge).
pub(crate) fn stationary_distribution(p: &[Vec<f64>]) -> Vec<f64> {
    let n = p.len();
    if n == 1 {
        return vec![1.0];
    }
    // Build A x = b with A = (P^T - I), last row replaced by ones.
    let mut a = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            a[i][j] = p[j][i] - if i == j { 1.0 } else { 0.0 };
        }
    }
    for cell in a[n - 1].iter_mut() {
        *cell = 1.0;
    }
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;
    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        assert!(diag.abs() > 1e-12, "singular stationary system: matrix is not irreducible");
        for row in (col + 1)..n {
            let factor = a[row][col] / diag;
            if factor == 0.0 {
                continue;
            }
            let pivot_vals: Vec<f64> = a[col][col..n].to_vec();
            for (k, pv) in (col..n).zip(pivot_vals) {
                a[row][k] -= factor * pv;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for col in (row + 1)..n {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc / a[row][row];
    }
    // Clean up tiny negative noise and renormalise.
    let mut total = 0.0;
    for v in &mut x {
        if *v < 0.0 && *v > -1e-9 {
            *v = 0.0;
        }
        total += *v;
    }
    for v in &mut x {
        *v /= total;
    }
    x
}

/// Total-variation distance between two distributions (∞-norm in the
/// paper's notation `‖π₁ − π₂‖`; we expose both).
pub(crate) fn linf_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// Total variation distance `½ Σ |aᵢ − bᵢ|`.
pub(crate) fn tv_distance(a: &[f64], b: &[f64]) -> f64 {
    0.5 * a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mat_mul_identity() {
        let m = vec![vec![0.25, 0.75], vec![0.5, 0.5]];
        let id = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert_eq!(mat_mul(&m, &id), m);
        assert_eq!(mat_mul(&id, &m), m);
    }

    #[test]
    fn mat_pow_squares() {
        let m = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let m2 = mat_pow(&m, 2);
        assert_eq!(m2, vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        let m3 = mat_pow(&m, 3);
        assert_eq!(m3, m);
        let m0 = mat_pow(&m, 0);
        assert_eq!(m0, vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
    }

    #[test]
    fn vec_mat_multiplies() {
        let m = vec![vec![0.5, 0.5], vec![0.25, 0.75]];
        let v = vec![1.0, 0.0];
        assert_eq!(vec_mat(&v, &m), vec![0.5, 0.5]);
    }

    #[test]
    fn stationary_of_two_state_chain() {
        // P = [[1-a, a], [b, 1-b]] has stationary (b, a)/(a+b).
        let (a, b) = (0.3, 0.1);
        let p = vec![vec![1.0 - a, a], vec![b, 1.0 - b]];
        let pi = stationary_distribution(&p);
        assert!((pi[0] - b / (a + b)).abs() < 1e-10);
        assert!((pi[1] - a / (a + b)).abs() < 1e-10);
    }

    #[test]
    fn stationary_of_periodic_chain() {
        // Two-cycle: period 2, stationary (1/2, 1/2).
        let p = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let pi = stationary_distribution(&p);
        assert!((pi[0] - 0.5).abs() < 1e-10);
        assert!((pi[1] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn stationary_of_three_cycle() {
        let p = vec![vec![0.0, 1.0, 0.0], vec![0.0, 0.0, 1.0], vec![1.0, 0.0, 0.0]];
        let pi = stationary_distribution(&p);
        for v in pi {
            assert!((v - 1.0 / 3.0).abs() < 1e-10);
        }
    }

    #[test]
    fn stationary_is_fixed_point() {
        let p = vec![vec![0.1, 0.6, 0.3], vec![0.4, 0.2, 0.4], vec![0.25, 0.25, 0.5]];
        let pi = stationary_distribution(&p);
        let pi2 = vec_mat(&pi, &p);
        assert!(linf_distance(&pi, &pi2) < 1e-10);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn distances() {
        let a = vec![0.5, 0.5];
        let b = vec![0.9, 0.1];
        assert!((linf_distance(&a, &b) - 0.4).abs() < 1e-12);
        assert!((tv_distance(&a, &b) - 0.4).abs() < 1e-12);
        assert_eq!(linf_distance(&a, &a), 0.0);
    }
}
