//! Probabilistic finite automata with exact dyadic transitions.

use crate::action::GridAction;
use ants_rng::{DyadicProb, Rng64};
use std::fmt;

/// Index of a state in a [`Pfa`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub usize);

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Errors produced while building or validating a [`Pfa`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PfaError {
    /// A transition references a state that does not exist.
    UnknownState(StateId),
    /// The probabilities leaving a state do not sum to exactly one.
    NotStochastic {
        /// The offending state.
        state: StateId,
        /// The row sum that was found, as a debug string (exact dyadic).
        sum: String,
    },
    /// The automaton has no states.
    Empty,
    /// The start state is not labelled `origin`, violating the paper's
    /// convention `M(s₀) = origin`.
    StartNotOrigin,
    /// Duplicate transition between the same pair of states.
    DuplicateTransition(StateId, StateId),
}

impl fmt::Display for PfaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PfaError::UnknownState(s) => write!(f, "transition references unknown state {s}"),
            PfaError::NotStochastic { state, sum } => {
                write!(f, "outgoing probabilities of {state} sum to {sum}, not 1")
            }
            PfaError::Empty => write!(f, "automaton has no states"),
            PfaError::StartNotOrigin => {
                write!(f, "start state must be labelled origin (paper, Section 2)")
            }
            PfaError::DuplicateTransition(a, b) => {
                write!(f, "duplicate transition {a} -> {b}")
            }
        }
    }
}

impl std::error::Error for PfaError {}

/// One state: its grid-action label, outgoing transitions, and the
/// precomputed sampling table.
#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    label: GridAction,
    /// Outgoing transitions `(target, probability)`; probabilities are
    /// non-zero and sum to exactly one.
    transitions: Vec<(StateId, DyadicProb)>,
    /// Precomputed inverse-CDF table: cumulative interval upper bounds
    /// (in units of `2^-64`) for all transitions but the last, whose
    /// bound is `2^64` and implicit. Built once at validation time so
    /// [`Pfa::step`] compares a raw draw against ready `u64` thresholds
    /// instead of re-deriving dyadic interval widths in `u128` on every
    /// transition. Empty for single-transition rows (taken without
    /// consuming randomness).
    thresholds: Vec<u64>,
}

/// A probabilistic finite automaton with grid-action labels — the paper's
/// agent model `(S, s₀, δ)` plus labelling `M`.
///
/// Construct via [`PfaBuilder`]. Every instance is validated: transitions
/// are exactly row-stochastic in dyadic arithmetic, and the start state is
/// labelled `origin`.
///
/// ```
/// use ants_automaton::library;
/// let pfa = library::random_walk();
/// assert_eq!(pfa.num_states(), 5); // origin + four move states
/// assert_eq!(pfa.ell(), 2); // transitions of probability 1/4
/// assert_eq!(pfa.chi(), 4.0); // b = 3 bits, log2(ell) = 1
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pfa {
    states: Vec<State>,
    start: StateId,
}

impl Pfa {
    /// The number of states `|S|`.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The start state `s₀`.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The label `M(s)`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn label(&self, s: StateId) -> GridAction {
        self.states[s.0].label
    }

    /// Outgoing transitions of `s` as `(target, probability)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn transitions(&self, s: StateId) -> &[(StateId, DyadicProb)] {
        &self.states[s.0].transitions
    }

    /// The exact transition probability `P[s → t]` (zero if absent).
    pub fn probability(&self, s: StateId, t: StateId) -> DyadicProb {
        self.states[s.0]
            .transitions
            .iter()
            .find(|(u, _)| *u == t)
            .map(|(_, p)| *p)
            .unwrap_or(DyadicProb::ZERO)
    }

    /// Memory bits `b = ⌈log₂ |S|⌉` (paper, Section 2).
    pub fn memory_bits(&self) -> u32 {
        let n = self.states.len() as u64;
        if n <= 1 {
            0
        } else {
            64 - (n - 1).leading_zeros()
        }
    }

    /// The resolution `ℓ`: smallest value such that every non-zero
    /// transition probability is at least `1/2^ℓ`.
    ///
    /// Deterministic automata (all probabilities 1) report `ℓ = 0`.
    pub fn ell(&self) -> u32 {
        self.states
            .iter()
            .flat_map(|s| s.transitions.iter())
            .map(|(_, p)| p.ell())
            .max()
            .unwrap_or(0)
    }

    /// The smallest non-zero transition probability.
    pub fn min_probability(&self) -> DyadicProb {
        self.states
            .iter()
            .flat_map(|s| s.transitions.iter())
            .map(|(_, p)| *p)
            .min()
            .unwrap_or(DyadicProb::ONE)
    }

    /// The selection complexity `χ(A) = b + log₂ ℓ`.
    ///
    /// For `ℓ = 0` (deterministic) and `ℓ = 1` the probability term
    /// contributes zero, matching the paper's convention that constant
    /// probabilities are free.
    pub fn chi(&self) -> f64 {
        let ell = self.ell();
        let log_ell = if ell <= 1 { 0.0 } else { (ell as f64).log2() };
        self.memory_bits() as f64 + log_ell
    }

    /// Sample the successor of `s`.
    ///
    /// Consumes one uniform `u64` and selects the transition whose dyadic
    /// probability interval contains it — exact inverse-CDF sampling with
    /// no floating-point rounding, against the per-state threshold table
    /// precomputed at build time. Single-transition rows are taken
    /// without consuming randomness.
    pub fn step<R: Rng64 + ?Sized>(&self, s: StateId, rng: &mut R) -> StateId {
        let row = &self.states[s.0];
        if row.transitions.len() == 1 {
            return row.transitions[0].0;
        }
        let u = rng.next_u64();
        for (i, &bound) in row.thresholds.iter().enumerate() {
            if u < bound {
                return row.transitions[i].0;
            }
        }
        // The last transition's upper bound is 2^64 (the row is exactly
        // stochastic), so any draw past every table entry selects it.
        row.transitions.last().expect("validated non-empty row").0
    }

    /// The dense `f64` transition matrix (row-major), for analysis.
    pub fn transition_matrix(&self) -> Vec<Vec<f64>> {
        let n = self.states.len();
        let mut m = vec![vec![0.0; n]; n];
        for (i, st) in self.states.iter().enumerate() {
            for (t, p) in &st.transitions {
                m[i][t.0] += p.to_f64();
            }
        }
        m
    }

    /// Iterate over all states.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len()).map(StateId)
    }

    /// States carrying a given label.
    pub fn states_with_label(&self, label: GridAction) -> Vec<StateId> {
        self.state_ids().filter(|&s| self.label(s) == label).collect()
    }
}

/// Builder for [`Pfa`] values.
///
/// ```
/// use ants_automaton::{GridAction, PfaBuilder};
/// use ants_grid::Direction;
/// use ants_rng::DyadicProb;
///
/// let mut b = PfaBuilder::new();
/// let s0 = b.add_state(GridAction::Origin);
/// let up = b.add_state(Direction::Up.into());
/// b.add_transition(s0, up, DyadicProb::ONE);
/// b.add_transition(up, s0, DyadicProb::half());
/// b.add_transition(up, up, DyadicProb::half());
/// let pfa = b.build().unwrap();
/// assert_eq!(pfa.num_states(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PfaBuilder {
    labels: Vec<GridAction>,
    edges: Vec<(StateId, StateId, DyadicProb)>,
    start: Option<StateId>,
}

impl PfaBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a state with the given label; returns its id.
    ///
    /// The first state added becomes the start state unless
    /// [`set_start`](Self::set_start) overrides it.
    pub fn add_state(&mut self, label: GridAction) -> StateId {
        let id = StateId(self.labels.len());
        self.labels.push(label);
        id
    }

    /// Choose the start state (defaults to the first state added).
    pub fn set_start(&mut self, s: StateId) -> &mut Self {
        self.start = Some(s);
        self
    }

    /// Add a transition; zero-probability transitions are dropped.
    pub fn add_transition(&mut self, from: StateId, to: StateId, p: DyadicProb) -> &mut Self {
        if !p.is_zero() {
            self.edges.push((from, to, p));
        }
        self
    }

    /// Validate and build the automaton.
    ///
    /// # Errors
    ///
    /// * [`PfaError::Empty`] for a builder with no states;
    /// * [`PfaError::UnknownState`] if a transition references a missing
    ///   state (as source or target);
    /// * [`PfaError::DuplicateTransition`] for repeated `(from, to)` pairs;
    /// * [`PfaError::NotStochastic`] if a row does not sum to exactly one;
    /// * [`PfaError::StartNotOrigin`] if `M(s₀) ≠ origin`.
    pub fn build(self) -> Result<Pfa, PfaError> {
        if self.labels.is_empty() {
            return Err(PfaError::Empty);
        }
        let n = self.labels.len();
        let start = self.start.unwrap_or(StateId(0));
        if start.0 >= n {
            return Err(PfaError::UnknownState(start));
        }
        let mut states: Vec<State> = self
            .labels
            .into_iter()
            .map(|label| State { label, transitions: Vec::new(), thresholds: Vec::new() })
            .collect();
        for (from, to, p) in self.edges {
            if from.0 >= n {
                return Err(PfaError::UnknownState(from));
            }
            if to.0 >= n {
                return Err(PfaError::UnknownState(to));
            }
            if states[from.0].transitions.iter().any(|(t, _)| *t == to) {
                return Err(PfaError::DuplicateTransition(from, to));
            }
            states[from.0].transitions.push((to, p));
        }
        for (i, st) in states.iter_mut().enumerate() {
            // Exact dyadic row sum in units of 2^-64 (fits u128). The
            // partial sums short of the full row are the sampling
            // thresholds [`Pfa::step`] compares draws against; each is
            // strictly below 2^64 once the row validates, so they store
            // exactly in u64.
            let mut sum: u128 = 0;
            for (_, p) in &st.transitions {
                sum += match p.exponent() {
                    64 => p.numerator() as u128,
                    e => (p.numerator() as u128) << (64 - e),
                };
                st.thresholds.push(sum as u64);
            }
            if sum != 1u128 << 64 {
                return Err(PfaError::NotStochastic {
                    state: StateId(i),
                    sum: format!("{sum}/2^64"),
                });
            }
            // Drop the last bound (always 2^64, implicit) — and the whole
            // table for single-transition rows, which never draw.
            st.thresholds.pop();
            if st.transitions.len() == 1 {
                st.thresholds.clear();
            }
        }
        if states[start.0].label != GridAction::Origin {
            return Err(PfaError::StartNotOrigin);
        }
        Ok(Pfa { states, start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ants_grid::Direction;
    use ants_rng::{SeedableRng64, Xoshiro256PlusPlus};

    fn two_state() -> Pfa {
        let mut b = PfaBuilder::new();
        let s0 = b.add_state(GridAction::Origin);
        let s1 = b.add_state(Direction::Up.into());
        b.add_transition(s0, s1, DyadicProb::ONE);
        b.add_transition(s1, s0, DyadicProb::half());
        b.add_transition(s1, s1, DyadicProb::half());
        b.build().unwrap()
    }

    #[test]
    fn builder_roundtrip() {
        let pfa = two_state();
        assert_eq!(pfa.num_states(), 2);
        assert_eq!(pfa.start(), StateId(0));
        assert_eq!(pfa.label(StateId(1)), GridAction::Move(Direction::Up));
        assert_eq!(pfa.probability(StateId(0), StateId(1)), DyadicProb::ONE);
        assert_eq!(pfa.probability(StateId(1), StateId(1)), DyadicProb::half());
        assert_eq!(pfa.probability(StateId(0), StateId(0)), DyadicProb::ZERO);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(PfaBuilder::new().build().unwrap_err(), PfaError::Empty);
    }

    #[test]
    fn non_stochastic_rejected() {
        let mut b = PfaBuilder::new();
        let s0 = b.add_state(GridAction::Origin);
        b.add_transition(s0, s0, DyadicProb::half());
        match b.build().unwrap_err() {
            PfaError::NotStochastic { state, .. } => assert_eq!(state, StateId(0)),
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn duplicate_transition_rejected() {
        let mut b = PfaBuilder::new();
        let s0 = b.add_state(GridAction::Origin);
        b.add_transition(s0, s0, DyadicProb::half());
        b.add_transition(s0, s0, DyadicProb::half());
        assert_eq!(b.build().unwrap_err(), PfaError::DuplicateTransition(StateId(0), StateId(0)));
    }

    #[test]
    fn start_must_be_origin() {
        let mut b = PfaBuilder::new();
        let s0 = b.add_state(GridAction::None);
        b.add_transition(s0, s0, DyadicProb::ONE);
        assert_eq!(b.build().unwrap_err(), PfaError::StartNotOrigin);
    }

    #[test]
    fn unknown_target_rejected() {
        let mut b = PfaBuilder::new();
        let s0 = b.add_state(GridAction::Origin);
        b.add_transition(s0, StateId(7), DyadicProb::ONE);
        assert_eq!(b.build().unwrap_err(), PfaError::UnknownState(StateId(7)));
    }

    #[test]
    fn memory_bits_formula() {
        // 1 state -> 0 bits; 2 -> 1; 3..4 -> 2; 5..8 -> 3.
        let sizes_bits = [(1usize, 0u32), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4)];
        for (n, bits) in sizes_bits {
            let mut b = PfaBuilder::new();
            let ids: Vec<StateId> = (0..n)
                .map(|i| b.add_state(if i == 0 { GridAction::Origin } else { GridAction::None }))
                .collect();
            for (i, &s) in ids.iter().enumerate() {
                b.add_transition(s, ids[(i + 1) % n], DyadicProb::ONE);
            }
            let pfa = b.build().unwrap();
            assert_eq!(pfa.memory_bits(), bits, "{n} states");
        }
    }

    #[test]
    fn ell_and_chi() {
        let pfa = two_state();
        assert_eq!(pfa.ell(), 1);
        assert_eq!(pfa.chi(), 1.0); // b = 1, log2(1) = 0

        // Deterministic cycle: ell = 0.
        let mut b = PfaBuilder::new();
        let s0 = b.add_state(GridAction::Origin);
        b.add_transition(s0, s0, DyadicProb::ONE);
        let det = b.build().unwrap();
        assert_eq!(det.ell(), 0);
        assert_eq!(det.chi(), 0.0);
    }

    #[test]
    fn chi_with_fine_probabilities() {
        let mut b = PfaBuilder::new();
        let s0 = b.add_state(GridAction::Origin);
        let s1 = b.add_state(GridAction::None);
        let p = DyadicProb::one_over_pow2(8).unwrap();
        b.add_transition(s0, s1, p);
        b.add_transition(s0, s0, p.complement());
        b.add_transition(s1, s1, DyadicProb::ONE);
        let pfa = b.build().unwrap();
        assert_eq!(pfa.ell(), 8);
        assert_eq!(pfa.chi(), 1.0 + 3.0); // b = 1, log2(8) = 3
        assert_eq!(pfa.min_probability(), p);
    }

    #[test]
    fn step_distribution_matches_probabilities() {
        let pfa = two_state();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let n = 100_000;
        let stays: u32 =
            (0..n).map(|_| u32::from(pfa.step(StateId(1), &mut rng) == StateId(1))).sum();
        let f = stays as f64 / n as f64;
        assert!((f - 0.5).abs() < 0.01, "self-loop frequency {f}");
    }

    #[test]
    fn step_exact_for_deterministic_rows() {
        let pfa = two_state();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(12);
        for _ in 0..100 {
            assert_eq!(pfa.step(StateId(0), &mut rng), StateId(1));
        }
    }

    #[test]
    fn step_with_three_way_split() {
        let mut b = PfaBuilder::new();
        let s0 = b.add_state(GridAction::Origin);
        let s1 = b.add_state(GridAction::None);
        let s2 = b.add_state(GridAction::None);
        let quarter = DyadicProb::one_over_pow2(2).unwrap();
        b.add_transition(s0, s0, DyadicProb::half());
        b.add_transition(s0, s1, quarter);
        b.add_transition(s0, s2, quarter);
        b.add_transition(s1, s1, DyadicProb::ONE);
        b.add_transition(s2, s2, DyadicProb::ONE);
        let pfa = b.build().unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(13);
        let mut counts = [0u32; 3];
        let n = 120_000;
        for _ in 0..n {
            counts[pfa.step(s0, &mut rng).0] += 1;
        }
        let f0 = counts[0] as f64 / n as f64;
        let f1 = counts[1] as f64 / n as f64;
        let f2 = counts[2] as f64 / n as f64;
        assert!((f0 - 0.5).abs() < 0.01, "{f0}");
        assert!((f1 - 0.25).abs() < 0.01, "{f1}");
        assert!((f2 - 0.25).abs() < 0.01, "{f2}");
    }

    #[test]
    fn transition_matrix_rows_sum_to_one() {
        let pfa = two_state();
        for row in pfa.transition_matrix() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn states_with_label_filters() {
        let pfa = two_state();
        assert_eq!(pfa.states_with_label(GridAction::Origin), vec![StateId(0)]);
        assert_eq!(pfa.states_with_label(GridAction::Move(Direction::Up)), vec![StateId(1)]);
        assert!(pfa.states_with_label(GridAction::None).is_empty());
    }

    #[test]
    fn error_display() {
        let e = PfaError::StartNotOrigin;
        assert!(e.to_string().contains("origin"));
        let e = PfaError::UnknownState(StateId(3));
        assert!(e.to_string().contains("s3"));
    }
}
