//! Property-based tests for the automaton substrate.

use ants_automaton::{library, markov, GridAction, Pfa, PfaBuilder, StateId, Walker};
use ants_grid::Direction;
use ants_rng::{DyadicProb, SeedableRng64, Xoshiro256PlusPlus};
use proptest::prelude::*;

/// Random valid PFA via the library generator.
fn arb_pfa() -> impl Strategy<Value = Pfa> {
    (1usize..=10, 1u32..=6, any::<u64>()).prop_map(|(n, ell, seed)| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        library::random_pfa(n, ell, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn analysis_partitions_states(pfa in arb_pfa()) {
        let a = markov::analyze(&pfa);
        let mut seen = vec![false; pfa.num_states()];
        for s in &a.transient {
            prop_assert!(!seen[s.0], "state in two classes");
            seen[s.0] = true;
        }
        for c in &a.recurrent_classes {
            for s in &c.states {
                prop_assert!(!seen[s.0], "state in two classes");
                seen[s.0] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b), "state not classified");
    }

    #[test]
    fn recurrent_classes_are_closed(pfa in arb_pfa()) {
        let a = markov::analyze(&pfa);
        for c in &a.recurrent_classes {
            for s in &c.states {
                for (t, _) in pfa.transitions(*s) {
                    prop_assert!(
                        c.states.contains(t),
                        "recurrent class leaks mass from {s} to {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn stationary_is_distribution_and_fixed_point(pfa in arb_pfa()) {
        let a = markov::analyze(&pfa);
        for c in &a.recurrent_classes {
            let sum: f64 = c.stationary.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-8, "stationary sums to {sum}");
            prop_assert!(c.stationary.iter().all(|&p| p >= -1e-12));
            // Fixed point of the restricted chain.
            let m = c.states.len();
            let mut after = vec![0.0; m];
            for (i, s) in c.states.iter().enumerate() {
                for (t, p) in pfa.transitions(*s) {
                    let j = c.states.iter().position(|u| u == t).unwrap();
                    after[j] += c.stationary[i] * p.to_f64();
                }
            }
            for (x, y) in after.iter().zip(c.stationary.iter()) {
                prop_assert!((x - y).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn cyclic_classes_partition_class(pfa in arb_pfa()) {
        let a = markov::analyze(&pfa);
        for c in &a.recurrent_classes {
            prop_assert_eq!(c.cyclic_classes.len(), c.period as usize);
            let total: usize = c.cyclic_classes.iter().map(Vec::len).sum();
            prop_assert_eq!(total, c.states.len());
            // One-step transitions go to the next cyclic class.
            if c.period > 1 {
                for (tau, class) in c.cyclic_classes.iter().enumerate() {
                    let next = &c.cyclic_classes[(tau + 1) % c.period as usize];
                    for s in class {
                        for (t, _) in pfa.transitions(*s) {
                            prop_assert!(
                                next.contains(t),
                                "period {}: edge {s}->{t} skips a cyclic class", c.period
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn drift_bounded_by_move_mass(pfa in arb_pfa()) {
        let a = markov::analyze(&pfa);
        for c in &a.recurrent_classes {
            let mass = markov::move_mass(&pfa, c);
            prop_assert!(c.drift.0.abs() <= mass + 1e-9);
            prop_assert!(c.drift.1.abs() <= mass + 1e-9);
            prop_assert!(mass <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn chi_components_consistent(pfa in arb_pfa()) {
        let b = pfa.memory_bits();
        prop_assert!(pfa.num_states() <= 1usize << b);
        if pfa.num_states() > 1 {
            prop_assert!(pfa.num_states() > 1usize << (b.saturating_sub(1)) >> 1);
        }
        let ell = pfa.ell();
        if !pfa.min_probability().is_one() {
            // Every probability is at least 1/2^ell …
            prop_assert!(pfa.min_probability() >= DyadicProb::one_over_pow2(ell).unwrap());
        }
    }

    #[test]
    fn walker_steps_count_and_moves_bound(pfa in arb_pfa(), seed in any::<u64>()) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut w = Walker::new(&pfa);
        for _ in 0..100 {
            w.step(&mut rng);
        }
        prop_assert_eq!(w.steps(), 100);
        prop_assert!(w.moves() <= 100);
        // Position is reachable within moves steps of the origin.
        prop_assert!(w.position().norm_l1() <= w.moves());
    }

    #[test]
    fn walker_deterministic(pfa in arb_pfa(), seed in any::<u64>()) {
        let run = |pfa: &Pfa| {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
            let mut w = Walker::new(pfa);
            for _ in 0..64 {
                w.step(&mut rng);
            }
            (w.position(), w.moves(), w.state())
        };
        prop_assert_eq!(run(&pfa), run(&pfa));
    }

    #[test]
    fn distribution_after_matches_empirical(seed in any::<u64>()) {
        // For the 2-cycle, the k-step distribution alternates exactly.
        let _ = seed;
        let mut b = PfaBuilder::new();
        let s0 = b.add_state(GridAction::Origin);
        let s1 = b.add_state(GridAction::Move(Direction::Right));
        b.add_transition(s0, s1, DyadicProb::ONE);
        b.add_transition(s1, s0, DyadicProb::ONE);
        let pfa = b.build().unwrap();
        let d3 = markov::distribution_after(&pfa, 3);
        prop_assert!((d3[1] - 1.0).abs() < 1e-12);
        let d4 = markov::distribution_after(&pfa, 4);
        prop_assert!((d4[0] - 1.0).abs() < 1e-12);
    }
}

/// The paper's Algorithm 1 machine agrees with its defining coin-flip
/// semantics: empirical iteration structure matches the geometric walks.
#[test]
fn algorithm1_vertical_run_length_is_geometric() {
    let j = 3; // D = 8
    let pfa = library::algorithm1(j).unwrap();
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(99);
    let mut w = Walker::new(&pfa);
    // Estimate the mean sojourn in the `up` state after entering it.
    let up = StateId(1);
    let mut runs = Vec::new();
    let mut current: Option<u64> = None;
    for _ in 0..200_000 {
        let out = w.step(&mut rng);
        if out.state == up {
            current = Some(current.map_or(1, |c| c + 1));
        } else if let Some(c) = current.take() {
            runs.push(c);
        }
    }
    let mean = runs.iter().sum::<u64>() as f64 / runs.len() as f64;
    // Geometric with continue-probability 1 - 1/8: mean sojourn 8.
    assert!((mean - 8.0).abs() < 0.5, "mean sojourn {mean}");
}
