//! The daemon: accept loop, request handlers, and the shared pool
//! discipline.
//!
//! * **Hits never touch the pool.** A cached entry is replayed straight
//!   off disk — no lock, no scheduling, zero sweep work (the probe-based
//!   counter in `stats` proves it).
//! * **Misses serialize on one pool mutex.** The sweep pool already
//!   fans a single workload across every core; running two workloads'
//!   pools concurrently would just fight over the same cores. Connection
//!   handling itself is thread-per-connection, so `stats`, hits, and
//!   `shutdown` stay responsive while a miss computes.
//! * **Errors are responses, not crashes.** A malformed request, a spec
//!   that fails to parse/expand/validate, or a DP-incapable cell forced
//!   onto the exact backend all come back as `error` events; the daemon
//!   keeps serving.

use crate::cache::{self, cache_key, Entry, ADDR_FILE};
use crate::protocol::{cell_event, error_event, status_event, Op, Request};
use ants_bench::{gate_report, RunConfig, WorkloadExperiment};
use ants_obs::{Counter, Gauge, LatencyKind, Telemetry};
use ants_sim::json::{escape, Json};
use ants_sim::{Granularity, Probe, SweepOptions};
use ants_workload::{WorkloadPlan, WorkloadSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Daemon configuration: where the cache lives and how misses schedule.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Cache root directory (created if absent).
    pub cache: PathBuf,
    /// Commit id baked into every cache key (`ANTS_COMMIT`-style; must
    /// be a safe directory-name component).
    pub commit: String,
    /// Thread policy for miss sweeps (`None` = all cores).
    pub threads: Option<usize>,
    /// Sweep unit-of-work policy for miss sweeps.
    pub granularity: Granularity,
    /// Agents per chunk for agent-level scheduling.
    pub chunk: Option<usize>,
}

impl ServeOptions {
    /// Options for a cache root, with default scheduling and the
    /// `"local"` commit id.
    pub fn new(cache: impl Into<PathBuf>) -> ServeOptions {
        ServeOptions {
            cache: cache.into(),
            commit: "local".to_string(),
            threads: None,
            granularity: Granularity::Auto,
            chunk: None,
        }
    }
}

/// A point-in-time counter snapshot (`stats` responses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Requests accepted (any op).
    pub requests: u64,
    /// Submissions served from cache.
    pub hits: u64,
    /// Submissions computed on the pool.
    pub misses: u64,
    /// Cumulative agent steps the sweep pool executed (probe-counted;
    /// stays 0 without the `parallel` feature, where the probe hooks
    /// compile out).
    pub pool_work: u64,
    /// Cache entries on disk.
    pub entries: u64,
}

struct State {
    opts: ServeOptions,
    addr: SocketAddr,
    /// One probe for the daemon's lifetime: `pool_work` is cumulative,
    /// so "a hit did zero pool work" is observable as an unchanged
    /// counter across the request.
    probe: Arc<Probe>,
    /// One telemetry handle for the daemon's lifetime: per-op request
    /// counters, hit/miss latency histograms, cache gauges, plus the
    /// pool/engine counters of every miss sweep (attached via
    /// [`SweepOptions::with_telemetry`]). Surfaced as the `telemetry`
    /// block of the `stats` event. Strictly observational: cache keys,
    /// report bytes, and the gate never read it.
    telemetry: Telemetry,
    /// One DP curve memo for the daemon's lifetime: exact-backend cells
    /// reuse solves *across* submissions (keyed by kernel fingerprint,
    /// target, clock, and mode). Memoized reports are byte-identical to
    /// fresh ones, so cached bodies never depend on request order.
    dp_memo: ants_workload::dp::DpMemo,
    /// Misses serialize here; hits never take it.
    pool: Mutex<()>,
    requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    shutdown: AtomicBool,
}

impl State {
    /// Re-measure the cache gauges: entry count and bytes on disk.
    /// Called where the cache can have changed (stats requests, after a
    /// miss persists) rather than on every request.
    fn refresh_cache_gauges(&self) {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        if let Ok(rd) = std::fs::read_dir(&self.opts.cache) {
            for e in rd.filter_map(Result::ok) {
                let path = e.path();
                if path.is_dir() {
                    entries += 1;
                    bytes = bytes.saturating_add(dir_bytes(&path));
                }
            }
        }
        self.telemetry.set_gauge(Gauge::CacheEntries, entries);
        self.telemetry.set_gauge(Gauge::CacheBytes, bytes);
    }

    fn stats(&self) -> Stats {
        let entries = std::fs::read_dir(&self.opts.cache)
            .map(|rd| rd.filter_map(Result::ok).filter(|e| e.path().is_dir()).count() as u64)
            .unwrap_or(0);
        Stats {
            requests: self.requests.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            pool_work: self.probe.work(),
            entries,
        }
    }
}

/// Total file bytes under `dir`, recursively.
fn dir_bytes(dir: &std::path::Path) -> u64 {
    let mut total = 0u64;
    if let Ok(rd) = std::fs::read_dir(dir) {
        for e in rd.filter_map(Result::ok) {
            let path = e.path();
            if path.is_dir() {
                total = total.saturating_add(dir_bytes(&path));
            } else if let Ok(md) = path.metadata() {
                total = total.saturating_add(md.len());
            }
        }
    }
    total
}

/// The serve daemon: bound socket plus shared state.
///
/// ```no_run
/// let server = ants_serve::Server::bind(
///     ants_serve::ServeOptions::new("target/serve-cache"),
///     "127.0.0.1:0",
/// ).unwrap();
/// println!("listening on {}", server.local_addr());
/// server.run().unwrap();
/// ```
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Bind `listen` (e.g. `"127.0.0.1:0"`), create the cache root, and
    /// write the `serve.addr` discovery file clients read via
    /// `--cache`.
    ///
    /// # Errors
    ///
    /// Unsafe commit ids, bind failures, and cache-root I/O failures.
    pub fn bind(opts: ServeOptions, listen: &str) -> Result<Server, String> {
        if !cache::safe_commit(&opts.commit) {
            return Err(format!(
                "commit id '{}' is not a safe directory name (use [A-Za-z0-9._-])",
                opts.commit
            ));
        }
        std::fs::create_dir_all(&opts.cache)
            .map_err(|e| format!("cannot create cache root {}: {e}", opts.cache.display()))?;
        let listener =
            TcpListener::bind(listen).map_err(|e| format!("cannot bind {listen}: {e}"))?;
        let addr = listener.local_addr().map_err(|e| format!("no local address: {e}"))?;
        let addr_file = opts.cache.join(ADDR_FILE);
        std::fs::write(&addr_file, format!("{addr}\n"))
            .map_err(|e| format!("cannot write {}: {e}", addr_file.display()))?;
        let state = Arc::new(State {
            opts,
            addr,
            probe: Probe::new(),
            telemetry: Telemetry::new(),
            dp_memo: ants_workload::dp::DpMemo::new(),
            pool: Mutex::new(()),
            requests: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        Ok(Server { listener, state })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serve until a `shutdown` request arrives. Consumes the server;
    /// the discovery file is removed on the way out.
    ///
    /// # Errors
    ///
    /// Accept-loop failures only; per-connection errors are answered on
    /// that connection and logged to stderr.
    pub fn run(self) -> Result<(), String> {
        let mut handlers = Vec::new();
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) => {
                    if self.state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    return Err(format!("accept failed: {e}"));
                }
            };
            if self.state.shutdown.load(Ordering::SeqCst) {
                // The wake-up connection a shutdown handler makes to
                // unblock this accept; nothing to serve.
                break;
            }
            let state = Arc::clone(&self.state);
            handlers.push(std::thread::spawn(move || handle(stream, &state)));
        }
        for h in handlers {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(self.state.opts.cache.join(ADDR_FILE));
        Ok(())
    }
}

/// Serve one connection: read the request line, dispatch, respond.
fn handle(stream: TcpStream, state: &State) {
    state.requests.fetch_add(1, Ordering::Relaxed);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut out = stream;
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return;
    }
    let req = match Request::parse(line.trim_end()) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(out, "{}", error_event(&e));
            return;
        }
    };
    match req.op {
        Op::Stats => {
            state.telemetry.incr(0, Counter::ServeStats);
            state.refresh_cache_gauges();
            let s = state.stats();
            // One line, existing fields first: CI's serve-smoke parses
            // `pool_work` off this line, and the `telemetry` block rides
            // behind it as a nested single-line object.
            let _ = writeln!(
                out,
                "{{\"event\":\"stats\",\"requests\":{},\"hits\":{},\"misses\":{},\
                 \"pool_work\":{},\"entries\":{},\"telemetry\":{}}}",
                s.requests,
                s.hits,
                s.misses,
                s.pool_work,
                s.entries,
                state.telemetry.snapshot().to_inline_json()
            );
        }
        Op::Shutdown => {
            state.telemetry.incr(0, Counter::ServeShutdown);
            let _ = writeln!(out, "{{\"event\":\"ok\",\"message\":\"shutting down\"}}");
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(state.addr);
        }
        Op::Submit => {
            state.telemetry.incr(0, Counter::ServeSubmit);
            if let Err(e) = submit(&mut out, state, &req) {
                let _ = writeln!(out, "{}", error_event(&e));
            }
        }
        Op::Gate => {
            state.telemetry.incr(0, Counter::ServeGate);
            match submit(&mut out, state, &req) {
                Ok(outcome) => gate(&mut out, state, &req, &outcome),
                Err(e) => {
                    let _ = writeln!(out, "{}", error_event(&e));
                }
            }
        }
    }
}

/// What a finished submission hands the gate: where the current report
/// lives and under which keys.
struct SubmitOutcome {
    /// Cache key of the current entry.
    key: String,
    /// Workload key (`<wkey>.json` is the report file name).
    wkey: String,
    /// The current report document text.
    report_json: String,
}

/// The `submit` flow: resolve the cache key, replay a hit or compute,
/// stream, and persist a miss.
fn submit(out: &mut TcpStream, state: &State, req: &Request) -> Result<SubmitOutcome, String> {
    let t0 = std::time::Instant::now();
    let spec = WorkloadSpec::parse(&req.spec).map_err(|e| e.to_string())?;
    let plan = WorkloadPlan::expand(&spec).map_err(|e| e.to_string())?;
    let cfg = RunConfig::new(req.effort)
        .with_seed(req.seed)
        .with_metrics(req.metrics)
        .with_backend(req.backend)
        .with_dp_mode(req.dp_mode)
        .with_threads(state.opts.threads)
        .with_granularity(state.opts.granularity)
        .with_chunk(state.opts.chunk)
        // Attaches the dp_solve span and memo counters to exact rows;
        // cache keys never read the telemetry field, so this cannot
        // fragment the cache.
        .with_telemetry(Some(state.telemetry));
    let key = cache_key(&plan, &cfg, &state.opts.commit);
    let wkey = plan.key.clone();
    let entry = Entry::at(&state.opts.cache, &key);
    if entry.is_hit() {
        let body = entry.response()?;
        let report_json = entry.report_text(&wkey)?;
        let _ = writeln!(out, "{}", status_event(&key, true));
        let _ = out.write_all(body.as_bytes());
        state.hits.fetch_add(1, Ordering::Relaxed);
        state.telemetry.incr(0, Counter::ServeHits);
        state.telemetry.record_latency(LatencyKind::Hit, t0.elapsed());
        return Ok(SubmitOutcome { key, wkey, report_json });
    }
    // Announce the miss before queueing for the pool, so the client
    // knows it is waiting on compute rather than a slow replay.
    let _ = writeln!(out, "{}", status_event(&key, false));
    let _ = out.flush();
    let _pool = state.pool.lock().map_err(|_| "pool mutex poisoned".to_string())?;
    if entry.is_hit() {
        // A concurrent miss for the same key finished while this one
        // queued: replay its (byte-identical) body instead of redoing
        // the work. The status line already said `cached:false`, which
        // is truthful about this request's wait, and the body bytes are
        // the contract.
        let body = entry.response()?;
        let report_json = entry.report_text(&wkey)?;
        let _ = out.write_all(body.as_bytes());
        state.hits.fetch_add(1, Ordering::Relaxed);
        state.telemetry.incr(0, Counter::ServeHits);
        state.telemetry.record_latency(LatencyKind::Hit, t0.elapsed());
        return Ok(SubmitOutcome { key, wkey, report_json });
    }
    let exp = WorkloadExperiment::new(plan);
    exp.validate_backends(&cfg).map_err(|e| e.to_string())?;
    let mut sweep = SweepOptions::with_threads(cfg.threads)
        .granularity(cfg.granularity)
        .with_probe(Arc::clone(&state.probe))
        .with_telemetry(state.telemetry);
    if let Some(chunk) = cfg.chunk {
        sweep = sweep.chunk(chunk);
    }
    let started = std::time::Instant::now();
    let mut body = String::new();
    let mut report = exp
        .try_run_streamed_with(&cfg, &sweep, &state.dp_memo, |i, cell, row| {
            let line = cell_event(i, &cell.label, row);
            // A client that hung up mid-stream must not abort the run:
            // the work is already scheduled and the entry is worth
            // caching either way.
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
            body.push_str(&line);
            body.push('\n');
        })
        .map_err(|e| e.to_string())?;
    report.set_wall_ms(started.elapsed().as_secs_f64() * 1e3);
    let report_json = report.to_json();
    let line = format!("{{\"event\":\"report\",\"report\":{report_json}}}");
    let _ = writeln!(out, "{line}");
    body.push_str(&line);
    body.push('\n');
    entry.store(&spec, exp.plan(), &report_json, &body)?;
    state.misses.fetch_add(1, Ordering::Relaxed);
    state.telemetry.incr(0, Counter::ServeMisses);
    state.telemetry.record_latency(LatencyKind::Miss, t0.elapsed());
    state.refresh_cache_gauges();
    // Drop the probe's per-unit event log so a long-lived daemon does
    // not accumulate it; the work counter is separate and survives.
    let _ = state.probe.take();
    Ok(SubmitOutcome { key, wkey, report_json })
}

/// The `gate` tail: compare the current report against the newest other
/// cache entry for the same workload and emit a `gate` event.
fn gate(out: &mut TcpStream, state: &State, req: &Request, outcome: &SubmitOutcome) {
    let thresholds = req.thresholds.unwrap_or_default();
    let Some(baseline) = cache::latest_baseline(&state.opts.cache, &outcome.wkey, &outcome.key)
    else {
        let _ = writeln!(
            out,
            "{{\"event\":\"gate\",\"baseline\":null,\"pass\":true,\"violations\":[],\
             \"note\":\"no baseline entry for this workload yet\"}}"
        );
        return;
    };
    let compared = baseline.report_text(&outcome.wkey).and_then(|base_text| {
        let base = Json::parse(&base_text).map_err(|e| format!("baseline unparsable: {e}"))?;
        let cur = Json::parse(&outcome.report_json)
            .map_err(|e| format!("current report unparsable: {e}"))?;
        gate_report(&base, &cur, &thresholds)
    });
    match compared {
        Ok(violations) => {
            let rendered: Vec<String> = violations
                .iter()
                .map(|v| {
                    format!(
                        "{{\"cell\":\"{}\",\"column\":\"{}\",\"baseline\":\"{}\",\
                         \"current\":\"{}\",\"detail\":\"{}\"}}",
                        escape(&v.cell),
                        escape(&v.column),
                        escape(&v.baseline),
                        escape(&v.current),
                        escape(&v.detail)
                    )
                })
                .collect();
            let _ = writeln!(
                out,
                "{{\"event\":\"gate\",\"baseline\":\"{}\",\"pass\":{},\"violations\":[{}]}}",
                escape(&baseline.key),
                violations.is_empty(),
                rendered.join(",")
            );
        }
        Err(e) => {
            // Apples-to-oranges comparisons fail the gate loudly rather
            // than passing vacuously.
            let _ = writeln!(
                out,
                "{{\"event\":\"gate\",\"baseline\":\"{}\",\"pass\":false,\"violations\":[],\
                 \"note\":\"{}\"}}",
                escape(&baseline.key),
                escape(&e)
            );
        }
    }
}
