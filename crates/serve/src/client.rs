//! A minimal client: connect, send one request line, stream the
//! response lines back. `ants query` and the in-process tests both ride
//! this.

use crate::cache::ADDR_FILE;
use crate::protocol::Request;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;

/// Send `req` to `addr` and hand each response line (without its
/// newline) to `on_line` as it arrives.
///
/// # Errors
///
/// Connection and read failures. Server-side failures arrive as `error`
/// event lines, not as `Err`.
pub fn request_streamed(
    addr: &str,
    req: &Request,
    mut on_line: impl FnMut(&str),
) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(req.to_json().as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        on_line(&line?);
    }
    Ok(())
}

/// Send `req` to `addr` and collect the whole response.
///
/// # Errors
///
/// As [`request_streamed`].
pub fn request_lines(addr: &str, req: &Request) -> std::io::Result<Vec<String>> {
    let mut lines = Vec::new();
    request_streamed(addr, req, |l| lines.push(l.to_string()))?;
    Ok(lines)
}

/// Resolve a daemon address from a cache root's `serve.addr` discovery
/// file.
///
/// # Errors
///
/// A missing or empty discovery file (no daemon is serving this cache).
pub fn discover_addr(cache: &Path) -> Result<String, String> {
    let path = cache.join(ADDR_FILE);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "no daemon serving {} ({}: {e}); start one with `ants serve --cache {}`",
            cache.display(),
            path.display(),
            cache.display()
        )
    })?;
    let addr = text.trim();
    if addr.is_empty() {
        return Err(format!("{} is empty", path.display()));
    }
    Ok(addr.to_string())
}
