//! The content-addressed result cache.
//!
//! Layout: one directory per entry under the cache root, named by the
//! cache key. Each entry is simultaneously a `trend --record` snapshot
//! directory — it holds the report as `<workload-key>.json` — so `ants
//! trend history <cache>` reads per-cell timelines straight off the
//! cache, no conversion step. Alongside the report:
//!
//! * `response.ndjson` — the body lines of the original miss response,
//!   replayed verbatim on every hit (byte-identity is the cache's
//!   correctness contract, backed by the engine's deterministic
//!   reports);
//! * `spec.toml` — the spec in [`WorkloadSpec::to_toml`] canonical form;
//! * `descriptor.txt` — the human-readable plan descriptor the key
//!   hashes, so a key can be audited by eye.
//!
//! The trend tooling filters on the `.json` extension, so the auxiliary
//! files are invisible to it.
//!
//! Keys compose the plan's 128-bit content hash with every run input
//! that changes report bytes: seed, effort, backend override, extra
//! metrics, and the commit id. Scheduling knobs (threads, granularity,
//! chunk) and the telemetry handle are deliberately excluded — the
//! determinism contract makes them output-invariant, and keying on them
//! would fragment the cache.

use ants_bench::RunConfig;
use ants_workload::{WorkloadPlan, WorkloadSpec};
use std::path::{Path, PathBuf};

/// The stored response body name inside an entry directory.
pub const RESPONSE_FILE: &str = "response.ndjson";
/// The canonical spec name inside an entry directory.
pub const SPEC_FILE: &str = "spec.toml";
/// The plan-descriptor name inside an entry directory.
pub const DESCRIPTOR_FILE: &str = "descriptor.txt";
/// The address-discovery file a running daemon writes at the cache root
/// (`ants query --cache <dir>` reads it instead of `--addr`).
pub const ADDR_FILE: &str = "serve.addr";

/// Is `commit` safe as a directory-name component? Same rule as the
/// trend snapshot ids: ASCII `[A-Za-z0-9._-]`, non-empty, not all dots.
pub fn safe_commit(commit: &str) -> bool {
    commit.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
        && !commit.is_empty()
        && !commit.chars().all(|c| c == '.')
}

/// Compose the cache key for running `plan` under `cfg` at `commit`.
///
/// `{plan-hash}-s{seed}-{effort}[-b{backend}][-d{dp_mode}][-m{metrics}]-{commit}`:
/// the hash covers everything the spec means (cells, populations,
/// seeds tags, metrics the spec declares); the suffix covers the run
/// inputs layered on top by the request and the daemon. The `dp_mode`
/// override is keyed even though sparse and dense agree to ≤ 1e-9:
/// the cache stores bytes, and the representations are not bit-equal
/// where folding applies.
pub fn cache_key(plan: &WorkloadPlan, cfg: &RunConfig, commit: &str) -> String {
    let mut key = format!("{}-s{}-{}", plan.content_hash(), cfg.base_seed, cfg.effort.as_str());
    if let Some(b) = cfg.backend {
        key.push_str("-b");
        key.push_str(b.as_str());
    }
    if let Some(m) = cfg.dp_mode {
        key.push_str("-d");
        key.push_str(m.as_str());
    }
    if !cfg.metrics.is_empty() {
        let names: Vec<&str> = cfg.metrics.iter().map(|m| m.as_str()).collect();
        key.push_str("-m");
        key.push_str(&names.join("+"));
    }
    key.push('-');
    key.push_str(commit);
    key
}

/// A cache entry: its key and directory.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The cache key (also the directory name).
    pub key: String,
    /// The entry directory under the cache root.
    pub dir: PathBuf,
}

impl Entry {
    /// The entry for `key` under `root` (existing or not).
    pub fn at(root: &Path, key: &str) -> Entry {
        Entry { key: key.to_string(), dir: root.join(key) }
    }

    /// Does this entry hold a complete stored response?
    pub fn is_hit(&self) -> bool {
        self.dir.join(RESPONSE_FILE).is_file()
    }

    /// The stored response body (the lines to replay verbatim).
    ///
    /// # Errors
    ///
    /// I/O failures reading the stored body.
    pub fn response(&self) -> Result<String, String> {
        std::fs::read_to_string(self.dir.join(RESPONSE_FILE))
            .map_err(|e| format!("cache entry {} unreadable: {e}", self.key))
    }

    /// The stored report document for workload key `wkey`.
    ///
    /// # Errors
    ///
    /// Missing/unreadable report file.
    pub fn report_text(&self, wkey: &str) -> Result<String, String> {
        let path = self.dir.join(format!("{wkey}.json"));
        std::fs::read_to_string(&path)
            .map_err(|e| format!("cached report {} unreadable: {e}", path.display()))
    }

    /// Persist a finished miss: report JSON, response body, canonical
    /// spec, and descriptor, written to a staging directory and renamed
    /// into place so concurrent readers never see a partial entry.
    ///
    /// # Errors
    ///
    /// I/O failures; the staging directory is cleaned up best-effort.
    pub fn store(
        &self,
        spec: &WorkloadSpec,
        plan: &WorkloadPlan,
        report_json: &str,
        body: &str,
    ) -> Result<(), String> {
        let staging = self.dir.with_extension("staging");
        let write = |name: &str, text: &str| -> Result<(), String> {
            let path = staging.join(name);
            std::fs::write(&path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
        };
        std::fs::create_dir_all(&staging)
            .map_err(|e| format!("cannot create {}: {e}", staging.display()))?;
        let stored = (|| {
            write(&format!("{}.json", plan.key), report_json)?;
            write(RESPONSE_FILE, body)?;
            write(SPEC_FILE, &spec.to_toml())?;
            write(DESCRIPTOR_FILE, &plan.cache_descriptor())?;
            // Idempotent re-store (a racing duplicate miss): the first
            // rename wins, later ones find the directory present and
            // discard their staging copy. Both bodies are byte-identical
            // by the determinism contract, so either is correct.
            if self.dir.exists() {
                return Ok(());
            }
            std::fs::rename(&staging, &self.dir)
                .map_err(|e| format!("cannot publish cache entry {}: {e}", self.key))
        })();
        if staging.exists() {
            let _ = std::fs::remove_dir_all(&staging);
        }
        stored
    }
}

/// The newest other entry (by directory mtime, key breaking ties) under
/// `root` that stores a report for workload key `wkey` — the gate's
/// baseline. `exclude` is the current request's key.
pub fn latest_baseline(root: &Path, wkey: &str, exclude: &str) -> Option<Entry> {
    let entries = std::fs::read_dir(root).ok()?;
    let mut candidates: Vec<(std::time::SystemTime, String, PathBuf)> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .filter_map(|p| {
            let key = p.file_name()?.to_str()?.to_string();
            if key == exclude || !p.join(format!("{wkey}.json")).is_file() {
                return None;
            }
            let mtime = std::fs::metadata(&p)
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            Some((mtime, key, p))
        })
        .collect();
    candidates.sort();
    candidates.pop().map(|(_, key, dir)| Entry { key, dir })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
name = \"cache unit\"
[defaults]
trials = 4
[[cells]]
name = \"c\"
agents = 2
target = { model = \"ball\", dist = 4 }
population = [ { strategy = \"randomwalk\" } ]
";

    fn plan() -> (WorkloadSpec, WorkloadPlan) {
        let spec = WorkloadSpec::parse(SPEC).unwrap();
        let plan = WorkloadPlan::expand(&spec).unwrap();
        (spec, plan)
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ants-serve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn keys_cover_run_inputs_but_not_scheduling() {
        let (_, plan) = plan();
        let base = cache_key(&plan, &RunConfig::standard(), "local");
        assert!(base.ends_with("-s0-standard-local"), "{base}");
        assert_ne!(base, cache_key(&plan, &RunConfig::smoke(), "local"));
        assert_ne!(base, cache_key(&plan, &RunConfig::standard().with_seed(1), "local"));
        assert_ne!(base, cache_key(&plan, &RunConfig::standard(), "other"));
        let dp = RunConfig::standard().with_backend(Some(ants_dp::Backend::Dp));
        assert_ne!(base, cache_key(&plan, &dp, "local"));
        let sparse = RunConfig::standard().with_dp_mode(Some(ants_dp::DpMode::Sparse));
        let sparse_key = cache_key(&plan, &sparse, "local");
        assert_ne!(base, sparse_key);
        assert!(sparse_key.contains("-dsparse"), "{sparse_key}");
        let metrics = RunConfig::standard()
            .with_metrics(ants_sim::MetricSet::parse_list("coverage").unwrap());
        assert_ne!(base, cache_key(&plan, &metrics, "local"));
        // Scheduling knobs never move the key.
        let scheduled = RunConfig::standard()
            .with_threads(Some(7))
            .with_granularity(ants_sim::Granularity::Agent)
            .with_chunk(Some(3));
        assert_eq!(base, cache_key(&plan, &scheduled, "local"));
        // Telemetry is strictly observational: attaching it never moves
        // a cache key (it would fragment the cache and flag fake drift).
        let observed = RunConfig::standard().with_telemetry(Some(ants_obs::Telemetry::new()));
        assert_eq!(base, cache_key(&plan, &observed, "local"));
        // Keys are safe directory names by construction.
        assert!(safe_commit(&base), "{base}");
    }

    #[test]
    fn commit_safety_matches_snapshot_rules() {
        for good in ["local", "abc123", "v1.2-rc_3", "HEAD"] {
            assert!(safe_commit(good), "{good}");
        }
        for bad in ["", ".", "..", "a/b", "a b", "héad"] {
            assert!(!safe_commit(bad), "{bad}");
        }
    }

    #[test]
    fn store_then_hit_round_trips_and_is_idempotent() {
        let root = temp_root("store");
        let (spec, plan) = plan();
        let key = cache_key(&plan, &RunConfig::smoke(), "local");
        let entry = Entry::at(&root, &key);
        assert!(!entry.is_hit());
        let body = "{\"event\":\"cell\"}\n{\"event\":\"report\"}\n";
        entry.store(&spec, &plan, "{\"schema\":\"ants-report/v1\"}", body).unwrap();
        assert!(entry.is_hit());
        assert_eq!(entry.response().unwrap(), body);
        assert_eq!(entry.report_text(&plan.key).unwrap(), "{\"schema\":\"ants-report/v1\"}");
        let canon = std::fs::read_to_string(entry.dir.join(SPEC_FILE)).unwrap();
        assert_eq!(WorkloadSpec::parse(&canon).unwrap(), spec, "stored spec is canonical");
        // Re-storing (racing duplicate miss) leaves the entry intact.
        entry.store(&spec, &plan, "{\"schema\":\"ants-report/v1\"}", body).unwrap();
        assert_eq!(entry.response().unwrap(), body);
        assert!(!entry.dir.with_extension("staging").exists(), "staging cleaned up");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn baseline_is_newest_other_entry_for_the_same_workload() {
        let root = temp_root("baseline");
        let (spec, plan) = plan();
        let keys: Vec<String> = [0u64, 1, 2]
            .iter()
            .map(|s| cache_key(&plan, &RunConfig::smoke().with_seed(*s), "local"))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            Entry::at(&root, key).store(&spec, &plan, "{}", "x\n").unwrap();
            // Distinct mtimes oldest-first (coarse filesystems).
            let t = filetime_set(&root.join(key), i as u64);
            assert!(t, "set mtime");
        }
        let base = latest_baseline(&root, &plan.key, &keys[2]).unwrap();
        assert_eq!(base.key, keys[1], "newest entry excluding the current one");
        assert!(latest_baseline(&root, "other-workload", &keys[2]).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Set a directory's mtime to `UNIX_EPOCH + secs` via the only
    /// std-stable lever (re-creating a file inside bumps mtime, which is
    /// the wrong direction) — fall back to ordering by writing in
    /// sequence with a sleep when the platform refuses.
    fn filetime_set(dir: &Path, secs: u64) -> bool {
        let dest = std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(secs);
        let f = match std::fs::File::open(dir) {
            Ok(f) => f,
            Err(_) => return false,
        };
        f.set_times(std::fs::FileTimes::new().set_modified(dest)).is_ok()
    }
}
