//! The wire format: NDJSON over a local TCP socket.
//!
//! One request per connection. The client sends a single JSON object on
//! one line; the server answers with a stream of single-line JSON
//! events and closes the connection. Events:
//!
//! * `status` — always first on `submit`/`gate`: the cache key and
//!   whether the entry was served from cache. Deliberately *not* part of
//!   the cached body, so a hit's body bytes equal the original miss's.
//! * `cell` — one per workload cell, in plan order, emitted the moment
//!   the row exists (misses stream incrementally; hits replay the stored
//!   lines verbatim).
//! * `report` — the full `ants-report/v1` document, last body line.
//! * `gate` — `gate` requests only, after the body: baseline key,
//!   violations, pass/fail.
//! * `stats` / `ok` / `error` — operational responses.
//!
//! All numbers ride [`ants_sim::json::number`], so NaN/±Inf survive the
//! wire losslessly via the string sentinels.

use ants_bench::{Effort, GateThresholds};
use ants_dp::{Backend, DpMode};
use ants_sim::json::{escape, number, Json};
use ants_sim::MetricSet;

/// What a request asks the daemon to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Run (or replay) a workload spec.
    Submit,
    /// Run (or replay) a spec, then compare it against the newest other
    /// cache entry for the same workload and report drift.
    Gate,
    /// Hit/miss/pool-work counters.
    Stats,
    /// Stop the daemon after this response.
    Shutdown,
}

impl Op {
    /// Stable lowercase name (the `op` field on the wire).
    pub fn as_str(self) -> &'static str {
        match self {
            Op::Submit => "submit",
            Op::Gate => "gate",
            Op::Stats => "stats",
            Op::Shutdown => "shutdown",
        }
    }

    /// Parse an `op` field.
    pub fn parse(s: &str) -> Option<Op> {
        match s {
            "submit" => Some(Op::Submit),
            "gate" => Some(Op::Gate),
            "stats" => Some(Op::Stats),
            "shutdown" => Some(Op::Shutdown),
            _ => None,
        }
    }
}

/// One request line.
///
/// `spec` is the workload TOML text (required for `submit`/`gate`,
/// ignored otherwise); the remaining fields mirror the CLI's shared
/// run-flag surface. Scheduling knobs (threads, granularity, chunk) are
/// daemon-side options, not request fields: the engine's determinism
/// contract makes them output-invariant, so they must not fragment the
/// cache.
#[derive(Debug, Clone)]
pub struct Request {
    /// What to do.
    pub op: Op,
    /// Workload spec text (TOML subset).
    pub spec: String,
    /// Smoke or standard effort.
    pub effort: Effort,
    /// Base seed, XOR-mixed into each cell's seed tag.
    pub seed: u64,
    /// Extra observation metrics beyond the spec's own.
    pub metrics: MetricSet,
    /// Backend override (`None` = respect per-cell spec keys).
    pub backend: Option<Backend>,
    /// DP representation override (`None` = respect per-cell spec keys).
    pub dp_mode: Option<DpMode>,
    /// Gate thresholds (`None` = [`GateThresholds::default`]).
    pub thresholds: Option<GateThresholds>,
}

impl Request {
    /// A `submit` request for `spec` at default effort/seed.
    pub fn submit(spec: &str) -> Request {
        Request {
            op: Op::Submit,
            spec: spec.to_string(),
            effort: Effort::Standard,
            seed: 0,
            metrics: MetricSet::empty(),
            backend: None,
            dp_mode: None,
            thresholds: None,
        }
    }

    /// A bare request with no spec (`stats`, `shutdown`).
    pub fn bare(op: Op) -> Request {
        Request { op, ..Request::submit("") }
    }

    /// Serialize as one wire line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"op\":\"{}\",\"spec\":\"{}\",\"effort\":\"{}\",\"seed\":{}",
            self.op.as_str(),
            escape(&self.spec),
            self.effort.as_str(),
            self.seed
        );
        if !self.metrics.is_empty() {
            let names: Vec<&str> = self.metrics.iter().map(|m| m.as_str()).collect();
            out.push_str(&format!(",\"metrics\":\"{}\"", names.join(",")));
        }
        if let Some(b) = self.backend {
            out.push_str(&format!(",\"backend\":\"{}\"", b.as_str()));
        }
        if let Some(m) = self.dp_mode {
            out.push_str(&format!(",\"dp_mode\":\"{}\"", m.as_str()));
        }
        if let Some(t) = self.thresholds {
            out.push_str(&format!(
                ",\"metric_rel_tol\":{},\"wall_factor\":{},\"wall_floor_ms\":{}",
                number(t.metric_rel_tol),
                number(t.wall_factor),
                number(t.wall_floor_ms)
            ));
        }
        out.push('}');
        out
    }

    /// Parse one wire line.
    ///
    /// # Errors
    ///
    /// Malformed JSON, an unknown `op`, unknown effort/backend/metric
    /// names, or a missing spec on an op that needs one — all as a
    /// message the server echoes back in an `error` event.
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
        let op_name = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "request has no \"op\" field".to_string())?;
        let op = Op::parse(op_name).ok_or_else(|| {
            format!("unknown op '{op_name}' (allowed: submit, gate, stats, shutdown)")
        })?;
        let spec = doc.get("spec").and_then(Json::as_str).unwrap_or("").to_string();
        if matches!(op, Op::Submit | Op::Gate) && spec.is_empty() {
            return Err(format!("op '{op_name}' needs a non-empty \"spec\" field"));
        }
        let effort = match doc.get("effort").and_then(Json::as_str) {
            Some(e) => Effort::parse(e).ok_or_else(|| format!("unknown effort '{e}'"))?,
            None => Effort::Standard,
        };
        let seed = match doc.get("seed") {
            Some(v) => {
                let x = v.as_number().ok_or_else(|| "\"seed\" must be a number".to_string())?;
                if x < 0.0 || x.fract() != 0.0 || x > u64::MAX as f64 {
                    return Err(format!("\"seed\" must be a non-negative integer, got {x}"));
                }
                x as u64
            }
            None => 0,
        };
        let metrics = match doc.get("metrics").and_then(Json::as_str) {
            Some(list) if !list.is_empty() => MetricSet::parse_list(list)?,
            _ => MetricSet::empty(),
        };
        let backend = match doc.get("backend").and_then(Json::as_str) {
            Some(b) => {
                Some(Backend::parse(b).ok_or_else(|| format!("unknown backend '{b}' (mc|dp)"))?)
            }
            None => None,
        };
        let dp_mode = match doc.get("dp_mode").and_then(Json::as_str) {
            Some(m) => Some(
                DpMode::parse(m)
                    .ok_or_else(|| format!("unknown dp_mode '{m}' (dense|sparse|auto)"))?,
            ),
            None => None,
        };
        let threshold = |key: &str| doc.get(key).and_then(|v| v.as_number());
        let thresholds = match (
            threshold("metric_rel_tol"),
            threshold("wall_factor"),
            threshold("wall_floor_ms"),
        ) {
            (None, None, None) => None,
            (tol, factor, floor) => {
                let d = GateThresholds::default();
                Some(GateThresholds {
                    metric_rel_tol: tol.unwrap_or(d.metric_rel_tol),
                    wall_factor: factor.unwrap_or(d.wall_factor),
                    wall_floor_ms: floor.unwrap_or(d.wall_floor_ms),
                })
            }
        };
        Ok(Request { op, spec, effort, seed, metrics, backend, dp_mode, thresholds })
    }
}

/// The `event` field of a response line (`None` if absent/malformed).
pub fn event_of(line: &str) -> Option<String> {
    Json::parse(line).ok()?.get("event")?.as_str().map(str::to_owned)
}

/// Build an `error` event line.
pub fn error_event(message: &str) -> String {
    format!("{{\"event\":\"error\",\"message\":\"{}\"}}", escape(message))
}

/// Build the `status` event line that precedes every `submit`/`gate`
/// body.
pub fn status_event(key: &str, cached: bool) -> String {
    format!("{{\"event\":\"status\",\"key\":\"{}\",\"cached\":{cached}}}", escape(key))
}

/// Build one `cell` event line from a streamed row. The cells array uses
/// the report serializers, so values match the final report document
/// token for token (NaN sentinels included).
pub fn cell_event(index: usize, label: &str, row: &[ants_sim::report::Value]) -> String {
    let cells: Vec<String> = row.iter().map(ants_sim::report::Value::to_json).collect();
    format!(
        "{{\"event\":\"cell\",\"index\":{index},\"label\":\"{}\",\"cells\":[{}]}}",
        escape(label),
        cells.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let mut req = Request::submit("name = \"x\"\n# spec\n");
        req.effort = Effort::Smoke;
        req.seed = 7;
        req.metrics = MetricSet::parse_list("coverage,chi").unwrap();
        req.backend = Some(Backend::Dp);
        req.dp_mode = Some(DpMode::Sparse);
        req.thresholds = Some(GateThresholds { metric_rel_tol: 0.1, ..Default::default() });
        let line = req.to_json();
        assert!(!line.contains('\n'), "wire lines must be single lines: {line}");
        let back = Request::parse(&line).unwrap();
        assert_eq!(back.op, Op::Submit);
        assert_eq!(back.spec, req.spec);
        assert_eq!(back.effort, Effort::Smoke);
        assert_eq!(back.seed, 7);
        assert_eq!(back.backend, Some(Backend::Dp));
        assert_eq!(back.dp_mode, Some(DpMode::Sparse));
        let names: Vec<&str> = back.metrics.iter().map(|m| m.as_str()).collect();
        assert_eq!(names, ["coverage", "chi"]);
        assert_eq!(back.thresholds.unwrap().metric_rel_tol, 0.1);
    }

    #[test]
    fn bare_ops_need_no_spec_but_submit_does() {
        let line = Request::bare(Op::Stats).to_json();
        assert_eq!(Request::parse(&line).unwrap().op, Op::Stats);
        let line = Request::bare(Op::Shutdown).to_json();
        assert_eq!(Request::parse(&line).unwrap().op, Op::Shutdown);
        let e = Request::parse("{\"op\":\"submit\"}").unwrap_err();
        assert!(e.contains("spec"), "{e}");
    }

    #[test]
    fn malformed_requests_are_errors_not_panics() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"op\":\"launch\"}",
            "{\"op\":\"submit\",\"spec\":\"x\",\"effort\":\"extreme\"}",
            "{\"op\":\"submit\",\"spec\":\"x\",\"seed\":-1}",
            "{\"op\":\"submit\",\"spec\":\"x\",\"seed\":1.5}",
            "{\"op\":\"submit\",\"spec\":\"x\",\"backend\":\"gpu\"}",
            "{\"op\":\"submit\",\"spec\":\"x\",\"dp_mode\":\"frontier\"}",
            "{\"op\":\"submit\",\"spec\":\"x\",\"metrics\":\"bogus\"}",
        ] {
            assert!(Request::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn event_lines_parse_and_identify() {
        let line = status_event("abc-s0-standard-local", false);
        assert_eq!(event_of(&line).as_deref(), Some("status"));
        let doc = Json::parse(&line).unwrap();
        assert_eq!(doc.get("cached"), Some(&Json::Bool(false)));
        let row =
            vec![ants_sim::report::Value::Text("c".into()), ants_sim::report::Value::Num(f64::NAN)];
        let line = cell_event(3, "c", &row);
        let doc = Json::parse(&line).unwrap();
        assert_eq!(doc.get("index").and_then(Json::as_f64), Some(3.0));
        let cells = doc.get("cells").unwrap().as_array().unwrap();
        assert!(cells[1].as_number().unwrap().is_nan(), "NaN survives the wire");
        assert_eq!(event_of(&error_event("boom \"quoted\"")).as_deref(), Some("error"));
        assert_eq!(event_of("not json"), None);
    }
}
