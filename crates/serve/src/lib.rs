//! # ants-serve — the content-addressed workload service
//!
//! Every report in this workspace is a pure function of (spec, seed,
//! commit): byte-identical across threads, granularities, chunk sizes,
//! and schedulers. That contract makes results *content-addressable* —
//! simulate once, cache by meaning, serve forever. This crate is the
//! serving layer:
//!
//! * [`Server`] — a local TCP daemon speaking newline-delimited JSON
//!   (one request line in, a stream of event lines out; see
//!   [`protocol`]). Workload specs are canonicalized at the *plan*
//!   level ([`ants_workload::WorkloadPlan::cache_descriptor`]), so two
//!   spellings of the same workload — reordered keys, comments,
//!   symbolic vs resolved strategy arguments — share one cache entry.
//! * [`cache`] — one directory per entry, each doubling as a `trend
//!   --record` snapshot (`ants trend history <cache>` works directly on
//!   the cache root). Hits replay the stored response byte for byte
//!   without touching the sweep pool; misses run on the shared pool,
//!   stream each cell's row the moment it exists, and persist
//!   atomically.
//! * **Gate mode** — a `gate` request re-resolves the spec, then diffs
//!   the result against the newest other cache entry for the same
//!   workload under [`ants_bench::GateThresholds`]; CI turns a failed
//!   gate into a nonzero exit via `ants query gate`.
//!
//! The CLI front ends are `ants serve` (daemon) and `ants query`
//! (client); [`client`] holds the plumbing they share with tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{cache_key, Entry};
pub use client::{discover_addr, request_lines, request_streamed};
pub use protocol::{Op, Request};
pub use server::{ServeOptions, Server, Stats};
