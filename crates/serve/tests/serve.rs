//! End-to-end daemon tests over a real loopback socket: hit byte
//! identity with zero pool work, plan-level canonicalization, error
//! resilience, gate drift detection, and trend-snapshot cache layout.

use ants_bench::Effort;
use ants_serve::protocol::{self, Op, Request};
use ants_serve::{request_lines, ServeOptions, Server};
use ants_sim::json::Json;
use std::path::PathBuf;

/// A Monte Carlo spec, so misses do real pool work the probe can count.
const MC_SPEC: &str = "\
name = \"serve e2e\"
description = \"serve integration workload\"
[defaults]
trials = 8
smoke_trials = 4
[[cells]]
name = \"mixed\"
agents = 3
target = { model = \"ball\", dist = 6 }
population = [
  { strategy = \"nonuniform(dist)\", weight = 2 },
  { strategy = \"randomwalk\", weight = 1 },
]
";

/// The same workload, spelled differently: keys reordered, comments and
/// whitespace added, the symbolic `nonuniform(dist)` resolved by hand.
const MC_SPEC_RESPELLED: &str = "\
name = \"serve e2e\"
description = \"serve integration workload\"

[defaults]
smoke_trials = 4   # reordered + commented
trials       = 8

[[cells]]
agents = 3
name   = \"mixed\"
population = [
  { weight = 2, strategy = \"nonuniform(6)\" },
  { weight = 1, strategy = \"randomwalk\" },
]
target = { dist = 6, model = \"ball\" }
";

struct Daemon {
    addr: String,
    cache: PathBuf,
    thread: Option<std::thread::JoinHandle<Result<(), String>>>,
}

impl Daemon {
    fn start(tag: &str) -> Daemon {
        let cache =
            std::env::temp_dir().join(format!("ants-serve-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache);
        // Pin two workers: on a single-core machine the sweep would
        // otherwise take its serial fallback, where the probe hooks
        // never fire and "zero pool work" would hold vacuously. Results
        // are byte-identical either way (the determinism contract).
        let mut opts = ServeOptions::new(&cache);
        opts.threads = Some(2);
        let server = Server::bind(opts, "127.0.0.1:0").expect("bind loopback");
        let addr = server.local_addr().to_string();
        let thread = Some(std::thread::spawn(move || server.run()));
        Daemon { addr, cache, thread }
    }

    fn send(&self, req: &Request) -> Vec<String> {
        request_lines(&self.addr, req).expect("daemon reachable")
    }

    fn stats(&self) -> Json {
        let lines = self.send(&Request::bare(Op::Stats));
        assert_eq!(lines.len(), 1, "{lines:?}");
        Json::parse(&lines[0]).expect("stats line parses")
    }

    fn stat(&self, field: &str) -> f64 {
        self.stats().get(field).and_then(Json::as_f64).expect("numeric stat")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = request_lines(&self.addr, &Request::bare(Op::Shutdown));
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread").expect("clean shutdown");
        }
        let _ = std::fs::remove_dir_all(&self.cache);
    }
}

fn smoke_submit(spec: &str) -> Request {
    let mut req = Request::submit(spec);
    req.effort = Effort::Smoke;
    req
}

/// Split a response into (status line, body lines). The status line is
/// excluded from byte-identity comparisons by design: it is the one
/// line that differs between a miss and its replay.
fn split(lines: &[String]) -> (Json, Vec<String>) {
    assert!(!lines.is_empty(), "empty response");
    assert_eq!(protocol::event_of(&lines[0]).as_deref(), Some("status"), "{}", lines[0]);
    (Json::parse(&lines[0]).unwrap(), lines[1..].to_vec())
}

#[test]
fn identical_resubmission_is_a_byte_identical_hit_with_zero_pool_work() {
    let d = Daemon::start("hit");
    let first = d.send(&smoke_submit(MC_SPEC));
    let (status, body) = split(&first);
    assert_eq!(status.get("cached"), Some(&Json::Bool(false)), "first submit is a miss");
    let work_after_miss = d.stat("pool_work");
    #[cfg(feature = "parallel")]
    assert!(work_after_miss > 0.0, "an MC miss must run agent steps on the pool");

    let second = d.send(&smoke_submit(MC_SPEC));
    let (status2, body2) = split(&second);
    assert_eq!(status2.get("cached"), Some(&Json::Bool(true)), "resubmission hits");
    assert_eq!(status2.get("key"), status.get("key"), "same content-addressed key");
    assert_eq!(body2, body, "hit replays the stored body byte for byte");
    assert_eq!(d.stat("pool_work"), work_after_miss, "a hit does zero sweep-pool work");
    assert_eq!(d.stat("hits"), 1.0);
    assert_eq!(d.stat("misses"), 1.0);

    // Body shape: one cell event per plan cell, then the full report.
    assert_eq!(protocol::event_of(&body[0]).as_deref(), Some("cell"));
    let last = Json::parse(body.last().unwrap()).unwrap();
    assert_eq!(last.get("event").and_then(Json::as_str), Some("report"));
    let report = last.get("report").unwrap();
    assert_eq!(report.get("schema").and_then(Json::as_str), Some("ants-report/v1"));
}

#[test]
fn semantically_identical_spellings_share_one_cache_entry() {
    let d = Daemon::start("canon");
    let (status, body) = split(&d.send(&smoke_submit(MC_SPEC)));
    assert_eq!(status.get("cached"), Some(&Json::Bool(false)));

    let (status2, body2) = split(&d.send(&smoke_submit(MC_SPEC_RESPELLED)));
    assert_eq!(
        status2.get("cached"),
        Some(&Json::Bool(true)),
        "reordered keys, comments, and resolved symbolic args are the same workload"
    );
    assert_eq!(status2.get("key"), status.get("key"));
    assert_eq!(body2, body);

    // One-bit semantic change: a different trial count must miss.
    let changed = MC_SPEC.replace("trials = 8", "trials = 9");
    let (status3, _) = split(&d.send(&smoke_submit(&changed)));
    assert_eq!(status3.get("cached"), Some(&Json::Bool(false)), "semantic change misses");
    assert_ne!(status3.get("key"), status.get("key"));

    // A different seed also misses: results are keyed by (spec, seed).
    let mut reseeded = smoke_submit(MC_SPEC);
    reseeded.seed = 1;
    let (status4, _) = split(&d.send(&reseeded));
    assert_eq!(status4.get("cached"), Some(&Json::Bool(false)));
    assert_eq!(d.stat("entries"), 3.0);
}

#[test]
fn malformed_requests_and_specs_do_not_kill_the_daemon() {
    let d = Daemon::start("errors");
    // Malformed spec: the toml/spec layers reject it, daemon survives.
    let lines = d.send(&smoke_submit("cells = \"not a workload\""));
    assert_eq!(protocol::event_of(&lines[0]).as_deref(), Some("error"), "{lines:?}");
    // Unparseable request line entirely.
    let raw = {
        use std::io::{BufRead, BufReader, Write};
        let mut s = std::net::TcpStream::connect(&d.addr).unwrap();
        s.write_all(b"this is not json\n").unwrap();
        let mut line = String::new();
        BufReader::new(s).read_line(&mut line).unwrap();
        line
    };
    assert_eq!(protocol::event_of(raw.trim()).as_deref(), Some("error"), "{raw}");
    // A DP-incapable cell forced onto the exact backend: error response.
    let mut forced = smoke_submit(MC_SPEC);
    forced.backend = Some(ants_dp::Backend::Dp);
    let lines = d.send(&forced);
    let err = lines.iter().find(|l| protocol::event_of(l).as_deref() == Some("error"));
    assert!(err.is_some(), "{lines:?}");
    // Daemon still answers.
    assert!(d.stat("requests") >= 4.0);
    assert_eq!(d.stat("misses"), 0.0, "no failed submission was cached");
    assert_eq!(d.stat("entries"), 0.0);
}

#[test]
fn gate_passes_against_itself_and_fails_on_injected_drift() {
    let d = Daemon::start("gate");
    // Baseline entry: seed 0.
    let (status, _) = split(&d.send(&smoke_submit(MC_SPEC)));
    assert_eq!(status.get("cached"), Some(&Json::Bool(false)));

    // Gate with no *other* entry: the current key is excluded, so there
    // is no baseline yet and the gate passes vacuously (and says so).
    let mut gate = smoke_submit(MC_SPEC);
    gate.op = Op::Gate;
    let lines = d.send(&gate);
    let ev = lines.last().unwrap();
    let doc = Json::parse(ev).unwrap();
    assert_eq!(doc.get("event").and_then(Json::as_str), Some("gate"));
    assert_eq!(doc.get("pass"), Some(&Json::Bool(true)));
    assert_eq!(doc.get("baseline"), Some(&Json::Null));

    // Injected drift: the same workload at a different seed produces
    // different metrics; gating it against the seed-0 baseline fails.
    let mut drifted = gate.clone();
    drifted.seed = 42;
    let lines = d.send(&drifted);
    let doc = Json::parse(lines.last().unwrap()).unwrap();
    assert_eq!(doc.get("event").and_then(Json::as_str), Some("gate"), "{lines:?}");
    assert_eq!(doc.get("pass"), Some(&Json::Bool(false)), "drift must fail the gate");
    assert!(doc.get("baseline").and_then(Json::as_str).is_some());
    let violations = doc.get("violations").unwrap().as_array().unwrap();
    assert!(!violations.is_empty());
    let v = &violations[0];
    for field in ["cell", "column", "baseline", "current", "detail"] {
        assert!(v.get(field).is_some(), "violation missing {field}: {v:?}");
    }

    // Re-gating the drifted entry is a cache hit (the result is stored)
    // but still fails: gating is a comparison, not a computation.
    let lines = d.send(&drifted);
    let (status, _) = split(&lines);
    assert_eq!(status.get("cached"), Some(&Json::Bool(true)));
    let doc = Json::parse(lines.last().unwrap()).unwrap();
    assert_eq!(doc.get("pass"), Some(&Json::Bool(false)));
}

#[test]
fn cache_entries_are_trend_snapshots() {
    let d = Daemon::start("layout");
    let (status, _) = split(&d.send(&smoke_submit(MC_SPEC)));
    let key = status.get("key").and_then(Json::as_str).unwrap().to_string();
    let entry = d.cache.join(&key);
    // The report file carries the workload key, exactly like a `trend
    // --record` snapshot directory, and parses under the report schema.
    let report_path = entry.join("serve-e2e.json");
    let text = std::fs::read_to_string(&report_path).expect("report in snapshot layout");
    let doc = Json::parse(&text).unwrap();
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("ants-report/v1"));
    assert_eq!(doc.get("id").and_then(Json::as_str), Some("serve-e2e"));
    assert!(doc.get("wall_ms").and_then(Json::as_number).is_some());
    // Auxiliary files are invisible to the trend tooling (non-.json).
    for aux in ["response.ndjson", "spec.toml", "descriptor.txt"] {
        assert!(entry.join(aux).is_file(), "missing {aux}");
        assert!(!aux.ends_with(".json"));
    }
    // The stored descriptor is the audited canonical form.
    let descriptor = std::fs::read_to_string(entry.join("descriptor.txt")).unwrap();
    assert!(descriptor.starts_with("plan-descriptor/v2\n"));
    // The discovery file points at the live daemon.
    assert_eq!(ants_serve::discover_addr(&d.cache).unwrap(), d.addr);
}

#[test]
fn shutdown_stops_the_accept_loop_and_removes_discovery() {
    let cache =
        std::env::temp_dir().join(format!("ants-serve-e2e-shutdown-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let server = Server::bind(ServeOptions::new(&cache), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    let thread = std::thread::spawn(move || server.run());
    let lines = request_lines(&addr, &Request::bare(Op::Shutdown)).unwrap();
    assert_eq!(protocol::event_of(&lines[0]).as_deref(), Some("ok"), "{lines:?}");
    thread.join().unwrap().unwrap();
    assert!(!cache.join("serve.addr").exists(), "discovery file removed on shutdown");
    let _ = std::fs::remove_dir_all(&cache);
}
