//! Per-move collapse: turn a step-indexed kernel into a move-indexed one.
//!
//! The paper's quantities are indexed by *moves*, but a kernel steps
//! once per RNG event — a `uniform` searcher may flip hundreds of coins
//! between two moves. Running the occupancy DP per step would make its
//! horizon the step count; this module collapses each maximal run of
//! non-move steps into an exact per-move transition table, so the
//! absorption DP's horizon is the move budget.
//!
//! A segment starts right after a move (or at trial start) and ends at
//! the next move. Within a segment only `None` and `Origin` actions
//! occur; the position at the segment's end is `p + δ(dir)` if no
//! `Origin` occurred, or `origin + δ(dir)` if one did (later `Origin`s
//! overwrite earlier positions, but both land on the origin, so a single
//! "was reset" flag suffices). The collapse therefore computes, per
//! starting state, the exact joint distribution of
//! `(exit state, move direction, reset flag)` — a standard absorption
//! problem on the kernel's non-move transition graph, solved by dense
//! Gaussian elimination in a fixed order (bit-deterministic).
//!
//! The solve runs in two blocks. The *reset* block (an `Origin` has
//! already occurred) treats both `None` and `Origin` edges as transient.
//! The *clean* block treats only `None` edges as transient; its `Origin`
//! edges couple into the reset block's solved rows. Mass that can never
//! move again — a mortal kernel past its expiry — leaves both systems as
//! an implicit deficit (`1 − Σ exits − trunc`), and mass entering a
//! designated truncation state is tracked in a dedicated column so the
//! DP can enforce [`crate::TRUNCATION_TOL`].

use crate::error::DpError;
use crate::kernel::{MarkovKernel, PositionClass};
use ants_automaton::GridAction;
use ants_grid::Direction;
use std::collections::HashMap;

/// One collapsed per-move exit: the next internal state, the direction
/// moved, and whether an `Origin` reset happened during the segment
/// (if so, the move is taken from the origin, not the current position).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MoveExit {
    /// Internal state after the move.
    pub next: usize,
    /// Direction of the move that ends the segment.
    pub dir: Direction,
    /// Did an `Origin` action occur since the segment started?
    pub reset: bool,
}

/// One state's collapsed distribution over [`MoveExit`]s.
#[derive(Debug, Clone, Default)]
pub struct CollapsedRow {
    /// Sparse distribution over exit indices into
    /// [`CollapsedKernel::exits`].
    pub exits: Vec<(u32, f64)>,
    /// Probability of entering a truncation state before the next move.
    pub trunc: f64,
}

impl CollapsedRow {
    /// Mass that never moves again (halted agents): the complement of
    /// exits and truncation.
    pub fn deficit(&self) -> f64 {
        (1.0 - self.trunc - self.exits.iter().map(|&(_, p)| p).sum::<f64>()).max(0.0)
    }
}

/// A kernel collapsed to per-move transitions.
#[derive(Debug, Clone)]
pub struct CollapsedKernel {
    /// Start state of the underlying kernel.
    pub start: usize,
    /// The deduplicated exit alphabet.
    pub exits: Vec<MoveExit>,
    /// Per starting state, the exact distribution over exits.
    pub rows: Vec<CollapsedRow>,
}

/// Edge classification of one kernel state.
struct Edges {
    /// `None`-action edges to non-truncation states.
    none: Vec<(usize, f64)>,
    /// `Origin`-action edges to non-truncation states.
    origin: Vec<(usize, f64)>,
    /// Move edges `(next, dir, prob)` — these end the segment whatever
    /// their target state is.
    moves: Vec<(usize, Direction, f64)>,
    /// Total probability of `None`/`Origin` edges into truncation states.
    trunc: f64,
}

/// Dense Gaussian elimination with partial pivoting on `[A | rhs]`,
/// solving `A · X = rhs` in place. Fixed scan order — bit-deterministic.
/// `a` is row-major `n × n`, `rhs` row-major `n × m`.
fn solve_dense(n: usize, m: usize, a: &mut [f64], rhs: &mut [f64]) -> Result<(), DpError> {
    for col in 0..n {
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i * n + col].abs().partial_cmp(&a[j * n + col].abs()).expect("finite")
            })
            .expect("non-empty range");
        if a[pivot_row * n + col].abs() < 1e-300 {
            return Err(DpError::Unsupported {
                what: "per-move collapse".into(),
                reason: "singular transient system (a state set loops forever without \
                         moving yet was not eliminated as dead)"
                    .into(),
            });
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            for k in 0..m {
                rhs.swap(col * m + k, pivot_row * m + k);
            }
        }
        let inv = 1.0 / a[col * n + col];
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = a[row * n + col] * inv;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            for k in 0..m {
                rhs[row * m + k] -= factor * rhs[col * m + k];
            }
        }
    }
    for row in 0..n {
        let inv = 1.0 / a[row * n + row];
        for k in 0..m {
            rhs[row * m + k] *= inv;
        }
    }
    Ok(())
}

/// States from which the block's transient graph can reach a leak
/// (a state with any non-transient edge). Mass in a non-live state can
/// never exit — it is dead (halted) and leaves the system as deficit.
fn live_states(
    n: usize,
    transient: impl Fn(usize) -> Vec<(usize, f64)>,
    leaky: impl Fn(usize) -> bool,
) -> Vec<bool> {
    // Reverse adjacency of the transient graph, then BFS from the leaks.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for s in 0..n {
        for (t, p) in transient(s) {
            if p > 0.0 && t != s {
                rev[t].push(s);
            }
        }
    }
    let mut live = vec![false; n];
    let mut queue: Vec<usize> = (0..n).filter(|&s| leaky(s)).collect();
    for &s in &queue {
        live[s] = true;
    }
    while let Some(s) = queue.pop() {
        for &p in &rev[s] {
            if !live[p] {
                live[p] = true;
                queue.push(p);
            }
        }
    }
    live
}

/// Collapse `kernel` into per-move transitions.
///
/// # Errors
///
/// * [`DpError::Guard`] if the state space exceeds
///   [`crate::MAX_SOLVE_STATES`].
/// * [`DpError::Unsupported`] for position-sensitive kernels.
pub fn collapse(kernel: &dyn MarkovKernel) -> Result<CollapsedKernel, DpError> {
    let n = kernel.num_states();
    if n > crate::MAX_SOLVE_STATES {
        return Err(DpError::Guard {
            what: format!("{} internal-state space ({n} states)", kernel.label()),
            limit: crate::MAX_SOLVE_STATES,
            hint: "shrink the cell or use backend = \"mc\"".into(),
        });
    }
    if kernel.position_sensitive() {
        return Err(DpError::Unsupported {
            what: format!("kernel {}", kernel.label()),
            reason: "the per-move collapse only supports position-oblivious kernels".into(),
        });
    }
    let mut is_trunc = vec![false; n];
    for &t in kernel.truncation_states() {
        is_trunc[t] = true;
    }
    let edges: Vec<Edges> = (0..n)
        .map(|s| {
            let mut e =
                Edges { none: Vec::new(), origin: Vec::new(), moves: Vec::new(), trunc: 0.0 };
            for t in kernel.row(s, PositionClass::Away) {
                if t.prob == 0.0 {
                    continue;
                }
                match t.action {
                    GridAction::Move(dir) => e.moves.push((t.next, dir, t.prob)),
                    GridAction::None if is_trunc[t.next] => e.trunc += t.prob,
                    GridAction::None => e.none.push((t.next, t.prob)),
                    GridAction::Origin if is_trunc[t.next] => e.trunc += t.prob,
                    GridAction::Origin => e.origin.push((t.next, t.prob)),
                }
            }
            e
        })
        .collect();

    // Exit alphabet, deduplicated in first-appearance order (states in
    // index order, reset block enumerated before the clean block's own
    // moves) — deterministic.
    let mut exits: Vec<MoveExit> = Vec::new();
    let mut exit_idx: HashMap<MoveExit, u32> = HashMap::new();
    let mut intern = |exits: &mut Vec<MoveExit>, e: MoveExit| -> u32 {
        *exit_idx.entry(e).or_insert_with(|| {
            exits.push(e);
            (exits.len() - 1) as u32
        })
    };

    // --- Reset block: an Origin already occurred. Transient edges are
    // None + Origin; moves exit with reset = true.
    /// Per-state RHS builder passed to `solve_block`: maps a state to
    /// its (exit row, coupled truncation mass), interning new exits
    /// through the supplied interner.
    type RhsOf<'a> = dyn Fn(
            usize,
            &mut Vec<MoveExit>,
            &mut dyn FnMut(&mut Vec<MoveExit>, MoveExit) -> u32,
        ) -> (Vec<(u32, f64)>, f64)
        + 'a;
    let solve_block = |exits: &mut Vec<MoveExit>,
                       intern: &mut dyn FnMut(&mut Vec<MoveExit>, MoveExit) -> u32,
                       transient_of: &dyn Fn(usize) -> Vec<(usize, f64)>,
                       extra_leak: &dyn Fn(usize) -> bool,
                       rhs_of: &RhsOf|
     -> Result<Vec<CollapsedRow>, DpError> {
        let live = live_states(
            n,
            |s| if is_trunc[s] { Vec::new() } else { transient_of(s) },
            |s| {
                !is_trunc[s]
                    && (!edges[s].moves.is_empty() || edges[s].trunc > 0.0 || extra_leak(s))
            },
        );
        // Map live, non-trunc states into the dense system.
        let sys: Vec<usize> = (0..n).filter(|&s| live[s] && !is_trunc[s]).collect();
        let pos: HashMap<usize, usize> = sys.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        // Build per-state RHS rows first to learn the column count.
        let mut raw_rows: Vec<(Vec<(u32, f64)>, f64)> = Vec::with_capacity(sys.len());
        for &s in &sys {
            raw_rows.push(rhs_of(s, exits, intern));
        }
        let m = exits.len() + 1; // all exits so far + trunc column
        let k = sys.len();
        let mut a = vec![0.0f64; k * k];
        let mut rhs = vec![0.0f64; k * m];
        for (i, &s) in sys.iter().enumerate() {
            a[i * k + i] = 1.0;
            for (t, p) in transient_of(s) {
                if let Some(&j) = pos.get(&t) {
                    a[i * k + j] -= p;
                }
                // Edges to dead states: deficit (dropped).
            }
            let (ref row, coupled_trunc) = raw_rows[i];
            for &(e, p) in row {
                rhs[i * m + e as usize] += p;
            }
            // Direct edges into truncation states plus any trunc
            // mass inherited through an Origin coupling.
            rhs[i * m + (m - 1)] += coupled_trunc + edges[s].trunc;
        }
        solve_dense(k, m, &mut a, &mut rhs)?;
        let mut out = vec![CollapsedRow::default(); n];
        for (i, &s) in sys.iter().enumerate() {
            let mut row = Vec::new();
            for e in 0..m - 1 {
                let p = rhs[i * m + e];
                if p > 0.0 {
                    row.push((e as u32, p));
                }
            }
            out[s] = CollapsedRow { exits: row, trunc: rhs[i * m + (m - 1)].max(0.0) };
        }
        for s in 0..n {
            if is_trunc[s] {
                out[s] = CollapsedRow { exits: Vec::new(), trunc: 1.0 };
            }
        }
        Ok(out)
    };

    let reset_rows = solve_block(
        &mut exits,
        &mut intern,
        &|s| {
            let mut t = edges[s].none.clone();
            t.extend(edges[s].origin.iter().copied());
            t
        },
        &|_| false,
        &|s, exits, intern| {
            let row = edges[s]
                .moves
                .iter()
                .map(|&(next, dir, p)| (intern(exits, MoveExit { next, dir, reset: true }), p))
                .collect();
            (row, 0.0)
        },
    )?;

    // --- Clean block: no Origin yet. Transient edges are None only;
    // Origin edges couple into the reset block's solved rows; moves exit
    // with reset = false.
    let clean_rows = solve_block(
        &mut exits,
        &mut intern,
        &|s| edges[s].none.clone(),
        &|s| !edges[s].origin.is_empty(),
        &|s, exits, intern| {
            let mut row: Vec<(u32, f64)> = edges[s]
                .moves
                .iter()
                .map(|&(next, dir, p)| (intern(exits, MoveExit { next, dir, reset: false }), p))
                .collect();
            let mut trunc = 0.0;
            for &(t, p) in &edges[s].origin {
                // Mass teleports to the origin, then evolves in the
                // reset block from state t.
                let coupled = &reset_rows[t];
                for &(e, q) in &coupled.exits {
                    row.push((e, p * q));
                }
                trunc += p * coupled.trunc;
            }
            (row, trunc)
        },
    )?;

    // Drop exit columns no final row references (the reset block interns
    // its move exits eagerly; kernels without Origin edges never use
    // them) and remap indices — deterministic, order-preserving.
    let mut used = vec![false; exits.len()];
    for r in &clean_rows {
        for &(e, p) in &r.exits {
            if p > 0.0 {
                used[e as usize] = true;
            }
        }
    }
    let mut remap = vec![u32::MAX; exits.len()];
    let mut compact = Vec::new();
    for (i, e) in exits.into_iter().enumerate() {
        if used[i] {
            remap[i] = compact.len() as u32;
            compact.push(e);
        }
    }
    let rows = clean_rows
        .into_iter()
        .map(|r| CollapsedRow {
            exits: r
                .exits
                .into_iter()
                .filter(|&(_, p)| p > 0.0)
                .map(|(e, p)| (remap[e as usize], p))
                .collect(),
            trunc: r.trunc,
        })
        .collect();

    Ok(CollapsedKernel { start: kernel.start(), exits: compact, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{
        coin_kernel, mortal_kernel, nonuniform_kernel, randomwalk_kernel, uniform_kernel,
        UNIFORM_PHASE_CAP,
    };

    fn row_mass(c: &CollapsedKernel, s: usize) -> f64 {
        c.rows[s].exits.iter().map(|&(_, p)| p).sum::<f64>() + c.rows[s].trunc
    }

    #[test]
    fn randomwalk_collapse_is_identity() {
        let c = collapse(&randomwalk_kernel()).unwrap();
        assert_eq!(c.exits.len(), 4);
        assert!((row_mass(&c, 0) - 1.0).abs() < 1e-15);
        for &(_, p) in &c.rows[0].exits {
            assert!((p - 0.25).abs() < 1e-15);
        }
        assert!(c.exits.iter().all(|e| !e.reset));
    }

    #[test]
    fn coin_collapse_conserves_mass_and_resets() {
        let k = coin_kernel(8, 1).unwrap();
        let c = collapse(&k).unwrap();
        for s in 0..k.num_states() {
            assert!((row_mass(&c, s) - 1.0).abs() < 1e-12, "state {s}: {}", row_mass(&c, s));
        }
        // The Returning state's exits all pass through Origin first.
        let returning = k.num_states() - 1;
        assert!(c.rows[returning].exits.iter().all(|&(e, _)| c.exits[e as usize].reset));
        // The start state has both clean exits (first walk move) and no
        // trunc mass.
        assert_eq!(c.rows[c.start].trunc, 0.0);
        assert!(c.rows[c.start].exits.iter().any(|&(e, _)| !c.exits[e as usize].reset));
    }

    #[test]
    fn nonuniform_first_move_direction_split() {
        // From the start, the first move is Up/Down/Left/Right; vertical
        // and horizontal splits are fair, so by symmetry each vertical
        // direction carries equal mass, as does each horizontal one.
        let c = collapse(&nonuniform_kernel(16).unwrap()).unwrap();
        let mut by_dir = std::collections::HashMap::new();
        for &(e, p) in &c.rows[c.start].exits {
            *by_dir.entry(c.exits[e as usize].dir).or_insert(0.0) += p;
        }
        let up = by_dir[&ants_grid::Direction::Up];
        let down = by_dir[&ants_grid::Direction::Down];
        let left = by_dir[&ants_grid::Direction::Left];
        let right = by_dir[&ants_grid::Direction::Right];
        assert!((up - down).abs() < 1e-12);
        assert!((left - right).abs() < 1e-12);
        assert!((up + down + left + right - 1.0).abs() < 1e-12);
        // Vertical comes first, so it carries more of the first-move mass.
        assert!(up > left);
    }

    #[test]
    fn uniform_collapse_tracks_truncation_mass() {
        // A tiny cap makes the truncation mass visible.
        let k = uniform_kernel(1, 2, 1, 2).unwrap();
        let c = collapse(&k).unwrap();
        let t = c.rows[c.start].trunc;
        assert!(t > 0.0, "cap 2 must leak measurable mass");
        assert!((row_mass(&c, c.start) - 1.0).abs() < 1e-12);
        // At the default cap the leak is far below the tolerance.
        let k = uniform_kernel(1, 2, 1, UNIFORM_PHASE_CAP).unwrap();
        let c = collapse(&k).unwrap();
        assert!(c.rows[c.start].trunc < crate::TRUNCATION_TOL);
    }

    #[test]
    fn mortal_collapse_has_deficit_at_expiry() {
        let inner = randomwalk_kernel();
        let k = mortal_kernel(&inner, 2).unwrap();
        let c = collapse(&k).unwrap();
        // Fresh agent: full mass exits (first move always happens).
        assert!((row_mass(&c, c.start) - 1.0).abs() < 1e-15);
        // Expired layer: no exits, no trunc — pure deficit.
        let expired = 2 * inner.num_states(); // layer u = 2, state 0
        assert!(c.rows[expired].exits.is_empty());
        assert_eq!(c.rows[expired].trunc, 0.0);
        assert!((c.rows[expired].deficit() - 1.0).abs() < 1e-15);
    }
}
