//! # ants-dp — the exact dynamic-programming backend
//!
//! Every number the simulator produces is a Monte Carlo estimate. For
//! the *Markovian* zoo strategies — finite internal state, exact dyadic
//! transition probabilities, no dependence on history beyond the state —
//! the same quantities are exactly computable by dynamic programming
//! over `(internal state × position)` occupancy tables, in the style of
//! time-indexed propagation DPs for random walks. This crate is that
//! second engine:
//!
//! * [`MarkovKernel`] / [`TableKernel`] — a strategy as data: per
//!   internal state, an exact transition distribution over
//!   `(next state, grid action)`. Constructors cover `randomwalk`,
//!   `coin(d, ℓ)`, `nonuniform(d)`, `uniform(ℓ, n, K)` (phase-capped
//!   with exact truncation accounting), every PFA `automaton(...)`
//!   entry, and `mortal(inner, expiry)` as a state-space product.
//!   Lévy, harmonic, spiral and fully-uniform strategies are *not*
//!   Markovian in this sense and fail loudly ([`DpError::Unsupported`])
//!   — never a silent fallback.
//! * [`collapse`] — step sequences between moves (coin flips, oracle
//!   returns) are collapsed by an exact linear solve into per-*move*
//!   transition entries, so the absorption DP's horizon is the move
//!   budget, not the (much larger) step count.
//! * [`absorb`] — the move-indexed forward DP: exact per-trial
//!   absorption CDFs over the target (success probability within any
//!   move budget, conditional expected/median moves).
//! * [`rounds`] — step-indexed DPs for the `observe.rs` metric
//!   vocabulary: coverage-by-round, first-visit curves, found-round
//!   curves, and the χ support statistic.
//! * [`eval`] — the cell evaluator: combines per-strategy CDFs for
//!   independent mixed populations in closed form
//!   (`1 − Π(1 − Fᵢ(t))^kᵢ`), averages over the target placement's
//!   enumerated support, and emits the same row vocabulary as the
//!   Monte Carlo `WorkloadExperiment`.
//!
//! Exactness contract: all kernel probabilities are dyadic rationals
//! representable in `f64`; the DP's only approximations are (a) f64
//! summation round-off and (b) explicitly tracked truncation/pruning
//! mass, which is checked against [`TRUNCATION_TOL`] and turns into a
//! [`DpError::Truncation`] instead of a wrong answer. Evaluation is
//! single-threaded with a fixed summation order, so reports are
//! byte-identical across thread counts and reruns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod absorb;
mod collapse;
mod error;
mod eval;
mod kernel;
mod rounds;

pub use absorb::{absorption_cdf, AbsorptionCurve};
pub use collapse::{collapse, CollapsedKernel, CollapsedRow, MoveExit};
pub use error::DpError;
pub use eval::{evaluate, target_support, DpCellReport, DpMetrics, DpRequest, DpStrategy};
pub use kernel::{
    coin_kernel, mortal_kernel, nonuniform_kernel, pfa_kernel, randomwalk_kernel, uniform_kernel,
    KernelTransition, MarkovKernel, PositionClass, TableKernel, UNIFORM_PHASE_CAP,
};
pub use rounds::{chi_support, step_absorption_cdf, visit_survival_curve};

/// Backend selector surfaced through workload specs and the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Monte Carlo: the simulator's trial pool (the default).
    #[default]
    Mc,
    /// Exact dynamic programming over Markov kernels.
    Dp,
}

impl Backend {
    /// Parse a spec/CLI backend name.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "mc" => Some(Backend::Mc),
            "dp" => Some(Backend::Dp),
            _ => None,
        }
    }

    /// The spec/CLI name of this backend.
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Mc => "mc",
            Backend::Dp => "dp",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Largest internal-state space the per-move collapse will solve
/// exactly (dense Gaussian elimination is cubic in this).
pub const MAX_SOLVE_STATES: usize = 1024;

/// Largest dense occupancy table, in entries
/// (`states × (2·budget + 1)²`), the forward DP will allocate.
pub const MAX_TABLE_ENTRIES: usize = 1 << 23;

/// Maximum probability mass allowed to fall past truncation states or
/// pruning before the evaluation refuses to report
/// ([`DpError::Truncation`]).
pub const TRUNCATION_TOL: f64 = 1e-9;

/// States whose accumulated occupancy mass stays below this floor are
/// ignored by the χ support statistic (they are never meaningfully
/// selected).
pub const CHI_MASS_FLOOR: f64 = 1e-12;

/// Occupancy entries below this mass are dropped by the forward DP; the
/// dropped total is accounted exactly and checked against
/// [`TRUNCATION_TOL`].
pub const PRUNE: f64 = 1e-20;

#[cfg(test)]
mod tests {
    use super::Backend;

    #[test]
    fn backend_names_round_trip() {
        for b in [Backend::Mc, Backend::Dp] {
            assert_eq!(Backend::parse(b.as_str()), Some(b));
            assert_eq!(b.to_string(), b.as_str());
        }
        assert_eq!(Backend::parse("exact"), None);
        assert_eq!(Backend::default(), Backend::Mc);
    }
}
