//! # ants-dp — the exact dynamic-programming backend
//!
//! Every number the simulator produces is a Monte Carlo estimate. For
//! the *Markovian* zoo strategies — finite internal state, exact dyadic
//! transition probabilities, no dependence on history beyond the state —
//! the same quantities are exactly computable by dynamic programming
//! over `(internal state × position)` occupancy tables, in the style of
//! time-indexed propagation DPs for random walks. This crate is that
//! second engine:
//!
//! * [`MarkovKernel`] / [`TableKernel`] — a strategy as data: per
//!   internal state, an exact transition distribution over
//!   `(next state, grid action)`. Constructors cover `randomwalk`,
//!   `coin(d, ℓ)`, `nonuniform(d)`, `uniform(ℓ, n, K)` (phase-capped
//!   with exact truncation accounting), every PFA `automaton(...)`
//!   entry, and `mortal(inner, expiry)` as a state-space product.
//!   Lévy, harmonic, spiral and fully-uniform strategies are *not*
//!   Markovian in this sense and fail loudly ([`DpError::Unsupported`])
//!   — never a silent fallback.
//! * [`collapse`] — step sequences between moves (coin flips, oracle
//!   returns) are collapsed by an exact linear solve into per-*move*
//!   transition entries, so the absorption DP's horizon is the move
//!   budget, not the (much larger) step count.
//! * [`absorb`] — the move-indexed forward DP: exact per-trial
//!   absorption CDFs over the target (success probability within any
//!   move budget, conditional expected/median moves).
//! * [`rounds`] — step-indexed DPs for the `observe.rs` metric
//!   vocabulary: coverage-by-round, first-visit curves, found-round
//!   curves, and the χ support statistic.
//! * [`eval`] — the cell evaluator: combines per-strategy CDFs for
//!   independent mixed populations in closed form
//!   (`1 − Π(1 − Fᵢ(t))^kᵢ`), averages over the target placement's
//!   enumerated support, and emits the same row vocabulary as the
//!   Monte Carlo `WorkloadExperiment`.
//!
//! Exactness contract: all kernel probabilities are dyadic rationals
//! representable in `f64`; the DP's only approximations are (a) f64
//! summation round-off and (b) explicitly tracked truncation/pruning
//! mass, which is checked against [`TRUNCATION_TOL`] and turns into a
//! [`DpError::Truncation`] instead of a wrong answer. Evaluation is
//! single-threaded with a fixed summation order, so reports are
//! byte-identical across thread counts and reruns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod absorb;
mod collapse;
mod error;
mod eval;
mod frontier;
mod kernel;
mod rounds;

pub use absorb::{absorption_cdf, absorption_cdf_mode, AbsorptionCurve};
pub use collapse::{collapse, CollapsedKernel, CollapsedRow, MoveExit};
pub use error::DpError;
pub use eval::{
    evaluate, evaluate_with, target_support, DpCellReport, DpMetrics, DpRequest, DpStrategy,
    SolveCache,
};
pub use frontier::{
    sparse_absorption_cdf, sparse_absorption_cdf_stats, sparse_first_landing_cdf, FrontierStats,
};
pub use kernel::{
    coin_kernel, kernel_fingerprint, mortal_kernel, nonuniform_kernel, pfa_kernel,
    randomwalk_kernel, uniform_kernel, KernelTransition, MarkovKernel, PositionClass, TableKernel,
    UNIFORM_PHASE_CAP,
};
pub use rounds::{
    chi_support, step_absorption_cdf, step_absorption_cdf_mode, visit_survival_curve,
    visit_survival_curve_mode,
};

/// Backend selector surfaced through workload specs and the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Monte Carlo: the simulator's trial pool (the default).
    #[default]
    Mc,
    /// Exact dynamic programming over Markov kernels.
    Dp,
}

impl Backend {
    /// Parse a spec/CLI backend name.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "mc" => Some(Backend::Mc),
            "dp" => Some(Backend::Dp),
            _ => None,
        }
    }

    /// The spec/CLI name of this backend.
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Mc => "mc",
            Backend::Dp => "dp",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Occupancy-table representation selector for the exact backend,
/// surfaced as `dp_mode = "dense" | "sparse" | "auto"` on workload
/// specs and `--dp-mode` on the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DpMode {
    /// Dense `(state, position)` tables over the full budget square —
    /// fastest on small cells, refused past [`MAX_TABLE_ENTRIES`].
    Dense,
    /// Sparse frontier of occupied entries with symmetry folding — the
    /// only representation past the dense guard.
    Sparse,
    /// Per-solve choice (the default): dense while the predicted table
    /// stays at or below [`DENSE_BREAKEVEN_ENTRIES`], sparse beyond.
    #[default]
    Auto,
}

impl DpMode {
    /// Parse a spec/CLI mode name.
    pub fn parse(s: &str) -> Option<DpMode> {
        match s {
            "dense" => Some(DpMode::Dense),
            "sparse" => Some(DpMode::Sparse),
            "auto" => Some(DpMode::Auto),
            _ => None,
        }
    }

    /// The spec/CLI name of this mode.
    pub fn as_str(self) -> &'static str {
        match self {
            DpMode::Dense => "dense",
            DpMode::Sparse => "sparse",
            DpMode::Auto => "auto",
        }
    }

    /// Resolve `Auto` against a predicted dense table shape
    /// (`states × (2·span + 1)²` entries): dense at or below the
    /// measured break-even, sparse beyond — but only while sparse is
    /// *plausible*, i.e. a single state's full position square still
    /// fits [`MAX_FRONTIER_ENTRIES`]. Past that, a worst-case (fully
    /// diffusive) kernel would grind through billions of frontier
    /// updates before the reactive cap could trip, so `Auto` stays
    /// dense and fails fast on the dense guard instead; forcing
    /// `dp_mode = "sparse"` explicitly remains an opt-in for kernels
    /// whose live frontier is known to stay thin at huge budgets.
    /// `Dense` and `Sparse` resolve to themselves.
    pub fn resolve(self, states: usize, span: u64) -> DpMode {
        match self {
            DpMode::Auto => {
                let width = (2 * span as u128 + 1).pow(2);
                let dense_fits = (states as u128)
                    .checked_mul(width)
                    .is_some_and(|e| e <= DENSE_BREAKEVEN_ENTRIES as u128);
                if dense_fits {
                    DpMode::Dense
                } else if width <= MAX_FRONTIER_ENTRIES as u128 {
                    DpMode::Sparse
                } else {
                    DpMode::Dense
                }
            }
            mode => mode,
        }
    }
}

impl std::fmt::Display for DpMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Largest internal-state space the per-move collapse will solve
/// exactly (dense Gaussian elimination is cubic in this).
pub const MAX_SOLVE_STATES: usize = 1024;

/// Largest dense occupancy table, in entries
/// (`states × (2·budget + 1)²`), the forward DP will allocate.
pub const MAX_TABLE_ENTRIES: usize = 1 << 23;

/// Maximum probability mass allowed to fall past truncation states or
/// pruning before the evaluation refuses to report
/// ([`DpError::Truncation`]).
pub const TRUNCATION_TOL: f64 = 1e-9;

/// States whose accumulated occupancy mass stays below this floor are
/// ignored by the χ support statistic (they are never meaningfully
/// selected).
pub const CHI_MASS_FLOOR: f64 = 1e-12;

/// Occupancy entries below this mass are dropped by the forward DP; the
/// dropped total is accounted exactly and checked against
/// [`TRUNCATION_TOL`].
pub const PRUNE: f64 = 1e-20;

/// Largest merged sparse frontier, in live `(state, position)` entries,
/// before the sparse DP refuses ([`DpError::Guard`]). Matches the dense
/// entry cap: sparse extends the reachable *budget*, not the reachable
/// *occupancy*.
pub const MAX_FRONTIER_ENTRIES: usize = 1 << 23;

/// Largest move budget / round horizon the packed sparse frontier key
/// can address (each offset coordinate gets 21 bits).
pub const MAX_SPARSE_SPAN: u64 = (1 << 20) - 1;

/// Auto-mode break-even, in predicted dense table entries: at or below
/// this the dense table's branch-free inner loop wins; above it the
/// sparse frontier's occupancy savings dominate. Measured on the
/// bundled crosscheck grid (`BENCH_dp.json` v2: the dense and sparse
/// `backend/*` medians cross between the 10⁵-entry single-state cells
/// and the 10⁶-entry multi-state cells).
pub const DENSE_BREAKEVEN_ENTRIES: usize = 1 << 18;

#[cfg(test)]
mod tests {
    use super::{Backend, DpMode, DENSE_BREAKEVEN_ENTRIES};

    #[test]
    fn backend_names_round_trip() {
        for b in [Backend::Mc, Backend::Dp] {
            assert_eq!(Backend::parse(b.as_str()), Some(b));
            assert_eq!(b.to_string(), b.as_str());
        }
        assert_eq!(Backend::parse("exact"), None);
        assert_eq!(Backend::default(), Backend::Mc);
    }

    #[test]
    fn dp_mode_names_round_trip() {
        for m in [DpMode::Dense, DpMode::Sparse, DpMode::Auto] {
            assert_eq!(DpMode::parse(m.as_str()), Some(m));
            assert_eq!(m.to_string(), m.as_str());
        }
        assert_eq!(DpMode::parse("hashed"), None);
        assert_eq!(DpMode::default(), DpMode::Auto);
    }

    #[test]
    fn auto_resolves_at_the_break_even() {
        // 1 state at span 32: 65² = 4225 entries — dense.
        assert_eq!(DpMode::Auto.resolve(1, 32), DpMode::Dense);
        // Past the break-even with a plausible frontier: sparse.
        assert_eq!(DpMode::Auto.resolve(DENSE_BREAKEVEN_ENTRIES, 32), DpMode::Sparse);
        // A span whose single-state square cannot fit the frontier cap
        // stays dense (and so fails fast on the dense guard) rather
        // than grinding toward the reactive frontier cap: 2·1447+1
        // squared is the last width at or under 2²³.
        assert_eq!(DpMode::Auto.resolve(1, 1447), DpMode::Sparse);
        assert_eq!(DpMode::Auto.resolve(1, 1448), DpMode::Dense);
        assert_eq!(DpMode::Auto.resolve(1024, u64::MAX / 4), DpMode::Dense);
        // Explicit modes resolve to themselves regardless of shape.
        assert_eq!(DpMode::Dense.resolve(1024, 1 << 30), DpMode::Dense);
        assert_eq!(DpMode::Sparse.resolve(1, 1), DpMode::Sparse);
    }
}
