//! Error type for the exact backend.
//!
//! The DP backend never silently falls back to Monte Carlo or silently
//! truncates: everything it cannot compute exactly is a loud
//! [`DpError`] naming the strategy or knob responsible, so workload
//! validation can surface it as a spec-path error.

use std::fmt;

/// Why an exact evaluation could not be produced.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// The request is outside the exact backend's domain (non-Markovian
    /// strategy, unsupported knob, out-of-range parameter).
    Unsupported {
        /// What was asked for.
        what: String,
        /// Why the exact backend refuses it, and what to do instead.
        reason: String,
    },
    /// A cost guard tripped: the computation is well-defined but would
    /// exceed the backend's resource envelope.
    Guard {
        /// The quantity that blew past the guard.
        what: String,
        /// The guard's limit.
        limit: usize,
        /// What to do about it (e.g. switch `dp_mode`, shrink the cell,
        /// fall back to Monte Carlo).
        hint: String,
    },
    /// Truncated tail mass (e.g. the uniform kernel's phase cap)
    /// exceeded [`crate::TRUNCATION_TOL`] — the answer would not be
    /// exact to within tolerance, so no answer is produced.
    Truncation {
        /// The kernel whose truncation states absorbed the mass.
        kernel: String,
        /// The exact probability mass lost to truncation.
        lost: f64,
    },
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::Unsupported { what, reason } => {
                write!(f, "exact backend does not support {what}: {reason}")
            }
            DpError::Guard { what, limit, hint } => {
                write!(
                    f,
                    "exact backend guard tripped: {what} exceeds the limit of {limit}; {hint}"
                )
            }
            DpError::Truncation { kernel, lost } => {
                write!(
                    f,
                    "exact backend truncation for {kernel}: {lost:.3e} probability mass \
                     fell past the truncation states (tolerance {:.0e}); \
                     this cell is not exactly computable at the current caps",
                    crate::TRUNCATION_TOL
                )
            }
        }
    }
}

impl std::error::Error for DpError {}
