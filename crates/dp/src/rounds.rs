//! Step-indexed DPs for the observation-metric vocabulary.
//!
//! The observed simulator (`observe.rs` in `ants-sim`) runs every agent
//! for a fixed number of *rounds* — one kernel step per round — and
//! records coverage, first visits, and found rounds against that clock.
//! The DPs here mirror that clock exactly: they propagate the raw
//! step-indexed kernel (no per-move collapse) and absorb on *move
//! landings*, matching the recorder's rule that a cell is visited at
//! round `r` when a move performed in round `r` lands on it (the origin
//! is recorded at round 0 at spawn; `Origin` teleports do not record).
//!
//! Both public curves are first-passage problems solved by the same
//! dense forward DP:
//!
//! * [`step_absorption_cdf`] — `F(r)` = P(a move has landed on the
//!   target within the first `r` rounds): the found-round curve;
//! * [`visit_survival_curve`] — `q(r)` = P(a bounds cell is still
//!   unvisited after `r` rounds): the coverage/first-visit ingredient
//!   (per-cell curves combine across independent agents as `q̄(r)^n`).
//!
//! [`chi_support`] is the χ analogue: the exact per-round internal-state
//! marginal accumulates per-state occupancy mass, and the footprint is
//! the maximum χ over states whose accumulated mass clears
//! [`crate::CHI_MASS_FLOOR`]. For phase-growing strategies this is a
//! *support statistic* (the largest footprint reached with
//! non-negligible probability), which is the exact-backend analogue of
//! the simulator's running-max footprint column.

use crate::error::DpError;
use crate::kernel::{MarkovKernel, PositionClass};
use ants_automaton::GridAction;
use ants_grid::Point;

/// First-landing CDF of `kernel` on `point` over `horizon` rounds:
/// `out[r]` = P(some move within rounds `1..=r` landed on `point`).
/// `out[0] = 0`; monotone non-decreasing by construction.
fn first_landing_cdf(
    kernel: &dyn MarkovKernel,
    label: &str,
    point: Point,
    horizon: u64,
) -> Result<Vec<f64>, DpError> {
    let states = kernel.num_states();
    let h = horizon as i64;
    let width = 2 * horizon as usize + 1;
    if states.checked_mul(width * width).filter(|&e| e <= crate::MAX_TABLE_ENTRIES).is_none() {
        return Err(DpError::Guard {
            what: format!(
                "dense step-DP table for {label} ({states} states x ({width})^2 positions at \
                 horizon {horizon})"
            ),
            limit: crate::MAX_TABLE_ENTRIES,
            hint: "set dp_mode = \"sparse\" (or --dp-mode sparse) to solve it on the sparse \
                   frontier, shrink the cell, or use backend = \"mc\""
                .into(),
        });
    }
    let mut is_trunc = vec![false; states];
    for &t in kernel.truncation_states() {
        is_trunc[t] = true;
    }

    let w = width;
    let idx =
        |s: usize, x: i64, y: i64| -> usize { (s * w + (x + h) as usize) * w + (y + h) as usize };
    let mut cur = vec![0.0f64; states * w * w];
    let mut nxt = vec![0.0f64; states * w * w];
    cur[idx(kernel.start(), 0, 0)] = 1.0;

    let mut out = Vec::with_capacity(horizon as usize + 1);
    out.push(0.0);
    let mut absorbed = 0.0f64;
    let mut lost = 0.0f64;

    for r in 1..=h {
        let src_r = r - 1;
        let dst_r = r.min(h);
        // Clear the writable sub-box (stale data from two rounds ago).
        for s in 0..states {
            for x in -dst_r..=dst_r {
                let lo = idx(s, x, -dst_r);
                nxt[lo..=lo + (2 * dst_r) as usize].fill(0.0);
            }
        }
        for s in 0..states {
            let row = kernel.row(s, PositionClass::Away);
            if row.is_empty() {
                continue;
            }
            for x in -src_r..=src_r {
                for y in -src_r..=src_r {
                    let p = cur[idx(s, x, y)];
                    if p == 0.0 {
                        continue;
                    }
                    if p < crate::PRUNE {
                        lost += p;
                        continue;
                    }
                    for t in row {
                        let mass = p * t.prob;
                        if mass == 0.0 {
                            continue;
                        }
                        if is_trunc[t.next] {
                            lost += mass;
                            continue;
                        }
                        match t.action {
                            GridAction::Move(dir) => {
                                let (dx, dy) = dir.delta();
                                let (nx, ny) = (x + dx, y + dy);
                                if nx == point.x && ny == point.y {
                                    absorbed += mass;
                                } else {
                                    nxt[idx(t.next, nx, ny)] += mass;
                                }
                            }
                            GridAction::None => nxt[idx(t.next, x, y)] += mass,
                            GridAction::Origin => nxt[idx(t.next, 0, 0)] += mass,
                        }
                    }
                }
            }
        }
        out.push(absorbed);
        std::mem::swap(&mut cur, &mut nxt);
    }

    if lost > crate::TRUNCATION_TOL {
        return Err(DpError::Truncation { kernel: label.to_string(), lost });
    }
    Ok(out)
}

/// The found-round curve: `out[r]` = P(the agent has found `target`
/// within the first `r` rounds of observed stepping).
///
/// # Errors
///
/// [`DpError::Guard`] / [`DpError::Truncation`] as documented on the
/// module; [`DpError::Unsupported`] for an origin target.
pub fn step_absorption_cdf(
    kernel: &dyn MarkovKernel,
    label: &str,
    target: Point,
    horizon: u64,
) -> Result<Vec<f64>, DpError> {
    step_absorption_cdf_mode(kernel, label, target, horizon, crate::DpMode::Dense)
}

/// [`step_absorption_cdf`] with an explicit table representation
/// (see [`crate::DpMode::resolve`] for how `Auto` picks).
///
/// # Errors
///
/// As [`step_absorption_cdf`], against the resolved solver.
pub fn step_absorption_cdf_mode(
    kernel: &dyn MarkovKernel,
    label: &str,
    target: Point,
    horizon: u64,
    mode: crate::DpMode,
) -> Result<Vec<f64>, DpError> {
    if target == Point::ORIGIN {
        return Err(DpError::Unsupported {
            what: "a found-round curve for an origin target".into(),
            reason: "targets are never placed on the origin".into(),
        });
    }
    match mode.resolve(kernel.num_states(), horizon) {
        crate::DpMode::Sparse => {
            crate::frontier::sparse_first_landing_cdf(kernel, label, target, horizon)
                .map(|(cdf, _)| cdf)
        }
        _ => first_landing_cdf(kernel, label, target, horizon),
    }
}

/// The per-cell survival curve: `out[r]` = P(`cell` is still unvisited
/// after `r` rounds). The origin is visited at spawn (round 0), so its
/// curve is identically zero.
///
/// # Errors
///
/// [`DpError::Guard`] / [`DpError::Truncation`] as documented on the
/// module.
pub fn visit_survival_curve(
    kernel: &dyn MarkovKernel,
    label: &str,
    cell: Point,
    horizon: u64,
) -> Result<Vec<f64>, DpError> {
    visit_survival_curve_mode(kernel, label, cell, horizon, crate::DpMode::Dense)
}

/// [`visit_survival_curve`] with an explicit table representation
/// (see [`crate::DpMode::resolve`] for how `Auto` picks).
///
/// # Errors
///
/// As [`visit_survival_curve`], against the resolved solver.
pub fn visit_survival_curve_mode(
    kernel: &dyn MarkovKernel,
    label: &str,
    cell: Point,
    horizon: u64,
    mode: crate::DpMode,
) -> Result<Vec<f64>, DpError> {
    if cell == Point::ORIGIN {
        return Ok(vec![0.0; horizon as usize + 1]);
    }
    let f = match mode.resolve(kernel.num_states(), horizon) {
        crate::DpMode::Sparse => {
            crate::frontier::sparse_first_landing_cdf(kernel, label, cell, horizon)?.0
        }
        _ => first_landing_cdf(kernel, label, cell, horizon)?,
    };
    Ok(f.into_iter().map(|p| 1.0 - p).collect())
}

/// The exact-backend χ footprint: the maximum `χ` over internal states
/// whose accumulated occupancy mass across rounds `0..=horizon` exceeds
/// [`crate::CHI_MASS_FLOOR`]. Positionless — the state marginal does not
/// depend on the grid — so this is cheap even for large kernels.
pub fn chi_support(kernel: &dyn MarkovKernel, horizon: u64) -> f64 {
    let states = kernel.num_states();
    let mut sigma = vec![0.0f64; states];
    let mut next = vec![0.0f64; states];
    let mut acc = vec![0.0f64; states];
    sigma[kernel.start()] = 1.0;
    for _ in 0..=horizon {
        for s in 0..states {
            acc[s] += sigma[s];
        }
        next.fill(0.0);
        for (s, &p) in sigma.iter().enumerate() {
            if p < crate::CHI_MASS_FLOOR {
                continue;
            }
            for t in kernel.row(s, PositionClass::Away) {
                next[t.next] += p * t.prob;
            }
        }
        std::mem::swap(&mut sigma, &mut next);
    }
    let mut is_trunc = vec![false; states];
    for &t in kernel.truncation_states() {
        is_trunc[t] = true;
    }
    let mut chi = f64::NEG_INFINITY;
    for s in 0..states {
        if acc[s] > crate::CHI_MASS_FLOOR && !is_trunc[s] {
            chi = chi.max(kernel.chi(s).chi());
        }
    }
    chi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{
        mortal_kernel, nonuniform_kernel, randomwalk_kernel, uniform_kernel, UNIFORM_PHASE_CAP,
    };

    #[test]
    fn randomwalk_steps_equal_moves() {
        // For the random walk every step is a move, so the step-indexed
        // curve equals the move-indexed one.
        let k = randomwalk_kernel();
        let by_round = step_absorption_cdf(&k, "rw", Point::new(1, 0), 6).unwrap();
        let collapsed = crate::collapse::collapse(&k).unwrap();
        let by_move = crate::absorb::absorption_cdf(&collapsed, "rw", Point::new(1, 0), 6).unwrap();
        for (r, (a, b)) in by_round.iter().zip(by_move.cdf.iter()).enumerate() {
            assert!((a - b).abs() < 1e-15, "round {r}: {a} vs {b}");
        }
    }

    #[test]
    fn nonuniform_rounds_lag_moves() {
        // Coin flips consume rounds without moving, so the round-indexed
        // CDF is pointwise at most the move-indexed one.
        let k = nonuniform_kernel(4).unwrap();
        let by_round = step_absorption_cdf(&k, "nu", Point::new(1, 1), 24).unwrap();
        let collapsed = crate::collapse::collapse(&k).unwrap();
        let by_move =
            crate::absorb::absorption_cdf(&collapsed, "nu", Point::new(1, 1), 24).unwrap();
        for (r, (&br, &bm)) in by_round.iter().zip(by_move.cdf.iter()).enumerate() {
            assert!(br <= bm + 1e-15, "round {r}: {br} > {bm}");
        }
        assert!(by_round[24] > 0.0);
    }

    #[test]
    fn visit_survival_origin_is_zero_and_neighbours_decay() {
        let k = randomwalk_kernel();
        let at_origin = visit_survival_curve(&k, "rw", Point::ORIGIN, 8).unwrap();
        assert!(at_origin.iter().all(|&q| q == 0.0));
        let near = visit_survival_curve(&k, "rw", Point::new(0, 1), 8).unwrap();
        assert_eq!(near[0], 1.0);
        assert_eq!(near[1], 0.75);
        for r in 1..near.len() {
            assert!(near[r] <= near[r - 1]);
        }
    }

    #[test]
    fn mortal_survival_freezes() {
        let inner = randomwalk_kernel();
        let k = mortal_kernel(&inner, 2).unwrap();
        let q = visit_survival_curve(&k, "mortal", Point::new(0, 1), 6).unwrap();
        for r in 2..q.len() {
            assert_eq!(q[r], q[2], "round {r}");
        }
    }

    #[test]
    fn chi_support_static_kernel_is_its_chi() {
        let k = randomwalk_kernel();
        use crate::kernel::MarkovKernel as _;
        assert_eq!(chi_support(&k, 32), k.chi(0).chi());
    }

    #[test]
    fn chi_support_grows_with_horizon_for_uniform() {
        let k = uniform_kernel(1, 2, 1, UNIFORM_PHASE_CAP).unwrap();
        let short = chi_support(&k, 4);
        let long = chi_support(&k, 4096);
        assert!(long > short, "support chi must grow with reachable phases: {short} vs {long}");
    }
}
