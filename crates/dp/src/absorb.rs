//! The move-indexed forward absorption DP.
//!
//! Given a collapsed kernel ([`crate::collapse`]) and a target cell, the
//! DP propagates the exact joint occupancy of `(internal state,
//! position)` one *move* at a time, absorbing mass that lands on the
//! target. The result is the exact single-agent absorption CDF
//! `F(m) = P(find the target within m moves)` — the distribution the
//! simulator estimates with trials.
//!
//! The table is dense over the square `|x|,|y| ≤ B` (`B` = move budget:
//! no agent leaves it) with one layer per internal state. Three exact
//! accounting channels keep the answer honest:
//!
//! * *deficit* — mass that can never move again (halted mortal agents)
//!   is dropped; it never finds the target, so the CDF is unaffected;
//! * *truncation* — mass entering designated truncation states
//!   accumulates and trips [`DpError::Truncation`] past
//!   [`crate::TRUNCATION_TOL`];
//! * *pruning* — occupancy entries below [`crate::PRUNE`] are dropped
//!   with their exact mass added to the truncation account, so pruning
//!   can speed things up but never silently bias the CDF.
//!
//! Summation order is fixed (states, then row-major positions, then
//! exits), so results are bit-identical across runs and thread counts.

use crate::collapse::CollapsedKernel;
use crate::error::DpError;
use ants_grid::Point;

/// The exact absorption CDF of one agent against one target.
#[derive(Debug, Clone)]
pub struct AbsorptionCurve {
    /// `cdf[m]` = probability the agent has found the target within `m`
    /// moves; `cdf[0] = 0`, monotone non-decreasing by construction.
    pub cdf: Vec<f64>,
    /// Exact probability mass lost to truncation states and pruning
    /// (already checked against [`crate::TRUNCATION_TOL`]).
    pub lost: f64,
}

/// Dense `(state, position)` occupancy table over `|x|,|y| <= radius`.
struct Table {
    radius: i64,
    width: usize,
    mass: Vec<f64>,
}

impl Table {
    fn new(states: usize, radius: i64) -> Table {
        let width = (2 * radius + 1) as usize;
        Table { radius, width, mass: vec![0.0; states * width * width] }
    }

    #[inline]
    fn idx(&self, state: usize, x: i64, y: i64) -> usize {
        debug_assert!(x.abs() <= self.radius && y.abs() <= self.radius);
        (state * self.width + (x + self.radius) as usize) * self.width + (y + self.radius) as usize
    }

    /// Zero every entry of `state`'s layer within `|x|,|y| <= r`.
    fn clear_box(&mut self, state: usize, r: i64) {
        let w = self.width;
        for x in -r..=r {
            let row = (state * w + (x + self.radius) as usize) * w;
            let lo = row + (-r + self.radius) as usize;
            self.mass[lo..=lo + (2 * r) as usize].fill(0.0);
        }
    }

    fn clear_box_all(&mut self, states: usize, r: i64) {
        for s in 0..states {
            self.clear_box(s, r);
        }
    }
}

/// [`absorption_cdf`] with an explicit table representation: `Dense`
/// runs the dense solver below, `Sparse` the frontier solver
/// ([`crate::sparse_absorption_cdf`]), and `Auto` resolves against the
/// predicted dense shape ([`crate::DpMode::resolve`]) — dense at or
/// below the measured break-even so small-cell results stay
/// byte-identical to the dense-only backend, sparse beyond it.
///
/// # Errors
///
/// As the resolved solver.
pub fn absorption_cdf_mode(
    collapsed: &CollapsedKernel,
    label: &str,
    target: Point,
    budget: u64,
    mode: crate::DpMode,
) -> Result<AbsorptionCurve, DpError> {
    match mode.resolve(collapsed.rows.len(), budget) {
        crate::DpMode::Sparse => {
            crate::frontier::sparse_absorption_cdf(collapsed, label, target, budget)
        }
        _ => absorption_cdf(collapsed, label, target, budget),
    }
}

/// Compute the exact absorption CDF of a single agent driven by
/// `collapsed` against `target`, for move budgets up to `budget`, on
/// the dense table.
///
/// # Errors
///
/// * [`DpError::Guard`] when the dense table would exceed
///   [`crate::MAX_TABLE_ENTRIES`].
/// * [`DpError::Truncation`] when truncated + pruned mass exceeds
///   [`crate::TRUNCATION_TOL`].
/// * [`DpError::Unsupported`] when `target` is the origin (targets are
///   never placed there).
pub fn absorption_cdf(
    collapsed: &CollapsedKernel,
    label: &str,
    target: Point,
    budget: u64,
) -> Result<AbsorptionCurve, DpError> {
    if target == Point::ORIGIN {
        return Err(DpError::Unsupported {
            what: "absorption at the origin".into(),
            reason: "targets are never placed on the origin".into(),
        });
    }
    let states = collapsed.rows.len();
    let b = budget as i64;
    let width = 2 * budget as usize + 1;
    let entries = states.checked_mul(width * width).filter(|&e| e <= crate::MAX_TABLE_ENTRIES);
    if entries.is_none() {
        return Err(DpError::Guard {
            what: format!(
                "dense occupancy table for {label} ({states} states x ({width})^2 positions at \
                 move budget {budget})"
            ),
            limit: crate::MAX_TABLE_ENTRIES,
            hint: "set dp_mode = \"sparse\" (or --dp-mode sparse) to solve it on the sparse \
                   frontier, shrink the cell, or use backend = \"mc\""
                .into(),
        });
    }

    // Per state, the collapsed row split into clean entries (applied per
    // occupied position) and reset entries (applied once to the state's
    // positional marginal — the Origin teleport erases the position).
    struct Entry {
        next: usize,
        dx: i64,
        dy: i64,
        prob: f64,
    }
    let mut clean: Vec<Vec<Entry>> = Vec::with_capacity(states);
    let mut reset: Vec<Vec<Entry>> = Vec::with_capacity(states);
    let mut trunc_of: Vec<f64> = Vec::with_capacity(states);
    for row in &collapsed.rows {
        let mut c = Vec::new();
        let mut r = Vec::new();
        for &(e, prob) in &row.exits {
            let exit = collapsed.exits[e as usize];
            let (dx, dy) = exit.dir.delta();
            let entry = Entry { next: exit.next, dx, dy, prob };
            if exit.reset {
                r.push(entry);
            } else {
                c.push(entry);
            }
        }
        clean.push(c);
        reset.push(r);
        trunc_of.push(row.trunc);
    }

    let mut cur = Table::new(states, b);
    let mut nxt = Table::new(states, b);
    let start_idx = cur.idx(collapsed.start, 0, 0);
    cur.mass[start_idx] = 1.0;

    let mut cdf = Vec::with_capacity(budget as usize + 1);
    cdf.push(0.0);
    let mut absorbed = 0.0f64;
    let mut lost = 0.0f64;

    for m in 1..=b {
        // Occupied positions after m-1 moves lie within radius m-1.
        let src_r = (m - 1).min(b);
        let dst_r = m.min(b);
        nxt.clear_box_all(states, dst_r);
        for s in 0..states {
            if clean[s].is_empty() && reset[s].is_empty() && trunc_of[s] == 0.0 {
                // Dead state: its mass is deficit — drop the layer.
                continue;
            }
            let mut marginal = 0.0f64;
            for x in -src_r..=src_r {
                for y in -src_r..=src_r {
                    let p = cur.mass[cur.idx(s, x, y)];
                    if p == 0.0 {
                        continue;
                    }
                    if p < crate::PRUNE {
                        lost += p;
                        continue;
                    }
                    marginal += p;
                    for e in &clean[s] {
                        let (nx, ny) = (x + e.dx, y + e.dy);
                        let mass = p * e.prob;
                        if nx == target.x && ny == target.y {
                            absorbed += mass;
                        } else {
                            let i = nxt.idx(e.next, nx, ny);
                            nxt.mass[i] += mass;
                        }
                    }
                }
            }
            if marginal > 0.0 {
                for e in &reset[s] {
                    let mass = marginal * e.prob;
                    if e.dx == target.x && e.dy == target.y {
                        absorbed += mass;
                    } else {
                        let i = nxt.idx(e.next, e.dx, e.dy);
                        nxt.mass[i] += mass;
                    }
                }
                lost += marginal * trunc_of[s];
            }
        }
        cdf.push(absorbed);
        std::mem::swap(&mut cur, &mut nxt);
    }

    if lost > crate::TRUNCATION_TOL {
        return Err(DpError::Truncation { kernel: label.to_string(), lost });
    }
    Ok(AbsorptionCurve { cdf, lost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collapse::collapse;
    use crate::kernel::{mortal_kernel, nonuniform_kernel, randomwalk_kernel};

    #[test]
    fn randomwalk_first_moves_exact() {
        // Target (1,0): F(1) = 1/4. None of the three 1-move misses
        // ((0,1), (0,-1), (-1,0)) is adjacent to the target, so
        // F(2) = F(1). First hits at move 3 are miss->b->target with b a
        // free neighbour of the target: from (0,1) via (0,0) or (1,1),
        // from (0,-1) via (0,0) or (1,-1), from (-1,0) via (0,0) —
        // five paths of probability (1/4)^3 each.
        let c = collapse(&randomwalk_kernel()).unwrap();
        let curve = absorption_cdf(&c, "randomwalk", Point::new(1, 0), 6).unwrap();
        assert_eq!(curve.cdf[0], 0.0);
        assert_eq!(curve.cdf[1], 0.25);
        assert_eq!(curve.cdf[2], 0.25);
        let f3 = 0.25 + 5.0 / 64.0;
        assert!((curve.cdf[3] - f3).abs() < 1e-15, "F(3) = {}", curve.cdf[3]);
        for m in 1..curve.cdf.len() {
            assert!(curve.cdf[m] >= curve.cdf[m - 1]);
        }
        assert_eq!(curve.lost, 0.0);
    }

    #[test]
    fn mortal_curve_flatlines_at_expiry() {
        let inner = randomwalk_kernel();
        let k = mortal_kernel(&inner, 3).unwrap();
        let c = collapse(&k).unwrap();
        let curve = absorption_cdf(&c, "mortal", Point::new(1, 0), 8).unwrap();
        let base = collapse(&inner).unwrap();
        let free = absorption_cdf(&base, "randomwalk", Point::new(1, 0), 8).unwrap();
        // Identical while alive, frozen after the third move.
        for m in 0..=3 {
            assert_eq!(curve.cdf[m], free.cdf[m], "move {m}");
        }
        for m in 4..=8 {
            assert_eq!(curve.cdf[m], curve.cdf[3], "move {m}");
        }
        assert!(free.cdf[8] > curve.cdf[8]);
    }

    #[test]
    fn nonuniform_far_target_unreachable_mass_is_conserved() {
        let k = nonuniform_kernel(4).unwrap();
        let c = collapse(&k).unwrap();
        let curve = absorption_cdf(&c, "nonuniform(4)", Point::new(2, 2), 32).unwrap();
        assert!(curve.cdf[32] > 0.0 && curve.cdf[32] < 1.0);
        assert!(curve.lost < crate::TRUNCATION_TOL);
    }

    #[test]
    fn table_guard_trips_on_huge_budget() {
        let c = collapse(&randomwalk_kernel()).unwrap();
        let err = absorption_cdf(&c, "randomwalk", Point::new(1, 0), 1 << 12).unwrap_err();
        assert!(matches!(err, DpError::Guard { .. }), "{err}");
    }

    #[test]
    fn origin_target_rejected() {
        let c = collapse(&randomwalk_kernel()).unwrap();
        let err = absorption_cdf(&c, "randomwalk", Point::ORIGIN, 4).unwrap_err();
        assert!(matches!(err, DpError::Unsupported { .. }));
    }
}
