//! The [`MarkovKernel`] trait and the zoo's kernel constructors.
//!
//! A kernel is a strategy re-expressed as data: a finite internal-state
//! space and, per state, an exact transition distribution over
//! `(next state, grid action)`. The DP layers ([`crate::collapse`],
//! [`crate::absorb`], [`crate::rounds`]) consume kernels generically —
//! adding a strategy to the exact backend means writing its kernel here
//! and proving (via the crate's proptest battery) that the rows are
//! stochastic and closed.
//!
//! Every kernel in this module mirrors a `SearchStrategy` in `ants-core`
//! transition for transition: one kernel transition = one RNG event of
//! the live strategy = one Markov step of the paper's model. The unit
//! tests drive kernel and strategy side by side to pin that equivalence.

use crate::error::DpError;
use ants_automaton::{GridAction, Pfa};
use ants_core::baselines::RandomWalk;
use ants_core::{CoinNonUniformSearch, SearchStrategy, SelectionComplexity};
use ants_grid::Direction;

/// Position class of a kernel row, per the backend design: a strategy's
/// transition distribution may depend on whether the agent currently
/// stands at the origin. Every strategy shipped today is
/// position-oblivious (their `step` never reads the position), so all
/// current kernels return identical rows for both classes; the parameter
/// keeps the trait ready for position-aware strategies without an API
/// break.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PositionClass {
    /// The agent stands at the origin.
    Origin,
    /// The agent stands anywhere else.
    Away,
}

/// One exact transition: with probability `prob`, emit `action` and move
/// to internal state `next`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTransition {
    /// Successor internal state.
    pub next: usize,
    /// The grid action emitted by this transition.
    pub action: GridAction,
    /// Exact transition probability (a dyadic rational in f64).
    pub prob: f64,
}

/// A strategy's exact finite-state transition structure.
pub trait MarkovKernel {
    /// Human-readable kernel name (used in error messages and reports).
    fn label(&self) -> &str;

    /// Number of internal states.
    fn num_states(&self) -> usize;

    /// The start state (a fresh agent at trial start).
    fn start(&self) -> usize;

    /// The exact transition row of `state` for the given position class.
    fn row(&self, state: usize, pos: PositionClass) -> &[KernelTransition];

    /// The selection-complexity footprint charged while in `state`.
    fn chi(&self, state: usize) -> SelectionComplexity;

    /// Is [`MarkovKernel::chi`] the same for every state?
    fn chi_is_static(&self) -> bool;

    /// Do any rows differ between position classes? The collapse layer
    /// only supports position-oblivious kernels today and errors
    /// otherwise.
    fn position_sensitive(&self) -> bool {
        false
    }

    /// States that stand in for truncated tail mass (e.g. the uniform
    /// kernel's phase cap). The DP tracks the exact probability of ever
    /// entering one and fails if it exceeds [`crate::TRUNCATION_TOL`] —
    /// truncation is never silent.
    fn truncation_states(&self) -> &[usize] {
        &[]
    }
}

/// The canonical [`MarkovKernel`] implementation: fully tabulated rows.
///
/// All zoo kernels are `TableKernel`s built by the constructors below;
/// the DP layers only ever see the trait.
#[derive(Debug, Clone)]
pub struct TableKernel {
    label: String,
    start: usize,
    rows: Vec<Vec<KernelTransition>>,
    chi: Vec<SelectionComplexity>,
    trunc: Vec<usize>,
    chi_static: bool,
}

impl TableKernel {
    fn new(
        label: String,
        start: usize,
        rows: Vec<Vec<KernelTransition>>,
        chi: Vec<SelectionComplexity>,
        trunc: Vec<usize>,
    ) -> TableKernel {
        debug_assert_eq!(rows.len(), chi.len());
        debug_assert!(start < rows.len());
        let chi_static = chi.iter().all(|&c| c == chi[0]);
        TableKernel { label, start, rows, chi, trunc, chi_static }
    }
}

impl MarkovKernel for TableKernel {
    fn label(&self) -> &str {
        &self.label
    }

    fn num_states(&self) -> usize {
        self.rows.len()
    }

    fn start(&self) -> usize {
        self.start
    }

    fn row(&self, state: usize, _pos: PositionClass) -> &[KernelTransition] {
        &self.rows[state]
    }

    fn chi(&self, state: usize) -> SelectionComplexity {
        self.chi[state]
    }

    fn chi_is_static(&self) -> bool {
        self.chi_static
    }

    fn truncation_states(&self) -> &[usize] {
        &self.trunc
    }
}

/// Ceiling of `log₂ x` for `x ≥ 1` (mirrors `ants-core`'s private
/// helper).
pub(crate) fn ceil_log2(x: u64) -> u32 {
    debug_assert!(x >= 1);
    64 - (x - 1).leading_zeros()
}

/// The exact f64 value of the base-coin tails probability `1/2^ℓ`.
fn base_tails(ell: u32) -> Result<f64, DpError> {
    if ell == 0 || ell > 64 {
        return Err(DpError::Unsupported {
            what: format!("base coin resolution ell = {ell}"),
            reason: "ell must be in 1..=64".into(),
        });
    }
    Ok(0.5f64.powi(ell as i32))
}

/// The uniform random walk: one state, four equiprobable moves.
pub fn randomwalk_kernel() -> TableKernel {
    let rows = vec![Direction::ALL
        .iter()
        .map(|&d| KernelTransition { next: 0, action: GridAction::Move(d), prob: 0.25 })
        .collect()];
    let chi = vec![RandomWalk::new().selection_complexity()];
    TableKernel::new("randomwalk".into(), 0, rows, chi, Vec::new())
}

/// Square-search (Algorithm 4) sub-state layout shared by the coin and
/// uniform kernels: `ChooseVertical`, `Vertical(dir, run)`,
/// `ChooseHorizontal`, `Horizontal(dir, run)` — `4k + 2` states for walk
/// flip count `k`.
struct SquareLayout {
    base: usize,
    k: usize,
}

impl SquareLayout {
    fn size(&self) -> usize {
        4 * self.k + 2
    }

    fn choose_vertical(&self) -> usize {
        self.base
    }

    fn vertical(&self, down: usize, run: usize) -> usize {
        self.base + 1 + down * self.k + run
    }

    fn choose_horizontal(&self) -> usize {
        self.base + 1 + 2 * self.k
    }

    fn horizontal(&self, right: usize, run: usize) -> usize {
        self.base + 2 + 2 * self.k + right * self.k + run
    }

    /// Emit the square-search rows into `rows`. `done` is the state the
    /// machine lands in when the horizontal walk finishes (emitting the
    /// finishing `GridAction::None`).
    fn emit(&self, rows: &mut [Vec<KernelTransition>], tails: f64, done: usize) {
        let heads = 1.0 - tails;
        let none = GridAction::None;
        rows[self.choose_vertical()] = vec![
            KernelTransition { next: self.vertical(0, 0), action: none, prob: 0.5 },
            KernelTransition { next: self.vertical(1, 0), action: none, prob: 0.5 },
        ];
        for (down, dir) in [(0, Direction::Up), (1, Direction::Down)] {
            for run in 0..self.k {
                let next_on_tails = if run + 1 < self.k {
                    self.vertical(down, run + 1)
                } else {
                    self.choose_horizontal()
                };
                rows[self.vertical(down, run)] = vec![
                    KernelTransition {
                        next: self.vertical(down, 0),
                        action: GridAction::Move(dir),
                        prob: heads,
                    },
                    KernelTransition { next: next_on_tails, action: none, prob: tails },
                ];
            }
        }
        rows[self.choose_horizontal()] = vec![
            KernelTransition { next: self.horizontal(0, 0), action: none, prob: 0.5 },
            KernelTransition { next: self.horizontal(1, 0), action: none, prob: 0.5 },
        ];
        for (right, dir) in [(0, Direction::Left), (1, Direction::Right)] {
            for run in 0..self.k {
                let next_on_tails =
                    if run + 1 < self.k { self.horizontal(right, run + 1) } else { done };
                rows[self.horizontal(right, run)] = vec![
                    KernelTransition {
                        next: self.horizontal(right, 0),
                        action: GridAction::Move(dir),
                        prob: heads,
                    },
                    KernelTransition { next: next_on_tails, action: none, prob: tails },
                ];
            }
        }
    }
}

/// `coin(d, ℓ)` — Algorithm 1 driven by composite coins
/// (`CoinNonUniformSearch`): repeat `search(k, ℓ)` followed by an oracle
/// return, `k = ⌈log₂ d / ℓ⌉`.
///
/// # Errors
///
/// [`DpError::Unsupported`] for out-of-range `d`/`ell` (same domain as
/// the live strategy).
pub fn coin_kernel(d: u64, ell: u32) -> Result<TableKernel, DpError> {
    if d < 2 {
        return Err(DpError::Unsupported {
            what: format!("coin kernel for d = {d}"),
            reason: "non-uniform search requires D >= 2".into(),
        });
    }
    let tails = base_tails(ell)?;
    // The live strategy owns the k formula and the chi accounting; build
    // one and read both off it so kernel and simulator cannot drift.
    let live = CoinNonUniformSearch::new(d, ell).map_err(|e| DpError::Unsupported {
        what: format!("coin kernel for d = {d}, ell = {ell}"),
        reason: e.to_string(),
    })?;
    let k = live.k() as usize;
    let square = SquareLayout { base: 0, k };
    let returning = square.size();
    let mut rows = vec![Vec::new(); returning + 1];
    square.emit(&mut rows, tails, returning);
    rows[returning] = vec![KernelTransition {
        next: square.choose_vertical(),
        action: GridAction::Origin,
        prob: 1.0,
    }];
    let chi = vec![live.selection_complexity(); rows.len()];
    Ok(TableKernel::new(
        format!("coin(d={d}, ell={ell})"),
        square.choose_vertical(),
        rows,
        chi,
        Vec::new(),
    ))
}

/// `nonuniform(d)` — Algorithm 1 at the resolution the live
/// `NonUniformSearch` uses: `ℓ = ⌈log₂ d⌉`.
///
/// # Errors
///
/// As [`coin_kernel`].
pub fn nonuniform_kernel(d: u64) -> Result<TableKernel, DpError> {
    if d < 2 {
        return Err(DpError::Unsupported {
            what: format!("nonuniform kernel for d = {d}"),
            reason: "non-uniform search requires D >= 2".into(),
        });
    }
    let ell = ceil_log2(d).max(1);
    let mut k = coin_kernel(d, ell)?;
    k.label = format!("nonuniform(d={d})");
    Ok(k)
}

/// Default phase cap for [`uniform_kernel`]: phases beyond the cap are
/// routed to an explicit truncation state whose exact mass the DP
/// checks against [`crate::TRUNCATION_TOL`]. Reaching phase `i` requires
/// `Σ k_j` consecutive-tails runs, so the cap-overflow probability decays
/// like `2^{-Σ k_j}` — far below the tolerance for every practical cell.
pub const UNIFORM_PHASE_CAP: u32 = 12;

/// `uniform(ℓ, n, K)` — Algorithm 5 (`UniformSearch`), phases truncated
/// at `cap` with exact overflow accounting.
///
/// # Errors
///
/// [`DpError::Unsupported`] for out-of-range parameters.
pub fn uniform_kernel(
    ell: u32,
    n_agents: u64,
    big_k: u32,
    cap: u32,
) -> Result<TableKernel, DpError> {
    if n_agents == 0 || big_k == 0 || cap == 0 {
        return Err(DpError::Unsupported {
            what: format!("uniform kernel (ell={ell}, n={n_agents}, K={big_k}, cap={cap})"),
            reason: "n, K and the phase cap must be positive".into(),
        });
    }
    let tails = base_tails(ell)?;
    let heads = 1.0 - tails;
    let none = GridAction::None;
    // k_i = K + max{i − ⌊log₂ n / ℓ⌋, 0} — mirrors UniformSearch::phase_coin_k.
    let log_n_over_ell = (63 - n_agents.leading_zeros()) / ell;
    let phase_coin_k = |i: u32| (big_k + i.saturating_sub(log_n_over_ell)) as usize;
    // Per-phase block: PhaseCoin(t) for t in 0..k_i, then search(i, ℓ),
    // then Returning.
    let mut offsets = Vec::with_capacity(cap as usize + 1);
    let mut total = 0usize;
    for i in 1..=cap {
        offsets.push(total);
        total += phase_coin_k(i) + (4 * i as usize + 2) + 1;
    }
    let trunc_state = total;
    total += 1;
    let phase_coin = |i: u32, t: usize| offsets[(i - 1) as usize] + t;
    let square =
        |i: u32| SquareLayout { base: offsets[(i - 1) as usize] + phase_coin_k(i), k: i as usize };
    let returning = |i: u32| square(i).base + square(i).size();

    let mut rows = vec![Vec::new(); total];
    let mut chi = Vec::with_capacity(total);
    for i in 1..=cap {
        let k_i = phase_coin_k(i);
        let sq = square(i);
        for t in 0..k_i {
            let next_on_tails = if t + 1 < k_i {
                phase_coin(i, t + 1)
            } else if i < cap {
                phase_coin(i + 1, 0)
            } else {
                trunc_state
            };
            rows[phase_coin(i, t)] = vec![
                KernelTransition { next: sq.choose_vertical(), action: none, prob: heads },
                KernelTransition { next: next_on_tails, action: none, prob: tails },
            ];
        }
        sq.emit(&mut rows, tails, returning(i));
        rows[returning(i)] = vec![KernelTransition {
            next: phase_coin(i, 0),
            action: GridAction::Origin,
            prob: 1.0,
        }];
        // Mirrors UniformSearch::selection_complexity at phase i: the
        // phase index and walk counter (⌈log i⌉ bits each), the phase-coin
        // counter (⌈log(K + i)⌉ bits), plus O(1) phase bits.
        let b = 2 * ceil_log2(u64::from(i)) + ceil_log2(u64::from(big_k + i)) + 3;
        let sc = SelectionComplexity::new(b, ell);
        for _ in 0..(k_i + sq.size() + 1) {
            chi.push(sc);
        }
    }
    rows[trunc_state] = vec![KernelTransition { next: trunc_state, action: none, prob: 1.0 }];
    chi.push(*chi.last().expect("cap >= 1"));
    Ok(TableKernel::new(
        format!("uniform(ell={ell}, n={n_agents}, K={big_k})"),
        phase_coin(1, 0),
        rows,
        chi,
        vec![trunc_state],
    ))
}

/// `automaton(...)` — any PFA from the zoo. One kernel state per PFA
/// state; the action of a transition is the *successor's* label, exactly
/// as `AutomatonStrategy::step` emits it.
pub fn pfa_kernel(label: &str, pfa: &Pfa) -> TableKernel {
    let rows = pfa
        .state_ids()
        .map(|s| {
            pfa.transitions(s)
                .iter()
                .map(|&(next, p)| KernelTransition {
                    next: next.0,
                    action: pfa.label(next),
                    prob: p.to_f64(),
                })
                .collect()
        })
        .collect();
    let chi = vec![SelectionComplexity::new(pfa.memory_bits(), pfa.ell()); pfa.num_states()];
    TableKernel::new(label.to_string(), pfa.start().0, rows, chi, Vec::new())
}

/// `mortal(inner, expiry)` — the `Expiring` wrapper as a state-space
/// product: `(inner state, moves used)` for `moves used ∈ 0..=expiry`.
/// Rows at `moves used = expiry` are the halted agent: a `None`
/// self-loop that never moves again (the DP books that mass as
/// never-finds, exactly like the simulator's halted steppers).
///
/// # Errors
///
/// [`DpError::Guard`] when the product state space exceeds
/// [`crate::MAX_SOLVE_STATES`].
pub fn mortal_kernel(inner: &TableKernel, expiry: u64) -> Result<TableKernel, DpError> {
    if expiry == 0 {
        return Err(DpError::Unsupported {
            what: format!("mortal({}, 0)", inner.label()),
            reason: "expiry must be at least one move".into(),
        });
    }
    let s = inner.num_states();
    let layers = (expiry + 1) as usize;
    let states =
        s.checked_mul(layers).filter(|&n| n <= crate::MAX_SOLVE_STATES).ok_or_else(|| {
            DpError::Guard {
                what: format!(
                    "mortal({}, {expiry}) product state space ({s} x {layers})",
                    inner.label()
                ),
                limit: crate::MAX_SOLVE_STATES,
                hint: "shrink the expiry or use backend = \"mc\"".into(),
            }
        })?;
    let at = |state: usize, used: usize| used * s + state;
    let mut rows = vec![Vec::new(); states];
    let mut chi = Vec::with_capacity(states);
    // The move counter holds expiry + 1 values — same accounting as
    // Expiring::selection_complexity.
    let counter_bits = u64::BITS - expiry.leading_zeros();
    for used in 0..layers {
        for state in 0..s {
            let inner_chi = inner.chi[state];
            chi.push(SelectionComplexity::new(
                inner_chi.memory_bits() + counter_bits,
                inner_chi.ell(),
            ));
            rows[at(state, used)] = if used as u64 >= expiry {
                vec![KernelTransition {
                    next: at(state, used),
                    action: GridAction::None,
                    prob: 1.0,
                }]
            } else {
                inner.rows[state]
                    .iter()
                    .map(|t| KernelTransition {
                        next: at(t.next, if t.action.is_move() { used + 1 } else { used }),
                        action: t.action,
                        prob: t.prob,
                    })
                    .collect()
            };
        }
    }
    let trunc =
        (0..layers).flat_map(|used| inner.trunc.iter().map(move |&t| at(t, used))).collect();
    Ok(TableKernel::new(
        format!("mortal({}, {expiry})", inner.label()),
        at(inner.start, 0),
        rows,
        chi,
        trunc,
    ))
}

/// Content fingerprint of a kernel: a 128-bit FNV-1a hash over every
/// observable the DP layers consume — state count, start state, both
/// position-class rows (successor, action, exact probability bits),
/// per-state chi, truncation states, and the trait flags. Two kernels
/// with equal fingerprints produce byte-identical DP curves, which is
/// what makes the fingerprint a sound memoization key
/// ([`crate::SolveCache`]).
pub fn kernel_fingerprint(k: &dyn MarkovKernel) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;
    struct Fnv(u128);
    impl Fnv {
        fn bytes(&mut self, b: &[u8]) {
            for &byte in b {
                self.0 ^= u128::from(byte);
                self.0 = self.0.wrapping_mul(PRIME);
            }
        }
        fn u64(&mut self, v: u64) {
            self.bytes(&v.to_le_bytes());
        }
    }
    let action_code = |a: GridAction| -> u64 {
        match a {
            GridAction::None => 0,
            GridAction::Origin => 1,
            GridAction::Move(d) => {
                let (dx, dy) = d.delta();
                // Encodes the move direction injectively: 2 + (dx+1) + 3(dy+1).
                2 + (dx + 1 + 3 * (dy + 1)) as u64
            }
        }
    };
    let mut h = Fnv(OFFSET);
    h.u64(k.num_states() as u64);
    h.u64(k.start() as u64);
    h.u64(u64::from(k.chi_is_static()));
    h.u64(u64::from(k.position_sensitive()));
    for s in 0..k.num_states() {
        let chi = k.chi(s);
        h.u64(u64::from(chi.memory_bits()));
        h.u64(u64::from(chi.ell()));
        for pos in [PositionClass::Origin, PositionClass::Away] {
            let row = k.row(s, pos);
            h.u64(row.len() as u64);
            for t in row {
                h.u64(t.next as u64);
                h.u64(action_code(t.action));
                h.u64(t.prob.to_bits());
            }
        }
    }
    for &t in k.truncation_states() {
        h.u64(t as u64);
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ants_automaton::library;
    use ants_core::UniformSearch;

    fn row_sum(k: &TableKernel, s: usize) -> f64 {
        k.row(s, PositionClass::Away).iter().map(|t| t.prob).sum()
    }

    #[test]
    fn randomwalk_matches_live_strategy() {
        let k = randomwalk_kernel();
        assert_eq!(k.num_states(), 1);
        assert_eq!(row_sum(&k, 0), 1.0);
        assert_eq!(k.chi(0), RandomWalk::new().selection_complexity());
        assert!(k.chi_is_static());
        // Four distinct directions, each 1/4.
        let dirs: Vec<GridAction> =
            k.row(0, PositionClass::Origin).iter().map(|t| t.action).collect();
        assert_eq!(dirs.len(), 4);
        for d in Direction::ALL {
            assert!(dirs.contains(&GridAction::Move(d)));
        }
    }

    #[test]
    fn coin_kernel_shape_and_chi() {
        let k = coin_kernel(16, 2).unwrap();
        let live = CoinNonUniformSearch::new(16, 2).unwrap();
        // 4k + 3 states for walk count k.
        assert_eq!(k.num_states(), 4 * live.k() as usize + 3);
        assert_eq!(k.chi(0), live.selection_complexity());
        assert!(k.chi_is_static());
        for s in 0..k.num_states() {
            assert!((row_sum(&k, s) - 1.0).abs() < 1e-15, "state {s}");
        }
    }

    #[test]
    fn nonuniform_kernel_uses_live_ell() {
        let k = nonuniform_kernel(1000).unwrap();
        // ell = ceil(log2 1000) = 10, k = 1 -> 7 states.
        assert_eq!(k.num_states(), 7);
        assert_eq!(k.chi(0).ell(), 10);
    }

    #[test]
    fn uniform_kernel_start_chi_matches_live_phase_one() {
        let k = uniform_kernel(2, 8, 2, UNIFORM_PHASE_CAP).unwrap();
        let live = UniformSearch::new(2, 8, 2).unwrap();
        assert_eq!(k.chi(k.start()), live.selection_complexity());
        assert!(!k.chi_is_static(), "uniform chi grows with the phase");
        assert_eq!(k.truncation_states().len(), 1);
        for s in 0..k.num_states() {
            assert!((row_sum(&k, s) - 1.0).abs() < 1e-15, "state {s}");
        }
    }

    #[test]
    fn pfa_kernel_action_is_successor_label() {
        let pfa = library::drift_walk(4).unwrap();
        let k = pfa_kernel("automaton(drift4)", &pfa);
        assert_eq!(k.num_states(), pfa.num_states());
        for s in pfa.state_ids() {
            for (t, &(next, p)) in k.row(s.0, PositionClass::Away).iter().zip(pfa.transitions(s)) {
                assert_eq!(t.next, next.0);
                assert_eq!(t.action, pfa.label(next));
                assert_eq!(t.prob, p.to_f64());
            }
        }
        assert_eq!(k.chi(0), SelectionComplexity::new(pfa.memory_bits(), pfa.ell()));
    }

    #[test]
    fn mortal_kernel_product_counts_moves() {
        let inner = randomwalk_kernel();
        let k = mortal_kernel(&inner, 3).unwrap();
        assert_eq!(k.num_states(), 4); // 1 inner state x (3 + 1) counter values
                                       // Alive layers: moves advance the counter.
        for used in 0..3 {
            for t in k.row(used, PositionClass::Away) {
                assert!(t.action.is_move());
                assert_eq!(t.next, used + 1);
            }
        }
        // Expired layer: a None self-loop.
        let halted = k.row(3, PositionClass::Away);
        assert_eq!(halted.len(), 1);
        assert_eq!(halted[0].action, GridAction::None);
        assert_eq!(halted[0].next, 3);
        // Counter bits match Expiring: expiry 3 needs 2 bits.
        assert_eq!(k.chi(0).memory_bits(), inner.chi(0).memory_bits() + 2);
    }

    #[test]
    fn fingerprint_separates_kernels_and_is_stable() {
        let a = kernel_fingerprint(&randomwalk_kernel());
        let b = kernel_fingerprint(&nonuniform_kernel(4).unwrap());
        let c = kernel_fingerprint(&nonuniform_kernel(8).unwrap());
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(a, kernel_fingerprint(&randomwalk_kernel()));
        // The mortal wrapper changes the fingerprint even though the
        // inner rows are shared.
        let inner = randomwalk_kernel();
        let m = kernel_fingerprint(&mortal_kernel(&inner, 3).unwrap());
        assert_ne!(a, m);
    }

    #[test]
    fn mortal_kernel_guards_state_blowup() {
        let inner = coin_kernel(16, 1).unwrap();
        let err = mortal_kernel(&inner, 1 << 40).unwrap_err();
        assert!(matches!(err, DpError::Guard { .. }), "{err}");
    }
}
