//! Exact evaluation of one workload cell.
//!
//! [`evaluate`] is the DP backend's counterpart of "run `trials` Monte
//! Carlo trials and aggregate": it combines the per-strategy absorption
//! curves into the exact law of the trial statistic and emits the same
//! row vocabulary as the simulator-backed `WorkloadExperiment`.
//!
//! The combination is closed-form because agents are independent and a
//! mixed population assigns each agent a strategy iid with probability
//! `wᵢ / Σw`: the per-agent find CDF against a target `t` is the
//! mixture `F̄_t(m) = Σᵢ pᵢ F_{i,t}(m)`, and the trial statistic —
//! the minimum find over `n` agents — has CDF
//! `H_t(m) = 1 − (1 − F̄_t(m))ⁿ`. Target placements enumerate to a
//! finite support ([`target_support`]), so the cell's law is the finite
//! mixture `H(m) = Σ_t w_t H_t(m)` — evaluated exactly, in a fixed
//! summation order, on one thread.
//!
//! ## Exact columns vs. exact-expectation proxies
//!
//! `success`, `median moves`, `mean moves`, `found@R` and
//! `mean found round` are *laws of the reported statistic*: the MC
//! column estimates exactly the quantity the DP computes. Three metric
//! columns aggregate per-trial ratios whose exact law is not a function
//! of per-cell marginals; for these the DP reports the standard
//! exact-expectation proxy and documents the difference:
//!
//! * `coverage` — exact *expected* coverage fraction (MC averages
//!   per-trial fractions; identical in expectation, so Wilson-style
//!   agreement still holds);
//! * `adversarial left` — true iff the *expected* number of unvisited
//!   bounds cells is ≥ 1 (MC reports "every trial left a cell");
//! * `mean first visit` — ratio of expectations
//!   `Σ_c E[first-visit · visited] / Σ_c P(visited)` (MC averages
//!   per-trial ratios);
//! * `max chi` / `chi obs` — the χ *support* statistic: the largest
//!   footprint reached with probability above
//!   [`crate::CHI_MASS_FLOOR`] (MC reports the per-run running max).

use crate::absorb::absorption_cdf_mode;
use crate::collapse::{collapse, CollapsedKernel};
use crate::error::DpError;
use crate::kernel::{kernel_fingerprint, MarkovKernel, TableKernel};
use crate::rounds::{chi_support, step_absorption_cdf_mode, visit_survival_curve_mode};
use crate::DpMode;
use ants_grid::{Point, Rect, TargetPlacement};
use std::sync::Arc;

/// One population entry: a weighted kernel.
#[derive(Debug, Clone)]
pub struct DpStrategy {
    /// Assignment weight (each agent runs this kernel with probability
    /// `weight / Σ weights`).
    pub weight: u64,
    /// The strategy's exact kernel.
    pub kernel: TableKernel,
}

/// Which observation metrics to evaluate, against which bounds/horizon.
#[derive(Debug, Clone, Copy, Default)]
pub struct DpMetrics {
    /// Coverage fraction + adversarial-cell columns.
    pub coverage: bool,
    /// Mean first-visit column.
    pub first_visit: bool,
    /// `cover@R/4` / `cover@R/2` columns.
    pub round_trace: bool,
    /// Observed-χ column.
    pub chi: bool,
    /// `found@R` / `mean found round` columns.
    pub found_round: bool,
    /// Max-norm radius of the observation bounds (`Rect::ball`).
    pub bounds_radius: u64,
    /// The observation horizon in rounds.
    pub rounds: u64,
}

impl DpMetrics {
    fn needs_survival(&self) -> bool {
        self.coverage || self.first_visit || self.round_trace
    }
}

/// One cell's exact evaluation request.
#[derive(Debug, Clone)]
pub struct DpRequest {
    /// Number of independent agents per trial.
    pub agents: u64,
    /// The per-agent move budget.
    pub move_budget: u64,
    /// Trial count of the MC twin — only used to scale the `found`
    /// column to an expected count.
    pub trials: u64,
    /// The weighted population.
    pub population: Vec<DpStrategy>,
    /// Enumerated target support with probabilities (see
    /// [`target_support`]).
    pub targets: Vec<(Point, f64)>,
    /// Observation metrics to evaluate, if any.
    pub metrics: Option<DpMetrics>,
    /// Table representation for every DP in the cell (see
    /// [`DpMode::resolve`] for how `Auto` picks per solve).
    pub mode: DpMode,
}

/// A cross-cell cache for solved DP curves.
///
/// The exact backend solves one curve per `(kernel, point, clock,
/// mode)`; sweeps re-solve the same curves cell after cell whenever only
/// the agent count or trial count varies. Implementations (the workload
/// layer's `DpMemo`) store the solved curves keyed by a string that
/// starts from [`kernel_fingerprint`], so a hit is guaranteed to return
/// exactly the bytes a fresh solve would produce — memoization can never
/// change a report.
pub trait SolveCache {
    /// Look up a previously stored curve.
    fn get(&self, key: &str) -> Option<Arc<Vec<f64>>>;
    /// Store a freshly solved curve.
    fn put(&self, key: &str, value: Arc<Vec<f64>>);
}

/// The exact cell report, mirroring the MC row vocabulary.
#[derive(Debug, Clone)]
pub struct DpCellReport {
    /// Exact trial success probability within the move budget.
    pub success: f64,
    /// Expected number of successful trials (`success × trials`).
    pub found: f64,
    /// Conditional median of the winning move count (NaN if success 0).
    pub median_moves: f64,
    /// Conditional mean of the winning move count (NaN if success 0).
    pub mean_moves: f64,
    /// χ support statistic over the move budget.
    pub max_chi: f64,
    /// Expected coverage fraction of the bounds.
    pub coverage: Option<f64>,
    /// Expected unvisited bounds cells ≥ 1.
    pub adversarial_left: Option<bool>,
    /// Ratio-of-expectations mean first-visit round.
    pub mean_first_visit: Option<f64>,
    /// Expected coverage at rounds `⌈R/4⌉` and `⌈R/2⌉`.
    pub round_trace: Option<(f64, f64)>,
    /// χ support statistic over the observation horizon.
    pub chi_obs: Option<f64>,
    /// `(found@R, mean found round)` against the round clock.
    pub found_round: Option<(f64, f64)>,
}

/// Work guard for the per-cell survival sweep: the product
/// `bounds area × states × horizon³` must stay below this (the sweep
/// runs one dense step DP per bounds cell).
pub(crate) const MAX_METRIC_WORK: u128 = 1 << 33;

/// Enumerate a target placement's exact support: every candidate point
/// with its placement probability. Mirrors `TargetPlacement::place`
/// point for point.
pub fn target_support(placement: &TargetPlacement) -> Result<Vec<(Point, f64)>, DpError> {
    match *placement {
        TargetPlacement::Fixed(p) => {
            if p == Point::ORIGIN {
                return Err(DpError::Unsupported {
                    what: "a fixed target at the origin".into(),
                    reason: "targets are never placed on the origin".into(),
                });
            }
            Ok(vec![(p, 1.0)])
        }
        TargetPlacement::Corner { distance } => {
            Ok(vec![(Point::new(distance as i64, distance as i64), 1.0)])
        }
        TargetPlacement::UniformInBall { distance } => {
            let d = distance as i64;
            let count = ((2 * distance + 1).pow(2) - 1) as usize;
            let w = 1.0 / count as f64;
            let mut pts = Vec::with_capacity(count);
            for y in -d..=d {
                for x in -d..=d {
                    let p = Point::new(x, y);
                    if p != Point::ORIGIN {
                        pts.push((p, w));
                    }
                }
            }
            Ok(pts)
        }
        TargetPlacement::Ring { distance } => {
            let d = distance as i64;
            let count = 8 * distance as usize;
            let w = 1.0 / count as f64;
            let pts = (0..count as i64)
                .map(|idx| {
                    let side = idx / (2 * d);
                    let off = idx % (2 * d) - d;
                    let p = match side {
                        0 => Point::new(off + 1, d),
                        1 => Point::new(off, -d),
                        2 => Point::new(-d, off + 1),
                        _ => Point::new(d, off),
                    };
                    (p, w)
                })
                .collect();
            Ok(pts)
        }
    }
}

/// Normalised population weights.
fn weights(population: &[DpStrategy]) -> Result<Vec<f64>, DpError> {
    let total: u64 = population.iter().map(|s| s.weight).sum();
    if population.is_empty() || total == 0 {
        return Err(DpError::Unsupported {
            what: "an empty population".into(),
            reason: "at least one positively weighted strategy is required".into(),
        });
    }
    Ok(population.iter().map(|s| s.weight as f64 / total as f64).collect())
}

/// Conditional median/mean of a CDF `h` (already the law of the trial
/// statistic): smallest `m` with `h[m] ≥ success/2`, and
/// `Σ m·Δh(m) / success`. Both NaN when `success` is zero.
fn conditional_moments(h: &[f64]) -> (f64, f64) {
    let success = *h.last().expect("non-empty CDF");
    if success <= 0.0 {
        return (f64::NAN, f64::NAN);
    }
    let half = success / 2.0;
    let median = h.iter().position(|&p| p >= half).expect("success/2 <= success is reached") as f64;
    let mut mean = 0.0;
    for m in 1..h.len() {
        mean += m as f64 * (h[m] - h[m - 1]);
    }
    (median, mean / success)
}

/// Collapse `kernel` into `slot` on first use; later calls return the
/// cached collapse. A fully memoized cell never pays for the collapse.
fn collapsed_of<'a>(
    slot: &'a mut Option<CollapsedKernel>,
    kernel: &TableKernel,
) -> Result<&'a CollapsedKernel, DpError> {
    if slot.is_none() {
        *slot = Some(collapse(kernel)?);
    }
    Ok(slot.as_ref().expect("just filled"))
}

/// Look `key` up in `cache` (when present), solving and storing on a
/// miss. The returned `Arc` is exactly the fresh solve's output, so a
/// hit can never change a report.
fn cached_curve(
    cache: Option<&dyn SolveCache>,
    key: String,
    solve: impl FnOnce() -> Result<Vec<f64>, DpError>,
) -> Result<Arc<Vec<f64>>, DpError> {
    if let Some(c) = cache {
        if let Some(hit) = c.get(&key) {
            return Ok(hit);
        }
    }
    let curve = Arc::new(solve()?);
    if let Some(c) = cache {
        c.put(&key, Arc::clone(&curve));
    }
    Ok(curve)
}

/// Evaluate one cell exactly.
///
/// # Errors
///
/// Any [`DpError`] from the collapse, the DPs, or the guards; the error
/// names the strategy or knob responsible.
pub fn evaluate(req: &DpRequest) -> Result<DpCellReport, DpError> {
    evaluate_with(req, None)
}

/// [`evaluate`] with an optional cross-cell curve cache: every
/// absorption, survival, and found-round curve is looked up before
/// solving and stored after solving. Cache keys start from
/// [`kernel_fingerprint`], so two cells sharing a strategy, a point,
/// a clock and a [`DpMode`] share the solve — byte-identically.
///
/// # Errors
///
/// As [`evaluate`].
pub fn evaluate_with(
    req: &DpRequest,
    cache: Option<&dyn SolveCache>,
) -> Result<DpCellReport, DpError> {
    if req.agents == 0 {
        return Err(DpError::Unsupported {
            what: "a cell with zero agents".into(),
            reason: "at least one agent is required".into(),
        });
    }
    if req.targets.is_empty() {
        return Err(DpError::Unsupported {
            what: "a cell with an empty target support".into(),
            reason: "the target placement enumerated to no candidate points".into(),
        });
    }
    let p_strat = weights(&req.population)?;
    let n = req.agents as f64;
    let budget = req.move_budget as usize;

    // --- Base columns: the exact law of the trial statistic. ---
    // Per strategy, collapse once (lazily — a fully memoized cell skips
    // it); per (strategy, target), one absorption DP or cache hit.
    let mode = req.mode;
    let fps: Vec<u128> = req.population.iter().map(|s| kernel_fingerprint(&s.kernel)).collect();
    let mut collapsed: Vec<Option<CollapsedKernel>> = req.population.iter().map(|_| None).collect();
    let mut h_mix = vec![0.0f64; budget + 1];
    for &(target, tw) in &req.targets {
        let mut f_bar = vec![0.0f64; budget + 1];
        for (si, strat) in req.population.iter().enumerate() {
            let key =
                format!("a|{:032x}|{},{}|{}|{mode}", fps[si], target.x, target.y, req.move_budget);
            let cdf = cached_curve(cache, key, || {
                let c = collapsed_of(&mut collapsed[si], &strat.kernel)?;
                absorption_cdf_mode(c, strat.kernel.label(), target, req.move_budget, mode)
                    .map(|curve| curve.cdf)
            })?;
            for (fb, &c) in f_bar.iter_mut().zip(cdf.iter()) {
                *fb += p_strat[si] * c;
            }
        }
        for (h, &fb) in h_mix.iter_mut().zip(f_bar.iter()) {
            *h += tw * (1.0 - (1.0 - fb).powf(n));
        }
    }
    let success = *h_mix.last().expect("budget + 1 entries");
    let (median_moves, mean_moves) = conditional_moments(&h_mix);
    let max_chi = req
        .population
        .iter()
        .map(|s| {
            if s.kernel.chi_is_static() {
                s.kernel.chi(s.kernel.start()).chi()
            } else {
                chi_support(&s.kernel, req.move_budget)
            }
        })
        .fold(f64::NEG_INFINITY, f64::max);

    // --- Metric columns against the round clock. ---
    let mut report = DpCellReport {
        success,
        found: success * req.trials as f64,
        median_moves,
        mean_moves,
        max_chi,
        coverage: None,
        adversarial_left: None,
        mean_first_visit: None,
        round_trace: None,
        chi_obs: None,
        found_round: None,
    };
    let Some(metrics) = req.metrics else {
        return Ok(report);
    };
    let horizon = metrics.rounds;
    let hz = horizon as usize;

    if metrics.needs_survival() {
        let bounds = Rect::ball(metrics.bounds_radius);
        let area = bounds.area();
        let states: usize = req.population.iter().map(|s| s.kernel.num_states()).max().unwrap();
        let work = area as u128 * states as u128 * (horizon as u128).pow(3);
        if work > MAX_METRIC_WORK {
            return Err(DpError::Guard {
                what: format!(
                    "coverage/first-visit sweep (bounds area {area} x {states} states x \
                     horizon {horizon}^3 step-DP work)"
                ),
                limit: MAX_METRIC_WORK as usize,
                hint: "shrink the bounds or horizon, drop the survival metrics, or use \
                       backend = \"mc\""
                    .into(),
            });
        }
        // Per bounds cell: population survival q̄^n at every round.
        let mut sum_unvisited_h = 0.0f64; // Σ_c q̄_c(H)^n
        let mut cover_q = 0.0f64; // Σ_c v_c(⌈R/4⌉)
        let mut cover_half = 0.0f64; // Σ_c v_c(⌈R/2⌉)
        let mut fv_num = 0.0f64; // Σ_c Σ_r r·Δv_c(r)
        let mut fv_den = 0.0f64; // Σ_c v_c(H)
        let at_q = horizon.div_ceil(4) as usize;
        let at_h = horizon.div_ceil(2) as usize;
        for cell in bounds.points() {
            let mut q_bar = vec![0.0f64; hz + 1];
            for (si, strat) in req.population.iter().enumerate() {
                let key = format!("s|{:032x}|{},{}|{horizon}|{mode}", fps[si], cell.x, cell.y);
                let q = cached_curve(cache, key, || {
                    visit_survival_curve_mode(
                        &strat.kernel,
                        strat.kernel.label(),
                        cell,
                        horizon,
                        mode,
                    )
                })?;
                for r in 0..=hz {
                    q_bar[r] += p_strat[si] * q[r];
                }
            }
            let v: Vec<f64> = q_bar.iter().map(|&q| 1.0 - q.powf(n)).collect();
            sum_unvisited_h += 1.0 - v[hz];
            cover_q += v[at_q];
            cover_half += v[at_h];
            fv_den += v[hz];
            for r in 1..=hz {
                fv_num += r as f64 * (v[r] - v[r - 1]);
            }
        }
        if metrics.coverage {
            report.coverage = Some((area as f64 - sum_unvisited_h) / area as f64);
            report.adversarial_left = Some(sum_unvisited_h >= 1.0);
        }
        if metrics.round_trace {
            report.round_trace = Some((cover_q / area as f64, cover_half / area as f64));
        }
        if metrics.first_visit {
            report.mean_first_visit = Some(if fv_den > 0.0 { fv_num / fv_den } else { f64::NAN });
        }
    }
    if metrics.chi {
        report.chi_obs = Some(
            req.population
                .iter()
                .map(|s| {
                    if s.kernel.chi_is_static() {
                        s.kernel.chi(s.kernel.start()).chi()
                    } else {
                        chi_support(&s.kernel, horizon)
                    }
                })
                .fold(f64::NEG_INFINITY, f64::max),
        );
    }
    if metrics.found_round {
        let mut found_at = 0.0f64;
        let mut mean_num = 0.0f64;
        for &(target, tw) in &req.targets {
            let mut f_bar = vec![0.0f64; hz + 1];
            for (si, strat) in req.population.iter().enumerate() {
                let key = format!("r|{:032x}|{},{}|{horizon}|{mode}", fps[si], target.x, target.y);
                let f = cached_curve(cache, key, || {
                    step_absorption_cdf_mode(
                        &strat.kernel,
                        strat.kernel.label(),
                        target,
                        horizon,
                        mode,
                    )
                })?;
                for r in 0..=hz {
                    f_bar[r] += p_strat[si] * f[r];
                }
            }
            let g: Vec<f64> = f_bar.iter().map(|&f| 1.0 - (1.0 - f).powf(n)).collect();
            found_at += tw * g[hz];
            for r in 1..=hz {
                mean_num += tw * r as f64 * (g[r] - g[r - 1]);
            }
        }
        let mean_round = if found_at > 0.0 { mean_num / found_at } else { f64::NAN };
        report.found_round = Some((found_at, mean_round));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absorb::absorption_cdf;
    use crate::kernel::{nonuniform_kernel, randomwalk_kernel};

    fn walk_req(agents: u64, budget: u64, targets: Vec<(Point, f64)>) -> DpRequest {
        DpRequest {
            agents,
            move_budget: budget,
            trials: 1000,
            population: vec![DpStrategy { weight: 1, kernel: randomwalk_kernel() }],
            targets,
            metrics: None,
            mode: DpMode::Auto,
        }
    }

    #[test]
    fn single_agent_single_target_matches_absorption() {
        let req = walk_req(1, 8, vec![(Point::new(1, 0), 1.0)]);
        let rep = evaluate(&req).unwrap();
        let c = collapse(&randomwalk_kernel()).unwrap();
        let curve = absorption_cdf(&c, "rw", Point::new(1, 0), 8).unwrap();
        assert_eq!(rep.success, *curve.cdf.last().unwrap());
        assert_eq!(rep.found, rep.success * 1000.0);
    }

    #[test]
    fn more_agents_strictly_better() {
        let t = vec![(Point::new(2, 1), 1.0)];
        let one = evaluate(&walk_req(1, 16, t.clone())).unwrap();
        let four = evaluate(&walk_req(4, 16, t)).unwrap();
        assert!(four.success > one.success);
        // Exact independence: 1 - (1-p)^4.
        let expect = 1.0 - (1.0 - one.success).powi(4);
        assert!((four.success - expect).abs() < 1e-12);
    }

    #[test]
    fn mixture_interpolates_success() {
        let target = vec![(Point::new(1, 1), 1.0)];
        let walk = DpStrategy { weight: 1, kernel: randomwalk_kernel() };
        let nu = DpStrategy { weight: 1, kernel: nonuniform_kernel(2).unwrap() };
        let mk = |population| DpRequest {
            agents: 1,
            move_budget: 24,
            trials: 100,
            population,
            targets: target.clone(),
            metrics: None,
            mode: DpMode::Auto,
        };
        let a = evaluate(&mk(vec![walk.clone()])).unwrap();
        let b = evaluate(&mk(vec![nu.clone()])).unwrap();
        let mixed = evaluate(&mk(vec![walk, nu])).unwrap();
        let expect = 0.5 * a.success + 0.5 * b.success;
        assert!((mixed.success - expect).abs() < 1e-12, "{} vs {expect}", mixed.success);
    }

    #[test]
    fn target_support_enumerations() {
        assert_eq!(
            target_support(&TargetPlacement::Corner { distance: 3 }).unwrap(),
            vec![(Point::new(3, 3), 1.0)]
        );
        let ball = target_support(&TargetPlacement::UniformInBall { distance: 2 }).unwrap();
        assert_eq!(ball.len(), 24);
        assert!(ball.iter().all(|&(p, w)| p != Point::ORIGIN && (w - 1.0 / 24.0).abs() < 1e-15));
        let ring = target_support(&TargetPlacement::Ring { distance: 2 }).unwrap();
        assert_eq!(ring.len(), 16);
        let set: std::collections::HashSet<Point> = ring.iter().map(|&(p, _)| p).collect();
        assert_eq!(set.len(), 16, "ring points must be distinct");
        assert!(set.iter().all(|p| p.norm_max() == 2));
        assert!(target_support(&TargetPlacement::Fixed(Point::ORIGIN)).is_err());
    }

    #[test]
    fn conditional_moments_of_point_mass() {
        // All success at exactly move 3.
        let h = vec![0.0, 0.0, 0.0, 0.8, 0.8];
        let (median, mean) = conditional_moments(&h);
        assert_eq!(median, 3.0);
        assert!((mean - 3.0).abs() < 1e-15);
        let (nan_med, nan_mean) = conditional_moments(&[0.0, 0.0]);
        assert!(nan_med.is_nan() && nan_mean.is_nan());
    }

    #[test]
    fn coverage_metrics_for_tiny_walk_cell() {
        let mut req = walk_req(2, 8, vec![(Point::new(1, 0), 1.0)]);
        req.metrics = Some(DpMetrics {
            coverage: true,
            first_visit: true,
            round_trace: true,
            chi: true,
            found_round: true,
            bounds_radius: 1,
            rounds: 8,
        });
        let rep = evaluate(&req).unwrap();
        let coverage = rep.coverage.unwrap();
        assert!(coverage > 0.0 && coverage <= 1.0);
        let (q, h) = rep.round_trace.unwrap();
        assert!(q <= h + 1e-15, "coverage is monotone in the round: {q} vs {h}");
        let mfv = rep.mean_first_visit.unwrap();
        assert!((0.0..=8.0).contains(&mfv), "{mfv}");
        assert_eq!(rep.chi_obs.unwrap(), rep.max_chi);
        let (found_at, mean_round) = rep.found_round.unwrap();
        // Every step of a random walk is a move, so the round clock and
        // the move clock coincide.
        assert!((found_at - rep.success).abs() < 1e-12);
        assert!(mean_round > 0.0 && mean_round <= 8.0);
    }

    #[test]
    fn memoized_reports_are_byte_identical() {
        use std::collections::HashMap;
        use std::sync::Mutex;

        #[derive(Default)]
        struct MapCache {
            map: Mutex<HashMap<String, Arc<Vec<f64>>>>,
            gets: Mutex<(u64, u64)>,
        }
        impl SolveCache for MapCache {
            fn get(&self, key: &str) -> Option<Arc<Vec<f64>>> {
                let hit = self.map.lock().unwrap().get(key).cloned();
                let mut g = self.gets.lock().unwrap();
                if hit.is_some() {
                    g.0 += 1;
                } else {
                    g.1 += 1;
                }
                hit
            }
            fn put(&self, key: &str, value: Arc<Vec<f64>>) {
                self.map.lock().unwrap().insert(key.to_string(), value);
            }
        }

        let mut req = walk_req(3, 8, vec![(Point::new(1, 0), 1.0), (Point::new(2, 1), 1.0 / 2.0)]);
        req.metrics = Some(DpMetrics {
            coverage: true,
            first_visit: true,
            round_trace: true,
            chi: true,
            found_round: true,
            bounds_radius: 1,
            rounds: 8,
        });
        let fresh = evaluate(&req).unwrap();
        let cache = MapCache::default();
        let cold = evaluate_with(&req, Some(&cache)).unwrap();
        let warm = evaluate_with(&req, Some(&cache)).unwrap();
        let (hits, misses) = *cache.gets.lock().unwrap();
        assert!(hits >= misses, "second pass must hit every key: {hits} hits / {misses} misses");
        for rep in [&cold, &warm] {
            assert_eq!(fresh.success.to_bits(), rep.success.to_bits());
            assert_eq!(fresh.found.to_bits(), rep.found.to_bits());
            assert_eq!(fresh.median_moves.to_bits(), rep.median_moves.to_bits());
            assert_eq!(fresh.mean_moves.to_bits(), rep.mean_moves.to_bits());
            assert_eq!(fresh.coverage.unwrap().to_bits(), rep.coverage.unwrap().to_bits());
            assert_eq!(
                fresh.mean_first_visit.unwrap().to_bits(),
                rep.mean_first_visit.unwrap().to_bits()
            );
            assert_eq!(
                fresh.round_trace.unwrap().0.to_bits(),
                rep.round_trace.unwrap().0.to_bits()
            );
            assert_eq!(
                fresh.found_round.unwrap().0.to_bits(),
                rep.found_round.unwrap().0.to_bits()
            );
            assert_eq!(
                fresh.found_round.unwrap().1.to_bits(),
                rep.found_round.unwrap().1.to_bits()
            );
        }
    }

    #[test]
    fn metric_work_guard_trips() {
        let mut req = walk_req(1, 400, vec![(Point::new(1, 0), 1.0)]);
        req.metrics = Some(DpMetrics {
            coverage: true,
            bounds_radius: 200,
            rounds: 400,
            ..Default::default()
        });
        let err = evaluate(&req).unwrap_err();
        assert!(matches!(err, DpError::Guard { .. }), "{err}");
    }
}
