//! Sparse-frontier forward DPs: the same move- and step-indexed
//! propagation as [`crate::absorb`] / [`crate::rounds`], but over only
//! the occupied `(state, position)` entries instead of the full dense
//! budget square.
//!
//! ## Representation
//!
//! The frontier is a `Vec<(u64, f64)>` sorted by a packed key
//! `(state, x + B, y + B)` (state in the high 22 bits, each offset
//! coordinate in 21 bits). One move scatters every entry through its
//! state's exits into a scratch vector, then a *stable* sort + run
//! merge rebuilds the sorted frontier. Stability matters: contributions
//! to one cell are summed in exactly the order the dense table would
//! have added them, so an unfolded sparse solve is bit-identical to the
//! dense solve — same CDF bytes, same pruned mass, same summation
//! order. The cost per move is `O(E log E)` in the number of scattered
//! entries `E`, against the dense table's `O(states × (2B+1)²)`
//! regardless of occupancy; kernels whose mass stays concentrated
//! (mortal expiries, long budgets with far targets, drift automata)
//! keep `E` orders of magnitude below the box.
//!
//! ## Symmetry folding
//!
//! Every bundled kernel is axis-symmetric, and target placements put
//! the target on an axis or diagonal often enough to exploit it: when a
//! grid reflection `σ` fixes the target, fixes the origin, and leaves
//! every kernel row invariant (as a multiset of `(next state, σ-mapped
//! action, probability, reset)`), the DP runs on the quotient chain —
//! each stored entry carries the *total* mass of its `{p, σp}` orbit
//! and scatters to canonical representatives only. That halves the
//! frontier (minus the fixed axis) at the cost of last-ulp differences
//! from the dense solve; agreement stays far inside the crate's 1e-9
//! exactness tolerance (proptest-pinned in `tests/sparse_parity.rs`).
//!
//! ## Accounting
//!
//! The three exact channels are identical to the dense DPs: deficit
//! mass is dropped, truncation-state mass and sub-[`crate::PRUNE`]
//! entries accumulate into `lost` and are checked against
//! [`crate::TRUNCATION_TOL`]. The only guards are a per-move cap on the
//! merged frontier length ([`crate::MAX_FRONTIER_ENTRIES`]) and the
//! packed-key coordinate span ([`crate::MAX_SPARSE_SPAN`]) — there is
//! no up-front refusal based on the budget square, which is the point:
//! cells the dense guard rejects outright often have tiny frontiers.

use crate::absorb::AbsorptionCurve;
use crate::collapse::CollapsedKernel;
use crate::error::DpError;
use crate::kernel::{MarkovKernel, PositionClass};
use ants_automaton::GridAction;
use ants_grid::{Direction, Point};

/// A grid reflection through the origin that the folded DP can quotient
/// by. Each fixes the origin; legality against a given target/kernel is
/// decided by [`mirror_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mirror {
    /// `(x, y) → (x, −y)` — legal when the target sits on the x-axis.
    NegY,
    /// `(x, y) → (−x, y)` — legal when the target sits on the y-axis.
    NegX,
    /// `(x, y) → (y, x)` — legal when the target sits on the diagonal.
    Swap,
    /// `(x, y) → (−y, −x)` — legal when the target sits on the
    /// anti-diagonal.
    AntiSwap,
}

impl Mirror {
    /// Apply the reflection to a point.
    fn map(self, x: i64, y: i64) -> (i64, i64) {
        match self {
            Mirror::NegY => (x, -y),
            Mirror::NegX => (-x, y),
            Mirror::Swap => (y, x),
            Mirror::AntiSwap => (-y, -x),
        }
    }

    /// Apply the reflection to a move direction.
    fn map_dir(self, d: Direction) -> Direction {
        match (self, d) {
            (Mirror::NegY, Direction::Up) => Direction::Down,
            (Mirror::NegY, Direction::Down) => Direction::Up,
            (Mirror::NegY, d) => d,
            (Mirror::NegX, Direction::Left) => Direction::Right,
            (Mirror::NegX, Direction::Right) => Direction::Left,
            (Mirror::NegX, d) => d,
            (Mirror::Swap, Direction::Up) => Direction::Right,
            (Mirror::Swap, Direction::Right) => Direction::Up,
            (Mirror::Swap, Direction::Down) => Direction::Left,
            (Mirror::Swap, Direction::Left) => Direction::Down,
            (Mirror::AntiSwap, Direction::Up) => Direction::Left,
            (Mirror::AntiSwap, Direction::Left) => Direction::Up,
            (Mirror::AntiSwap, Direction::Down) => Direction::Right,
            (Mirror::AntiSwap, Direction::Right) => Direction::Down,
        }
    }

    /// Is `(x, y)` the orbit's canonical representative?
    #[inline]
    fn canonical(self, x: i64, y: i64) -> bool {
        match self {
            Mirror::NegY => y >= 0,
            Mirror::NegX => x >= 0,
            Mirror::Swap => x >= y,
            Mirror::AntiSwap => x + y >= 0,
        }
    }

    /// The canonical representative of `(x, y)`'s orbit.
    #[inline]
    fn canon(self, x: i64, y: i64) -> (i64, i64) {
        if self.canonical(x, y) {
            (x, y)
        } else {
            self.map(x, y)
        }
    }
}

/// A stable ordinal for sorting directions inside invariance checks.
fn dir_code(d: Direction) -> u8 {
    match d {
        Direction::Up => 0,
        Direction::Down => 1,
        Direction::Left => 2,
        Direction::Right => 3,
    }
}

/// The first reflection that fixes `target` (the origin is fixed by
/// all four). `None` for off-axis, off-diagonal targets.
fn mirror_for(target: Point) -> Option<Mirror> {
    if target.y == 0 {
        Some(Mirror::NegY)
    } else if target.x == 0 {
        Some(Mirror::NegX)
    } else if target.x == target.y {
        Some(Mirror::Swap)
    } else if target.x == -target.y {
        Some(Mirror::AntiSwap)
    } else {
        None
    }
}

/// Is every collapsed row invariant under `m` as a multiset of
/// `(next, σ(dir), prob, reset)`? Reset exits teleport to the absolute
/// point `dir.delta()`, which `σ` maps exactly like a move, so one
/// check covers both exit kinds.
fn collapsed_invariant(c: &CollapsedKernel, m: Mirror) -> bool {
    for row in &c.rows {
        let mut plain: Vec<(usize, u8, u64, bool)> = Vec::with_capacity(row.exits.len());
        let mut mapped: Vec<(usize, u8, u64, bool)> = Vec::with_capacity(row.exits.len());
        for &(e, p) in &row.exits {
            let exit = c.exits[e as usize];
            plain.push((exit.next, dir_code(exit.dir), p.to_bits(), exit.reset));
            mapped.push((exit.next, dir_code(m.map_dir(exit.dir)), p.to_bits(), exit.reset));
        }
        plain.sort_unstable();
        mapped.sort_unstable();
        if plain != mapped {
            return false;
        }
    }
    true
}

/// Is every raw kernel row invariant under `m`? `None`/`Origin` actions
/// are position-free and map to themselves; `Move(dir)` maps through
/// `σ`. Only the `Away` rows matter — they are the rows the step DP
/// propagates.
fn kernel_invariant(k: &dyn MarkovKernel, m: Mirror) -> bool {
    for s in 0..k.num_states() {
        let row = k.row(s, PositionClass::Away);
        let code = |a: GridAction, mirrored: bool| -> (u8, u8) {
            match a {
                GridAction::Move(d) => (0, dir_code(if mirrored { m.map_dir(d) } else { d })),
                GridAction::None => (1, 0),
                GridAction::Origin => (2, 0),
            }
        };
        let mut plain: Vec<(usize, (u8, u8), u64)> = Vec::with_capacity(row.len());
        let mut mapped: Vec<(usize, (u8, u8), u64)> = Vec::with_capacity(row.len());
        for t in row {
            plain.push((t.next, code(t.action, false), t.prob.to_bits()));
            mapped.push((t.next, code(t.action, true), t.prob.to_bits()));
        }
        plain.sort_unstable();
        mapped.sort_unstable();
        if plain != mapped {
            return false;
        }
    }
    true
}

/// Statistics of one sparse solve, for `ants profile` narration and the
/// `BENCH_dp.json` frontier-size record.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrontierStats {
    /// Largest merged frontier length reached at any move/round.
    pub peak_entries: usize,
    /// Was a symmetry fold applied?
    pub folded: bool,
}

/// Packed `(state, x + span, y + span)` key; sorts state-major then
/// row-major — the dense tables' exact iteration order.
#[inline]
fn pack(span: i64, s: usize, x: i64, y: i64) -> u64 {
    debug_assert!(x.abs() <= span && y.abs() <= span);
    ((s as u64) << 42) | (((x + span) as u64) << 21) | ((y + span) as u64)
}

#[inline]
fn unpack(span: i64, key: u64) -> (usize, i64, i64) {
    let s = (key >> 42) as usize;
    let x = ((key >> 21) & 0x1f_ffff) as i64 - span;
    let y = (key & 0x1f_ffff) as i64 - span;
    (s, x, y)
}

/// Check the packed-key span and state-count limits up front.
fn check_shape(label: &str, states: usize, span: u64, clock: &str) -> Result<(), DpError> {
    if span > crate::MAX_SPARSE_SPAN {
        return Err(DpError::Guard {
            what: format!("sparse frontier coordinate span for {label} ({clock} {span})"),
            limit: crate::MAX_SPARSE_SPAN as usize,
            hint: "shrink the cell or use backend = \"mc\"".into(),
        });
    }
    if states >= 1 << 22 {
        return Err(DpError::Guard {
            what: format!("sparse frontier state space for {label} ({states} states)"),
            limit: (1 << 22) - 1,
            hint: "shrink the cell or use backend = \"mc\"".into(),
        });
    }
    Ok(())
}

/// Stable-sort the scratch scatter list and merge equal keys by
/// left-to-right summation (the dense tables' accumulation order),
/// writing the merged frontier into `out`.
fn merge_scatter(scratch: &mut [(u64, f64)], out: &mut Vec<(u64, f64)>) {
    scratch.sort_by_key(|&(k, _)| k);
    out.clear();
    for &(k, p) in scratch.iter() {
        match out.last_mut() {
            Some(last) if last.0 == k => last.1 += p,
            _ => out.push((k, p)),
        }
    }
}

/// Guard the merged frontier length.
fn check_frontier(label: &str, len: usize, m: i64, clock: &str) -> Result<(), DpError> {
    if len > crate::MAX_FRONTIER_ENTRIES {
        return Err(DpError::Guard {
            what: format!("sparse frontier for {label} ({len} live entries at {clock} {m})"),
            limit: crate::MAX_FRONTIER_ENTRIES,
            hint: "shrink the cell or use backend = \"mc\"".into(),
        });
    }
    Ok(())
}

/// Sparse twin of [`crate::absorb::absorption_cdf`]: same semantics,
/// same accounting, frontier storage. Unfolded solves are bit-identical
/// to the dense table; folded solves agree to well within
/// [`crate::TRUNCATION_TOL`].
///
/// # Errors
///
/// * [`DpError::Guard`] when the live frontier exceeds
///   [`crate::MAX_FRONTIER_ENTRIES`] or the budget exceeds the packed
///   coordinate span.
/// * [`DpError::Truncation`] / [`DpError::Unsupported`] exactly as the
///   dense solver.
pub fn sparse_absorption_cdf(
    collapsed: &CollapsedKernel,
    label: &str,
    target: Point,
    budget: u64,
) -> Result<AbsorptionCurve, DpError> {
    sparse_absorption_cdf_stats(collapsed, label, target, budget).map(|(curve, _)| curve)
}

/// [`sparse_absorption_cdf`] plus the solve's [`FrontierStats`].
///
/// # Errors
///
/// As [`sparse_absorption_cdf`].
pub fn sparse_absorption_cdf_stats(
    collapsed: &CollapsedKernel,
    label: &str,
    target: Point,
    budget: u64,
) -> Result<(AbsorptionCurve, FrontierStats), DpError> {
    if target == Point::ORIGIN {
        return Err(DpError::Unsupported {
            what: "absorption at the origin".into(),
            reason: "targets are never placed on the origin".into(),
        });
    }
    let states = collapsed.rows.len();
    check_shape(label, states, budget, "move budget")?;
    let span = budget as i64;
    let mirror = mirror_for(target).filter(|&m| collapsed_invariant(collapsed, m));
    let canon = |x: i64, y: i64| -> (i64, i64) {
        match mirror {
            Some(m) => m.canon(x, y),
            None => (x, y),
        }
    };

    // Per-state exit split, identical to the dense solver: clean exits
    // scatter per occupied position; reset exits apply once to the
    // state's positional marginal and teleport to `dir.delta()`.
    struct Entry {
        next: usize,
        dx: i64,
        dy: i64,
        prob: f64,
    }
    let mut clean: Vec<Vec<Entry>> = Vec::with_capacity(states);
    let mut reset: Vec<Vec<Entry>> = Vec::with_capacity(states);
    let mut trunc_of: Vec<f64> = Vec::with_capacity(states);
    for row in &collapsed.rows {
        let mut c = Vec::new();
        let mut r = Vec::new();
        for &(e, prob) in &row.exits {
            let exit = collapsed.exits[e as usize];
            let (dx, dy) = exit.dir.delta();
            let entry = Entry { next: exit.next, dx, dy, prob };
            if exit.reset {
                r.push(entry);
            } else {
                c.push(entry);
            }
        }
        clean.push(c);
        reset.push(r);
        trunc_of.push(row.trunc);
    }

    let mut cur: Vec<(u64, f64)> = vec![(pack(span, collapsed.start, 0, 0), 1.0)];
    let mut scratch: Vec<(u64, f64)> = Vec::new();
    let mut cdf = Vec::with_capacity(budget as usize + 1);
    cdf.push(0.0);
    let mut absorbed = 0.0f64;
    let mut lost = 0.0f64;
    let mut peak = cur.len();

    for m in 1..=span {
        scratch.clear();
        let mut i = 0;
        while i < cur.len() {
            let s = (cur[i].0 >> 42) as usize;
            if clean[s].is_empty() && reset[s].is_empty() && trunc_of[s] == 0.0 {
                // Dead state: its mass is deficit — skip the group.
                while i < cur.len() && (cur[i].0 >> 42) as usize == s {
                    i += 1;
                }
                continue;
            }
            let mut marginal = 0.0f64;
            while i < cur.len() && (cur[i].0 >> 42) as usize == s {
                let (key, p) = cur[i];
                i += 1;
                if p == 0.0 {
                    continue;
                }
                if p < crate::PRUNE {
                    lost += p;
                    continue;
                }
                marginal += p;
                let (_, x, y) = unpack(span, key);
                for e in &clean[s] {
                    let (nx, ny) = (x + e.dx, y + e.dy);
                    let mass = p * e.prob;
                    if nx == target.x && ny == target.y {
                        absorbed += mass;
                    } else {
                        let (cx, cy) = canon(nx, ny);
                        scratch.push((pack(span, e.next, cx, cy), mass));
                    }
                }
            }
            if marginal > 0.0 {
                for e in &reset[s] {
                    let mass = marginal * e.prob;
                    if e.dx == target.x && e.dy == target.y {
                        absorbed += mass;
                    } else {
                        let (cx, cy) = canon(e.dx, e.dy);
                        scratch.push((pack(span, e.next, cx, cy), mass));
                    }
                }
                lost += marginal * trunc_of[s];
            }
        }
        merge_scatter(&mut scratch, &mut cur);
        check_frontier(label, cur.len(), m, "move")?;
        peak = peak.max(cur.len());
        cdf.push(absorbed);
    }

    if lost > crate::TRUNCATION_TOL {
        return Err(DpError::Truncation { kernel: label.to_string(), lost });
    }
    Ok((
        AbsorptionCurve { cdf, lost },
        FrontierStats { peak_entries: peak, folded: mirror.is_some() },
    ))
}

/// Sparse twin of the step-indexed first-landing DP behind
/// [`crate::rounds::step_absorption_cdf`] /
/// [`crate::rounds::visit_survival_curve`]: raw per-step kernel rows,
/// absorption on move landings only, `Origin` teleports to the origin.
///
/// # Errors
///
/// As [`sparse_absorption_cdf`], against the round clock.
pub fn sparse_first_landing_cdf(
    kernel: &dyn MarkovKernel,
    label: &str,
    point: Point,
    horizon: u64,
) -> Result<(Vec<f64>, FrontierStats), DpError> {
    let states = kernel.num_states();
    check_shape(label, states, horizon, "horizon")?;
    let span = horizon as i64;
    let mirror = mirror_for(point).filter(|&m| kernel_invariant(kernel, m));
    let canon = |x: i64, y: i64| -> (i64, i64) {
        match mirror {
            Some(m) => m.canon(x, y),
            None => (x, y),
        }
    };
    let mut is_trunc = vec![false; states];
    for &t in kernel.truncation_states() {
        is_trunc[t] = true;
    }

    let mut cur: Vec<(u64, f64)> = vec![(pack(span, kernel.start(), 0, 0), 1.0)];
    let mut scratch: Vec<(u64, f64)> = Vec::new();
    let mut out = Vec::with_capacity(horizon as usize + 1);
    out.push(0.0);
    let mut absorbed = 0.0f64;
    let mut lost = 0.0f64;
    let mut peak = cur.len();

    for r in 1..=span {
        scratch.clear();
        let mut i = 0;
        while i < cur.len() {
            let s = (cur[i].0 >> 42) as usize;
            let row = kernel.row(s, PositionClass::Away);
            if row.is_empty() {
                while i < cur.len() && (cur[i].0 >> 42) as usize == s {
                    i += 1;
                }
                continue;
            }
            while i < cur.len() && (cur[i].0 >> 42) as usize == s {
                let (key, p) = cur[i];
                i += 1;
                if p == 0.0 {
                    continue;
                }
                if p < crate::PRUNE {
                    lost += p;
                    continue;
                }
                let (_, x, y) = unpack(span, key);
                for t in row {
                    let mass = p * t.prob;
                    if mass == 0.0 {
                        continue;
                    }
                    if is_trunc[t.next] {
                        lost += mass;
                        continue;
                    }
                    match t.action {
                        GridAction::Move(dir) => {
                            let (dx, dy) = dir.delta();
                            let (nx, ny) = (x + dx, y + dy);
                            if nx == point.x && ny == point.y {
                                absorbed += mass;
                            } else {
                                let (cx, cy) = canon(nx, ny);
                                scratch.push((pack(span, t.next, cx, cy), mass));
                            }
                        }
                        GridAction::None => scratch.push((pack(span, t.next, x, y), mass)),
                        GridAction::Origin => scratch.push((pack(span, t.next, 0, 0), mass)),
                    }
                }
            }
        }
        merge_scatter(&mut scratch, &mut cur);
        check_frontier(label, cur.len(), r, "round")?;
        peak = peak.max(cur.len());
        out.push(absorbed);
    }

    if lost > crate::TRUNCATION_TOL {
        return Err(DpError::Truncation { kernel: label.to_string(), lost });
    }
    Ok((out, FrontierStats { peak_entries: peak, folded: mirror.is_some() }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collapse::collapse;
    use crate::kernel::{mortal_kernel, nonuniform_kernel, randomwalk_kernel};

    #[test]
    fn off_axis_target_folds_nothing() {
        assert_eq!(mirror_for(Point::new(2, 1)), None);
        assert_eq!(mirror_for(Point::new(3, 0)), Some(Mirror::NegY));
        assert_eq!(mirror_for(Point::new(0, -3)), Some(Mirror::NegX));
        assert_eq!(mirror_for(Point::new(2, 2)), Some(Mirror::Swap));
        assert_eq!(mirror_for(Point::new(2, -2)), Some(Mirror::AntiSwap));
    }

    #[test]
    fn unfolded_sparse_is_bit_identical_to_dense() {
        // Target (2,1) admits no mirror, so the sparse solve replays the
        // dense summation order exactly — byte-identical CDF.
        let c = collapse(&nonuniform_kernel(4).unwrap()).unwrap();
        let target = Point::new(2, 1);
        let dense = crate::absorb::absorption_cdf(&c, "nu", target, 24).unwrap();
        let (sparse, stats) = sparse_absorption_cdf_stats(&c, "nu", target, 24).unwrap();
        assert!(!stats.folded);
        assert_eq!(dense.lost.to_bits(), sparse.lost.to_bits());
        for (m, (a, b)) in dense.cdf.iter().zip(sparse.cdf.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "move {m}: {a} vs {b}");
        }
    }

    #[test]
    fn folded_sparse_agrees_with_dense_on_axis_target() {
        let c = collapse(&randomwalk_kernel()).unwrap();
        let target = Point::new(3, 0);
        let dense = crate::absorb::absorption_cdf(&c, "rw", target, 32).unwrap();
        let (sparse, stats) = sparse_absorption_cdf_stats(&c, "rw", target, 32).unwrap();
        assert!(stats.folded, "axis target must fold");
        for (m, (a, b)) in dense.cdf.iter().zip(sparse.cdf.iter()).enumerate() {
            assert!((a - b).abs() <= 1e-12, "move {m}: {a} vs {b}");
        }
        // Folding roughly halves the frontier.
        let (_, unfolded) = sparse_absorption_cdf_stats(&c, "rw", Point::new(3, 1), 32).unwrap();
        assert!(stats.peak_entries < unfolded.peak_entries);
    }

    #[test]
    fn sparse_solves_past_the_dense_guard() {
        // mortal(randomwalk, 1000) at budget 64: the dense table wants
        // 1001 × 129² ≈ 16.7M entries (> MAX_TABLE_ENTRIES), but only
        // one lifetime layer is ever occupied, so the frontier stays
        // tiny.
        let inner = randomwalk_kernel();
        let k = mortal_kernel(&inner, 1000).unwrap();
        let c = collapse(&k).unwrap();
        let target = Point::new(4, 0);
        assert!(matches!(
            crate::absorb::absorption_cdf(&c, "mortal", target, 64),
            Err(DpError::Guard { .. })
        ));
        let (curve, stats) = sparse_absorption_cdf_stats(&c, "mortal", target, 64).unwrap();
        assert_eq!(curve.cdf.len(), 65);
        assert!(stats.peak_entries <= 129 * 129);
        // The free walk never expires within 64 moves, so the curves
        // agree with the plain random walk's.
        let free = collapse(&inner).unwrap();
        let base = crate::absorb::absorption_cdf(&free, "rw", target, 64).unwrap();
        for (m, (a, b)) in base.cdf.iter().zip(curve.cdf.iter()).enumerate() {
            assert!((a - b).abs() <= 1e-12, "move {m}: {a} vs {b}");
        }
    }

    #[test]
    fn sparse_step_cdf_matches_dense_rounds() {
        // The random walk's single state is row-invariant under every
        // mirror, so a diagonal target folds.
        let rw = randomwalk_kernel();
        let dense = crate::rounds::step_absorption_cdf(&rw, "rw", Point::new(2, 2), 24).unwrap();
        let (sparse, stats) = sparse_first_landing_cdf(&rw, "rw", Point::new(2, 2), 24).unwrap();
        assert!(stats.folded, "diagonal target must fold for the random walk");
        for (r, (a, b)) in dense.iter().zip(sparse.iter()).enumerate() {
            assert!((a - b).abs() <= 1e-12, "round {r}: {a} vs {b}");
        }
        // The nonuniform kernel encodes its walk direction in the state
        // (vertical vs horizontal blocks), so no identity-on-state
        // mirror leaves its rows invariant: every target runs unfolded —
        // and therefore bit-identical to the dense rounds DP.
        let k = nonuniform_kernel(4).unwrap();
        for target in [Point::new(1, 1), Point::new(2, 1)] {
            let (unfolded, ustats) = sparse_first_landing_cdf(&k, "nu", target, 24).unwrap();
            assert!(!ustats.folded);
            let dense2 = crate::rounds::step_absorption_cdf(&k, "nu", target, 24).unwrap();
            for (r, (a, b)) in dense2.iter().zip(unfolded.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "round {r}");
            }
        }
    }

    #[test]
    fn span_guard_trips_on_absurd_budget() {
        let c = collapse(&randomwalk_kernel()).unwrap();
        let err = sparse_absorption_cdf(&c, "rw", Point::new(1, 0), crate::MAX_SPARSE_SPAN + 1)
            .unwrap_err();
        assert!(matches!(err, DpError::Guard { .. }), "{err}");
    }
}
