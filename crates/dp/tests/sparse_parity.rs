//! Property battery for the sparse-frontier solvers: for *every* kernel
//! the zoo can construct, the pruned sparse representation must agree
//! with the dense tables wherever both run.
//!
//! Three invariants:
//!
//! * **Absorption parity** — the move-budget absorption CDF computed on
//!   the sparse frontier matches the dense table pointwise within the
//!   truncation budget (1e-9; fold-free kernels are bit-identical, and
//!   folding may shift a value by strictly less than the pruned mass);
//! * **Round-curve parity** — the per-round first-landing CDF and the
//!   per-cell visit survival curve agree under the same bound;
//! * **Memo byte-identity** — a cell evaluated through a warm
//!   cross-cell curve cache renders the exact same [`DpCellReport`] as
//!   a fresh solve, for both representations.

use ants_automaton::library;
use ants_dp::{
    absorption_cdf_mode, coin_kernel, collapse, evaluate_with, mortal_kernel, nonuniform_kernel,
    pfa_kernel, randomwalk_kernel, step_absorption_cdf_mode, uniform_kernel,
    visit_survival_curve_mode, DpMode, DpRequest, DpStrategy, MarkovKernel, SolveCache,
    TableKernel, UNIFORM_PHASE_CAP,
};
use ants_grid::Point;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The exactness invariant: sparse and dense may differ only by the
/// pruned-mass budget, never more.
const PARITY_TOL: f64 = 1e-9;

/// A selection of zoo kernels spanning every constructor. Index-driven
/// so proptest can draw one uniformly (mirrors `proptests.rs`).
fn zoo_kernel(which: usize) -> TableKernel {
    match which {
        0 => randomwalk_kernel(),
        1 => nonuniform_kernel(4).unwrap(),
        2 => nonuniform_kernel(100).unwrap(),
        3 => coin_kernel(16, 1).unwrap(),
        4 => coin_kernel(64, 3).unwrap(),
        5 => uniform_kernel(1, 2, 1, UNIFORM_PHASE_CAP).unwrap(),
        6 => uniform_kernel(2, 8, 3, UNIFORM_PHASE_CAP).unwrap(),
        7 => pfa_kernel("automaton(rw)", &library::random_walk()),
        8 => pfa_kernel("automaton(lazy)", &library::lazy_random_walk()),
        9 => pfa_kernel("automaton(drift4)", &library::drift_walk(4).unwrap()),
        10 => pfa_kernel("automaton(alg1)", &library::algorithm1(3).unwrap()),
        11 => mortal_kernel(&randomwalk_kernel(), 7).unwrap(),
        12 => mortal_kernel(&nonuniform_kernel(8).unwrap(), 25).unwrap(),
        _ => mortal_kernel(&coin_kernel(8, 2).unwrap(), 12).unwrap(),
    }
}

const ZOO_SIZE: usize = 14;

/// A plain map cache so the memo property exercises the same
/// [`SolveCache`] seam production uses, without depending on the
/// workload crate.
#[derive(Default)]
struct MapCache(Mutex<HashMap<String, Arc<Vec<f64>>>>);

impl SolveCache for MapCache {
    fn get(&self, key: &str) -> Option<Arc<Vec<f64>>> {
        self.0.lock().unwrap().get(key).cloned()
    }
    fn put(&self, key: &str, value: Arc<Vec<f64>>) {
        self.0.lock().unwrap().insert(key.to_string(), value);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_absorption_matches_dense(
        which in 0usize..ZOO_SIZE,
        tx in -3i64..=3,
        ty in -3i64..=3,
        budget in 1u64..40,
    ) {
        let target = if tx == 0 && ty == 0 { Point::new(1, 0) } else { Point::new(tx, ty) };
        let k = zoo_kernel(which);
        let c = collapse(&k).unwrap();
        let dense = absorption_cdf_mode(&c, k.label(), target, budget, DpMode::Dense).unwrap();
        let sparse = absorption_cdf_mode(&c, k.label(), target, budget, DpMode::Sparse).unwrap();
        prop_assert_eq!(dense.cdf.len(), sparse.cdf.len());
        for (m, (&d, &s)) in dense.cdf.iter().zip(sparse.cdf.iter()).enumerate() {
            prop_assert!(
                (d - s).abs() <= PARITY_TOL,
                "kernel {} target {target} move {m}: dense {d} vs sparse {s}",
                k.label()
            );
        }
    }

    #[test]
    fn sparse_round_curves_match_dense(
        which in 0usize..ZOO_SIZE,
        horizon in 1u64..32,
    ) {
        let target = Point::new(1, 1);
        let k = zoo_kernel(which);
        let dense =
            step_absorption_cdf_mode(&k, k.label(), target, horizon, DpMode::Dense).unwrap();
        let sparse =
            step_absorption_cdf_mode(&k, k.label(), target, horizon, DpMode::Sparse).unwrap();
        prop_assert_eq!(dense.len(), sparse.len());
        for (r, (&d, &s)) in dense.iter().zip(sparse.iter()).enumerate() {
            prop_assert!(
                (d - s).abs() <= PARITY_TOL,
                "kernel {} round {r}: dense {d} vs sparse {s}",
                k.label()
            );
        }
        let dense_q =
            visit_survival_curve_mode(&k, k.label(), target, horizon, DpMode::Dense).unwrap();
        let sparse_q =
            visit_survival_curve_mode(&k, k.label(), target, horizon, DpMode::Sparse).unwrap();
        for (r, (&d, &s)) in dense_q.iter().zip(sparse_q.iter()).enumerate() {
            prop_assert!(
                (d - s).abs() <= PARITY_TOL,
                "kernel {} survival round {r}: dense {d} vs sparse {s}",
                k.label()
            );
        }
    }

    #[test]
    fn memoized_reports_render_byte_identical(
        which in 0usize..ZOO_SIZE,
        budget in 1u64..24,
        sparse in any::<bool>(),
    ) {
        let mode = if sparse { DpMode::Sparse } else { DpMode::Dense };
        let req = DpRequest {
            agents: 2,
            move_budget: budget,
            trials: 500,
            population: vec![DpStrategy { weight: 1, kernel: zoo_kernel(which) }],
            targets: vec![(Point::new(1, 1), 1.0), (Point::new(2, 0), 1.0 / 2.0)],
            metrics: None,
            mode,
        };
        let fresh = evaluate_with(&req, None).unwrap();
        let cache = MapCache::default();
        let cold = evaluate_with(&req, Some(&cache)).unwrap();
        let warm = evaluate_with(&req, Some(&cache)).unwrap();
        // Debug rendering of f64 is bijective with its bits (modulo NaN,
        // which both sides produce identically), so string equality here
        // is byte-identity of everything a report can print.
        let fresh = format!("{fresh:?}");
        prop_assert_eq!(&fresh, &format!("{cold:?}"), "cold cache changed the report");
        prop_assert_eq!(&fresh, &format!("{warm:?}"), "warm cache changed the report");
    }
}
