//! Property battery for the exact backend's kernels and DPs.
//!
//! Three invariants hold for *every* kernel the zoo can construct:
//!
//! * **Stochastic rows** — each state's transition probabilities sum to
//!   1 within a 1-ulp-scale tolerance (the probabilities are dyadic, so
//!   the only slack is f64 summation round-off);
//! * **Closed state spaces** — no transition leaves the declared state
//!   space, and the start state is inside it;
//! * **Monotone CDFs** — the absorption CDF the forward DP produces is
//!   monotone non-decreasing in the move budget, starts at zero, and
//!   never exceeds 1 (up to round-off).

use ants_automaton::library;
use ants_dp::{
    absorption_cdf, coin_kernel, collapse, mortal_kernel, nonuniform_kernel, pfa_kernel,
    randomwalk_kernel, step_absorption_cdf, uniform_kernel, MarkovKernel, PositionClass,
    TableKernel, UNIFORM_PHASE_CAP,
};
use ants_grid::Point;
use proptest::prelude::*;

/// Summation slack for a stochastic row: dyadic entries are exact, so a
/// handful of additions can miss 1.0 by at most a few ulps.
const ROW_TOL: f64 = 1e-12;

/// A selection of zoo kernels spanning every constructor. Index-driven
/// so proptest can draw one uniformly.
fn zoo_kernel(which: usize) -> TableKernel {
    match which {
        0 => randomwalk_kernel(),
        1 => nonuniform_kernel(4).unwrap(),
        2 => nonuniform_kernel(100).unwrap(),
        3 => coin_kernel(16, 1).unwrap(),
        4 => coin_kernel(64, 3).unwrap(),
        5 => uniform_kernel(1, 2, 1, UNIFORM_PHASE_CAP).unwrap(),
        6 => uniform_kernel(2, 8, 3, UNIFORM_PHASE_CAP).unwrap(),
        7 => pfa_kernel("automaton(rw)", &library::random_walk()),
        8 => pfa_kernel("automaton(lazy)", &library::lazy_random_walk()),
        9 => pfa_kernel("automaton(drift4)", &library::drift_walk(4).unwrap()),
        10 => pfa_kernel("automaton(alg1)", &library::algorithm1(3).unwrap()),
        11 => mortal_kernel(&randomwalk_kernel(), 7).unwrap(),
        12 => mortal_kernel(&nonuniform_kernel(8).unwrap(), 25).unwrap(),
        _ => mortal_kernel(&coin_kernel(8, 2).unwrap(), 12).unwrap(),
    }
}

const ZOO_SIZE: usize = 14;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rows_are_stochastic(which in 0usize..ZOO_SIZE) {
        let k = zoo_kernel(which);
        for s in 0..k.num_states() {
            for pos in [PositionClass::Origin, PositionClass::Away] {
                let sum: f64 = k.row(s, pos).iter().map(|t| t.prob).sum();
                prop_assert!(
                    (sum - 1.0).abs() <= ROW_TOL,
                    "kernel {} state {s}: row sums to {sum}",
                    k.label()
                );
                prop_assert!(
                    k.row(s, pos).iter().all(|t| t.prob > 0.0 && t.prob <= 1.0),
                    "kernel {} state {s}: probabilities outside (0, 1]",
                    k.label()
                );
            }
        }
    }

    #[test]
    fn state_spaces_are_closed(which in 0usize..ZOO_SIZE) {
        let k = zoo_kernel(which);
        let n = k.num_states();
        prop_assert!(k.start() < n, "start state outside the space");
        for s in 0..n {
            for t in k.row(s, PositionClass::Away) {
                prop_assert!(
                    t.next < n,
                    "kernel {} state {s}: transition to {} leaves the {n}-state space",
                    k.label(),
                    t.next
                );
            }
        }
        for &t in k.truncation_states() {
            prop_assert!(t < n, "truncation state {t} outside the space");
        }
    }

    #[test]
    fn collapse_conserves_probability(which in 0usize..ZOO_SIZE) {
        let k = zoo_kernel(which);
        let c = collapse(&k).unwrap();
        for (s, row) in c.rows.iter().enumerate() {
            let mass: f64 = row.exits.iter().map(|&(_, p)| p).sum::<f64>() + row.trunc;
            // Deficit (halted mass) is legal; excess is not.
            prop_assert!(
                mass <= 1.0 + 1e-9,
                "kernel {} state {s}: collapsed mass {mass} exceeds 1",
                k.label()
            );
            prop_assert!(row.trunc >= 0.0);
            for &(e, p) in &row.exits {
                prop_assert!((e as usize) < c.exits.len());
                prop_assert!(p > 0.0 && p <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn absorption_cdf_is_monotone(
        which in 0usize..ZOO_SIZE,
        tx in -3i64..=3,
        ty in -3i64..=3,
        budget in 1u64..40,
    ) {
        let target = if tx == 0 && ty == 0 { Point::new(1, 0) } else { Point::new(tx, ty) };
        let k = zoo_kernel(which);
        let c = collapse(&k).unwrap();
        let curve = absorption_cdf(&c, k.label(), target, budget).unwrap();
        prop_assert_eq!(curve.cdf.len(), budget as usize + 1);
        prop_assert_eq!(curve.cdf[0], 0.0);
        for m in 1..curve.cdf.len() {
            prop_assert!(
                curve.cdf[m] >= curve.cdf[m - 1],
                "kernel {} target {target}: CDF decreases at move {m}",
                k.label()
            );
        }
        prop_assert!(*curve.cdf.last().unwrap() <= 1.0 + 1e-9);
    }

    #[test]
    fn step_cdf_is_monotone_and_lags_moves(
        which in 0usize..ZOO_SIZE,
        horizon in 1u64..32,
    ) {
        let target = Point::new(1, 1);
        let k = zoo_kernel(which);
        let by_round = step_absorption_cdf(&k, k.label(), target, horizon).unwrap();
        for r in 1..by_round.len() {
            prop_assert!(by_round[r] >= by_round[r - 1]);
        }
        // Found within r rounds implies found within r moves.
        let c = collapse(&k).unwrap();
        let by_move = absorption_cdf(&c, k.label(), target, horizon).unwrap();
        for (r, (&br, &bm)) in by_round.iter().zip(by_move.cdf.iter()).enumerate() {
            prop_assert!(
                br <= bm + 1e-12,
                "kernel {}: round CDF overtakes move CDF at {r}",
                k.label()
            );
        }
    }
}
