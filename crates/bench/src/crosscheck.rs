//! Cross-validation of the Monte Carlo engine against the exact DP
//! backend: for every DP-capable cell of a workload, the MC success
//! estimate must land inside a wide Wilson score interval centred on
//! its sample and containing the DP truth — a statistical identity
//! check between two independent implementations of the same model.
//!
//! The interval uses `z = 4` (≈ 1 − 6·10⁻⁵ two-sided): tight enough
//! that a real semantic divergence between the engines fails within a
//! few hundred trials, loose enough that an honest sampler essentially
//! never false-alarms across a whole grid of cells.

use crate::experiments::{Effort, RunConfig};
use crate::workload::WorkloadExperiment;
use ants_dp::{Backend, DpMode};
use ants_sim::run_sweep_with;
use ants_workload::WorkloadError;
use std::fmt;

/// The Wilson z-score the crosscheck uses.
pub const WILSON_Z: f64 = 4.0;

/// One crosschecked cell.
#[derive(Debug, Clone)]
pub struct CrosscheckCell {
    /// The cell label.
    pub label: String,
    /// Monte Carlo trials behind the estimate.
    pub trials: u64,
    /// MC success estimate `p̂ = found / trials`.
    pub mc_success: f64,
    /// Exact DP success probability.
    pub dp_success: f64,
    /// Wilson interval around the MC sample, `z =` [`WILSON_Z`].
    pub interval: (f64, f64),
}

impl CrosscheckCell {
    /// Does the exact value sit inside the MC sample's interval?
    pub fn passes(&self) -> bool {
        self.dp_success >= self.interval.0 && self.dp_success <= self.interval.1
    }
}

/// A skipped cell and why the exact backend cannot evaluate it.
#[derive(Debug, Clone)]
pub struct SkippedCell {
    /// The cell label.
    pub label: String,
    /// Why it was skipped (the DP backend's own message).
    pub reason: String,
}

/// The whole crosscheck outcome.
#[derive(Debug, Clone)]
pub struct CrosscheckReport {
    /// Crosschecked cells, in plan order.
    pub cells: Vec<CrosscheckCell>,
    /// Cells the exact backend cannot evaluate, with reasons.
    pub skipped: Vec<SkippedCell>,
}

impl CrosscheckReport {
    /// Cells whose MC estimate left the interval around the DP truth.
    pub fn failures(&self) -> Vec<&CrosscheckCell> {
        self.cells.iter().filter(|c| !c.passes()).collect()
    }

    /// Did every crosscheckable cell pass?
    pub fn all_pass(&self) -> bool {
        self.failures().is_empty()
    }
}

impl fmt::Display for CrosscheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.cells {
            writeln!(
                f,
                "{} {}: mc {:.6} (n = {}) vs dp {:.6}, wilson [{:.6}, {:.6}]",
                if c.passes() { "pass" } else { "FAIL" },
                c.label,
                c.mc_success,
                c.trials,
                c.dp_success,
                c.interval.0,
                c.interval.1,
            )?;
        }
        for s in &self.skipped {
            writeln!(f, "skip {}: {}", s.label, s.reason)?;
        }
        let fails = self.failures().len();
        writeln!(
            f,
            "{} checked, {} skipped, {} failed",
            self.cells.len(),
            self.skipped.len(),
            fails
        )
    }
}

/// The Wilson score interval for `found` successes in `trials` draws.
pub fn wilson_interval(found: f64, trials: u64, z: f64) -> (f64, f64) {
    let n = trials as f64;
    let p = found / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Run the crosscheck: every cell the DP can evaluate — under the
/// config's `--dp-mode` override if set, else the cell's own `dp_mode`
/// — is sampled on the MC pool (the config's effort, seed, and
/// scheduling) and compared against its exact success probability; the
/// rest are listed as skipped with the DP backend's reason. When only
/// the dense-table guard blocked a cell, the skip reason additionally
/// says whether `dp_mode = "sparse"` would make it checkable (confirmed
/// by actually solving it on the frontier, not just guessed).
///
/// # Errors
///
/// Only infrastructure failures (a hand-built plan whose scenarios do
/// not construct) — DP incapability is a *skip*, never an error.
pub fn crosscheck(
    exp: &WorkloadExperiment,
    cfg: &RunConfig,
) -> Result<CrosscheckReport, WorkloadError> {
    let smoke = cfg.effort == Effort::Smoke;
    let mut cells = Vec::new();
    let mut skipped = Vec::new();
    // Decide DP capability per cell first (cheap: kernels only), then
    // sample all checkable cells in one sweep on the shared pool.
    let mut checkable = Vec::new();
    let no_metrics = ants_sim::MetricSet::empty();
    for cell in &exp.plan().cells {
        match ants_workload::dp::evaluate_cell_with(cell, smoke, no_metrics, cfg.dp_mode, None) {
            Ok(report) => checkable.push((cell, report)),
            Err(e) => {
                let mut reason = e.message;
                // The dense-table guard's hint names the sparse mode; for
                // exactly those skips, confirm the claim by retrying on
                // the frontier, so the reason states a verified fact.
                if reason.contains("dp_mode = \"sparse\"")
                    && cfg.dp_mode != Some(DpMode::Sparse)
                    && ants_workload::dp::evaluate_cell_with(
                        cell,
                        smoke,
                        no_metrics,
                        Some(DpMode::Sparse),
                        None,
                    )
                    .is_ok()
                {
                    reason.push_str(
                        " [dense guard only: this cell solves under dp_mode = \"sparse\" \
                         — rerun with --dp-mode sparse to check it]",
                    );
                }
                skipped.push(SkippedCell { label: cell.label.clone(), reason });
            }
        }
    }
    let jobs = checkable
        .iter()
        .map(|(c, _)| c.job(smoke, cfg.base_seed))
        .collect::<Result<Vec<_>, _>>()?;
    let outcomes = run_sweep_with(&jobs, &cfg.sweep_options());
    for ((cell, dp), outcome) in checkable.iter().zip(&outcomes) {
        let s = outcome.summary();
        let trials = cell.trials_at(smoke);
        let mc_success = s.found() as f64 / trials as f64;
        cells.push(CrosscheckCell {
            label: cell.label.clone(),
            trials,
            mc_success,
            dp_success: dp.success,
            interval: wilson_interval(s.found() as f64, trials, WILSON_Z),
        });
    }
    // `--backend` does not influence the crosscheck (both engines always
    // run), but a forced Dp with a non-Markovian cell should still be
    // surfaced to the caller via validate_backends before calling this.
    let _ = Backend::Mc;
    Ok(CrosscheckReport { cells, skipped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ants_workload::{WorkloadPlan, WorkloadSpec};

    fn experiment(text: &str) -> WorkloadExperiment {
        WorkloadExperiment::new(WorkloadPlan::expand(&WorkloadSpec::parse(text).unwrap()).unwrap())
    }

    #[test]
    fn wilson_interval_shrinks_with_trials_and_brackets_the_estimate() {
        let (lo_small, hi_small) = wilson_interval(5.0, 10, WILSON_Z);
        let (lo_big, hi_big) = wilson_interval(500.0, 1000, WILSON_Z);
        assert!(lo_small < 0.5 && hi_small > 0.5);
        assert!(lo_big < 0.5 && hi_big > 0.5);
        assert!(hi_big - lo_big < hi_small - lo_small, "more trials, tighter interval");
        // Degenerate estimates stay inside [0, 1].
        let (lo, hi) = wilson_interval(0.0, 8, WILSON_Z);
        assert!(lo == 0.0 && hi < 1.0 && hi > 0.0);
        let (lo, hi) = wilson_interval(8.0, 8, WILSON_Z);
        assert!(hi == 1.0 && lo > 0.0 && lo < 1.0);
    }

    #[test]
    fn mc_agrees_with_dp_on_a_small_walk_cell() {
        let exp = experiment(
            "\
name = \"xc\"
[defaults]
trials = 200
[[cells]]
name = \"walk\"
agents = 2
move_budget = 16
target = { model = \"fixed\", x = 1, y = 1 }
population = [ { strategy = \"randomwalk\" } ]
",
        );
        let report = crosscheck(&exp, &RunConfig::standard()).unwrap();
        assert_eq!(report.cells.len(), 1);
        assert!(report.skipped.is_empty());
        let c = &report.cells[0];
        assert!(c.dp_success > 0.0 && c.dp_success < 1.0);
        assert!(c.passes(), "mc {} vs dp {} in {:?}", c.mc_success, c.dp_success, c.interval);
        assert!(report.all_pass());
        let text = report.to_string();
        assert!(text.contains("pass walk"), "{text}");
        assert!(text.contains("1 checked, 0 skipped, 0 failed"), "{text}");
    }

    #[test]
    fn non_markovian_cells_are_skipped_with_reasons() {
        let exp = experiment(
            "\
name = \"xs\"
[defaults]
trials = 16
[[cells]]
name = \"levy\"
agents = 1
move_budget = 64
target = { model = \"fixed\", x = 2, y = 0 }
population = [ { strategy = \"levy(2.0, 64)\" } ]
[[cells]]
name = \"walk\"
agents = 1
move_budget = 8
target = { model = \"fixed\", x = 1, y = 0 }
population = [ { strategy = \"randomwalk\" } ]
",
        );
        let report = crosscheck(&exp, &RunConfig::standard()).unwrap();
        assert_eq!(report.cells.len(), 1, "only the walk cell is checkable");
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].label, "levy");
        assert!(report.skipped[0].reason.contains("levy"), "{}", report.skipped[0].reason);
        assert!(report.to_string().contains("skip levy"), "{report}");
    }

    #[test]
    fn dense_guard_skips_name_the_sparse_escape_hatch_and_sparse_mode_checks_them() {
        // mortal(randomwalk, 1000) at budget 64 wants a 1001 x 129^2
        // dense table (~16.7M entries) — past MAX_TABLE_ENTRIES — but
        // its sparse frontier is tiny (one live expiry layer per step).
        let exp = experiment(
            "\
name = \"xguard\"
[defaults]
trials = 200
[[cells]]
name = \"big\"
agents = 1
move_budget = 64
dp_mode = \"dense\"
target = { model = \"fixed\", x = 2, y = 0 }
population = [ { strategy = \"mortal(randomwalk, 1000)\" } ]
",
        );
        let report = crosscheck(&exp, &RunConfig::standard()).unwrap();
        assert!(report.cells.is_empty());
        assert_eq!(report.skipped.len(), 1);
        let reason = &report.skipped[0].reason;
        assert!(reason.contains("exact backend guard tripped"), "{reason}");
        assert!(reason.contains("dense guard only"), "{reason}");
        assert!(reason.contains("--dp-mode sparse"), "{reason}");
        // The override beats the cell's declared mode, so the same cell
        // becomes checkable — and the engines must still agree at z = 4.
        let sparse =
            crosscheck(&exp, &RunConfig::standard().with_dp_mode(Some(DpMode::Sparse))).unwrap();
        assert!(sparse.skipped.is_empty(), "{sparse}");
        assert_eq!(sparse.cells.len(), 1);
        assert!(sparse.all_pass(), "{sparse}");
    }

    #[test]
    fn a_seed_sweep_stays_inside_the_interval() {
        // Ten different seeds, all must pass: the z = 4 interval makes a
        // false alarm here astronomically unlikely unless the engines
        // actually disagree.
        let exp = experiment(
            "\
name = \"xseed\"
[defaults]
trials = 120
[[cells]]
name = \"coin\"
agents = 2
move_budget = 48
target = { model = \"ring\", dist = 2 }
population = [ { strategy = \"coin(4, 2)\" } ]
",
        );
        for seed in 0..10u64 {
            let report = crosscheck(&exp, &RunConfig::standard().with_seed(seed)).unwrap();
            assert!(report.all_pass(), "seed {seed}: {report}");
        }
    }
}
