//! [`WorkloadExperiment`] — any parsed workload spec as an
//! [`Experiment`], so declarative workloads inherit the whole runner
//! stack for free: wall-clock stamping, typed [`Report`]s (text/CSV/JSON
//! from one record set), `target/reports/<key>.json`, and the shared
//! `--seed/--threads/--granularity/--chunk` flag surface.
//!
//! The adapter is thin by design: the workload crate owns parsing,
//! expansion, and validation; this module only maps a validated
//! [`WorkloadPlan`] onto the [`Experiment`] trait and renders one report
//! row per expanded cell.
//!
//! When the spec declares `metrics = [...]` (or the run config adds
//! `--metrics`), every cell additionally runs through the observation
//! layer (`ants_sim::run_observed_sweep`, same pool and scheduling
//! options as the trial sweep) and the report gains the metric columns —
//! aggregated over trials, in canonical metric order, byte-identical at
//! every thread count, granularity, and chunk size like every other
//! report cell.

use crate::experiments::{Effort, Experiment, ExperimentMeta, Report, RunConfig, SweepConfig};
use ants_dp::{Backend, DpMode};
use ants_obs::{Counter, Phase, SpanGuard};
use ants_sim::report::Value;
use ants_sim::{run_observed_sweep, run_sweep_with, Metric, MetricSet, TrialObservations};
use ants_workload::dp::DpMemo;
use ants_workload::{PlannedCell, WorkloadError, WorkloadPlan};
use std::path::Path;

/// A workload-backed experiment.
///
/// Plans arrive pre-validated from `WorkloadPlan::expand` (every cell's
/// scenario proven constructible), so [`Experiment::run`] cannot fail
/// on a spec that loaded successfully.
pub struct WorkloadExperiment {
    plan: WorkloadPlan,
    meta: ExperimentMeta,
}

impl WorkloadExperiment {
    /// Wrap a validated plan.
    ///
    /// `WorkloadPlan::expand` already proved every cell's scenario
    /// constructible, so this does not re-validate. A hand-assembled
    /// plan that bypassed `expand` surfaces its errors when
    /// [`Experiment::run`] builds the jobs.
    pub fn new(plan: WorkloadPlan) -> WorkloadExperiment {
        // `ExperimentMeta` carries `&'static str` (the 15 built-in
        // experiments are consts); workload identities are data, so leak
        // them — bounded by the number of specs loaded per process.
        let claim: &'static str = if plan.description.is_empty() {
            "declarative workload spec (see the spec file for intent)"
        } else {
            leak(plan.description.clone())
        };
        let meta = ExperimentMeta {
            key: leak(plan.key.clone()),
            id: leak(format!("workload '{}'", plan.name)),
            claim,
        };
        WorkloadExperiment { plan, meta }
    }

    /// Load a spec file into a runnable experiment.
    ///
    /// # Errors
    ///
    /// I/O, parse, and validation failures, with the file named in the
    /// error context.
    pub fn from_file(path: &Path) -> Result<WorkloadExperiment, WorkloadError> {
        Ok(WorkloadExperiment::new(ants_workload::load(path)?))
    }

    /// The underlying plan.
    pub fn plan(&self) -> &WorkloadPlan {
        &self.plan
    }

    /// The backend a cell runs under this config: the `--backend`
    /// override if set, else the cell's own (spec-validated) choice.
    pub fn cell_backend(cfg: &RunConfig, cell: &PlannedCell) -> Backend {
        cfg.backend.unwrap_or(cell.backend)
    }

    /// The DP representation a cell solves under this config: the
    /// `--dp-mode` override if set, else the cell's own (spec-resolved)
    /// `dp_mode`.
    pub fn cell_dp_mode(cfg: &RunConfig, cell: &PlannedCell) -> DpMode {
        cfg.dp_mode.unwrap_or(cell.dp_mode)
    }

    /// Check that every cell this config routes to the exact backend can
    /// actually be evaluated exactly — the CLI calls this before running
    /// so a forced `--backend dp` fails up front with the offending
    /// strategy named, not mid-report.
    ///
    /// # Errors
    ///
    /// The first DP-incapable cell, with its label and strategy.
    pub fn validate_backends(&self, cfg: &RunConfig) -> Result<(), WorkloadError> {
        for cell in &self.plan.cells {
            if Self::cell_backend(cfg, cell) != Backend::Dp {
                continue;
            }
            if cell.guess_move_ceiling.is_some() {
                return Err(WorkloadError {
                    context: format!("cell '{}'", cell.label),
                    message: "backend = \"dp\" cannot model 'guess_move_ceiling' — drop the \
                              ceiling or use backend = \"mc\""
                        .to_string(),
                });
            }
            for (_, s) in &cell.population {
                s.kernel().map_err(|message| WorkloadError {
                    context: format!("cell '{}'", cell.label),
                    message,
                })?;
            }
        }
        Ok(())
    }

    /// [`Experiment::run`], but fallible: exact-backend failures (a
    /// non-Markovian strategy forced onto DP via `--backend`, or a cell
    /// exceeding the DP's cost guards) come back as errors instead of
    /// panics. Monte Carlo cells cannot fail.
    pub fn try_run(&self, cfg: &RunConfig) -> Result<Report, WorkloadError> {
        let smoke = cfg.effort == Effort::Smoke;
        let metrics = self.plan.metrics.union(cfg.metrics);
        let mut report = self.start_report(cfg, metrics, smoke);
        // Route each cell: DP cells leave the trial pool entirely; MC
        // cells keep their per-cell seed tags, so the presence of DP
        // neighbours never shifts their randomness.
        let backends: Vec<Backend> =
            self.plan.cells.iter().map(|c| Self::cell_backend(cfg, c)).collect();
        let mc_cells: Vec<&PlannedCell> = self
            .plan
            .cells
            .iter()
            .zip(&backends)
            .filter(|(_, b)| **b == Backend::Mc)
            .map(|(c, _)| c)
            .collect();
        let jobs =
            mc_cells.iter().map(|c| c.job(smoke, cfg.base_seed)).collect::<Result<Vec<_>, _>>()?;
        let outcomes = run_sweep_with(&jobs, &cfg.sweep_options());
        // The observed sweep rides the same pool and scheduling options;
        // an empty metric set skips it entirely, so metric-less specs
        // keep their exact pre-observation reports.
        let observed: Vec<Vec<TrialObservations>> = if metrics.is_empty() {
            Vec::new()
        } else {
            let ojobs = mc_cells
                .iter()
                .map(|c| c.observed_job(smoke, cfg.base_seed, metrics))
                .collect::<Result<Vec<_>, _>>()?;
            run_observed_sweep(&ojobs, &cfg.sweep_options())
        };
        // One memo for the whole run: cells that share curves (same
        // kernel, target, budget, mode) solve once. Memoized reports are
        // byte-identical to fresh ones, so this is pure wall-clock.
        let memo = DpMemo::new();
        let mut mc_idx = 0usize;
        for (cell, backend) in self.plan.cells.iter().zip(&backends) {
            let row = match backend {
                Backend::Mc => {
                    let i = mc_idx;
                    mc_idx += 1;
                    mc_row(cell, smoke, metrics, &outcomes[i], observed.get(i))
                }
                Backend::Dp => dp_row(cell, smoke, metrics, cfg, &memo)?,
            };
            report.row(row);
        }
        Ok(report)
    }

    /// The report skeleton every run variant shares: the full column
    /// vocabulary for `metrics` and the spec-identity params.
    fn start_report(&self, cfg: &RunConfig, metrics: MetricSet, smoke: bool) -> Report {
        let mut columns = vec![
            "cell",
            "population",
            "target",
            "n",
            "trials",
            "found",
            "success",
            "median moves",
            "mean moves",
            "max chi",
            "exact",
        ];
        for m in metrics.iter() {
            columns.extend_from_slice(metric_columns(m));
        }
        let mut report = Report::new(&self.meta, cfg, columns);
        report.param("spec", self.plan.name.as_str());
        report.param("cells", self.plan.cells.len());
        report.param("total trials", self.plan.total_trials(smoke));
        if !metrics.is_empty() {
            let names: Vec<&str> = metrics.iter().map(Metric::as_str).collect();
            report.param("metrics", names.join(","));
        }
        report
    }

    /// [`WorkloadExperiment::try_run`], but one cell at a time:
    /// `on_row(index, cell, row)` fires as soon as each cell's row is
    /// computed, so a caller can stream partial results (the serve
    /// daemon pushes each row to its client the moment it exists).
    ///
    /// Scheduling options come from the caller rather than
    /// `cfg.sweep_options()` so a [`Probe`](ants_sim::Probe) can ride
    /// along. Per-cell sweeps schedule differently from the batched
    /// sweep `try_run` issues, but the engine's determinism contract
    /// makes results byte-identical across schedules — a streamed report
    /// equals its batched twin cell for cell (pinned by
    /// `streamed_rows_match_batched_rows`).
    ///
    /// # Errors
    ///
    /// Exactly as [`WorkloadExperiment::try_run`]: DP-backend failures;
    /// rows already streamed stay streamed (the caller decides how to
    /// surface a mid-stream error).
    pub fn try_run_streamed(
        &self,
        cfg: &RunConfig,
        opts: &ants_sim::SweepOptions,
        on_row: impl FnMut(usize, &PlannedCell, &[Value]),
    ) -> Result<Report, WorkloadError> {
        self.try_run_streamed_with(cfg, opts, &DpMemo::new(), on_row)
    }

    /// [`WorkloadExperiment::try_run_streamed`] with a caller-owned
    /// [`DpMemo`], so a long-lived host (the serve daemon) can share DP
    /// curves *across* submissions, not just across one run's cells.
    ///
    /// # Errors
    ///
    /// Exactly as [`WorkloadExperiment::try_run_streamed`].
    pub fn try_run_streamed_with(
        &self,
        cfg: &RunConfig,
        opts: &ants_sim::SweepOptions,
        memo: &DpMemo,
        mut on_row: impl FnMut(usize, &PlannedCell, &[Value]),
    ) -> Result<Report, WorkloadError> {
        let smoke = cfg.effort == Effort::Smoke;
        let metrics = self.plan.metrics.union(cfg.metrics);
        let mut report = self.start_report(cfg, metrics, smoke);
        for (i, cell) in self.plan.cells.iter().enumerate() {
            let row = match Self::cell_backend(cfg, cell) {
                Backend::Mc => {
                    let job = cell.job(smoke, cfg.base_seed)?;
                    let outcomes = run_sweep_with(&[job], opts);
                    let observed: Vec<Vec<TrialObservations>> = if metrics.is_empty() {
                        Vec::new()
                    } else {
                        let ojob = cell.observed_job(smoke, cfg.base_seed, metrics)?;
                        run_observed_sweep(&[ojob], opts)
                    };
                    mc_row(cell, smoke, metrics, &outcomes[0], observed.first())
                }
                Backend::Dp => dp_row(cell, smoke, metrics, cfg, memo)?,
            };
            on_row(i, cell, &row);
            report.row(row);
        }
        Ok(report)
    }
}

/// Intern a string as `&'static str`. Repeated calls with the same
/// content return the same leaked allocation, so a long-running process
/// (the serve daemon constructs a `WorkloadExperiment` per request)
/// leaks memory proportional to the number of *distinct* workload
/// identities, not the number of requests.
fn leak(s: String) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static INTERNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNED.get_or_init(Mutex::default).lock().expect("intern table poisoned");
    match set.get(s.as_str()) {
        Some(existing) => existing,
        None => {
            let leaked: &'static str = Box::leak(s.into_boxed_str());
            set.insert(leaked);
            leaked
        }
    }
}

impl Experiment for WorkloadExperiment {
    fn meta(&self) -> &ExperimentMeta {
        &self.meta
    }

    fn config(&self, effort: Effort) -> SweepConfig {
        let smoke = effort == Effort::Smoke;
        let trials_per_cell = self.plan.cells.iter().map(|c| c.trials_at(smoke)).max().unwrap_or(0);
        SweepConfig { cells: self.plan.cells.len(), trials_per_cell }
    }

    fn run(&self, cfg: &RunConfig) -> Report {
        // Spec-level `backend = "dp"` cells were validated at expansion;
        // only a forced `--backend dp` override or a cost-guard trip can
        // fail here, and the CLI pre-validates via `validate_backends`.
        self.try_run(cfg).unwrap_or_else(|e| panic!("workload run failed: {e}"))
    }
}

/// One Monte Carlo report row: trial-pool summary plus observation
/// aggregates, `exact = false`.
fn mc_row(
    cell: &PlannedCell,
    smoke: bool,
    metrics: MetricSet,
    outcome: &ants_sim::Outcome,
    observed: Option<&Vec<TrialObservations>>,
) -> Vec<Value> {
    let s = outcome.summary();
    let median = if s.found() == 0 { f64::NAN } else { s.median_moves() };
    let mean = if s.found() == 0 { f64::NAN } else { s.mean_moves() };
    let mut row: Vec<Value> = vec![
        cell.label.as_str().into(),
        cell.population_label().into(),
        cell.target_label().into(),
        cell.agents.into(),
        cell.trials_at(smoke).into(),
        s.found().into(),
        s.success_rate().into(),
        median.into(),
        mean.into(),
        s.chi_footprint().chi().into(),
        false.into(),
    ];
    for (spec_idx, m) in metrics.iter().enumerate() {
        metric_cells(m, cell, observed.expect("observed sweep ran"), spec_idx, &mut row);
    }
    row
}

/// One exact report row: the DP cell evaluation mapped onto the same
/// column vocabulary, `exact = true`. Solves under the config's
/// `--dp-mode` override (if any), shares curves through `memo`, and
/// attributes the solve to telemetry (`dp_solve` span, `dp_solves` /
/// `dp_memo_hits` / `dp_memo_misses` counters) when a sink is attached.
fn dp_row(
    cell: &PlannedCell,
    smoke: bool,
    metrics: MetricSet,
    cfg: &RunConfig,
    memo: &DpMemo,
) -> Result<Vec<Value>, WorkloadError> {
    let (hits_before, misses_before) = memo.stats();
    let r = {
        let _span = SpanGuard::new(cfg.telemetry, Phase::DpSolve);
        ants_workload::dp::evaluate_cell_with(cell, smoke, metrics, cfg.dp_mode, Some(memo))?
    };
    if let Some(t) = cfg.telemetry {
        let (hits, misses) = memo.stats();
        t.incr(0, Counter::DpSolves);
        t.add(0, Counter::DpMemoHits, hits.saturating_sub(hits_before));
        t.add(0, Counter::DpMemoMisses, misses.saturating_sub(misses_before));
    }
    let mut row: Vec<Value> = vec![
        cell.label.as_str().into(),
        cell.population_label().into(),
        cell.target_label().into(),
        cell.agents.into(),
        cell.trials_at(smoke).into(),
        r.found.into(),
        r.success.into(),
        r.median_moves.into(),
        r.mean_moves.into(),
        r.max_chi.into(),
        true.into(),
    ];
    let missing = || -> Value {
        // Unreachable by construction: `dp_request` sets every flag the
        // metric set contains, and `evaluate` fills every flagged field.
        f64::NAN.into()
    };
    for m in metrics.iter() {
        match m {
            Metric::Coverage => {
                row.push(r.coverage.map_or_else(missing, Value::from));
                row.push(r.adversarial_left.map_or_else(missing, Value::from));
            }
            Metric::FirstVisit => {
                row.push(r.mean_first_visit.map_or_else(missing, Value::from));
            }
            Metric::RoundTrace => match r.round_trace {
                Some((q, h)) => {
                    row.push(q.into());
                    row.push(h.into());
                }
                None => {
                    row.push(missing());
                    row.push(missing());
                }
            },
            Metric::Chi => row.push(r.chi_obs.map_or_else(missing, Value::from)),
            Metric::FoundRound => match r.found_round {
                Some((frac, mean)) => {
                    row.push(frac.into());
                    row.push(mean.into());
                }
                None => {
                    row.push(missing());
                    row.push(missing());
                }
            },
        }
    }
    Ok(row)
}

/// The report columns each metric contributes, in order.
fn metric_columns(m: Metric) -> &'static [&'static str] {
    match m {
        Metric::Coverage => &["coverage", "adversarial left"],
        Metric::FirstVisit => &["mean first visit"],
        Metric::RoundTrace => &["cover@R/4", "cover@R/2"],
        Metric::Chi => &["chi obs"],
        Metric::FoundRound => &["found@R", "mean found round"],
    }
}

/// Aggregate one metric's observations over a cell's trials into report
/// cells (appended to `row` in [`metric_columns`] order).
///
/// All aggregations iterate trials in seed order, so the cells inherit
/// the observation layer's determinism contract.
fn metric_cells(
    m: Metric,
    cell: &PlannedCell,
    trials: &[TrialObservations],
    spec_idx: usize,
    row: &mut Vec<Value>,
) {
    let n = trials.len().max(1) as f64;
    match m {
        Metric::Coverage => {
            let mut sum = 0.0;
            let mut adversarial_every_trial = true;
            for t in trials {
                let grid = t[spec_idx].as_coverage();
                sum += grid.coverage();
                adversarial_every_trial &= grid.farthest_unvisited().is_some();
            }
            row.push((sum / n).into());
            row.push(adversarial_every_trial.into());
        }
        Metric::FirstVisit => {
            let mut sum = 0.0;
            let mut seen = 0u64;
            for t in trials {
                if let Some(mean) = t[spec_idx].as_first_visit().mean_first_visit() {
                    sum += mean;
                    seen += 1;
                }
            }
            row.push(if seen == 0 { f64::NAN.into() } else { (sum / seen as f64).into() });
        }
        Metric::RoundTrace => {
            let rounds = cell.observe_rounds();
            for at in [rounds.div_ceil(4), rounds.div_ceil(2)] {
                let mut sum = 0.0;
                for t in trials {
                    // The denominator is the observation's own measured
                    // region, so a future bounds change in
                    // `observer_specs` cannot desynchronise the fraction.
                    let grid = t[spec_idx].as_first_visit();
                    sum += grid.visited_by(at) as f64 / grid.bounds().area() as f64;
                }
                row.push((sum / n).into());
            }
        }
        Metric::Chi => {
            let mut max = ants_core::SelectionComplexity::new(0, 0);
            for t in trials {
                max = max.max(t[spec_idx].as_chi());
            }
            row.push(max.chi().into());
        }
        Metric::FoundRound => {
            let mut found = 0u64;
            let mut sum = 0.0;
            for t in trials {
                if let Some(f) = t[spec_idx].as_first_find() {
                    found += 1;
                    sum += f.round as f64;
                }
            }
            row.push((found as f64 / n).into());
            row.push(if found == 0 { f64::NAN.into() } else { (sum / found as f64).into() });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ants_workload::WorkloadSpec;

    const SPEC: &str = r#"
name = "unit demo"
description = "three-strategy mixed cell"

[defaults]
trials = 6
smoke_trials = 3

[[cells]]
name = "mixed"
agents = 4
target = { model = "ball", dist = 6 }
population = [
  { strategy = "nonuniform(dist)", weight = 2 },
  { strategy = "randomwalk", weight = 1 },
  { strategy = "spiral", weight = 1 },
]
"#;

    fn experiment() -> WorkloadExperiment {
        let plan = WorkloadPlan::expand(&WorkloadSpec::parse(SPEC).unwrap()).unwrap();
        WorkloadExperiment::new(plan)
    }

    #[test]
    fn adapts_a_plan_onto_the_experiment_trait() {
        let exp = experiment();
        assert_eq!(exp.meta().key, "unit-demo");
        assert!(exp.meta().id.contains("unit demo"));
        assert_eq!(exp.meta().claim, "three-strategy mixed cell");
        let cfg = exp.config(Effort::Smoke);
        assert_eq!(cfg.cells, 1);
        assert_eq!(cfg.trials_per_cell, 3);
        assert_eq!(exp.config(Effort::Standard).trials_per_cell, 6);
    }

    #[test]
    fn runs_end_to_end_with_typed_rows() {
        let exp = experiment();
        let report = exp.run(&RunConfig::smoke());
        assert_eq!(report.len(), 1);
        assert_eq!(report.cell(0, "cell"), &ants_sim::report::Value::Text("mixed".into()));
        assert_eq!(report.num(0, "trials"), 3.0);
        assert!(report.num(0, "success") >= 0.0);
        // The report serializes with the standard schema.
        let parsed = ants_sim::json::Json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(parsed.get("id").and_then(|v| v.as_str()), Some("unit-demo"));
    }

    #[test]
    fn seed_shifts_change_outcomes_deterministically() {
        let exp = experiment();
        let a = exp.run(&RunConfig::standard());
        let b = exp.run(&RunConfig::standard());
        assert_eq!(a.to_csv(), b.to_csv(), "same config must reproduce");
        let shifted = exp.run(&RunConfig::standard().with_seed(1));
        assert_ne!(a.to_csv(), shifted.to_csv(), "--seed must shift the sweep");
    }

    /// A spec with `metrics = [...]`: every declared metric's columns
    /// appear after the base columns, in canonical order.
    const METRIC_SPEC: &str = r#"
name = "metric demo"
metrics = ["coverage", "first_visit", "round_trace", "chi", "found_round"]

[defaults]
trials = 4
smoke_trials = 2

[[cells]]
name = "walk"
agents = 2
target = { model = "corner", dist = 8 }
move_budget = 64
population = [ { strategy = "randomwalk" } ]

[[cells]]
name = "spiral"
agents = 1
target = { model = "corner", dist = 4 }
move_budget = 120
population = [ { strategy = "spiral" } ]
"#;

    fn metric_experiment() -> WorkloadExperiment {
        let plan = WorkloadPlan::expand(&WorkloadSpec::parse(METRIC_SPEC).unwrap()).unwrap();
        WorkloadExperiment::new(plan)
    }

    #[test]
    fn metrics_append_observation_columns() {
        let exp = metric_experiment();
        let report = exp.run(&RunConfig::smoke());
        let cols: Vec<&str> = report.records().columns().iter().map(String::as_str).collect();
        assert_eq!(cols[10], "exact");
        assert_eq!(
            &cols[11..],
            &[
                "coverage",
                "adversarial left",
                "mean first visit",
                "cover@R/4",
                "cover@R/2",
                "chi obs",
                "found@R",
                "mean found round"
            ],
            "metric columns in canonical order after the base columns"
        );
        // The spiral covers its whole horizon deterministically: a
        // 120-round spiral walks 120 distinct cells of the 81-cell ball
        // boundary region... more to the point, its coverage is exact
        // and equal across trials, and it finds the corner target.
        assert_eq!(report.num(1, "found@R"), 1.0, "spiral finds corner(4) within 120 rounds");
        assert!(report.num(1, "coverage") > 0.9, "spiral coverage near-complete");
        // Random walkers at 64 rounds leave most of ball(8) unvisited
        // and the adversarial cell survives in every trial.
        assert!(report.num(0, "coverage") < 0.5);
        assert_eq!(report.cell(0, "adversarial left"), &Value::Bool(true));
        // Trace fractions are monotone in the round horizon.
        assert!(report.num(0, "cover@R/4") <= report.num(0, "cover@R/2"));
    }

    #[test]
    fn metric_columns_are_schedule_invariant() {
        use ants_sim::Granularity;
        let reference = metric_experiment().run(&RunConfig::smoke().with_threads(Some(1)));
        for (threads, granularity, chunk) in [
            (2usize, Granularity::Trial, None),
            (2, Granularity::Agent, Some(1)),
            (4, Granularity::Agent, Some(3)),
        ] {
            let cfg = RunConfig::smoke()
                .with_threads(Some(threads))
                .with_granularity(granularity)
                .with_chunk(chunk);
            let got = metric_experiment().run(&cfg);
            assert_eq!(
                got.to_csv(),
                reference.to_csv(),
                "metric columns drifted at threads {threads}, {granularity:?}, chunk {chunk:?}"
            );
        }
    }

    /// One MC cell and one DP cell sharing a tiny scenario.
    const MIXED_BACKEND_SPEC: &str = r#"
name = "backend demo"

[defaults]
trials = 40

[[cells]]
name = "mc"
agents = 2
move_budget = 16
target = { model = "fixed", x = 1, y = 1 }
population = [ { strategy = "randomwalk" } ]

[[cells]]
name = "dp"
agents = 2
move_budget = 16
backend = "dp"
target = { model = "fixed", x = 1, y = 1 }
population = [ { strategy = "randomwalk" } ]
"#;

    fn mixed_experiment() -> WorkloadExperiment {
        let plan = WorkloadPlan::expand(&WorkloadSpec::parse(MIXED_BACKEND_SPEC).unwrap()).unwrap();
        WorkloadExperiment::new(plan)
    }

    #[test]
    fn dp_cells_route_off_the_trial_pool_with_exact_rows() {
        let exp = mixed_experiment();
        let report = exp.run(&RunConfig::standard());
        assert_eq!(report.cell(0, "exact"), &Value::Bool(false));
        assert_eq!(report.cell(1, "exact"), &Value::Bool(true));
        // Same scenario, so the MC estimate sits near the DP truth.
        let dp = report.num(1, "success");
        assert!(dp > 0.0 && dp < 1.0, "{dp}");
        assert!((report.num(0, "success") - dp).abs() < 0.35);
        // The DP row's found column is the expectation trials × success.
        assert!((report.num(1, "found") - 40.0 * dp).abs() < 1e-12);
    }

    #[test]
    fn dp_rows_are_byte_identical_across_schedules_and_reruns() {
        let reference = mixed_experiment().run(&RunConfig::standard().with_threads(Some(1)));
        for threads in [2usize, 4] {
            let got = mixed_experiment().run(&RunConfig::standard().with_threads(Some(threads)));
            assert_eq!(got.to_csv(), reference.to_csv(), "drift at {threads} threads");
        }
        let rerun = mixed_experiment().run(&RunConfig::standard().with_threads(Some(1)));
        assert_eq!(rerun.to_csv(), reference.to_csv());
    }

    #[test]
    fn backend_override_forces_both_directions() {
        let exp = mixed_experiment();
        let all_dp = exp.run(&RunConfig::standard().with_backend(Some(Backend::Dp)));
        assert_eq!(all_dp.cell(0, "exact"), &Value::Bool(true));
        assert_eq!(all_dp.cell(1, "exact"), &Value::Bool(true));
        // Both cells describe the same scenario, so forced-DP rows agree
        // exactly.
        assert_eq!(
            all_dp.num(0, "success").to_bits(),
            all_dp.num(1, "success").to_bits(),
            "identical cells must produce identical exact rows"
        );
        let all_mc = exp.run(&RunConfig::standard().with_backend(Some(Backend::Mc)));
        assert_eq!(all_mc.cell(1, "exact"), &Value::Bool(false));
    }

    #[test]
    fn forced_dp_on_a_non_markovian_cell_fails_validation() {
        let text = MIXED_BACKEND_SPEC.replace("\"randomwalk\"", "\"levy(2.0, 64)\"");
        // The spec itself is fine: the "dp" cell would fail expansion, so
        // flip it to mc first and force dp from the config instead.
        let text = text.replace("backend = \"dp\"", "backend = \"mc\"");
        let plan = WorkloadPlan::expand(&WorkloadSpec::parse(&text).unwrap()).unwrap();
        let exp = WorkloadExperiment::new(plan);
        let cfg = RunConfig::standard().with_backend(Some(Backend::Dp));
        let e = exp.validate_backends(&cfg).unwrap_err();
        assert!(e.context.contains("cell 'mc'"), "{e}");
        assert!(e.message.contains("levy"), "{e}");
        assert!(exp.try_run(&cfg).is_err());
        // Without the override the same experiment runs fine.
        assert!(exp.validate_backends(&RunConfig::standard()).is_ok());
    }

    /// The serving contract: a streamed run is byte-identical to its
    /// batched twin — same columns, same rows, same CSV — even though
    /// per-cell sweeps schedule work differently, and the callback sees
    /// every cell in order with the exact row the report keeps.
    #[test]
    fn streamed_rows_match_batched_rows() {
        for (exp, cfg) in [
            (metric_experiment(), RunConfig::smoke()),
            (mixed_experiment(), RunConfig::standard()),
            (metric_experiment(), RunConfig::smoke().with_threads(Some(3))),
        ] {
            let batched = exp.try_run(&cfg).expect("batched run");
            let mut seen: Vec<(usize, String, Vec<Value>)> = Vec::new();
            let streamed = exp
                .try_run_streamed(&cfg, &cfg.sweep_options(), |i, cell, row| {
                    seen.push((i, cell.label.clone(), row.to_vec()));
                })
                .expect("streamed run");
            assert_eq!(streamed.to_csv(), batched.to_csv());
            assert_eq!(seen.len(), exp.plan().cells.len());
            for (pos, (i, label, row)) in seen.iter().enumerate() {
                assert_eq!(*i, pos, "callback order");
                assert_eq!(label, &exp.plan().cells[pos].label);
                // Cell-wise via the JSON tokens: derived PartialEq on
                // Value says NaN != NaN, which is not the equality a
                // byte-identity check wants.
                let tokens =
                    |cells: &[Value]| -> Vec<String> { cells.iter().map(Value::to_json).collect() };
                assert_eq!(tokens(row), tokens(&streamed.records().rows()[pos]));
            }
        }
    }

    #[test]
    fn dp_mode_override_agrees_with_dense_and_counts_telemetry() {
        let exp = mixed_experiment();
        let dense = exp.run(&RunConfig::standard());
        let sparse = exp.run(&RunConfig::standard().with_dp_mode(Some(DpMode::Sparse)));
        // The representations agree to the truncation tolerance; MC rows
        // are untouched by the override.
        assert!((dense.num(1, "success") - sparse.num(1, "success")).abs() <= 1e-9);
        assert_eq!(
            dense.num(0, "success").to_bits(),
            sparse.num(0, "success").to_bits(),
            "--dp-mode must not perturb MC cells"
        );
        // Telemetry attributes the solve: one dp cell → one solve, all
        // its curve lookups fresh (nothing shares a curve with it).
        let t = ants_obs::Telemetry::new();
        let _ = exp.run(&RunConfig::standard().with_telemetry(Some(t)));
        assert_eq!(t.counter(Counter::DpSolves), 1);
        assert_eq!(t.counter(Counter::DpMemoHits), 0);
        assert!(t.counter(Counter::DpMemoMisses) >= 1);
        assert!(t.snapshot().phase_count[Phase::DpSolve as usize] >= 1);
    }

    #[test]
    fn shared_memo_carries_curves_across_streamed_runs() {
        let exp = mixed_experiment();
        let cfg = RunConfig::standard();
        let memo = DpMemo::new();
        let cold = exp
            .try_run_streamed_with(&cfg, &cfg.sweep_options(), &memo, |_, _, _| {})
            .expect("cold run");
        let (h0, _) = memo.stats();
        assert_eq!(h0, 0, "first run has nothing to hit");
        let warm = exp
            .try_run_streamed_with(&cfg, &cfg.sweep_options(), &memo, |_, _, _| {})
            .expect("warm run");
        let (h1, _) = memo.stats();
        assert!(h1 > 0, "second run reuses the first run's curves");
        assert_eq!(warm.to_csv(), cold.to_csv(), "memoized rows are byte-identical");
    }

    #[test]
    fn interning_reuses_identical_meta_strings() {
        let a = experiment();
        let b = experiment();
        // Same spec → same leaked pointers, not fresh allocations.
        assert!(std::ptr::eq(a.meta().key, b.meta().key));
        assert!(std::ptr::eq(a.meta().claim, b.meta().claim));
    }

    #[test]
    fn runconfig_metrics_opt_in_without_spec_support() {
        // A spec without a metrics key gains columns via --metrics.
        let exp = experiment();
        let base = exp.run(&RunConfig::smoke());
        assert_eq!(base.records().columns().len(), 11);
        let cfg =
            RunConfig::smoke().with_metrics(ants_sim::MetricSet::parse_list("coverage").unwrap());
        let with = exp.run(&cfg);
        assert_eq!(with.records().columns().len(), 13);
        assert!(with.num(0, "coverage") > 0.0, "agents visited at least the origin");
        // The base columns are unchanged by the observation run.
        for col in ["found", "success", "median moves", "mean moves"] {
            assert_eq!(base.cell(0, col), with.cell(0, col), "column {col} drifted");
        }
    }
}
