//! [`WorkloadExperiment`] — any parsed workload spec as an
//! [`Experiment`], so declarative workloads inherit the whole runner
//! stack for free: wall-clock stamping, typed [`Report`]s (text/CSV/JSON
//! from one record set), `target/reports/<key>.json`, and the shared
//! `--seed/--threads/--granularity/--chunk` flag surface.
//!
//! The adapter is thin by design: the workload crate owns parsing,
//! expansion, and validation; this module only maps a validated
//! [`WorkloadPlan`] onto the [`Experiment`] trait and renders one report
//! row per expanded cell.

use crate::experiments::{Effort, Experiment, ExperimentMeta, Report, RunConfig, SweepConfig};
use ants_sim::run_sweep_with;
use ants_workload::{WorkloadError, WorkloadPlan};
use std::path::Path;

/// A workload-backed experiment.
///
/// Plans arrive pre-validated from `WorkloadPlan::expand` (every cell's
/// scenario proven constructible), so [`Experiment::run`] cannot fail
/// on a spec that loaded successfully.
pub struct WorkloadExperiment {
    plan: WorkloadPlan,
    meta: ExperimentMeta,
}

impl WorkloadExperiment {
    /// Wrap a validated plan.
    ///
    /// `WorkloadPlan::expand` already proved every cell's scenario
    /// constructible, so this does not re-validate. A hand-assembled
    /// plan that bypassed `expand` surfaces its errors when
    /// [`Experiment::run`] builds the jobs.
    pub fn new(plan: WorkloadPlan) -> WorkloadExperiment {
        // `ExperimentMeta` carries `&'static str` (the 15 built-in
        // experiments are consts); workload identities are data, so leak
        // them — bounded by the number of specs loaded per process.
        let claim: &'static str = if plan.description.is_empty() {
            "declarative workload spec (see the spec file for intent)"
        } else {
            leak(plan.description.clone())
        };
        let meta = ExperimentMeta {
            key: leak(plan.key.clone()),
            id: leak(format!("workload '{}'", plan.name)),
            claim,
        };
        WorkloadExperiment { plan, meta }
    }

    /// Load a spec file into a runnable experiment.
    ///
    /// # Errors
    ///
    /// I/O, parse, and validation failures, with the file named in the
    /// error context.
    pub fn from_file(path: &Path) -> Result<WorkloadExperiment, WorkloadError> {
        Ok(WorkloadExperiment::new(ants_workload::load(path)?))
    }

    /// The underlying plan.
    pub fn plan(&self) -> &WorkloadPlan {
        &self.plan
    }
}

fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

impl Experiment for WorkloadExperiment {
    fn meta(&self) -> &ExperimentMeta {
        &self.meta
    }

    fn config(&self, effort: Effort) -> SweepConfig {
        let smoke = effort == Effort::Smoke;
        let trials_per_cell = self.plan.cells.iter().map(|c| c.trials_at(smoke)).max().unwrap_or(0);
        SweepConfig { cells: self.plan.cells.len(), trials_per_cell }
    }

    fn run(&self, cfg: &RunConfig) -> Report {
        let smoke = cfg.effort == Effort::Smoke;
        let mut report = Report::new(
            &self.meta,
            cfg,
            vec![
                "cell",
                "population",
                "target",
                "n",
                "trials",
                "found",
                "success",
                "median moves",
                "mean moves",
                "max chi",
            ],
        );
        report.param("spec", self.plan.name.as_str());
        report.param("cells", self.plan.cells.len());
        report.param("total trials", self.plan.total_trials(smoke));
        let jobs = self
            .plan
            .jobs(smoke, cfg.base_seed)
            .expect("plans from WorkloadPlan::expand are pre-validated");
        let outcomes = run_sweep_with(&jobs, &cfg.sweep_options());
        for (cell, outcome) in self.plan.cells.iter().zip(&outcomes) {
            let s = outcome.summary();
            let median = if s.found() == 0 { f64::NAN } else { s.median_moves() };
            let mean = if s.found() == 0 { f64::NAN } else { s.mean_moves() };
            report.row(vec![
                cell.label.as_str().into(),
                cell.population_label().into(),
                cell.target_label().into(),
                cell.agents.into(),
                cell.trials_at(smoke).into(),
                s.found().into(),
                s.success_rate().into(),
                median.into(),
                mean.into(),
                s.chi_footprint().chi().into(),
            ]);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ants_workload::WorkloadSpec;

    const SPEC: &str = r#"
name = "unit demo"
description = "three-strategy mixed cell"

[defaults]
trials = 6
smoke_trials = 3

[[cells]]
name = "mixed"
agents = 4
target = { model = "ball", dist = 6 }
population = [
  { strategy = "nonuniform(dist)", weight = 2 },
  { strategy = "randomwalk", weight = 1 },
  { strategy = "spiral", weight = 1 },
]
"#;

    fn experiment() -> WorkloadExperiment {
        let plan = WorkloadPlan::expand(&WorkloadSpec::parse(SPEC).unwrap()).unwrap();
        WorkloadExperiment::new(plan)
    }

    #[test]
    fn adapts_a_plan_onto_the_experiment_trait() {
        let exp = experiment();
        assert_eq!(exp.meta().key, "unit-demo");
        assert!(exp.meta().id.contains("unit demo"));
        assert_eq!(exp.meta().claim, "three-strategy mixed cell");
        let cfg = exp.config(Effort::Smoke);
        assert_eq!(cfg.cells, 1);
        assert_eq!(cfg.trials_per_cell, 3);
        assert_eq!(exp.config(Effort::Standard).trials_per_cell, 6);
    }

    #[test]
    fn runs_end_to_end_with_typed_rows() {
        let exp = experiment();
        let report = exp.run(&RunConfig::smoke());
        assert_eq!(report.len(), 1);
        assert_eq!(report.cell(0, "cell"), &ants_sim::report::Value::Text("mixed".into()));
        assert_eq!(report.num(0, "trials"), 3.0);
        assert!(report.num(0, "success") >= 0.0);
        // The report serializes with the standard schema.
        let parsed = ants_sim::json::Json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(parsed.get("id").and_then(|v| v.as_str()), Some("unit-demo"));
    }

    #[test]
    fn seed_shifts_change_outcomes_deterministically() {
        let exp = experiment();
        let a = exp.run(&RunConfig::standard());
        let b = exp.run(&RunConfig::standard());
        assert_eq!(a.to_csv(), b.to_csv(), "same config must reproduce");
        let shifted = exp.run(&RunConfig::standard().with_seed(1));
        assert_ne!(a.to_csv(), shifted.to_csv(), "--seed must shift the sweep");
    }
}
