//! The shared experiment runner: wall-clock stamping, JSON report files,
//! and the flag parsing the CLI and the 15 `exp_*` binaries have in
//! common.

use crate::experiments::{self, Effort, Experiment, Report, RunConfig};
use ants_sim::Granularity;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Default directory for machine-readable reports, relative to the
/// working directory.
pub const REPORT_DIR: &str = "target/reports";

/// Runs experiments under one [`RunConfig`], stamping wall-clock times.
pub struct Runner {
    cfg: RunConfig,
}

impl Runner {
    /// A runner with the given configuration.
    pub fn new(cfg: RunConfig) -> Self {
        Self { cfg }
    }

    /// The configuration this runner applies.
    pub fn cfg(&self) -> &RunConfig {
        &self.cfg
    }

    /// Run one experiment and stamp its wall-clock time.
    pub fn run(&self, exp: &dyn Experiment) -> Report {
        let start = Instant::now();
        let mut report = exp.run(&self.cfg);
        report.set_wall_ms(start.elapsed().as_secs_f64() * 1e3);
        report
    }

    /// Run the whole battery, in registry order.
    pub fn run_all(&self) -> Vec<Report> {
        experiments::all().iter().map(|e| self.run(e.as_ref())).collect()
    }

    /// Write a report's JSON document to `dir/<key>.json` (creating the
    /// directory), returning the path.
    pub fn write_json(report: &Report, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", report.key()));
        std::fs::write(&path, report.to_json())?;
        Ok(path)
    }
}

/// Flags shared by `ants run`/`ants all` and the `exp_*` binaries.
#[derive(Debug, Clone)]
pub struct Flags {
    /// Effort, seed, and thread policy (plus the telemetry handle when
    /// `--telemetry` asked for one).
    pub cfg: RunConfig,
    /// `--json`: write `target/reports/<key>.json`.
    pub json: bool,
    /// `--csv`: print the table as CSV after the text rendering.
    pub csv: bool,
    /// `--telemetry <path>`: where to write the NDJSON snapshot after
    /// the run. `Some` iff `cfg.telemetry` is `Some`.
    pub telemetry: Option<String>,
}

/// Parse the common run flags: `--smoke`, `--effort smoke|standard`,
/// `--seed N`, `--threads K`, `--granularity auto|trial|agent`,
/// `--chunk N`, `--metrics a,b,...`, `--backend mc|dp`,
/// `--dp-mode dense|sparse|auto`, `--json`, `--csv`,
/// `--telemetry <path>`.
///
/// Unknown arguments are an error (callers print usage).
pub fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut cfg = RunConfig::standard();
    let mut json = false;
    let mut csv = false;
    let mut telemetry = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => cfg.effort = Effort::Smoke,
            "--effort" => {
                let v = it.next().ok_or("--effort needs a value (smoke|standard)")?;
                cfg.effort = Effort::parse(v).ok_or(format!("unknown effort '{v}'"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                cfg.base_seed = v.parse().map_err(|_| format!("invalid seed '{v}'"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let t: usize = v.parse().map_err(|_| format!("invalid thread count '{v}'"))?;
                if t == 0 {
                    return Err("--threads must be at least 1".into());
                }
                cfg.threads = Some(t);
            }
            "--granularity" => {
                let v = it.next().ok_or("--granularity needs a value (auto|trial|agent)")?;
                cfg.granularity =
                    Granularity::parse(v).ok_or(format!("unknown granularity '{v}'"))?;
            }
            "--chunk" => {
                let v = it.next().ok_or("--chunk needs a value")?;
                let c: usize = v.parse().map_err(|_| format!("invalid chunk size '{v}'"))?;
                if c == 0 {
                    return Err("--chunk must be at least 1".into());
                }
                cfg.chunk = Some(c);
            }
            "--metrics" => {
                let v = it
                    .next()
                    .ok_or("--metrics needs a comma-separated list (e.g. coverage,first_visit)")?;
                cfg.metrics = cfg.metrics.union(ants_sim::MetricSet::parse_list(v)?);
            }
            "--backend" => {
                let v = it.next().ok_or("--backend needs a value (mc|dp)")?;
                cfg.backend = Some(
                    ants_dp::Backend::parse(v)
                        .ok_or(format!("unknown backend '{v}' (allowed: mc, dp)"))?,
                );
            }
            "--dp-mode" => {
                let v = it.next().ok_or("--dp-mode needs a value (dense|sparse|auto)")?;
                cfg.dp_mode = Some(
                    ants_dp::DpMode::parse(v)
                        .ok_or(format!("unknown dp mode '{v}' (allowed: dense, sparse, auto)"))?,
                );
            }
            "--json" => json = true,
            "--csv" => csv = true,
            "--telemetry" => {
                let v = it.next().ok_or("--telemetry needs a path (NDJSON snapshot)")?;
                telemetry = Some(v.clone());
                cfg.telemetry = Some(ants_obs::Telemetry::new());
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Flags { cfg, json, csv, telemetry })
}

/// Print a finished report and honour the `--csv`/`--json` flags:
/// CSV after the text table, JSON to [`REPORT_DIR`] (exits with status 1
/// if the file cannot be written).
pub fn emit(report: &Report, csv: bool, json: bool) {
    print!("{report}");
    if csv {
        print!("{}", report.to_csv());
    }
    if json {
        match Runner::write_json(report, Path::new(REPORT_DIR)) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: could not write JSON report: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// [`emit`] under a parsed [`Flags`]: the rendering-and-writing step is
/// timed against the telemetry `report` phase when a handle is attached
/// (and costs nothing — no clock read — when it is not).
pub fn emit_for(report: &Report, flags: &Flags) {
    let _span = ants_obs::SpanGuard::new(flags.cfg.telemetry, ants_obs::Phase::Report);
    emit(report, flags.csv, flags.json);
}

/// Honour `--telemetry <path>`: freeze the handle the flags attached
/// into a snapshot and write it as schema-versioned NDJSON. A no-op
/// without the flag; exits with status 1 if the file cannot be written.
/// The confirmation line rides stderr so stdout stays byte-identical to
/// a telemetry-free run.
pub fn write_telemetry(flags: &Flags) {
    let (Some(tele), Some(path)) = (flags.cfg.telemetry, flags.telemetry.as_deref()) else {
        return;
    };
    let path = Path::new(path);
    let write = || -> io::Result<()> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, tele.snapshot().to_ndjson())
    };
    match write() {
        Ok(()) => eprintln!("telemetry: wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write telemetry snapshot {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Entry point for the 15 `exp_*` binaries: parse flags, run the one
/// experiment at publication scale (or `--smoke`), print, and honour
/// `--csv`/`--json`/`--telemetry`.
pub fn bin_main(exp: &dyn Experiment) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: {} [--smoke | --effort smoke|standard] [--seed N] \
                 [--threads K] [--granularity auto|trial|agent] [--chunk N] \
                 [--metrics coverage,first_visit,round_trace,chi,found_round] [--csv] [--json] \
                 [--telemetry PATH]",
                exp.meta().key
            );
            std::process::exit(2);
        }
    };
    if flags.cfg.backend == Some(ants_dp::Backend::Dp) {
        eprintln!(
            "error: {} is a Monte Carlo harness; --backend dp only applies to workload \
             cells (`ants workload run <file> --backend dp`)",
            exp.meta().key
        );
        std::process::exit(2);
    }
    emit_for(&Runner::new(flags.cfg).run(exp), &flags);
    write_telemetry(&flags);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_full_flag_surface() {
        let f = parse_flags(&args(&[
            "--smoke",
            "--seed",
            "42",
            "--threads",
            "3",
            "--granularity",
            "agent",
            "--chunk",
            "4",
            "--json",
        ]))
        .expect("valid flags");
        assert_eq!(f.cfg.effort, Effort::Smoke);
        assert_eq!(f.cfg.base_seed, 42);
        assert_eq!(f.cfg.threads, Some(3));
        assert_eq!(f.cfg.granularity, Granularity::Agent);
        assert_eq!(f.cfg.chunk, Some(4));
        assert!(f.json);
        assert!(!f.csv);
        assert!(f.telemetry.is_none() && f.cfg.telemetry.is_none());
    }

    /// `--telemetry <path>` both records the destination and attaches a
    /// live handle to the config, so every sweep the config induces is
    /// instrumented.
    #[test]
    fn telemetry_flag_attaches_a_handle() {
        let f = parse_flags(&args(&["--telemetry", "target/t.ndjson"])).unwrap();
        assert_eq!(f.telemetry.as_deref(), Some("target/t.ndjson"));
        assert!(f.cfg.telemetry.is_some());
        assert!(parse_flags(&args(&["--telemetry"])).is_err());
    }

    /// `write_telemetry` produces a parseable schema-versioned snapshot
    /// (and is a no-op when the flag was absent).
    #[test]
    fn write_telemetry_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("ants-tele-test-{}", std::process::id()));
        let path = dir.join("snap.ndjson");
        let mut f = parse_flags(&args(&["--telemetry", &path.display().to_string()])).unwrap();
        f.cfg.telemetry.unwrap().add(0, ants_obs::Counter::PoolUnits, 7);
        write_telemetry(&f);
        let text = std::fs::read_to_string(&path).expect("snapshot written");
        let snap = ants_obs::Snapshot::parse_ndjson(&text).expect("parseable");
        assert_eq!(snap.counter(ants_obs::Counter::PoolUnits), 7);
        f.telemetry = None;
        f.cfg.telemetry = None;
        write_telemetry(&f); // must not panic or write anything
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn granularity_defaults_to_auto_and_parses_all_values() {
        assert_eq!(parse_flags(&[]).unwrap().cfg.granularity, Granularity::Auto);
        for (v, want) in [
            ("auto", Granularity::Auto),
            ("trial", Granularity::Trial),
            ("agent", Granularity::Agent),
        ] {
            let f = parse_flags(&args(&["--granularity", v])).unwrap();
            assert_eq!(f.cfg.granularity, want);
            assert_eq!(f.cfg.chunk, None);
        }
    }

    #[test]
    fn effort_flag_overrides_default() {
        let f = parse_flags(&args(&["--effort", "smoke", "--csv"])).unwrap();
        assert_eq!(f.cfg.effort, Effort::Smoke);
        assert!(f.csv);
        let f = parse_flags(&args(&["--effort", "standard"])).unwrap();
        assert_eq!(f.cfg.effort, Effort::Standard);
    }

    #[test]
    fn metrics_flag_builds_a_set() {
        use ants_sim::Metric;
        let f = parse_flags(&args(&["--metrics", "coverage,found_round"])).unwrap();
        assert!(f.cfg.metrics.contains(Metric::Coverage));
        assert!(f.cfg.metrics.contains(Metric::FoundRound));
        assert!(!f.cfg.metrics.contains(Metric::Chi));
        // Repeated flags accumulate.
        let f = parse_flags(&args(&["--metrics", "coverage", "--metrics", "chi"])).unwrap();
        assert!(f.cfg.metrics.contains(Metric::Coverage) && f.cfg.metrics.contains(Metric::Chi));
        assert!(parse_flags(&[]).unwrap().cfg.metrics.is_empty());
        assert!(parse_flags(&args(&["--metrics"])).is_err());
        let e = parse_flags(&args(&["--metrics", "warp"])).unwrap_err();
        assert!(e.contains("unknown metric 'warp'"), "{e}");
    }

    #[test]
    fn backend_flag_parses_and_rejects_unknowns() {
        assert_eq!(parse_flags(&[]).unwrap().cfg.backend, None);
        let f = parse_flags(&args(&["--backend", "dp"])).unwrap();
        assert_eq!(f.cfg.backend, Some(ants_dp::Backend::Dp));
        let f = parse_flags(&args(&["--backend", "mc"])).unwrap();
        assert_eq!(f.cfg.backend, Some(ants_dp::Backend::Mc));
        assert!(parse_flags(&args(&["--backend"])).is_err());
        let e = parse_flags(&args(&["--backend", "exact"])).unwrap_err();
        assert!(e.contains("unknown backend 'exact'"), "{e}");
    }

    #[test]
    fn dp_mode_flag_parses_and_rejects_unknowns() {
        assert_eq!(parse_flags(&[]).unwrap().cfg.dp_mode, None);
        for (v, want) in [
            ("dense", ants_dp::DpMode::Dense),
            ("sparse", ants_dp::DpMode::Sparse),
            ("auto", ants_dp::DpMode::Auto),
        ] {
            let f = parse_flags(&args(&["--dp-mode", v])).unwrap();
            assert_eq!(f.cfg.dp_mode, Some(want));
        }
        assert!(parse_flags(&args(&["--dp-mode"])).is_err());
        let e = parse_flags(&args(&["--dp-mode", "frontier"])).unwrap_err();
        assert!(e.contains("unknown dp mode 'frontier'"), "{e}");
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_flags(&args(&["--bogus"])).is_err());
        assert!(parse_flags(&args(&["--seed"])).is_err());
        assert!(parse_flags(&args(&["--seed", "x"])).is_err());
        assert!(parse_flags(&args(&["--effort", "publication"])).is_err());
        assert!(parse_flags(&args(&["--threads", "0"])).is_err());
        assert!(parse_flags(&args(&["--granularity"])).is_err());
        assert!(parse_flags(&args(&["--granularity", "cell"])).is_err());
        assert!(parse_flags(&args(&["--chunk"])).is_err());
        assert!(parse_flags(&args(&["--chunk", "0"])).is_err());
        assert!(parse_flags(&args(&["--chunk", "x"])).is_err());
    }

    #[test]
    fn runner_stamps_wall_clock_and_writes_json() {
        let exp = crate::experiments::find("e3").expect("e3 registered");
        let report = Runner::new(RunConfig::smoke()).run(exp.as_ref());
        assert!(report.wall_ms().is_finite() && report.wall_ms() >= 0.0);
        let dir = std::env::temp_dir().join(format!("ants-report-test-{}", std::process::id()));
        let path = Runner::write_json(&report, &dir).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        let parsed = ants_sim::json::Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("id").and_then(|v| v.as_str()), Some("e3"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
