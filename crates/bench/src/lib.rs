//! # ants-bench — experiment harnesses
//!
//! One module per experiment in DESIGN.md's index (E1–E14). Every module
//! exposes `run(effort) -> ants_sim::report::Table`, printed by the
//! `exp_*` binaries and by `ants-cli`. Tests run every experiment at
//! [`Effort::Smoke`] so the whole battery stays exercised in CI.
//!
//! The paper is a theory paper — its "tables and figures" are the
//! quantitative claims of Theorems 3.5–3.14 and 4.1/4.11 plus the
//! supporting lemmas; each harness regenerates one of them and prints the
//! paper's claim next to the measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

pub use experiments::Effort;
