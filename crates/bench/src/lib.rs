//! # ants-bench — experiment harnesses
//!
//! One module per experiment (E1–E15), each implementing the
//! [`Experiment`] trait: identity ([`experiments::ExperimentMeta`]),
//! sweep shape ([`experiments::SweepConfig`]), and a `run` that returns a
//! typed [`Report`] (numbers stay `f64`/`u64` until render time; text,
//! CSV, and JSON all derive from the same records). The shared
//! [`Runner`] stamps wall-clock times and writes
//! `target/reports/<id>.json`; scenario grids fan across one thread pool
//! via `ants_sim::run_sweep`. Tests run every experiment at
//! [`Effort::Smoke`] so the whole battery stays exercised in CI.
//!
//! The paper is a theory paper — its "tables and figures" are the
//! quantitative claims of Theorems 3.5–3.14 and 4.1/4.11 plus the
//! supporting lemmas; each harness regenerates one of them and prints the
//! paper's claim next to the measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crosscheck;
pub mod experiments;
pub mod gate;
pub mod runner;
pub mod workload;

pub use crosscheck::{crosscheck, CrosscheckReport};
pub use experiments::{Effort, Experiment, Report, RunConfig};
pub use gate::{gate_report, GateThresholds, GateViolation};
pub use runner::Runner;
pub use workload::WorkloadExperiment;
