//! Regenerates experiment e4_walk at publication scale — a thin wrapper
//! over the shared runner (`--smoke`, `--seed`, `--threads`, `--csv`,
//! `--json`).

use ants_bench::experiments::e4_walk::E4Walk;
use ants_bench::runner::bin_main;

fn main() {
    bin_main(&E4Walk);
}
