//! Regenerates experiment e4_walk at publication scale (see DESIGN.md).

use ants_bench::experiments::{e4_walk, Effort};

fn main() {
    let effort =
        if std::env::args().any(|a| a == "--smoke") { Effort::Smoke } else { Effort::Standard };
    println!("{}", e4_walk::META);
    let table = e4_walk::run(effort);
    println!("{table}");
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    }
}
