//! Regenerates experiment e9_tradeoff at publication scale (see DESIGN.md).

use ants_bench::experiments::{e9_tradeoff, Effort};

fn main() {
    let effort =
        if std::env::args().any(|a| a == "--smoke") { Effort::Smoke } else { Effort::Standard };
    println!("{}", e9_tradeoff::META);
    let table = e9_tradeoff::run(effort);
    println!("{table}");
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    }
}
