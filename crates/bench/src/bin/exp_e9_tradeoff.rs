//! Regenerates experiment e9_tradeoff at publication scale — a thin wrapper
//! over the shared runner (`--smoke`, `--seed`, `--threads`, `--csv`,
//! `--json`).

use ants_bench::experiments::e9_tradeoff::E9Tradeoff;
use ants_bench::runner::bin_main;

fn main() {
    bin_main(&E9Tradeoff);
}
