//! Regenerates experiment e2_iteration at publication scale — a thin wrapper
//! over the shared runner (`--smoke`, `--seed`, `--threads`, `--csv`,
//! `--json`).

use ants_bench::experiments::e2_iteration::E2Iteration;
use ants_bench::runner::bin_main;

fn main() {
    bin_main(&E2Iteration);
}
