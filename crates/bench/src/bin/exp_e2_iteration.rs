//! Regenerates experiment e2_iteration at publication scale (see DESIGN.md).

use ants_bench::experiments::{e2_iteration, Effort};

fn main() {
    let effort =
        if std::env::args().any(|a| a == "--smoke") { Effort::Smoke } else { Effort::Standard };
    println!("{}", e2_iteration::META);
    let table = e2_iteration::run(effort);
    println!("{table}");
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    }
}
