//! Regenerates experiment e14_iteration_len at publication scale — a thin wrapper
//! over the shared runner (`--smoke`, `--seed`, `--threads`, `--csv`,
//! `--json`).

use ants_bench::experiments::e14_iteration_len::E14IterationLen;
use ants_bench::runner::bin_main;

fn main() {
    bin_main(&E14IterationLen);
}
