//! Regenerates experiment e14_iteration_len at publication scale (see DESIGN.md).

use ants_bench::experiments::{e14_iteration_len, Effort};

fn main() {
    let effort =
        if std::env::args().any(|a| a == "--smoke") { Effort::Smoke } else { Effort::Standard };
    println!("{}", e14_iteration_len::META);
    let table = e14_iteration_len::run(effort);
    println!("{table}");
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    }
}
