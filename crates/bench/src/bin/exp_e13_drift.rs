//! Regenerates experiment e13_drift at publication scale (see DESIGN.md).

use ants_bench::experiments::{e13_drift, Effort};

fn main() {
    let effort =
        if std::env::args().any(|a| a == "--smoke") { Effort::Smoke } else { Effort::Standard };
    println!("{}", e13_drift::META);
    let table = e13_drift::run(effort);
    println!("{table}");
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    }
}
