//! Regenerates experiment e13_drift at publication scale — a thin wrapper
//! over the shared runner (`--smoke`, `--seed`, `--threads`, `--csv`,
//! `--json`).

use ants_bench::experiments::e13_drift::E13Drift;
use ants_bench::runner::bin_main;

fn main() {
    bin_main(&E13Drift);
}
