//! Regenerates experiment e7_uniform at publication scale (see DESIGN.md).

use ants_bench::experiments::{e7_uniform, Effort};

fn main() {
    let effort =
        if std::env::args().any(|a| a == "--smoke") { Effort::Smoke } else { Effort::Standard };
    println!("{}", e7_uniform::META);
    let table = e7_uniform::run(effort);
    println!("{table}");
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    }
}
