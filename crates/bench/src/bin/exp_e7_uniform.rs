//! Regenerates experiment e7_uniform at publication scale — a thin wrapper
//! over the shared runner (`--smoke`, `--seed`, `--threads`, `--csv`,
//! `--json`).

use ants_bench::experiments::e7_uniform::E7Uniform;
use ants_bench::runner::bin_main;

fn main() {
    bin_main(&E7Uniform);
}
