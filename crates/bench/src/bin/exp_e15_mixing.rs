//! Regenerates experiment e15_mixing at publication scale — a thin wrapper
//! over the shared runner (`--smoke`, `--seed`, `--threads`, `--csv`,
//! `--json`).

use ants_bench::experiments::e15_mixing::E15Mixing;
use ants_bench::runner::bin_main;

fn main() {
    bin_main(&E15Mixing);
}
