//! Regenerates experiment e15_mixing at publication scale (see DESIGN.md).

use ants_bench::experiments::{e15_mixing, Effort};

fn main() {
    let effort =
        if std::env::args().any(|a| a == "--smoke") { Effort::Smoke } else { Effort::Standard };
    println!("{}", e15_mixing::META);
    let table = e15_mixing::run(effort);
    println!("{table}");
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    }
}
