//! Regenerates experiment e10_randomwalk at publication scale (see DESIGN.md).

use ants_bench::experiments::{e10_randomwalk, Effort};

fn main() {
    let effort =
        if std::env::args().any(|a| a == "--smoke") { Effort::Smoke } else { Effort::Standard };
    println!("{}", e10_randomwalk::META);
    let table = e10_randomwalk::run(effort);
    println!("{table}");
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    }
}
