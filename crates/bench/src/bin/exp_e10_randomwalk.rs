//! Regenerates experiment e10_randomwalk at publication scale — a thin wrapper
//! over the shared runner (`--smoke`, `--seed`, `--threads`, `--csv`,
//! `--json`).

use ants_bench::experiments::e10_randomwalk::E10RandomWalk;
use ants_bench::runner::bin_main;

fn main() {
    bin_main(&E10RandomWalk);
}
