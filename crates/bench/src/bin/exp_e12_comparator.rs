//! Regenerates experiment e12_comparator at publication scale — a thin wrapper
//! over the shared runner (`--smoke`, `--seed`, `--threads`, `--csv`,
//! `--json`).

use ants_bench::experiments::e12_comparator::E12Comparator;
use ants_bench::runner::bin_main;

fn main() {
    bin_main(&E12Comparator);
}
