//! Regenerates experiment e12_comparator at publication scale (see DESIGN.md).

use ants_bench::experiments::{e12_comparator, Effort};

fn main() {
    let effort =
        if std::env::args().any(|a| a == "--smoke") { Effort::Smoke } else { Effort::Standard };
    println!("{}", e12_comparator::META);
    let table = e12_comparator::run(effort);
    println!("{table}");
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    }
}
