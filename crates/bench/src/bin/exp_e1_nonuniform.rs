//! Regenerates experiment e1_nonuniform at publication scale (see DESIGN.md).

use ants_bench::experiments::{e1_nonuniform, Effort};

fn main() {
    let effort =
        if std::env::args().any(|a| a == "--smoke") { Effort::Smoke } else { Effort::Standard };
    println!("{}", e1_nonuniform::META);
    let table = e1_nonuniform::run(effort);
    println!("{table}");
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    }
}
