//! Regenerates experiment e1_nonuniform at publication scale — a thin wrapper
//! over the shared runner (`--smoke`, `--seed`, `--threads`, `--csv`,
//! `--json`).

use ants_bench::experiments::e1_nonuniform::E1Nonuniform;
use ants_bench::runner::bin_main;

fn main() {
    bin_main(&E1Nonuniform);
}
