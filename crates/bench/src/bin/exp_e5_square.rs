//! Regenerates experiment e5_square at publication scale (see DESIGN.md).

use ants_bench::experiments::{e5_square, Effort};

fn main() {
    let effort =
        if std::env::args().any(|a| a == "--smoke") { Effort::Smoke } else { Effort::Standard };
    println!("{}", e5_square::META);
    let table = e5_square::run(effort);
    println!("{table}");
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    }
}
