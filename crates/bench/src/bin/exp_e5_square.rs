//! Regenerates experiment e5_square at publication scale — a thin wrapper
//! over the shared runner (`--smoke`, `--seed`, `--threads`, `--csv`,
//! `--json`).

use ants_bench::experiments::e5_square::E5Square;
use ants_bench::runner::bin_main;

fn main() {
    bin_main(&E5Square);
}
