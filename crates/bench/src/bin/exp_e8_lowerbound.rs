//! Regenerates experiment e8_lowerbound at publication scale (see DESIGN.md).

use ants_bench::experiments::{e8_lowerbound, Effort};

fn main() {
    let effort =
        if std::env::args().any(|a| a == "--smoke") { Effort::Smoke } else { Effort::Standard };
    println!("{}", e8_lowerbound::META);
    let table = e8_lowerbound::run(effort);
    println!("{table}");
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    }
}
