//! Regenerates experiment e8_lowerbound at publication scale — a thin wrapper
//! over the shared runner (`--smoke`, `--seed`, `--threads`, `--csv`,
//! `--json`).

use ants_bench::experiments::e8_lowerbound::E8LowerBound;
use ants_bench::runner::bin_main;

fn main() {
    bin_main(&E8LowerBound);
}
