//! Regenerates experiment e11_b_vs_ell at publication scale (see DESIGN.md).

use ants_bench::experiments::{e11_b_vs_ell, Effort};

fn main() {
    let effort =
        if std::env::args().any(|a| a == "--smoke") { Effort::Smoke } else { Effort::Standard };
    println!("{}", e11_b_vs_ell::META);
    let table = e11_b_vs_ell::run(effort);
    println!("{table}");
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    }
}
