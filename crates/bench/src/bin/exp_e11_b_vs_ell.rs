//! Regenerates experiment e11_b_vs_ell at publication scale — a thin wrapper
//! over the shared runner (`--smoke`, `--seed`, `--threads`, `--csv`,
//! `--json`).

use ants_bench::experiments::e11_b_vs_ell::E11BVsEll;
use ants_bench::runner::bin_main;

fn main() {
    bin_main(&E11BVsEll);
}
