//! Regenerates experiment e6_chi at publication scale (see DESIGN.md).

use ants_bench::experiments::{e6_chi, Effort};

fn main() {
    let effort =
        if std::env::args().any(|a| a == "--smoke") { Effort::Smoke } else { Effort::Standard };
    println!("{}", e6_chi::META);
    let table = e6_chi::run(effort);
    println!("{table}");
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    }
}
