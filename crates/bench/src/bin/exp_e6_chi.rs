//! Regenerates experiment e6_chi at publication scale — a thin wrapper
//! over the shared runner (`--smoke`, `--seed`, `--threads`, `--csv`,
//! `--json`).

use ants_bench::experiments::e6_chi::E6Chi;
use ants_bench::runner::bin_main;

fn main() {
    bin_main(&E6Chi);
}
