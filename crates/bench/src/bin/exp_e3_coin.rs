//! Regenerates experiment e3_coin at publication scale (see DESIGN.md).

use ants_bench::experiments::{e3_coin, Effort};

fn main() {
    let effort =
        if std::env::args().any(|a| a == "--smoke") { Effort::Smoke } else { Effort::Standard };
    println!("{}", e3_coin::META);
    let table = e3_coin::run(effort);
    println!("{table}");
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    }
}
