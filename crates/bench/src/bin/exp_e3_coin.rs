//! Regenerates experiment e3_coin at publication scale — a thin wrapper
//! over the shared runner (`--smoke`, `--seed`, `--threads`, `--csv`,
//! `--json`).

use ants_bench::experiments::e3_coin::E3Coin;
use ants_bench::runner::bin_main;

fn main() {
    bin_main(&E3Coin);
}
