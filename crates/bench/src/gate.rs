//! The regression gate: compare a current report document against a
//! baseline and decide whether the drift is acceptable.
//!
//! This is the policy layer behind `ants serve --gate` / `ants query
//! gate` and usable by CI directly: metrics are held to a relative
//! tolerance (with NaN==NaN total-order semantics, so a legitimately
//! unavailable cell never trips the gate), text/bool cells must match
//! exactly, and wall-clock — the one field the determinism contract
//! deliberately leaves free — is held to a multiplicative factor above
//! an absolute floor, so micro-benchmark noise cannot fail a build but
//! a real slowdown does.

use ants_sim::json::Json;

/// Gate policy: how much drift each kind of cell tolerates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateThresholds {
    /// Maximum relative drift `|current - baseline| / max(|baseline|, 1)`
    /// for numeric cells.
    pub metric_rel_tol: f64,
    /// Maximum `current / baseline` wall-clock ratio.
    pub wall_factor: f64,
    /// Wall-clock deltas below this many milliseconds never fail,
    /// whatever the ratio (smoke reports finish in single-digit
    /// milliseconds, where the ratio is pure noise).
    pub wall_floor_ms: f64,
}

impl Default for GateThresholds {
    fn default() -> Self {
        GateThresholds { metric_rel_tol: 0.05, wall_factor: 4.0, wall_floor_ms: 250.0 }
    }
}

/// One cell (or structural property) that drifted past its threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateViolation {
    /// The row's first-column label, or `-` for report-level properties.
    pub cell: String,
    /// The column (or property) that drifted.
    pub column: String,
    /// Rendered baseline value.
    pub baseline: String,
    /// Rendered current value.
    pub current: String,
    /// Why this counts as a violation.
    pub detail: String,
}

impl std::fmt::Display for GateViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} / {}] {} -> {}: {}",
            self.cell, self.column, self.baseline, self.current, self.detail
        )
    }
}

fn render(cell: &Json) -> String {
    match cell {
        Json::Str(s) => s.clone(),
        other => other.serialize(),
    }
}

fn columns_of(doc: &Json) -> Result<Vec<String>, String> {
    doc.get("columns")
        .and_then(Json::as_array)
        .map(|cols| cols.iter().filter_map(Json::as_str).map(str::to_owned).collect())
        .ok_or_else(|| "report has no columns".to_string())
}

/// Rows keyed by their first column (the cell label).
fn rows_of(doc: &Json) -> Vec<(String, &[Json])> {
    doc.get("rows")
        .and_then(Json::as_array)
        .map(|rows| {
            rows.iter()
                .filter_map(Json::as_array)
                .map(|cells| (cells.first().map(render).unwrap_or_default(), cells))
                .collect()
        })
        .unwrap_or_default()
}

/// Compare `current` against `baseline` under `t`.
///
/// Returns the violations (empty = gate passes). Rows are matched by
/// their first-column label so an appended cell does not misalign every
/// later row; a row present on only one side is itself a violation.
///
/// # Errors
///
/// Structural mismatches that make a comparison meaningless rather than
/// failed: missing/diverged column sets. (A gate diffing apples to
/// oranges must be a hard error, not a pass *or* a fail.)
pub fn gate_report(
    baseline: &Json,
    current: &Json,
    t: &GateThresholds,
) -> Result<Vec<GateViolation>, String> {
    let cols = columns_of(baseline)?;
    if cols != columns_of(current)? {
        return Err("column sets differ between baseline and current".to_string());
    }
    let mut violations = Vec::new();
    let base_rows = rows_of(baseline);
    let cur_rows = rows_of(current);
    for (label, base_cells) in &base_rows {
        let Some((_, cur_cells)) = cur_rows.iter().find(|(l, _)| l == label) else {
            violations.push(GateViolation {
                cell: label.clone(),
                column: "-".to_string(),
                baseline: "present".to_string(),
                current: "missing".to_string(),
                detail: "row disappeared from the current report".to_string(),
            });
            continue;
        };
        for (idx, col) in cols.iter().enumerate().skip(1) {
            let (b, c) = (base_cells.get(idx), cur_cells.get(idx));
            let (Some(b), Some(c)) = (b, c) else {
                violations.push(GateViolation {
                    cell: label.clone(),
                    column: col.clone(),
                    baseline: b.map(render).unwrap_or_else(|| "missing".into()),
                    current: c.map(render).unwrap_or_else(|| "missing".into()),
                    detail: "cell missing on one side".to_string(),
                });
                continue;
            };
            match (b.as_number(), c.as_number()) {
                (Some(x), Some(y)) => {
                    // Total-order equality first: NaN == NaN, and exact
                    // matches (the common, deterministic case) never
                    // touch the tolerance arithmetic.
                    if x.total_cmp(&y) == std::cmp::Ordering::Equal {
                        continue;
                    }
                    // NaN drift (one side NaN, the other not) must fail,
                    // so the comparison is written to catch it explicitly.
                    let rel = (y - x).abs() / x.abs().max(1.0);
                    if rel.is_nan() || rel > t.metric_rel_tol {
                        violations.push(GateViolation {
                            cell: label.clone(),
                            column: col.clone(),
                            baseline: render(b),
                            current: render(c),
                            detail: format!(
                                "relative drift {rel:.4} exceeds tolerance {:.4}",
                                t.metric_rel_tol
                            ),
                        });
                    }
                }
                _ => {
                    if render(b) != render(c) {
                        violations.push(GateViolation {
                            cell: label.clone(),
                            column: col.clone(),
                            baseline: render(b),
                            current: render(c),
                            detail: "non-numeric cell changed".to_string(),
                        });
                    }
                }
            }
        }
    }
    for (label, _) in &cur_rows {
        if !base_rows.iter().any(|(l, _)| l == label) {
            violations.push(GateViolation {
                cell: label.clone(),
                column: "-".to_string(),
                baseline: "missing".to_string(),
                current: "present".to_string(),
                detail: "row appeared that the baseline does not have".to_string(),
            });
        }
    }
    // Wall clock: the only field allowed to drift between identical
    // runs, gated by ratio above an absolute floor. A report whose wall
    // clock was never stamped (field absent, or still the `Report::new`
    // NaN) gets its own violation naming the report — silently skipping
    // the check would wave through a runner that stopped timing, and
    // letting NaN fall into the ratio arithmetic fails confusingly.
    let wall = |doc: &Json| doc.get("wall_ms").and_then(Json::as_number).filter(|w| !w.is_nan());
    let report_id = |doc: &Json| {
        doc.get("id").and_then(Json::as_str).unwrap_or("<unidentified report>").to_string()
    };
    for (side, doc) in [("baseline", baseline), ("current", current)] {
        if wall(doc).is_none() {
            violations.push(GateViolation {
                cell: "-".to_string(),
                column: "wall_ms".to_string(),
                baseline: if side == "baseline" { "missing".into() } else { "-".into() },
                current: if side == "current" { "missing".into() } else { "-".into() },
                detail: format!(
                    "wall_ms missing from the {side} report '{}': never stamped (NaN or absent)",
                    report_id(doc)
                ),
            });
        }
    }
    if let (Some(wb), Some(wc)) = (wall(baseline), wall(current)) {
        if wc - wb > t.wall_floor_ms && wb > 0.0 && wc / wb > t.wall_factor {
            violations.push(GateViolation {
                cell: "-".to_string(),
                column: "wall_ms".to_string(),
                baseline: format!("{wb:.1}"),
                current: format!("{wc:.1}"),
                detail: format!(
                    "wall clock grew {:.1}x (limit {:.1}x above a {:.0}ms floor)",
                    wc / wb,
                    t.wall_factor,
                    t.wall_floor_ms
                ),
            });
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &[(&str, f64)], wall: f64) -> Json {
        let rendered: Vec<String> = rows
            .iter()
            .map(|(label, x)| format!("[\"{label}\",{}]", ants_sim::json::number(*x)))
            .collect();
        Json::parse(&format!(
            "{{\"schema\":\"ants-report/v1\",\"columns\":[\"cell\",\"metric\"],\
             \"rows\":[{}],\"wall_ms\":{wall}}}",
            rendered.join(",")
        ))
        .unwrap()
    }

    #[test]
    fn identical_reports_pass() {
        let a = doc(&[("c1", 0.5), ("c2", f64::NAN)], 10.0);
        let b = doc(&[("c1", 0.5), ("c2", f64::NAN)], 200.0);
        // NaN cells and a below-floor wall drift are both fine.
        assert_eq!(gate_report(&a, &b, &GateThresholds::default()).unwrap(), vec![]);
    }

    #[test]
    fn metric_drift_past_tolerance_fails() {
        let t = GateThresholds::default();
        let base = doc(&[("c1", 1.0)], 10.0);
        assert!(gate_report(&base, &doc(&[("c1", 1.04)], 10.0), &t).unwrap().is_empty());
        let v = gate_report(&base, &doc(&[("c1", 1.2)], 10.0), &t).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].cell, "c1");
        assert!(v[0].detail.contains("relative drift"), "{}", v[0]);
        // A NaN appearing where a number was is a violation (the rel
        // comparison is NaN, which never satisfies <= tol).
        assert_eq!(gate_report(&base, &doc(&[("c1", f64::NAN)], 10.0), &t).unwrap().len(), 1);
    }

    #[test]
    fn wall_clock_gates_by_ratio_above_floor() {
        let t = GateThresholds::default();
        // 5x ratio but only 40ms absolute: passes the floor.
        assert!(gate_report(&doc(&[("c", 1.0)], 10.0), &doc(&[("c", 1.0)], 50.0), &t)
            .unwrap()
            .is_empty());
        // 5x ratio and 4s absolute: fails.
        let v = gate_report(&doc(&[("c", 1.0)], 1000.0), &doc(&[("c", 1.0)], 5000.0), &t).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].column, "wall_ms");
    }

    #[test]
    fn unstamped_wall_clock_is_a_named_violation() {
        let t = GateThresholds::default();
        // A report serialized before the runner stamped it carries the
        // `Report::new` NaN; one with the field dropped entirely is the
        // same failure. Both must name the offending report.
        let stamped = doc(&[("c", 1.0)], 10.0);
        let nan_wall = Json::parse(
            "{\"schema\":\"ants-report/v1\",\"id\":\"e9\",\"columns\":[\"cell\",\"metric\"],\
             \"rows\":[[\"c\",1]],\"wall_ms\":\"NaN\"}",
        )
        .unwrap();
        let v = gate_report(&stamped, &nan_wall, &t).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].column, "wall_ms");
        assert!(v[0].detail.contains("wall_ms missing from the current report 'e9'"), "{}", v[0]);
        let absent =
            Json::parse("{\"columns\":[\"cell\",\"metric\"],\"rows\":[[\"c\",1]]}").unwrap();
        let v = gate_report(&absent, &stamped, &t).unwrap();
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("baseline report '<unidentified report>'"), "{}", v[0]);
    }

    #[test]
    fn row_set_changes_are_violations_and_column_changes_are_errors() {
        let t = GateThresholds::default();
        let v = gate_report(&doc(&[("a", 1.0), ("b", 2.0)], 1.0), &doc(&[("a", 1.0)], 1.0), &t)
            .unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].cell.as_str(), v[0].current.as_str()), ("b", "missing"));
        let v = gate_report(&doc(&[("a", 1.0)], 1.0), &doc(&[("a", 1.0), ("b", 2.0)], 1.0), &t)
            .unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].cell.as_str(), v[0].baseline.as_str()), ("b", "missing"));
        let other =
            Json::parse("{\"columns\":[\"cell\",\"other\"],\"rows\":[],\"wall_ms\":1}").unwrap();
        assert!(gate_report(&doc(&[], 1.0), &other, &t).is_err());
    }
}
