//! E1 — Theorem 3.5: Algorithm 1 finds the target in `O(D²/n + D)`
//! expected moves.
//!
//! Sweep `D × n`, measure mean `M_moves` over trials with a uniformly
//! random target in the radius-`D` square, and report the ratio to the
//! theorem's envelope `D²/n + D`. Reproduction succeeds if the ratio is
//! bounded by a modest constant across the whole sweep (the theorem hides
//! a constant; the proof's is ~64·4) and if the `D²/n → D` crossover
//! appears around `n ≈ D`.

use super::{Effort, ExperimentMeta};
use ants_core::NonUniformSearch;
use ants_grid::TargetPlacement;
use ants_sim::report::{fnum, Table};
use ants_sim::{run_trials, Scenario};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    id: "E1 (Theorem 3.5)",
    claim:
        "Algorithm 1 with n agents finds a target within distance D in O(D^2/n + D) expected moves",
};

/// Run the sweep.
pub fn run(effort: Effort) -> Table {
    let d_values: &[u64] = effort.pick(&[16, 32][..], &[32, 64, 128, 256][..]);
    let n_values: &[usize] = effort.pick(&[1, 4][..], &[1, 4, 16, 64, 256][..]);
    let trials = effort.pick(10, 60);
    let mut table = Table::new(vec![
        "D",
        "n",
        "trials",
        "found",
        "mean moves",
        "ci95",
        "envelope D^2/n+D",
        "ratio",
    ]);
    for &d in d_values {
        for &n in n_values {
            let scenario = Scenario::builder()
                .agents(n)
                .target(TargetPlacement::UniformInBall { distance: d })
                .move_budget(envelope(d, n) as u64 * 600 + 10_000)
                .strategy(move |_| Box::new(NonUniformSearch::new(d).expect("valid D")))
                .build();
            let summary = run_trials(&scenario, trials, seed(d, n)).summary();
            let env = envelope(d, n);
            table.row(vec![
                d.to_string(),
                n.to_string(),
                summary.trials().to_string(),
                summary.found().to_string(),
                fnum(summary.mean_moves()),
                fnum(summary.moves_ci95()),
                fnum(env),
                fnum(summary.mean_moves() / env),
            ]);
        }
    }
    table
}

/// The theorem's envelope `D²/n + D`.
pub fn envelope(d: u64, n: usize) -> f64 {
    (d as f64) * (d as f64) / (n as f64) + d as f64
}

fn seed(d: u64, n: usize) -> u64 {
    0xE1_0000 ^ (d << 16) ^ n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_and_ratios_bounded() {
        let t = run(Effort::Smoke);
        assert_eq!(t.len(), 4);
        // Parse the ratio column; the constant should be modest.
        for line in t.to_csv().lines().skip(1) {
            let ratio: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            // The proof's hidden constant is ~256 (Lemma 3.4's 1/(64D)
            // success floor times the factor-4 iteration bound); measured
            // ratios sit around 2-60 depending on the (D, n) cell.
            assert!(ratio < 300.0, "ratio {ratio} too large: O(.) constant blown");
            assert!(ratio > 0.002, "ratio {ratio} suspiciously small");
        }
    }

    #[test]
    fn envelope_crossover_at_n_equals_d() {
        // For n << D the D^2/n term dominates; for n >> D the D term does.
        assert!(envelope(128, 1) > 100.0 * 128.0);
        assert!((envelope(128, 128 * 128) - 129.0).abs() < 1.0);
    }
}
