//! E1 — Theorem 3.5: Algorithm 1 finds the target in `O(D²/n + D)`
//! expected moves.
//!
//! Sweep `D × n`, measure mean `M_moves` over trials with a uniformly
//! random target in the radius-`D` square, and report the ratio to the
//! theorem's envelope `D²/n + D`. Reproduction succeeds if the ratio is
//! bounded by a modest constant across the whole sweep (the theorem hides
//! a constant; the proof's is ~64·4) and if the `D²/n → D` crossover
//! appears around `n ≈ D`.
//!
//! Implements [`Experiment`]; the whole `D × n` grid fans across one
//! thread pool via [`run_sweep_with`].

use super::{Effort, Experiment, ExperimentMeta, Report, RunConfig, SweepConfig};
use ants_core::NonUniformSearch;
use ants_grid::TargetPlacement;
use ants_sim::{run_sweep_with, Scenario, SweepJob};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    key: "e1",
    id: "E1 (Theorem 3.5)",
    claim:
        "Algorithm 1 with n agents finds a target within distance D in O(D^2/n + D) expected moves",
};

/// The E1 harness.
pub struct E1Nonuniform;

fn d_values(effort: Effort) -> &'static [u64] {
    effort.pick(&[16, 32][..], &[32, 64, 128, 256][..])
}

fn n_values(effort: Effort) -> &'static [usize] {
    effort.pick(&[1, 4][..], &[1, 4, 16, 64, 256][..])
}

fn trials(effort: Effort) -> u64 {
    effort.pick(10, 60)
}

impl Experiment for E1Nonuniform {
    fn meta(&self) -> &ExperimentMeta {
        &META
    }

    fn config(&self, effort: Effort) -> SweepConfig {
        SweepConfig {
            cells: d_values(effort).len() * n_values(effort).len(),
            trials_per_cell: trials(effort),
        }
    }

    fn run(&self, cfg: &RunConfig) -> Report {
        let trials = trials(cfg.effort);
        let mut report = Report::new(
            &META,
            cfg,
            vec!["D", "n", "trials", "found", "mean moves", "ci95", "envelope D^2/n+D", "ratio"],
        );
        report
            .param("d_values", format!("{:?}", d_values(cfg.effort)))
            .param("n_values", format!("{:?}", n_values(cfg.effort)))
            .param("trials", trials);
        let grid: Vec<(u64, usize)> = d_values(cfg.effort)
            .iter()
            .flat_map(|&d| n_values(cfg.effort).iter().map(move |&n| (d, n)))
            .collect();
        let jobs: Vec<SweepJob> = grid
            .iter()
            .map(|&(d, n)| {
                let scenario = Scenario::builder()
                    .agents(n)
                    .target(TargetPlacement::UniformInBall { distance: d })
                    .move_budget(envelope(d, n) as u64 * 600 + 10_000)
                    .strategy(move |_| Box::new(NonUniformSearch::new(d).expect("valid D")))
                    .build();
                SweepJob::new(scenario, trials, cfg.seed(seed(d, n)))
            })
            .collect();
        for (&(d, n), outcome) in grid.iter().zip(run_sweep_with(&jobs, &cfg.sweep_options())) {
            let summary = outcome.summary();
            let env = envelope(d, n);
            report.row(vec![
                d.into(),
                n.into(),
                summary.trials().into(),
                summary.found().into(),
                summary.mean_moves().into(),
                summary.moves_ci95().into(),
                env.into(),
                (summary.mean_moves() / env).into(),
            ]);
        }
        report
    }
}

/// The theorem's envelope `D²/n + D`.
pub fn envelope(d: u64, n: usize) -> f64 {
    (d as f64) * (d as f64) / (n as f64) + d as f64
}

fn seed(d: u64, n: usize) -> u64 {
    0xE1_0000 ^ (d << 16) ^ n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_and_ratios_bounded() {
        let r = E1Nonuniform.run(&RunConfig::smoke());
        assert_eq!(r.len(), 4);
        assert_eq!(r.len(), E1Nonuniform.config(Effort::Smoke).cells);
        for row in 0..r.len() {
            let ratio = r.num(row, "ratio");
            // The proof's hidden constant is ~256 (Lemma 3.4's 1/(64D)
            // success floor times the factor-4 iteration bound); measured
            // ratios sit around 2-60 depending on the (D, n) cell.
            assert!(ratio < 300.0, "ratio {ratio} too large: O(.) constant blown");
            assert!(ratio > 0.002, "ratio {ratio} suspiciously small");
        }
    }

    #[test]
    fn envelope_crossover_at_n_equals_d() {
        // For n << D the D^2/n term dominates; for n >> D the D term does.
        assert!(envelope(128, 1) > 100.0 * 128.0);
        assert!((envelope(128, 128 * 128) - 129.0).abs() < 1.0);
    }

    #[test]
    fn base_seed_shifts_the_measurement() {
        let a = E1Nonuniform.run(&RunConfig::smoke());
        let b = E1Nonuniform.run(&RunConfig::smoke().with_seed(1));
        let c = E1Nonuniform.run(&RunConfig::smoke());
        assert_eq!(a.records(), c.records(), "same config must reproduce identically");
        assert_ne!(a.records(), b.records(), "--seed must shift the sweep");
    }
}
