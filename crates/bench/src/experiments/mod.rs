//! The experiment battery behind the [`Experiment`] trait.
//!
//! One module per experiment (E1–E15); each exposes a unit struct
//! implementing [`Experiment`] plus a module-level [`ExperimentMeta`]
//! constant. The registry [`all`] owns the canonical list — the CLI, the
//! `exp_*` binaries, and the completeness test all read it, so a new
//! module that is not registered fails CI (`tests/registry.rs`).
//!
//! Experiments collect their sweeps as typed
//! [`Records`](ants_sim::report::Records) inside a [`Report`] (numbers
//! stay `f64`/`u64` until render time) and route scenario grids through
//! [`ants_sim::run_sweep_with`], so one shared thread pool drains the whole
//! grid; see [`crate::runner`] for wall-clock stamping and JSON output.

pub mod e10_randomwalk;
pub mod e11_b_vs_ell;
pub mod e12_comparator;
pub mod e13_drift;
pub mod e14_iteration_len;
pub mod e15_mixing;
pub mod e1_nonuniform;
pub mod e2_iteration;
pub mod e3_coin;
pub mod e4_walk;
pub mod e5_square;
pub mod e6_chi;
pub mod e7_uniform;
pub mod e8_lowerbound;
pub mod e9_tradeoff;

use ants_sim::json;
use ants_sim::report::{Records, Table, Value};
use ants_sim::{Granularity, MetricSet, SweepOptions};
use std::fmt;

/// How hard an experiment should try.
///
/// `Smoke` keeps CI fast (seconds per experiment); `Standard` is the
/// publication scale used by the `exp_*` binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Tiny instance sizes: validates wiring, not statistics.
    Smoke,
    /// The scale used for the recorded results.
    Standard,
}

impl Effort {
    /// Pick between the smoke and standard value of a parameter.
    pub fn pick<T: Copy>(self, smoke: T, standard: T) -> T {
        match self {
            Effort::Smoke => smoke,
            Effort::Standard => standard,
        }
    }

    /// Stable lowercase name (used by `--effort` and the JSON reports).
    pub fn as_str(self) -> &'static str {
        match self {
            Effort::Smoke => "smoke",
            Effort::Standard => "standard",
        }
    }

    /// Parse an `--effort` argument.
    pub fn parse(s: &str) -> Option<Effort> {
        match s {
            "smoke" => Some(Effort::Smoke),
            "standard" => Some(Effort::Standard),
            _ => None,
        }
    }
}

/// An experiment's identity and its claim.
pub struct ExperimentMeta {
    /// Registry key, e.g. `"e1"` (what `ants run <key>` accepts).
    pub key: &'static str,
    /// Display id, e.g. `"E1 (Theorem 3.5)"`.
    pub id: &'static str,
    /// What the paper claims.
    pub claim: &'static str,
}

impl fmt::Display for ExperimentMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.id)?;
        writeln!(f, "claim: {}", self.claim)
    }
}

/// The shape of an experiment's sweep at a given effort, before running
/// it — how many scenario cells and how many Monte-Carlo trials each.
///
/// `ants list` prints this as a workload preview; the registry test uses
/// it as a sanity check (every experiment must plan at least one cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Number of sweep cells (parameter combinations measured).
    pub cells: usize,
    /// Monte-Carlo repetitions per cell (1 for closed-form/derived rows).
    pub trials_per_cell: u64,
}

/// Everything a [`Experiment::run`] call needs: effort, base seed, thread
/// policy, and the sweep's unit-of-work policy.
///
/// The base seed (default 0) is XOR-mixed into every per-cell seed via
/// [`RunConfig::seed`], so `--seed N` shifts the whole battery while the
/// default reproduces the recorded tables. `threads`, `granularity`, and
/// `chunk` are handed to [`ants_sim::run_sweep_with`] via
/// [`RunConfig::sweep_options`]: they change scheduling (wall-clock
/// time), never results.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Smoke or standard scale.
    pub effort: Effort,
    /// Base seed, XOR-mixed into each cell's seed tag.
    pub base_seed: u64,
    /// Thread policy for scenario sweeps (`None` = all cores).
    pub threads: Option<usize>,
    /// Sweep unit-of-work policy (`--granularity auto|trial|agent`).
    pub granularity: Granularity,
    /// Agents per chunk for agent-level scheduling (`--chunk N`).
    pub chunk: Option<usize>,
    /// Extra observation metrics (`--metrics coverage,first_visit,…`).
    ///
    /// Experiments that support the observation layer (today: every
    /// [`crate::WorkloadExperiment`]) union these with their own metric
    /// set and append the corresponding report columns; the built-in
    /// E1–E15 harnesses have fixed column sets and ignore it.
    pub metrics: MetricSet,
    /// Backend override (`--backend mc|dp`): force every workload cell
    /// onto the Monte Carlo pool or the exact DP engine regardless of
    /// the spec's per-cell `backend` keys. `None` = respect the spec.
    /// Only [`crate::WorkloadExperiment`] honours it; the built-in
    /// harnesses are Monte Carlo by construction.
    pub backend: Option<ants_dp::Backend>,
    /// DP representation override (`--dp-mode dense|sparse|auto`): force
    /// every exact-backend cell onto dense tables, the sparse frontier,
    /// or the per-cell size heuristic, regardless of the spec's
    /// `dp_mode` keys. `None` = respect the spec. Sparse and dense agree
    /// to ≤ 1e-9 wherever both run, so this changes cost, not claims.
    pub dp_mode: Option<ants_dp::DpMode>,
    /// Telemetry sink (`--telemetry <path>`): attached to every sweep
    /// this config induces. Strictly observational — results are
    /// byte-identical with or without it (`tests/telemetry.rs`).
    pub telemetry: Option<ants_obs::Telemetry>,
}

impl RunConfig {
    /// A config at the given effort with default seed and thread policy.
    pub fn new(effort: Effort) -> Self {
        Self {
            effort,
            base_seed: 0,
            threads: None,
            granularity: Granularity::Auto,
            chunk: None,
            metrics: MetricSet::empty(),
            backend: None,
            dp_mode: None,
            telemetry: None,
        }
    }

    /// Shorthand for `RunConfig::new(Effort::Smoke)`.
    pub fn smoke() -> Self {
        Self::new(Effort::Smoke)
    }

    /// Shorthand for `RunConfig::new(Effort::Standard)`.
    pub fn standard() -> Self {
        Self::new(Effort::Standard)
    }

    /// Set the base seed.
    pub fn with_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Set the thread policy (`None` = all cores).
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Set the sweep granularity.
    pub fn with_granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Set the agents-per-chunk override for agent-level scheduling.
    pub fn with_chunk(mut self, chunk: Option<usize>) -> Self {
        self.chunk = chunk;
        self
    }

    /// Set the extra observation metrics.
    pub fn with_metrics(mut self, metrics: MetricSet) -> Self {
        self.metrics = metrics;
        self
    }

    /// Set the backend override (`None` = respect per-cell spec keys).
    pub fn with_backend(mut self, backend: Option<ants_dp::Backend>) -> Self {
        self.backend = backend;
        self
    }

    /// Set the DP representation override (`None` = respect per-cell
    /// `dp_mode` keys).
    pub fn with_dp_mode(mut self, dp_mode: Option<ants_dp::DpMode>) -> Self {
        self.dp_mode = dp_mode;
        self
    }

    /// Attach a telemetry sink to every sweep this config induces.
    pub fn with_telemetry(mut self, telemetry: Option<ants_obs::Telemetry>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The [`SweepOptions`] this config induces — what experiments hand
    /// to [`ants_sim::run_sweep_with`] / [`ants_sim::map_indexed`].
    pub fn sweep_options(&self) -> SweepOptions {
        let mut opts = SweepOptions::with_threads(self.threads).granularity(self.granularity);
        if let Some(chunk) = self.chunk {
            opts = opts.chunk(chunk);
        }
        if let Some(telemetry) = self.telemetry {
            opts = opts.with_telemetry(telemetry);
        }
        opts
    }

    /// Derive a concrete seed from a per-cell tag.
    pub fn seed(&self, tag: u64) -> u64 {
        self.base_seed ^ tag
    }
}

/// A runnable experiment: identity, sweep shape, and the measurement
/// itself.
///
/// Implementations are stateless unit structs; all parameters flow in
/// through the [`RunConfig`]. Register new experiments in [`all`] — the
/// registry completeness test fails otherwise.
pub trait Experiment {
    /// Identity and claim.
    fn meta(&self) -> &ExperimentMeta;

    /// The sweep shape at a given effort (cells × trials), for workload
    /// previews.
    fn config(&self, effort: Effort) -> SweepConfig;

    /// Run the sweep and return the typed report.
    ///
    /// Implementations fill rows and params; the caller (usually
    /// [`crate::runner::Runner`]) stamps the wall-clock time.
    fn run(&self, cfg: &RunConfig) -> Report;
}

/// A finished experiment run: identity, run parameters, typed records,
/// wall-clock time.
///
/// Renders as fixed-width text ([`fmt::Display`]), CSV
/// ([`Report::to_csv`]), and machine-readable JSON ([`Report::to_json`],
/// stable field order).
pub struct Report {
    key: &'static str,
    id: &'static str,
    claim: &'static str,
    effort: Effort,
    seed: u64,
    threads: Option<usize>,
    params: Vec<(String, Value)>,
    records: Records,
    wall_ms: f64,
}

impl Report {
    /// Start a report for `meta` under `cfg` with the given columns.
    pub fn new(meta: &ExperimentMeta, cfg: &RunConfig, columns: Vec<&str>) -> Self {
        Self {
            key: meta.key,
            id: meta.id,
            claim: meta.claim,
            effort: cfg.effort,
            seed: cfg.base_seed,
            threads: cfg.threads,
            params: Vec::new(),
            records: Records::new(columns),
            wall_ms: f64::NAN,
        }
    }

    /// Record a named run parameter (instance sizes, trial counts …).
    pub fn param(&mut self, name: &str, value: impl Into<Value>) -> &mut Self {
        self.params.push((name.to_string(), value.into()));
        self
    }

    /// Append a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the column count.
    pub fn row(&mut self, cells: Vec<Value>) -> &mut Self {
        self.records.row(cells);
        self
    }

    /// Registry key, e.g. `"e1"`.
    pub fn key(&self) -> &str {
        self.key
    }

    /// Display id, e.g. `"E1 (Theorem 3.5)"`.
    pub fn id(&self) -> &str {
        self.id
    }

    /// The typed records.
    pub fn records(&self) -> &Records {
        &self.records
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Are there no data rows?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Numeric cell lookup by row index and column name (panics on
    /// missing/non-numeric cells — test convenience).
    pub fn num(&self, row: usize, column: &str) -> f64 {
        self.records.num(row, column)
    }

    /// Cell lookup by row index and column name.
    pub fn cell(&self, row: usize, column: &str) -> &Value {
        self.records.cell(row, column)
    }

    /// True when no cell anywhere in the report is `Bool(false)` — the
    /// standard shape of "every per-row lemma check passed".
    pub fn all_checks_pass(&self) -> bool {
        self.records.rows().iter().flatten().all(|v| v != &Value::Bool(false))
    }

    /// Wall-clock milliseconds (NaN until stamped by the runner).
    pub fn wall_ms(&self) -> f64 {
        self.wall_ms
    }

    /// Stamp the wall-clock time (the runner calls this).
    pub fn set_wall_ms(&mut self, wall_ms: f64) {
        self.wall_ms = wall_ms;
    }

    /// Render the data as a fixed-width [`Table`].
    pub fn to_table(&self) -> Table {
        self.records.to_table()
    }

    /// Render the data as CSV.
    pub fn to_csv(&self) -> String {
        self.records.to_csv()
    }

    /// Serialize the whole report as a JSON document.
    ///
    /// Field order is fixed and asserted by tests: `schema`, `id`,
    /// `title`, `claim`, `effort`, `seed`, `threads`, `wall_ms`,
    /// `params`, `columns`, `rows`.
    pub fn to_json(&self) -> String {
        let params: Vec<String> = self
            .params
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json::escape(k), v.to_json()))
            .collect();
        format!(
            "{{\"schema\":\"ants-report/v1\",\"id\":\"{}\",\"title\":\"{}\",\"claim\":\"{}\",\
             \"effort\":\"{}\",\"seed\":{},\"threads\":{},\"wall_ms\":{},\"params\":{{{}}},{}}}",
            json::escape(self.key),
            json::escape(self.id),
            json::escape(self.claim),
            self.effort.as_str(),
            Value::Int(self.seed).to_json(),
            self.threads.map_or("null".to_string(), |t| t.to_string()),
            json::number(self.wall_ms),
            params.join(","),
            self.records.json_fields(),
        )
    }
}

impl fmt::Display for Report {
    /// Header (id + claim + run parameters) followed by the fixed-width
    /// table — the format the CLI and the `exp_*` binaries print.
    ///
    /// Deliberately excludes the wall-clock time: the text rendering is
    /// part of the determinism contract (same command → byte-identical
    /// stdout); timing lives in the JSON report only.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} [{}] ==", self.id, self.key)?;
        writeln!(f, "claim: {}", self.claim)?;
        write!(f, "effort: {}  seed: {}", self.effort.as_str(), self.seed)?;
        match self.threads {
            Some(t) => writeln!(f, "  threads: {t}")?,
            None => writeln!(f, "  threads: auto")?,
        }
        writeln!(f)?;
        write!(f, "{}", self.to_table())
    }
}

/// The experiment registry, in battery order.
///
/// This is the single source of truth: the CLI, `ants all`, and the
/// completeness test all iterate it.
pub fn all() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(e1_nonuniform::E1Nonuniform),
        Box::new(e2_iteration::E2Iteration),
        Box::new(e3_coin::E3Coin),
        Box::new(e4_walk::E4Walk),
        Box::new(e5_square::E5Square),
        Box::new(e6_chi::E6Chi),
        Box::new(e7_uniform::E7Uniform),
        Box::new(e8_lowerbound::E8LowerBound),
        Box::new(e9_tradeoff::E9Tradeoff),
        Box::new(e10_randomwalk::E10RandomWalk),
        Box::new(e11_b_vs_ell::E11BVsEll),
        Box::new(e12_comparator::E12Comparator),
        Box::new(e13_drift::E13Drift),
        Box::new(e14_iteration_len::E14IterationLen),
        Box::new(e15_mixing::E15Mixing),
    ]
}

/// Look up an experiment by registry key (`"e1"` … `"e15"`).
pub fn find(key: &str) -> Option<Box<dyn Experiment>> {
    all().into_iter().find(|e| e.meta().key == key)
}
