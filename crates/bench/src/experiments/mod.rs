//! The experiment battery (see DESIGN.md, "Experiment index").

pub mod e10_randomwalk;
pub mod e11_b_vs_ell;
pub mod e12_comparator;
pub mod e13_drift;
pub mod e14_iteration_len;
pub mod e15_mixing;
pub mod e1_nonuniform;
pub mod e2_iteration;
pub mod e3_coin;
pub mod e4_walk;
pub mod e5_square;
pub mod e6_chi;
pub mod e7_uniform;
pub mod e8_lowerbound;
pub mod e9_tradeoff;

/// How hard an experiment should try.
///
/// `Smoke` keeps CI fast (seconds per experiment); `Standard` is the
/// publication scale used by the `exp_*` binaries and EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Tiny instance sizes: validates wiring, not statistics.
    Smoke,
    /// The scale used for the recorded results.
    Standard,
}

impl Effort {
    /// Pick between the smoke and standard value of a parameter.
    pub fn pick<T: Copy>(self, smoke: T, standard: T) -> T {
        match self {
            Effort::Smoke => smoke,
            Effort::Standard => standard,
        }
    }
}

/// An experiment's identity and its claim, printed as a header.
pub struct ExperimentMeta {
    /// Experiment id, e.g. "E1".
    pub id: &'static str,
    /// What the paper claims.
    pub claim: &'static str,
}

impl std::fmt::Display for ExperimentMeta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} ==", self.id)?;
        writeln!(f, "claim: {}", self.claim)
    }
}

/// Run all experiments at the given effort, printing each.
pub fn run_all(effort: Effort) {
    println!("{}", e1_nonuniform::META);
    println!("{}", e1_nonuniform::run(effort));
    println!("{}", e2_iteration::META);
    println!("{}", e2_iteration::run(effort));
    println!("{}", e3_coin::META);
    println!("{}", e3_coin::run(effort));
    println!("{}", e4_walk::META);
    println!("{}", e4_walk::run(effort));
    println!("{}", e5_square::META);
    println!("{}", e5_square::run(effort));
    println!("{}", e6_chi::META);
    println!("{}", e6_chi::run(effort));
    println!("{}", e7_uniform::META);
    println!("{}", e7_uniform::run(effort));
    println!("{}", e8_lowerbound::META);
    println!("{}", e8_lowerbound::run(effort));
    println!("{}", e9_tradeoff::META);
    println!("{}", e9_tradeoff::run(effort));
    println!("{}", e10_randomwalk::META);
    println!("{}", e10_randomwalk::run(effort));
    println!("{}", e11_b_vs_ell::META);
    println!("{}", e11_b_vs_ell::run(effort));
    println!("{}", e12_comparator::META);
    println!("{}", e12_comparator::run(effort));
    println!("{}", e13_drift::META);
    println!("{}", e13_drift::run(effort));
    println!("{}", e14_iteration_len::META);
    println!("{}", e14_iteration_len::run(effort));
    println!("{}", e15_mixing::META);
    println!("{}", e15_mixing::run(effort));
}
