//! E3 — Lemma 3.6: `coin(k, ℓ)` shows tails with probability exactly
//! `1/2^{kℓ}` and costs `⌈log₂ k⌉` bits.
//!
//! For a `(k, ℓ)` grid we flip the composite coin many times and check the
//! empirical frequency against the exact value with a 5σ Wilson interval;
//! the memory column is computed, not measured (it is a property of the
//! construction).

use super::{Effort, ExperimentMeta};
use ants_rng::stats::wilson_interval;
use ants_rng::{derive_rng, Coin, CompositeCoin};
use ants_sim::report::Table;

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    id: "E3 (Lemma 3.6)",
    claim:
        "coin(k, l) shows tails with probability exactly 1/2^{kl} using ceil(log k) bits of memory",
};

/// Run the grid.
pub fn run(effort: Effort) -> Table {
    let cases: &[(u32, u32)] =
        effort.pick(&[(2, 2), (3, 1)][..], &[(1, 1), (2, 2), (3, 1), (4, 2), (5, 3), (10, 1)][..]);
    let flips = effort.pick(200_000u64, 2_000_000);
    let mut table = Table::new(vec![
        "k",
        "l",
        "memory bits",
        "exact 1/2^{kl}",
        "measured",
        "within 5-sigma Wilson",
    ]);
    for &(k, ell) in cases {
        let coin = CompositeCoin::new(k, ell).expect("valid parameters");
        let mut rng = derive_rng(0xE3, (k as u64) << 8 | ell as u64);
        let tails: u64 = (0..flips).map(|_| u64::from(coin.flip(&mut rng).is_tails())).sum();
        let exact = coin.tails_probability().to_f64();
        let (lo, hi) = wilson_interval(tails, flips, 5.0);
        let ok = lo <= exact && exact <= hi;
        table.row(vec![
            k.to_string(),
            ell.to_string(),
            coin.memory_bits().to_string(),
            format!("{exact:.6}"),
            format!("{:.6}", tails as f64 / flips as f64),
            ok.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_within_interval() {
        let t = run(Effort::Smoke);
        for line in t.to_csv().lines().skip(1) {
            assert!(line.ends_with("true"), "frequency outside Wilson interval: {line}");
        }
    }
}
