//! E3 — Lemma 3.6: `coin(k, ℓ)` shows tails with probability exactly
//! `1/2^{kℓ}` and costs `⌈log₂ k⌉` bits.
//!
//! For a `(k, ℓ)` grid we flip the composite coin many times and check the
//! empirical frequency against the exact value with a 5σ Wilson interval;
//! the memory column is computed, not measured (it is a property of the
//! construction).
//!
//! Implements [`Experiment`]; coin flipping is bespoke (no scenario
//! engine), so the thread policy does not apply here.

use super::{Effort, Experiment, ExperimentMeta, Report, RunConfig, SweepConfig};
use ants_rng::stats::wilson_interval;
use ants_rng::{derive_rng, Coin, CompositeCoin};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    key: "e3",
    id: "E3 (Lemma 3.6)",
    claim:
        "coin(k, l) shows tails with probability exactly 1/2^{kl} using ceil(log k) bits of memory",
};

/// The E3 harness.
pub struct E3Coin;

fn cases(effort: Effort) -> &'static [(u32, u32)] {
    effort.pick(&[(2, 2), (3, 1)][..], &[(1, 1), (2, 2), (3, 1), (4, 2), (5, 3), (10, 1)][..])
}

fn flips(effort: Effort) -> u64 {
    effort.pick(200_000, 2_000_000)
}

impl Experiment for E3Coin {
    fn meta(&self) -> &ExperimentMeta {
        &META
    }

    fn config(&self, effort: Effort) -> SweepConfig {
        SweepConfig { cells: cases(effort).len(), trials_per_cell: flips(effort) }
    }

    fn run(&self, cfg: &RunConfig) -> Report {
        let flips = flips(cfg.effort);
        let mut report = Report::new(
            &META,
            cfg,
            vec!["k", "l", "memory bits", "exact 1/2^{kl}", "measured", "within 5-sigma Wilson"],
        );
        report.param("flips", flips);
        for &(k, ell) in cases(cfg.effort) {
            let coin = CompositeCoin::new(k, ell).expect("valid parameters");
            let mut rng = derive_rng(cfg.seed(0xE3), (k as u64) << 8 | ell as u64);
            let tails: u64 = (0..flips).map(|_| u64::from(coin.flip(&mut rng).is_tails())).sum();
            let exact = coin.tails_probability().to_f64();
            let (lo, hi) = wilson_interval(tails, flips, 5.0);
            let ok = lo <= exact && exact <= hi;
            report.row(vec![
                k.into(),
                ell.into(),
                coin.memory_bits().into(),
                exact.into(),
                (tails as f64 / flips as f64).into(),
                ok.into(),
            ]);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_within_interval() {
        let r = E3Coin.run(&RunConfig::smoke());
        assert_eq!(r.len(), E3Coin.config(Effort::Smoke).cells);
        assert!(r.all_checks_pass(), "a frequency fell outside its Wilson interval:\n{r}");
    }
}
