//! E12 — comparison against the prior state of the art (the paper's
//! reference 12, reconstructed as `HarmonicSearch`).
//!
//! At equal performance scale (`O(D²/n + D)` moves), the FKLS'12-style
//! algorithm pays `χ = Θ(log D)` while the paper's algorithms pay
//! `Θ(log log D)` — the gap that motivates the whole paper.
//!
//! Implements [`Experiment`]; the three strategies per `D` fan across one
//! pool via [`run_sweep_with`].

use super::{Effort, Experiment, ExperimentMeta, Report, RunConfig, SweepConfig};
use ants_core::baselines::HarmonicSearch;
use ants_core::{CoinNonUniformSearch, UniformSearch};
use ants_grid::TargetPlacement;
use ants_sim::{run_sweep_with, Scenario, SweepJob};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    key: "e12",
    id: "E12 (vs FKLS'12)",
    claim: "equal O(D^2/n + D) performance; chi = Theta(log D) for FKLS vs Theta(log log D) for this paper",
};

/// The E12 harness.
pub struct E12Comparator;

const N_AGENTS: usize = 4;

fn d_values(effort: Effort) -> &'static [u64] {
    effort.pick(&[16][..], &[32, 64, 128][..])
}

fn trials(effort: Effort) -> u64 {
    effort.pick(8, 40)
}

/// The three contenders at distance `d`: name plus scenario and seed tag.
fn contenders(d: u64) -> [(&'static str, Scenario, u64); 3] {
    let builder = |budget_factor: u64| {
        Scenario::builder()
            .agents(N_AGENTS)
            .target(TargetPlacement::UniformInBall { distance: d })
            .move_budget(d * d * budget_factor)
    };
    [
        (
            "harmonic (FKLS)",
            builder(800).strategy(move |_| Box::new(HarmonicSearch::new(N_AGENTS as u64))).build(),
            0xE12_100 ^ d,
        ),
        (
            "Alg 1 + coin",
            builder(800)
                .strategy(move |_| Box::new(CoinNonUniformSearch::new(d, 1).expect("valid")))
                .build(),
            0xE12_200 ^ d,
        ),
        (
            "Alg 5 uniform",
            builder(2000)
                .strategy(move |_| {
                    Box::new(UniformSearch::new(1, N_AGENTS as u64, 2).expect("valid"))
                })
                .build(),
            0xE12_300 ^ d,
        ),
    ]
}

impl Experiment for E12Comparator {
    fn meta(&self) -> &ExperimentMeta {
        &META
    }

    fn config(&self, effort: Effort) -> SweepConfig {
        SweepConfig { cells: d_values(effort).len() * 3, trials_per_cell: trials(effort) }
    }

    fn run(&self, cfg: &RunConfig) -> Report {
        let trials = trials(cfg.effort);
        let mut report = Report::new(
            &META,
            cfg,
            vec!["D", "strategy", "mean moves", "chi footprint", "chi / log2 D", "chi / loglog2 D"],
        );
        report.param("n", N_AGENTS).param("trials", trials);
        let mut cells: Vec<(u64, &'static str)> = Vec::new();
        let mut jobs: Vec<SweepJob> = Vec::new();
        for &d in d_values(cfg.effort) {
            for (name, scenario, tag) in contenders(d) {
                cells.push((d, name));
                jobs.push(SweepJob::new(scenario, trials, cfg.seed(tag)));
            }
        }
        for (&(d, name), outcome) in cells.iter().zip(run_sweep_with(&jobs, &cfg.sweep_options())) {
            let log_d = (d as f64).log2();
            let loglog_d = log_d.log2();
            let summary = outcome.summary();
            let chi = summary.chi_footprint().chi();
            report.row(vec![
                d.into(),
                name.into(),
                summary.mean_moves().into(),
                chi.into(),
                (chi / log_d).into(),
                (chi / loglog_d).into(),
            ]);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ants_sim::run_trials;

    #[test]
    fn chi_gap_between_fkls_and_paper() {
        // Measured footprints at D = 64: harmonic must pay strictly more
        // chi than the composite-coin algorithm.
        let d = 64u64;
        let n = 2usize;
        let budget = d * d * 800;
        let run_one = |mk: ants_sim::StrategyFactory, seed: u64| {
            let s = Scenario::builder()
                .agents(n)
                .target(TargetPlacement::UniformInBall { distance: d })
                .move_budget(budget)
                .strategy(move |i| mk(i))
                .build();
            run_trials(&s, 10, seed).summary().chi_footprint().chi()
        };
        let harmonic = run_one(Box::new(move |_| Box::new(HarmonicSearch::new(n as u64))), 1);
        let coin = run_one(
            Box::new(move |_| Box::new(CoinNonUniformSearch::new(d, 1).expect("valid"))),
            2,
        );
        assert!(
            harmonic > coin + 3.0,
            "FKLS chi {harmonic} should clearly exceed composite-coin chi {coin}"
        );
    }

    #[test]
    fn smoke_runs() {
        let r = E12Comparator.run(&RunConfig::smoke());
        assert_eq!(r.len(), 3);
        assert_eq!(r.len(), E12Comparator.config(Effort::Smoke).cells);
    }
}
