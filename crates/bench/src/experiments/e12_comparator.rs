//! E12 — comparison against the prior state of the art (the paper's
//! reference 12, reconstructed as `HarmonicSearch`).
//!
//! At equal performance scale (`O(D²/n + D)` moves), the FKLS'12-style
//! algorithm pays `χ = Θ(log D)` while the paper's algorithms pay
//! `Θ(log log D)` — the gap that motivates the whole paper.

use super::{Effort, ExperimentMeta};
use ants_core::baselines::HarmonicSearch;
use ants_core::{CoinNonUniformSearch, UniformSearch};
use ants_grid::TargetPlacement;
use ants_sim::report::{fnum, Table};
use ants_sim::{run_trials, Scenario};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    id: "E12 (vs FKLS'12)",
    claim: "equal O(D^2/n + D) performance; chi = Theta(log D) for FKLS vs Theta(log log D) for this paper",
};

/// Run the comparison.
pub fn run(effort: Effort) -> Table {
    let d_values: &[u64] = effort.pick(&[16][..], &[32, 64, 128][..]);
    let n = 4usize;
    let trials = effort.pick(8, 40);
    let mut table = Table::new(vec![
        "D",
        "strategy",
        "mean moves",
        "chi footprint",
        "chi / log2 D",
        "chi / loglog2 D",
    ]);
    for &d in d_values {
        let log_d = (d as f64).log2();
        let loglog_d = log_d.log2();
        let mut row = |name: &str, moves: f64, chi: f64| {
            table.row(vec![
                d.to_string(),
                name.into(),
                fnum(moves),
                fnum(chi),
                fnum(chi / log_d),
                fnum(chi / loglog_d),
            ]);
        };
        // Harmonic (FKLS'12-style).
        let s = Scenario::builder()
            .agents(n)
            .target(TargetPlacement::UniformInBall { distance: d })
            .move_budget(d * d * 800)
            .strategy(move |_| Box::new(HarmonicSearch::new(n as u64)))
            .build();
        let o = run_trials(&s, trials, 0xE12_100 ^ d);
        let summary = o.summary();
        row("harmonic (FKLS)", summary.mean_moves(), summary.chi_footprint().chi());
        // This paper, non-uniform.
        let s = Scenario::builder()
            .agents(n)
            .target(TargetPlacement::UniformInBall { distance: d })
            .move_budget(d * d * 800)
            .strategy(move |_| Box::new(CoinNonUniformSearch::new(d, 1).expect("valid")))
            .build();
        let summary = run_trials(&s, trials, 0xE12_200 ^ d).summary();
        row("Alg 1 + coin", summary.mean_moves(), summary.chi_footprint().chi());
        // This paper, uniform.
        let s = Scenario::builder()
            .agents(n)
            .target(TargetPlacement::UniformInBall { distance: d })
            .move_budget(d * d * 2000)
            .strategy(move |_| Box::new(UniformSearch::new(1, n as u64, 2).expect("valid")))
            .build();
        let summary = run_trials(&s, trials, 0xE12_300 ^ d).summary();
        row("Alg 5 uniform", summary.mean_moves(), summary.chi_footprint().chi());
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_gap_between_fkls_and_paper() {
        // Measured footprints at D = 64: harmonic must pay strictly more
        // chi than the composite-coin algorithm.
        let d = 64u64;
        let n = 2usize;
        let budget = d * d * 800;
        let run_one = |mk: ants_sim::StrategyFactory, seed: u64| {
            let s = Scenario::builder()
                .agents(n)
                .target(TargetPlacement::UniformInBall { distance: d })
                .move_budget(budget)
                .strategy(move |i| mk(i))
                .build();
            run_trials(&s, 10, seed).summary().chi_footprint().chi()
        };
        let harmonic = run_one(Box::new(move |_| Box::new(HarmonicSearch::new(n as u64))), 1);
        let coin = run_one(
            Box::new(move |_| Box::new(CoinNonUniformSearch::new(d, 1).expect("valid"))),
            2,
        );
        assert!(
            harmonic > coin + 3.0,
            "FKLS chi {harmonic} should clearly exceed composite-coin chi {coin}"
        );
    }

    #[test]
    fn smoke_runs() {
        let t = run(Effort::Smoke);
        assert_eq!(t.len(), 3);
    }
}
