//! E5 — Lemma 3.9: `search(k, ℓ)` visits every point of
//! `{0, …, 2^{kℓ}}²` (and reflections) with probability `≥ 1/2^{kℓ+6}`.
//!
//! We sample representative lattice points (corners, axes, interior) and
//! estimate each visit probability over many full searches.
//!
//! Implements [`Experiment`]; the search sampling is bespoke (no scenario
//! engine), so the thread policy does not apply here.

use super::{Effort, Experiment, ExperimentMeta, Report, RunConfig, SweepConfig};
use ants_core::apply_action;
use ants_core::components::SquareSearch;
use ants_grid::Point;
use ants_rng::derive_rng;

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    key: "e5",
    id: "E5 (Lemma 3.9)",
    claim: "search(k,l) visits each point of the side-2^{kl} square with probability >= 1/2^{kl+6}",
};

/// The E5 harness.
pub struct E5Square;

const K: u32 = 4;
const ELL: u32 = 1; // side 16

fn trials(effort: Effort) -> u64 {
    effort.pick(20_000, 200_000)
}

fn targets() -> [Point; 6] {
    let side = 1i64 << (K * ELL);
    [
        Point::new(1, 1),
        Point::new(side / 2, side / 2),
        Point::new(side, side),
        Point::new(-side, side / 4),
        Point::new(0, -side),
        Point::new(side / 4, -side / 2),
    ]
}

/// Does one search visit `target`?
fn search_visits(k: u32, ell: u32, target: Point, seed: u64) -> bool {
    let mut search = SquareSearch::new(k, ell).expect("valid parameters");
    let mut rng = derive_rng(seed, 9);
    let mut pos = Point::ORIGIN;
    if pos == target {
        return true;
    }
    loop {
        let s = search.step(&mut rng);
        pos = apply_action(pos, s.action());
        if pos == target {
            return true;
        }
        if s.is_finished() {
            return false;
        }
    }
}

impl Experiment for E5Square {
    fn meta(&self) -> &ExperimentMeta {
        &META
    }

    fn config(&self, effort: Effort) -> SweepConfig {
        SweepConfig { cells: targets().len(), trials_per_cell: trials(effort) }
    }

    fn run(&self, cfg: &RunConfig) -> Report {
        let trials = trials(cfg.effort);
        let floor = 1.0 / (1u64 << (K * ELL + 6)) as f64;
        let mut report = Report::new(
            &META,
            cfg,
            vec!["point", "trials", "P[visit]", "floor 1/2^{kl+6}", "margin"],
        );
        report.param("k", K).param("l", ELL).param("trials", trials);
        for (ti, target) in targets().iter().enumerate() {
            let hits: u64 = (0..trials)
                .map(|s| {
                    u64::from(search_visits(
                        K,
                        ELL,
                        *target,
                        cfg.seed(0xE5_0000 ^ s ^ ((ti as u64) << 32)),
                    ))
                })
                .sum();
            let p = hits as f64 / trials as f64;
            report.row(vec![
                target.to_string().into(),
                trials.into(),
                p.into(),
                floor.into(),
                (p / floor).into(),
            ]);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_points_meet_floor() {
        let r = E5Square.run(&RunConfig::smoke());
        assert_eq!(r.len(), E5Square.config(Effort::Smoke).cells);
        for row in 0..r.len() {
            let margin = r.num(row, "margin");
            assert!(margin >= 1.0, "visit probability below the Lemma 3.9 floor (row {row})");
        }
    }

    #[test]
    fn near_origin_point_visited_often() {
        let trials = 5_000;
        let hits: u64 =
            (0..trials).map(|s| u64::from(search_visits(2, 2, Point::new(1, 0), s))).sum();
        // (1, 0) is visited iff the vertical walk has length 0 (p = 1/16),
        // the horizontal direction is right (1/2) and the horizontal walk
        // makes at least one move (15/16): P ~ 0.029.
        let p = hits as f64 / trials as f64;
        assert!((p - 0.029).abs() < 0.015, "P[visit (1,0)] = {p}");
    }
}
