//! E5 — Lemma 3.9: `search(k, ℓ)` visits every point of
//! `{0, …, 2^{kℓ}}²` (and reflections) with probability `≥ 1/2^{kℓ+6}`.
//!
//! We sample representative lattice points (corners, axes, interior) and
//! estimate each visit probability over many full searches.

use super::{Effort, ExperimentMeta};
use ants_core::apply_action;
use ants_core::components::SquareSearch;
use ants_grid::Point;
use ants_rng::derive_rng;
use ants_sim::report::Table;

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    id: "E5 (Lemma 3.9)",
    claim: "search(k,l) visits each point of the side-2^{kl} square with probability >= 1/2^{kl+6}",
};

/// Does one search visit `target`?
fn search_visits(k: u32, ell: u32, target: Point, seed: u64) -> bool {
    let mut search = SquareSearch::new(k, ell).expect("valid parameters");
    let mut rng = derive_rng(seed, 9);
    let mut pos = Point::ORIGIN;
    if pos == target {
        return true;
    }
    loop {
        let s = search.step(&mut rng);
        pos = apply_action(pos, s.action());
        if pos == target {
            return true;
        }
        if s.is_finished() {
            return false;
        }
    }
}

/// Run the point sample.
pub fn run(effort: Effort) -> Table {
    let (k, ell) = (4u32, 1u32); // side 16
    let side = 1i64 << (k * ell);
    let trials = effort.pick(20_000u64, 200_000);
    let floor = 1.0 / (1u64 << (k * ell + 6)) as f64;
    let targets = [
        Point::new(1, 1),
        Point::new(side / 2, side / 2),
        Point::new(side, side),
        Point::new(-side, side / 4),
        Point::new(0, -side),
        Point::new(side / 4, -side / 2),
    ];
    let mut table = Table::new(vec!["point", "trials", "P[visit]", "floor 1/2^{kl+6}", "margin"]);
    for (ti, target) in targets.iter().enumerate() {
        let hits: u64 = (0..trials)
            .map(|s| u64::from(search_visits(k, ell, *target, 0xE5_0000 ^ s ^ ((ti as u64) << 32))))
            .sum();
        let p = hits as f64 / trials as f64;
        table.row(vec![
            target.to_string(),
            trials.to_string(),
            format!("{p:.5}"),
            format!("{floor:.5}"),
            format!("{:.1}", p / floor),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_points_meet_floor() {
        let t = run(Effort::Smoke);
        for line in t.to_csv().lines().skip(1) {
            let margin: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert!(margin >= 1.0, "visit probability below the Lemma 3.9 floor: {line}");
        }
    }

    #[test]
    fn near_origin_point_visited_often() {
        let trials = 5_000;
        let hits: u64 =
            (0..trials).map(|s| u64::from(search_visits(2, 2, Point::new(1, 0), s))).sum();
        // (1, 0) is visited iff the vertical walk has length 0 (p = 1/16),
        // the horizontal direction is right (1/2) and the horizontal walk
        // makes at least one move (15/16): P ~ 0.029.
        let p = hits as f64 / trials as f64;
        assert!((p - 0.029).abs() < 0.015, "P[visit (1,0)] = {p}");
    }
}
