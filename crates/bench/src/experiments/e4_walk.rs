//! E4 — Lemma 3.8: the distribution of `walk(k, ℓ, dir)`.
//!
//! Claims, per `(k, ℓ)`:
//! * `P[exactly i moves] ≥ 1/2^{kℓ+2}` for every `i ∈ {0, …, 2^{kℓ}}`;
//! * `P[at least 2^{kℓ} moves] ≥ 1/4`;
//! * `E[moves] < 2^{kℓ}`.

use super::{Effort, ExperimentMeta};
use ants_core::components::GeometricWalk;
use ants_grid::Direction;
use ants_rng::derive_rng;
use ants_sim::report::{fnum, Table};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    id: "E4 (Lemma 3.8)",
    claim: "walk(k,l): point masses >= 1/2^{kl+2} on 0..2^{kl}, tail P[>= 2^{kl}] >= 1/4, mean < 2^{kl}",
};

/// One full walk's move count.
fn walk_length(k: u32, ell: u32, seed: u64) -> u64 {
    let mut walk = GeometricWalk::new(k, ell, Direction::Up).expect("valid parameters");
    let mut rng = derive_rng(seed, 0);
    let mut moves = 0u64;
    loop {
        let s = walk.step(&mut rng);
        if s.action().is_move() {
            moves += 1;
        }
        if s.is_finished() {
            return moves;
        }
    }
}

/// Run the grid.
pub fn run(effort: Effort) -> Table {
    let cases: &[(u32, u32)] = effort.pick(&[(2, 2)][..], &[(2, 2), (4, 1), (3, 2), (2, 4)][..]);
    let trials = effort.pick(30_000u64, 300_000);
    let mut table = Table::new(vec![
        "k",
        "l",
        "2^{kl}",
        "mean (< 2^{kl}?)",
        "P[>= 2^{kl}] (>= 0.25?)",
        "min point mass x 2^{kl+2} (>= 1?)",
    ]);
    for &(k, ell) in cases {
        let bound = 1u64 << (k * ell);
        let mut counts = vec![0u64; bound as usize + 1];
        let mut total = 0u64;
        let mut tail = 0u64;
        for s in 0..trials {
            let m = walk_length(k, ell, 0xE4_0000 ^ s ^ ((k as u64) << 40) ^ ((ell as u64) << 48));
            total += m;
            if m >= bound {
                tail += 1;
            }
            if m <= bound {
                counts[m as usize] += 1;
            }
        }
        let mean = total as f64 / trials as f64;
        let tail_p = tail as f64 / trials as f64;
        let min_mass =
            counts.iter().map(|&c| c as f64 / trials as f64).fold(f64::INFINITY, f64::min);
        table.row(vec![
            k.to_string(),
            ell.to_string(),
            bound.to_string(),
            format!("{} ({})", fnum(mean), mean < bound as f64),
            format!("{tail_p:.3} ({})", tail_p >= 0.24),
            format!(
                "{:.2} ({})",
                min_mass * (4 * bound) as f64,
                min_mass * (4 * bound) as f64 >= 0.9
            ),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lemma_checks_pass() {
        let t = run(Effort::Smoke);
        let rendered = t.to_string();
        assert!(!rendered.contains("false"), "a Lemma 3.8 check failed:\n{rendered}");
    }

    #[test]
    fn mean_is_exactly_geometric() {
        // p = 1/16: mean = 15.
        let trials = 50_000u64;
        let total: u64 = (0..trials).map(|s| walk_length(2, 2, s)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 15.0).abs() < 0.5, "mean {mean}");
    }
}
