//! E4 — Lemma 3.8: the distribution of `walk(k, ℓ, dir)`.
//!
//! Claims, per `(k, ℓ)`:
//! * `P[exactly i moves] ≥ 1/2^{kℓ+2}` for every `i ∈ {0, …, 2^{kℓ}}`;
//! * `P[at least 2^{kℓ} moves] ≥ 1/4`;
//! * `E[moves] < 2^{kℓ}`.
//!
//! Implements [`Experiment`]; the walk sampling is bespoke (no scenario
//! engine), so it routes through [`ants_sim::map_indexed`] — the
//! engine's agent-level scheduling primitive — instead of `run_sweep`:
//! per-sample seeds are derived by index and the per-chunk results are
//! reduced in canonical index order, so the histogram is byte-identical
//! at every thread count. Each lemma check reports its measured value
//! and its verdict in separate typed columns.

use super::{Effort, Experiment, ExperimentMeta, Report, RunConfig, SweepConfig};
use ants_core::components::GeometricWalk;
use ants_grid::Direction;
use ants_rng::derive_rng;
use ants_sim::map_indexed;

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    key: "e4",
    id: "E4 (Lemma 3.8)",
    claim: "walk(k,l): point masses >= 1/2^{kl+2} on 0..2^{kl}, tail P[>= 2^{kl}] >= 1/4, mean < 2^{kl}",
};

/// The E4 harness.
pub struct E4Walk;

fn cases(effort: Effort) -> &'static [(u32, u32)] {
    effort.pick(&[(2, 2)][..], &[(2, 2), (4, 1), (3, 2), (2, 4)][..])
}

fn trials(effort: Effort) -> u64 {
    effort.pick(30_000, 300_000)
}

/// One full walk's move count.
fn walk_length(k: u32, ell: u32, seed: u64) -> u64 {
    let mut walk = GeometricWalk::new(k, ell, Direction::Up).expect("valid parameters");
    let mut rng = derive_rng(seed, 0);
    let mut moves = 0u64;
    loop {
        let s = walk.step(&mut rng);
        if s.action().is_move() {
            moves += 1;
        }
        if s.is_finished() {
            return moves;
        }
    }
}

impl Experiment for E4Walk {
    fn meta(&self) -> &ExperimentMeta {
        &META
    }

    fn config(&self, effort: Effort) -> SweepConfig {
        SweepConfig { cells: cases(effort).len(), trials_per_cell: trials(effort) }
    }

    fn run(&self, cfg: &RunConfig) -> Report {
        let trials = trials(cfg.effort);
        let mut report = Report::new(
            &META,
            cfg,
            vec![
                "k",
                "l",
                "2^{kl}",
                "mean",
                "mean < 2^{kl}",
                "P[>= 2^{kl}]",
                "tail >= 1/4",
                "min mass x 2^{kl+2}",
                "masses >= 1",
            ],
        );
        report.param("trials", trials);
        let opts = cfg.sweep_options();
        for &(k, ell) in cases(cfg.effort) {
            let bound = 1u64 << (k * ell);
            let mut counts = vec![0u64; bound as usize + 1];
            let mut total = 0u64;
            let mut tail = 0u64;
            // Sample the walk lengths across the pool; the fold below is
            // in canonical sample order (and commutative anyway), so the
            // histogram is identical at every thread count.
            let lengths = map_indexed(trials, &opts, |s| {
                walk_length(
                    k,
                    ell,
                    cfg.seed(0xE4_0000 ^ s ^ ((k as u64) << 40) ^ ((ell as u64) << 48)),
                )
            });
            for m in lengths {
                total += m;
                if m >= bound {
                    tail += 1;
                }
                if m <= bound {
                    counts[m as usize] += 1;
                }
            }
            let mean = total as f64 / trials as f64;
            let tail_p = tail as f64 / trials as f64;
            let min_mass =
                counts.iter().map(|&c| c as f64 / trials as f64).fold(f64::INFINITY, f64::min);
            let scaled_mass = min_mass * (4 * bound) as f64;
            report.row(vec![
                k.into(),
                ell.into(),
                bound.into(),
                mean.into(),
                (mean < bound as f64).into(),
                tail_p.into(),
                (tail_p >= 0.24).into(),
                scaled_mass.into(),
                (scaled_mass >= 0.9).into(),
            ]);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lemma_checks_pass() {
        let r = E4Walk.run(&RunConfig::smoke());
        assert_eq!(r.len(), E4Walk.config(Effort::Smoke).cells);
        assert!(r.all_checks_pass(), "a Lemma 3.8 check failed:\n{r}");
    }

    #[test]
    fn mean_is_exactly_geometric() {
        // p = 1/16: mean = 15.
        let trials = 50_000u64;
        let total: u64 = (0..trials).map(|s| walk_length(2, 2, s)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 15.0).abs() < 0.5, "mean {mean}");
    }
}
