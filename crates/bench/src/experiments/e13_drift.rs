//! E13 — Corollary 4.10: positions concentrate around the drift line.
//!
//! For representative low-χ automata, measure `‖X_r − r·~p‖_∞` as `r`
//! grows and compare against the `√(r·ln D)` scale of Lemma 4.9: the
//! *relative* deviation must fall like `r^{-1/2}`.

use super::{Effort, ExperimentMeta};
use ants_analysis::drift;
use ants_automaton::library;
use ants_sim::report::{fnum, Table};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    id: "E13 (Corollary 4.10)",
    claim: "||X_r - r*p|| = o(D/|S|): deviation grows like sqrt(r log D), relative deviation like r^{-1/2}",
};

/// Run the deviation sweep.
pub fn run(effort: Effort) -> Table {
    let steps_list: &[u64] = effort.pick(&[256, 1024][..], &[256, 1024, 4096, 16384, 65536][..]);
    let trials = effort.pick(60, 300);
    let d = 256; // reference scale for the log factor
    let mut table = Table::new(vec![
        "automaton",
        "r (steps)",
        "mean ||X_r - r p||",
        "sqrt(r ln D) scale",
        "ratio",
        "relative dev",
    ]);
    for (name, pfa) in [
        ("drift walk (e=2)", library::drift_walk(2).expect("valid")),
        ("drift walk (e=4)", library::drift_walk(4).expect("valid")),
        ("uniform walk", library::random_walk()),
    ] {
        for &r in steps_list {
            let rep = drift::measure(&pfa, 64, r, trials, 0xE13 ^ r);
            let scale = drift::predicted_deviation(r, d);
            table.row(vec![
                name.into(),
                r.to_string(),
                fnum(rep.deviation.mean()),
                fnum(scale),
                fnum(rep.deviation.mean() / scale),
                format!("{:.5}", rep.relative_deviation()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_deviation_falls_with_r() {
        let pfa = library::drift_walk(2).unwrap();
        let short = drift::measure(&pfa, 64, 256, 100, 1).relative_deviation();
        let long = drift::measure(&pfa, 64, 16384, 100, 2).relative_deviation();
        assert!(
            long < short / 3.0,
            "relative deviation should fall ~8x over a 64x step increase: {short} -> {long}"
        );
    }

    #[test]
    fn deviation_within_constant_of_scale() {
        let pfa = library::drift_walk(3).unwrap();
        let r = 4096;
        let rep = drift::measure(&pfa, 64, r, 150, 3);
        let scale = drift::predicted_deviation(r, 256);
        let ratio = rep.deviation.mean() / scale;
        assert!(
            (0.05..4.0).contains(&ratio),
            "deviation/scale ratio {ratio} outside the sqrt regime"
        );
    }

    #[test]
    fn smoke_runs() {
        let t = run(Effort::Smoke);
        assert_eq!(t.len(), 6);
    }
}
