//! E13 — Corollary 4.10: positions concentrate around the drift line.
//!
//! For representative low-χ automata, measure `‖X_r − r·~p‖_∞` as `r`
//! grows and compare against the `√(r·ln D)` scale of Lemma 4.9: the
//! *relative* deviation must fall like `r^{-1/2}`.
//!
//! Implements [`Experiment`]; the deviation measurements use the analysis
//! crate's walkers (no scenario engine), so the thread policy does not
//! apply here.

use super::{Effort, Experiment, ExperimentMeta, Report, RunConfig, SweepConfig};
use ants_analysis::drift;
use ants_automaton::{library, Pfa};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    key: "e13",
    id: "E13 (Corollary 4.10)",
    claim: "||X_r - r*p|| = o(D/|S|): deviation grows like sqrt(r log D), relative deviation like r^{-1/2}",
};

/// The E13 harness.
pub struct E13Drift;

const D_REF: u64 = 256; // reference scale for the log factor

fn steps_list(effort: Effort) -> &'static [u64] {
    effort.pick(&[256, 1024][..], &[256, 1024, 4096, 16384, 65536][..])
}

fn trials(effort: Effort) -> u64 {
    effort.pick(60, 300)
}

fn automata() -> Vec<(&'static str, Pfa)> {
    vec![
        ("drift walk (e=2)", library::drift_walk(2).expect("valid")),
        ("drift walk (e=4)", library::drift_walk(4).expect("valid")),
        ("uniform walk", library::random_walk()),
    ]
}

impl Experiment for E13Drift {
    fn meta(&self) -> &ExperimentMeta {
        &META
    }

    fn config(&self, effort: Effort) -> SweepConfig {
        SweepConfig {
            cells: automata().len() * steps_list(effort).len(),
            trials_per_cell: trials(effort),
        }
    }

    fn run(&self, cfg: &RunConfig) -> Report {
        let trials = trials(cfg.effort);
        let mut report = Report::new(
            &META,
            cfg,
            vec![
                "automaton",
                "r (steps)",
                "mean ||X_r - r p||",
                "sqrt(r ln D) scale",
                "ratio",
                "relative dev",
            ],
        );
        report.param("trials", trials).param("D_ref", D_REF);
        for (name, pfa) in automata() {
            for &r in steps_list(cfg.effort) {
                let rep = drift::measure(&pfa, 64, r, trials, cfg.seed(0xE13 ^ r));
                let scale = drift::predicted_deviation(r, D_REF);
                report.row(vec![
                    name.into(),
                    r.into(),
                    rep.deviation.mean().into(),
                    scale.into(),
                    (rep.deviation.mean() / scale).into(),
                    rep.relative_deviation().into(),
                ]);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_deviation_falls_with_r() {
        let pfa = library::drift_walk(2).unwrap();
        let short = drift::measure(&pfa, 64, 256, 100, 1).relative_deviation();
        let long = drift::measure(&pfa, 64, 16384, 100, 2).relative_deviation();
        assert!(
            long < short / 3.0,
            "relative deviation should fall ~8x over a 64x step increase: {short} -> {long}"
        );
    }

    #[test]
    fn deviation_within_constant_of_scale() {
        let pfa = library::drift_walk(3).unwrap();
        let r = 4096;
        let rep = drift::measure(&pfa, 64, r, 150, 3);
        let scale = drift::predicted_deviation(r, 256);
        let ratio = rep.deviation.mean() / scale;
        assert!(
            (0.05..4.0).contains(&ratio),
            "deviation/scale ratio {ratio} outside the sqrt regime"
        );
    }

    #[test]
    fn smoke_runs() {
        let r = E13Drift.run(&RunConfig::smoke());
        assert_eq!(r.len(), 6);
        assert_eq!(r.len(), E13Drift.config(Effort::Smoke).cells);
    }
}
