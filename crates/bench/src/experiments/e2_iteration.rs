//! E2 — Lemma 3.4: each iteration of Algorithm 1 finds the target with
//! probability at least `1/(64D)`, so all `n` agents miss with
//! `q ≤ max{1 − Ω(n/D), 1/2}`.
//!
//! For corner targets `(D, D)` (the worst case in the lemma's proof) we
//! measure the per-iteration hit probability directly by running many
//! independent iterations.
//!
//! Implements [`Experiment`]; the iteration loop is bespoke (no scenario
//! engine), so the thread policy does not apply here.

use super::{Effort, Experiment, ExperimentMeta, Report, RunConfig, SweepConfig};
use ants_automaton::GridAction;
use ants_core::{apply_action, NonUniformSearch, SearchStrategy};
use ants_grid::Point;
use ants_rng::derive_rng;

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    key: "e2",
    id: "E2 (Lemma 3.4)",
    claim: "one iteration of Algorithm 1 hits any target within distance D with probability >= 1/(64 D)",
};

/// The E2 harness.
pub struct E2Iteration;

fn d_values(effort: Effort) -> &'static [u64] {
    effort.pick(&[8][..], &[8, 16, 32, 64][..])
}

fn iterations(effort: Effort) -> u64 {
    effort.pick(4_000, 60_000)
}

/// Probability that a single iteration visits `target`, estimated over
/// `iterations` independent iterations.
pub fn iteration_hit_probability(d: u64, target: Point, iterations: u64, seed: u64) -> f64 {
    let mut hits = 0u64;
    for i in 0..iterations {
        let mut agent = NonUniformSearch::new(d).expect("valid D");
        let mut rng = derive_rng(seed, i);
        let mut pos = Point::ORIGIN;
        loop {
            let a = agent.step(&mut rng);
            pos = apply_action(pos, a);
            if pos == target {
                hits += 1;
                break;
            }
            if a == GridAction::Origin {
                break; // iteration over
            }
        }
    }
    hits as f64 / iterations as f64
}

impl Experiment for E2Iteration {
    fn meta(&self) -> &ExperimentMeta {
        &META
    }

    fn config(&self, effort: Effort) -> SweepConfig {
        SweepConfig {
            cells: d_values(effort).len() * 2, // corner + axis target per D
            trials_per_cell: iterations(effort),
        }
    }

    fn run(&self, cfg: &RunConfig) -> Report {
        let iterations = iterations(cfg.effort);
        let mut report = Report::new(
            &META,
            cfg,
            vec!["D", "target", "iterations", "P[hit]", "lemma floor 1/(64D)", "margin"],
        );
        report.param("iterations", iterations);
        for &d in d_values(cfg.effort) {
            for target in [Point::new(d as i64, d as i64), Point::new(d as i64, 0)] {
                let p = iteration_hit_probability(d, target, iterations, cfg.seed(0xE2 ^ d));
                let floor = 1.0 / (64.0 * d as f64);
                report.row(vec![
                    d.into(),
                    target.to_string().into(),
                    iterations.into(),
                    p.into(),
                    floor.into(),
                    (p / floor).into(),
                ]);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_probability_beats_lemma_floor() {
        // D = 8, corner target: floor = 1/512 ≈ 0.00195.
        let p = iteration_hit_probability(8, Point::new(8, 8), 30_000, 1);
        assert!(p >= 1.0 / 512.0, "P[hit] = {p} below the Lemma 3.4 floor");
    }

    #[test]
    fn axis_targets_are_easier_than_corners() {
        let corner = iteration_hit_probability(8, Point::new(8, 8), 30_000, 2);
        let axis = iteration_hit_probability(8, Point::new(8, 0), 30_000, 3);
        assert!(axis > corner, "axis {axis} vs corner {corner}");
    }

    #[test]
    fn smoke_table_shape() {
        let r = E2Iteration.run(&RunConfig::smoke());
        assert_eq!(r.len(), 2);
        assert_eq!(r.len(), E2Iteration.config(Effort::Smoke).cells);
        // Every measured probability clears the lemma floor.
        for row in 0..r.len() {
            assert!(r.num(row, "margin") >= 1.0, "row {row} below the floor");
        }
    }
}
