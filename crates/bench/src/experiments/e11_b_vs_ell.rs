//! E11 — the `b` vs `ℓ` trade-off inside a fixed χ budget (the paper's
//! Discussion: "more bits of memory might be of greater utility than
//! having access to smaller probabilities").
//!
//! `Non-Uniform-Search` realises the coin `C_{1/2^{kℓ}}` for any split of
//! `kℓ ≈ log₂ D` between the counter (`b ≈ log k` bits) and the coin
//! resolution `ℓ`; we sweep the split at fixed `D` and measure both the
//! χ decomposition and the running time — performance is flat while χ
//! shifts between its two components, demonstrating that memory can
//! substitute for probability resolution (but the converse direction has
//! no analogous construction, per the Discussion).
//!
//! Implements [`Experiment`]; the split sweep fans across one pool via
//! [`run_sweep_with`].

use super::{Effort, Experiment, ExperimentMeta, Report, RunConfig, SweepConfig};
use ants_core::{CoinNonUniformSearch, SearchStrategy};
use ants_grid::TargetPlacement;
use ants_sim::{run_sweep_with, Scenario, SweepJob};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    key: "e11",
    id: "E11 (Discussion: b vs ell)",
    claim: "memory can simulate fine probabilities: sweeping the (b, ell) split at fixed kl = log D leaves performance flat",
};

/// The E11 harness.
pub struct E11BVsEll;

const N_AGENTS: usize = 4;

fn d_value(effort: Effort) -> u64 {
    effort.pick(32, 128)
}

fn trials(effort: Effort) -> u64 {
    effort.pick(8, 40)
}

/// The swept `ℓ` values: powers of two up to `log₂ D`.
fn ell_values(effort: Effort) -> Vec<u32> {
    let d = d_value(effort);
    let log_d = 64 - (d - 1).leading_zeros();
    let mut ells = Vec::new();
    let mut ell = 1u32;
    while ell <= log_d {
        ells.push(ell);
        ell *= 2;
    }
    ells
}

impl Experiment for E11BVsEll {
    fn meta(&self) -> &ExperimentMeta {
        &META
    }

    fn config(&self, effort: Effort) -> SweepConfig {
        SweepConfig { cells: ell_values(effort).len(), trials_per_cell: trials(effort) }
    }

    fn run(&self, cfg: &RunConfig) -> Report {
        let d = d_value(cfg.effort);
        let trials = trials(cfg.effort);
        let mut report = Report::new(
            &META,
            cfg,
            vec!["ell", "k", "b", "chi", "mean moves", "ratio to envelope"],
        );
        report.param("D", d).param("n", N_AGENTS).param("trials", trials);
        let ells = ell_values(cfg.effort);
        let jobs: Vec<SweepJob> = ells
            .iter()
            .map(|&ell| {
                let scenario = Scenario::builder()
                    .agents(N_AGENTS)
                    .target(TargetPlacement::UniformInBall { distance: d })
                    .move_budget(d * d * 800)
                    .strategy(move |_| Box::new(CoinNonUniformSearch::new(d, ell).expect("valid")))
                    .build();
                SweepJob::new(scenario, trials, cfg.seed(0xE11_000 ^ (ell as u64)))
            })
            .collect();
        for (&ell, outcome) in ells.iter().zip(run_sweep_with(&jobs, &cfg.sweep_options())) {
            let agent = CoinNonUniformSearch::new(d, ell).expect("valid");
            let sc = agent.selection_complexity();
            let summary = outcome.summary();
            let env = (d * d) as f64 / N_AGENTS as f64 + d as f64;
            report.row(vec![
                ell.into(),
                agent.k().into(),
                sc.memory_bits().into(),
                sc.chi().into(),
                summary.mean_moves().into(),
                (summary.mean_moves() / env).into(),
            ]);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ants_sim::run_trials;

    #[test]
    fn performance_flat_across_splits() {
        // At fixed kl = log D the coin is identical; only the accounting
        // moves between b and ell. Run two extreme splits.
        let d = 32u64;
        let run_split = |ell: u32, seed: u64| {
            let scenario = Scenario::builder()
                .agents(2)
                .target(TargetPlacement::Corner { distance: d })
                .move_budget(d * d * 2000)
                .strategy(move |_| Box::new(CoinNonUniformSearch::new(d, ell).expect("valid")))
                .build();
            run_trials(&scenario, 25, seed).summary().mean_moves()
        };
        let fine = run_split(5, 1); // ell = log D, k = 1
        let coarse = run_split(1, 1); // ell = 1, k = log D
        let ratio = fine.max(coarse) / fine.min(coarse);
        assert!(
            ratio < 3.0,
            "splits should perform comparably: ell=5 -> {fine}, ell=1 -> {coarse}"
        );
    }

    #[test]
    fn chi_decomposition_shifts() {
        let d = 1u64 << 16;
        let fine = CoinNonUniformSearch::new(d, 16).unwrap().selection_complexity();
        let coarse = CoinNonUniformSearch::new(d, 1).unwrap().selection_complexity();
        // Fine probabilities: small b, large ell. Coarse: the reverse.
        assert!(fine.memory_bits() < coarse.memory_bits());
        assert!(fine.ell() > coarse.ell());
    }

    #[test]
    fn smoke_runs() {
        let r = E11BVsEll.run(&RunConfig::smoke());
        assert!(r.len() >= 3);
        assert_eq!(r.len(), E11BVsEll.config(Effort::Smoke).cells);
    }
}
