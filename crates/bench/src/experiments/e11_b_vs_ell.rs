//! E11 — the `b` vs `ℓ` trade-off inside a fixed χ budget (the paper's
//! Discussion: "more bits of memory might be of greater utility than
//! having access to smaller probabilities").
//!
//! `Non-Uniform-Search` realises the coin `C_{1/2^{kℓ}}` for any split of
//! `kℓ ≈ log₂ D` between the counter (`b ≈ log k` bits) and the coin
//! resolution `ℓ`; we sweep the split at fixed `D` and measure both the
//! χ decomposition and the running time — performance is flat while χ
//! shifts between its two components, demonstrating that memory can
//! substitute for probability resolution (but the converse direction has
//! no analogous construction, per the Discussion).

use super::{Effort, ExperimentMeta};
use ants_core::{CoinNonUniformSearch, SearchStrategy};
use ants_grid::TargetPlacement;
use ants_sim::report::{fnum, Table};
use ants_sim::{run_trials, Scenario};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    id: "E11 (Discussion: b vs ell)",
    claim: "memory can simulate fine probabilities: sweeping the (b, ell) split at fixed kl = log D leaves performance flat",
};

/// Run the split sweep.
pub fn run(effort: Effort) -> Table {
    let d = effort.pick(32u64, 128);
    let n = 4usize;
    let trials = effort.pick(8, 40);
    let log_d = 64 - (d - 1).leading_zeros();
    let mut table = Table::new(vec!["ell", "k", "b", "chi", "mean moves", "ratio to envelope"]);
    let mut ell = 1u32;
    while ell <= log_d {
        let scenario = Scenario::builder()
            .agents(n)
            .target(TargetPlacement::UniformInBall { distance: d })
            .move_budget(d * d * 800)
            .strategy(move |_| Box::new(CoinNonUniformSearch::new(d, ell).expect("valid")))
            .build();
        let agent = CoinNonUniformSearch::new(d, ell).expect("valid");
        let sc = agent.selection_complexity();
        let summary = run_trials(&scenario, trials, 0xE11_000 ^ (ell as u64)).summary();
        let env = (d * d) as f64 / n as f64 + d as f64;
        table.row(vec![
            ell.to_string(),
            agent.k().to_string(),
            sc.memory_bits().to_string(),
            fnum(sc.chi()),
            fnum(summary.mean_moves()),
            fnum(summary.mean_moves() / env),
        ]);
        ell *= 2;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_flat_across_splits() {
        // At fixed kl = log D the coin is identical; only the accounting
        // moves between b and ell. Run two extreme splits.
        let d = 32u64;
        let run_split = |ell: u32, seed: u64| {
            let scenario = Scenario::builder()
                .agents(2)
                .target(TargetPlacement::Corner { distance: d })
                .move_budget(d * d * 2000)
                .strategy(move |_| Box::new(CoinNonUniformSearch::new(d, ell).expect("valid")))
                .build();
            run_trials(&scenario, 25, seed).summary().mean_moves()
        };
        let fine = run_split(5, 1); // ell = log D, k = 1
        let coarse = run_split(1, 1); // ell = 1, k = log D
        let ratio = fine.max(coarse) / fine.min(coarse);
        assert!(
            ratio < 3.0,
            "splits should perform comparably: ell=5 -> {fine}, ell=1 -> {coarse}"
        );
    }

    #[test]
    fn chi_decomposition_shifts() {
        let d = 1u64 << 16;
        let fine = CoinNonUniformSearch::new(d, 16).unwrap().selection_complexity();
        let coarse = CoinNonUniformSearch::new(d, 1).unwrap().selection_complexity();
        // Fine probabilities: small b, large ell. Coarse: the reverse.
        assert!(fine.memory_bits() < coarse.memory_bits());
        assert!(fine.ell() > coarse.ell());
    }

    #[test]
    fn smoke_runs() {
        let t = run(Effort::Smoke);
        assert!(t.len() >= 3);
    }
}
