//! E9 — the headline trade-off: speed-up versus selection complexity.
//!
//! At fixed `D` and `n`, run every strategy with `n = 1` and with `n`
//! agents; speed-up is the ratio of mean `M_moves`. Plotting speed-up
//! against `χ` exposes the paper's knee at `χ ≈ log log D`: strategies
//! below the threshold (random walks, tiny PFAs) are stuck near
//! `min{log n, D^{o(1)}}`; strategies at or above it (Algorithms 1/5,
//! harmonic search) reach `Θ(min{n, D})`.

use super::{Effort, ExperimentMeta};
use ants_automaton::library;
use ants_core::baselines::{AutomatonStrategy, HarmonicSearch, RandomWalk};
use ants_core::{CoinNonUniformSearch, NonUniformSearch, SearchStrategy as _, UniformSearch};
use ants_grid::TargetPlacement;
use ants_sim::report::{fnum, Table};
use ants_sim::StrategyFactory;

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    id: "E9 (headline trade-off)",
    claim: "speed-up vs chi shows the knee at log log D: below it speed-up ~ min{log n, D^{o(1)}}, above it ~ min{n, D}",
};

/// A named strategy factory with its static χ (at the experiment's D).
struct Entry {
    name: &'static str,
    factory: StrategyFactory,
    chi: f64,
}

fn entries(d: u64, n: usize) -> Vec<Entry> {
    let mut rng = ants_rng::derive_rng(0xE9_7000, 0);
    let tiny = library::random_pfa(4, 2, &mut rng);
    let tiny_chi = tiny.chi();
    vec![
        Entry {
            name: "random walk",
            factory: Box::new(|_| Box::new(RandomWalk::new())),
            chi: RandomWalk::new().selection_complexity().chi(),
        },
        Entry {
            name: "tiny pfa",
            factory: {
                let t = tiny.clone();
                Box::new(move |_| Box::new(AutomatonStrategy::new(t.clone())))
            },
            chi: tiny_chi,
        },
        Entry {
            name: "Alg 1 + coin",
            factory: Box::new(move |_| Box::new(CoinNonUniformSearch::new(d, 1).expect("valid"))),
            chi: CoinNonUniformSearch::new(d, 1).expect("valid").selection_complexity().chi(),
        },
        Entry {
            name: "Alg 1 plain",
            factory: Box::new(move |_| Box::new(NonUniformSearch::new(d).expect("valid"))),
            chi: NonUniformSearch::new(d).expect("valid").selection_complexity().chi(),
        },
        Entry {
            name: "Alg 5 uniform",
            factory: Box::new(move |_| {
                Box::new(UniformSearch::new(1, n as u64, 2).expect("valid"))
            }),
            // chi at the success phase i0 ~ log2 D: 3 log log D + O(1)
            // (Theorem 3.14's footprint; the engine also measures this
            // dynamically via TrialResult::chi_footprint).
            chi: 3.0 * ((d as f64).log2().log2()) + 5.0,
        },
        Entry {
            name: "harmonic (FKLS)",
            factory: Box::new(move |_| Box::new(HarmonicSearch::new(n as u64))),
            // Memory at the success phase ~ 2 log D + O(1).
            chi: 2.0 * (d as f64).log2() + 5.0,
        },
    ]
}

/// Mean moves for a factory at a given agent count.
///
/// Drives the trials directly (the factory is borrowed, while
/// [`Scenario`] requires an owned `'static` factory).
fn mean_moves(factory: &StrategyFactory, d: u64, n: usize, trials: u64, seed: u64) -> (f64, f64) {
    let budget = d * d * 400 + 100_000;
    let run_with = |agents: usize, s: u64| {
        let mut results = Vec::new();
        for t in 0..trials {
            let trial_seed = s ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut target_rng = ants_rng::derive_rng(trial_seed, u64::MAX);
            let target = TargetPlacement::UniformInBall { distance: d }.place(&mut target_rng);
            let mut best: Option<u64> = None;
            for agent_idx in 0..agents {
                let cap = best.map_or(budget, |b| b.saturating_sub(1));
                if cap == 0 {
                    break;
                }
                let mut strat = factory(agent_idx);
                let mut rng = ants_rng::derive_rng(trial_seed, agent_idx as u64);
                let mut pos = ants_grid::Point::ORIGIN;
                let mut moves = 0u64;
                while moves < cap {
                    let a = strat.step(&mut rng);
                    if a.is_move() {
                        moves += 1;
                    }
                    pos = ants_core::apply_action(pos, a);
                    if pos == target {
                        best = Some(moves);
                        break;
                    }
                }
            }
            if let Some(m) = best {
                results.push(m as f64);
            }
        }
        if results.is_empty() {
            return f64::NAN;
        }
        // Median, not mean: below-threshold strategies (random walks)
        // have heavy-tailed or infinite-expectation hitting times, and
        // budget-truncated means would flatter them.
        results.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let k = results.len();
        if k % 2 == 1 {
            results[k / 2]
        } else {
            (results[k / 2 - 1] + results[k / 2]) / 2.0
        }
    };
    (run_with(1, seed), run_with(n, seed ^ 0xABCD))
}

/// Run the trade-off table.
pub fn run(effort: Effort) -> Table {
    let d = effort.pick(16u64, 64);
    let n = effort.pick(4usize, 64);
    let trials = effort.pick(6u64, 30);
    let threshold = (d as f64).log2().log2();
    let mut table = Table::new(vec![
        "strategy",
        "chi",
        "vs threshold loglogD",
        "T(1) median",
        "T(n) median",
        "speed-up",
        "optimal min{n,D}",
    ]);
    for e in entries(d, n) {
        let (t1, tn) = mean_moves(&e.factory, d, n, trials, 0xE9_0000 ^ d);
        let speedup = if t1.is_nan() || tn.is_nan() { f64::NAN } else { t1 / tn };
        table.row(vec![
            e.name.into(),
            fnum(e.chi),
            if e.chi < threshold { "below".into() } else { "above".into() },
            if t1.is_nan() { "timeout".into() } else { fnum(t1) },
            if tn.is_nan() { "timeout".into() } else { fnum(tn) },
            if speedup.is_nan() { "-".into() } else { fnum(speedup) },
            fnum((n as f64).min(d as f64)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Median T(n) only (skips the expensive single-agent run).
    fn median_at_n(factory: &StrategyFactory, d: u64, n: usize, trials: u64, seed: u64) -> f64 {
        let budget = d * d * 400 + 100_000;
        let mut results = Vec::new();
        for t in 0..trials {
            let trial_seed = seed ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut target_rng = ants_rng::derive_rng(trial_seed, u64::MAX);
            let target = TargetPlacement::UniformInBall { distance: d }.place(&mut target_rng);
            let mut best: Option<u64> = None;
            for agent_idx in 0..n {
                let cap = best.map_or(budget, |b| b.saturating_sub(1));
                if cap == 0 {
                    break;
                }
                let mut strat = factory(agent_idx);
                let mut rng = ants_rng::derive_rng(trial_seed, agent_idx as u64);
                let mut pos = ants_grid::Point::ORIGIN;
                let mut moves = 0u64;
                while moves < cap {
                    let a = strat.step(&mut rng);
                    if a.is_move() {
                        moves += 1;
                    }
                    pos = ants_core::apply_action(pos, a);
                    if pos == target {
                        best = Some(moves);
                        break;
                    }
                }
            }
            if let Some(m) = best {
                results.push(m as f64);
            }
        }
        results.sort_by(|a, b| a.partial_cmp(b).unwrap());
        results[results.len() / 2]
    }

    #[test]
    fn above_threshold_wins_outright_at_n() {
        // The robust form of the headline claim: once n exceeds the
        // random-walk saturation point (measured: the walk stops improving
        // near n ~ 32 at D = 32, exactly the min{log n, .} ceiling at
        // work), Algorithm 1 keeps scaling and wins clearly.
        let (d, n, trials) = (32u64, 64usize, 120u64);
        let es = entries(d, n);
        let rw = &es[0]; // random walk
        let alg1 = &es[3]; // plain Alg 1
        let rwn = median_at_n(&rw.factory, d, n, trials, 1);
        let an = median_at_n(&alg1.factory, d, n, trials, 2);
        assert!(
            an * 1.1 < rwn,
            "Algorithm 1 at n = {n} ({an}) should clearly beat the random walk ({rwn})"
        );
    }

    #[test]
    fn alg1_speedup_is_substantial() {
        let (d, n, trials) = (16u64, 8usize, 15u64);
        let es = entries(d, n);
        let alg1 = &es[3];
        let (a1, an) = mean_moves(&alg1.factory, d, n, trials, 3);
        let sp = a1 / an;
        assert!(sp > 2.0, "Algorithm 1 speed-up {sp} at n = 8 should be substantial");
    }

    #[test]
    fn smoke_runs() {
        let t = run(Effort::Smoke);
        assert_eq!(t.len(), 6);
    }
}
