//! E9 — the headline trade-off: speed-up versus selection complexity.
//!
//! At fixed `D` and `n`, run every strategy with `n = 1` and with `n`
//! agents; speed-up is the ratio of median `M_moves`. Plotting speed-up
//! against `χ` exposes the paper's knee at `χ ≈ log log D`: strategies
//! below the threshold (random walks, tiny PFAs) are stuck near
//! `min{log n, D^{o(1)}}`; strategies at or above it (Algorithms 1/5,
//! harmonic search) reach `Θ(min{n, D})`.
//!
//! Medians, not means: below-threshold strategies have heavy-tailed or
//! infinite-expectation hitting times, and budget-truncated means would
//! flatter them.
//!
//! Implements [`Experiment`]; the whole zoo (two scenarios per strategy)
//! fans across one pool via [`run_sweep_with`] — each strategy's factory is
//! shared between its `n = 1` and `n = n` scenarios through an `Arc`.

use super::{Effort, Experiment, ExperimentMeta, Report, RunConfig, SweepConfig};
use ants_automaton::library;
use ants_core::baselines::{AutomatonStrategy, HarmonicSearch, RandomWalk};
use ants_core::{CoinNonUniformSearch, NonUniformSearch, SearchStrategy as _, UniformSearch};
use ants_grid::TargetPlacement;
use ants_sim::{run_sweep_with, Outcome, Scenario, StrategyFactory, SweepJob};
use std::sync::Arc;

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    key: "e9",
    id: "E9 (headline trade-off)",
    claim: "speed-up vs chi shows the knee at log log D: below it speed-up ~ min{log n, D^{o(1)}}, above it ~ min{n, D}",
};

/// The E9 harness.
pub struct E9Tradeoff;

/// A named strategy factory with its static χ (at the experiment's D).
///
/// The factory sits behind an `Arc` so the `n = 1` and `n = n` scenarios
/// of the same strategy can share it.
struct Entry {
    name: &'static str,
    factory: Arc<StrategyFactory>,
    chi: f64,
}

fn entries(d: u64, n: usize) -> Vec<Entry> {
    let mut rng = ants_rng::derive_rng(0xE9_7000, 0);
    let tiny = library::random_pfa(4, 2, &mut rng);
    let tiny_chi = tiny.chi();
    vec![
        Entry {
            name: "random walk",
            factory: Arc::new(Box::new(|_| Box::new(RandomWalk::new()))),
            chi: RandomWalk::new().selection_complexity().chi(),
        },
        Entry {
            name: "tiny pfa",
            factory: {
                let t = tiny.clone();
                Arc::new(Box::new(move |_| Box::new(AutomatonStrategy::new(t.clone()))))
            },
            chi: tiny_chi,
        },
        Entry {
            name: "Alg 1 + coin",
            factory: Arc::new(Box::new(move |_| {
                Box::new(CoinNonUniformSearch::new(d, 1).expect("valid"))
            })),
            chi: CoinNonUniformSearch::new(d, 1).expect("valid").selection_complexity().chi(),
        },
        Entry {
            name: "Alg 1 plain",
            factory: Arc::new(Box::new(move |_| {
                Box::new(NonUniformSearch::new(d).expect("valid"))
            })),
            chi: NonUniformSearch::new(d).expect("valid").selection_complexity().chi(),
        },
        Entry {
            name: "Alg 5 uniform",
            factory: Arc::new(Box::new(move |_| {
                Box::new(UniformSearch::new(1, n as u64, 2).expect("valid"))
            })),
            // chi at the success phase i0 ~ log2 D: 3 log log D + O(1)
            // (Theorem 3.14's footprint; the engine also measures this
            // dynamically via TrialResult::chi_footprint).
            chi: 3.0 * ((d as f64).log2().log2()) + 5.0,
        },
        Entry {
            name: "harmonic (FKLS)",
            factory: Arc::new(Box::new(move |_| Box::new(HarmonicSearch::new(n as u64)))),
            // Memory at the success phase ~ 2 log D + O(1).
            chi: 2.0 * (d as f64).log2() + 5.0,
        },
    ]
}

/// Scenario for one entry at a given agent count.
fn entry_scenario(entry: &Entry, d: u64, agents: usize) -> Scenario {
    let factory = Arc::clone(&entry.factory);
    Scenario::builder()
        .agents(agents)
        .target(TargetPlacement::UniformInBall { distance: d })
        .move_budget(d * d * 400 + 100_000)
        .strategy(move |i| factory(i))
        .build()
}

/// Median `M_moves` over successful trials, NaN when every trial timed
/// out within the budget.
fn median_or_nan(outcome: &Outcome) -> f64 {
    let s = outcome.summary();
    if s.found() == 0 {
        f64::NAN
    } else {
        s.median_moves()
    }
}

fn params(effort: Effort) -> (u64, usize, u64) {
    (effort.pick(16u64, 64), effort.pick(4usize, 64), effort.pick(6u64, 30))
}

impl Experiment for E9Tradeoff {
    fn meta(&self) -> &ExperimentMeta {
        &META
    }

    fn config(&self, effort: Effort) -> SweepConfig {
        let (d, n, trials) = params(effort);
        SweepConfig { cells: entries(d, n).len(), trials_per_cell: 2 * trials }
    }

    fn run(&self, cfg: &RunConfig) -> Report {
        let (d, n, trials) = params(cfg.effort);
        let threshold = (d as f64).log2().log2();
        let mut report = Report::new(
            &META,
            cfg,
            vec![
                "strategy",
                "chi",
                "vs threshold loglogD",
                "T(1) median",
                "T(n) median",
                "speed-up",
                "optimal min{n,D}",
            ],
        );
        report.param("D", d).param("n", n).param("trials", trials);
        let zoo = entries(d, n);
        let seed = cfg.seed(0xE9_0000 ^ d);
        let jobs: Vec<SweepJob> = zoo
            .iter()
            .flat_map(|e| {
                [
                    SweepJob::new(entry_scenario(e, d, 1), trials, seed),
                    SweepJob::new(entry_scenario(e, d, n), trials, seed ^ 0xABCD),
                ]
            })
            .collect();
        let outcomes = run_sweep_with(&jobs, &cfg.sweep_options());
        for (i, e) in zoo.iter().enumerate() {
            let t1 = median_or_nan(&outcomes[2 * i]);
            let tn = median_or_nan(&outcomes[2 * i + 1]);
            report.row(vec![
                e.name.into(),
                e.chi.into(),
                if e.chi < threshold { "below" } else { "above" }.into(),
                t1.into(),
                tn.into(),
                (t1 / tn).into(),
                (n as f64).min(d as f64).into(),
            ]);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ants_sim::run_trials;

    /// Median T(n) for one entry through the engine.
    fn median_at_n(entry: &Entry, d: u64, n: usize, trials: u64, seed: u64) -> f64 {
        median_or_nan(&run_trials(&entry_scenario(entry, d, n), trials, seed))
    }

    #[test]
    fn above_threshold_wins_outright_at_n() {
        // The robust form of the headline claim: once n exceeds the
        // random-walk saturation point (the min{log n, .} ceiling at
        // work), Algorithm 1 keeps scaling and wins clearly.
        let (d, n, trials) = (32u64, 64usize, 120u64);
        let es = entries(d, n);
        let rwn = median_at_n(&es[0], d, n, trials, 1); // random walk
        let an = median_at_n(&es[3], d, n, trials, 2); // plain Alg 1
        assert!(
            an * 1.1 < rwn,
            "Algorithm 1 at n = {n} ({an}) should clearly beat the random walk ({rwn})"
        );
    }

    #[test]
    fn alg1_speedup_is_substantial() {
        let (d, n, trials) = (16u64, 8usize, 15u64);
        let es = entries(d, n);
        let t1 = median_at_n(&es[3], d, 1, trials, 3);
        let tn = median_at_n(&es[3], d, n, trials, 4);
        let sp = t1 / tn;
        assert!(sp > 2.0, "Algorithm 1 speed-up {sp} at n = 8 should be substantial");
    }

    #[test]
    fn smoke_runs() {
        let r = E9Tradeoff.run(&RunConfig::smoke());
        assert_eq!(r.len(), 6);
        assert_eq!(r.len(), E9Tradeoff.config(Effort::Smoke).cells);
    }
}
