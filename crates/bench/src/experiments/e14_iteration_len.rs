//! E14 — Lemmas 3.1 and 3.2: iteration lengths of Algorithm 1.
//!
//! `R ≤ 2D` (expected moves per iteration) and `R̂ ≤ 2R` (the same
//! conditioned on *not* finding the target). We measure both: iterations
//! that find a fixed target are separated from those that miss it.

use super::{Effort, ExperimentMeta};
use ants_automaton::GridAction;
use ants_core::{apply_action, NonUniformSearch, SearchStrategy};
use ants_grid::Point;
use ants_rng::derive_rng;
use ants_sim::report::{fnum, Table};

/// Per-iteration statistics for Algorithm 1 at distance `d` against a
/// fixed target.
#[derive(Debug, Clone, Copy)]
pub struct IterationStats {
    /// Mean moves over all iterations (estimates `R`).
    pub mean_all: f64,
    /// Mean moves over target-missing iterations (estimates `R̂`).
    pub mean_missing: f64,
    /// Number of iterations measured.
    pub iterations: u64,
}

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    id: "E14 (Lemmas 3.1, 3.2)",
    claim: "expected iteration length R <= 2D; conditioned on missing the target, R-hat <= 2R",
};

/// Measure iteration statistics.
pub fn measure(d: u64, target: Point, iterations: u64, seed: u64) -> IterationStats {
    let mut agent = NonUniformSearch::new(d).expect("valid D");
    let mut rng = derive_rng(seed, 0);
    let mut pos = Point::ORIGIN;
    let mut all_moves = 0u64;
    let mut missing_moves = 0u64;
    let mut missing_count = 0u64;
    let mut count = 0u64;
    let mut current_moves = 0u64;
    let mut hit = false;
    while count < iterations {
        let a = agent.step(&mut rng);
        if a.is_move() {
            current_moves += 1;
        }
        pos = apply_action(pos, a);
        if pos == target {
            hit = true;
        }
        if a == GridAction::Origin {
            count += 1;
            all_moves += current_moves;
            if !hit {
                missing_moves += current_moves;
                missing_count += 1;
            }
            current_moves = 0;
            hit = false;
        }
    }
    IterationStats {
        mean_all: all_moves as f64 / count as f64,
        mean_missing: if missing_count == 0 {
            0.0
        } else {
            missing_moves as f64 / missing_count as f64
        },
        iterations: count,
    }
}

/// Run the sweep.
pub fn run(effort: Effort) -> Table {
    let d_values: &[u64] = effort.pick(&[8, 16][..], &[8, 16, 32, 64, 128][..]);
    let iterations = effort.pick(4_000, 40_000);
    let mut table = Table::new(vec![
        "D",
        "iterations",
        "mean R (<= 2D'?)",
        "mean R-hat (miss)",
        "R-hat / R (<= 2?)",
    ]);
    for &d in d_values {
        let st = measure(d, Point::new(d as i64 / 2, d as i64 / 2), iterations, 0xE14 ^ d);
        let d_prime = d.next_power_of_two();
        table.row(vec![
            d.to_string(),
            st.iterations.to_string(),
            format!("{} ({})", fnum(st.mean_all), st.mean_all <= 2.0 * d_prime as f64 * 1.05),
            fnum(st.mean_missing),
            format!(
                "{:.3} ({})",
                st.mean_missing / st.mean_all,
                st.mean_missing <= 2.0 * st.mean_all
            ),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_bounded_by_2d() {
        let st = measure(16, Point::new(8, 8), 20_000, 1);
        assert!(st.mean_all <= 34.0, "R = {} exceeds 2D + slack", st.mean_all);
        // And R is Theta(D): at least D/2.
        assert!(st.mean_all >= 8.0, "R = {} suspiciously small", st.mean_all);
    }

    #[test]
    fn rhat_bounded_by_2r() {
        let st = measure(8, Point::new(2, 2), 20_000, 2);
        assert!(
            st.mean_missing <= 2.0 * st.mean_all,
            "R-hat {} exceeds 2R (R = {})",
            st.mean_missing,
            st.mean_all
        );
    }

    #[test]
    fn all_checks_true_in_table() {
        let t = run(Effort::Smoke);
        assert!(!t.to_string().contains("false"), "{t}");
    }
}
