//! E14 — Lemmas 3.1 and 3.2: iteration lengths of Algorithm 1.
//!
//! `R ≤ 2D` (expected moves per iteration) and `R̂ ≤ 2R` (the same
//! conditioned on *not* finding the target). We measure both: iterations
//! that find a fixed target are separated from those that miss it.
//!
//! Implements [`Experiment`]; the iteration loop is bespoke (no scenario
//! engine), so the thread policy does not apply here. Each lemma check
//! reports its measured value and its verdict in separate typed columns.

use super::{Effort, Experiment, ExperimentMeta, Report, RunConfig, SweepConfig};
use ants_automaton::GridAction;
use ants_core::{apply_action, NonUniformSearch, SearchStrategy};
use ants_grid::Point;
use ants_rng::derive_rng;

/// Per-iteration statistics for Algorithm 1 at distance `d` against a
/// fixed target.
#[derive(Debug, Clone, Copy)]
pub struct IterationStats {
    /// Mean moves over all iterations (estimates `R`).
    pub mean_all: f64,
    /// Mean moves over target-missing iterations (estimates `R̂`).
    pub mean_missing: f64,
    /// Number of iterations measured.
    pub iterations: u64,
}

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    key: "e14",
    id: "E14 (Lemmas 3.1, 3.2)",
    claim: "expected iteration length R <= 2D; conditioned on missing the target, R-hat <= 2R",
};

/// The E14 harness.
pub struct E14IterationLen;

fn d_values(effort: Effort) -> &'static [u64] {
    effort.pick(&[8, 16][..], &[8, 16, 32, 64, 128][..])
}

fn iterations(effort: Effort) -> u64 {
    effort.pick(4_000, 40_000)
}

/// Measure iteration statistics.
pub fn measure(d: u64, target: Point, iterations: u64, seed: u64) -> IterationStats {
    let mut agent = NonUniformSearch::new(d).expect("valid D");
    let mut rng = derive_rng(seed, 0);
    let mut pos = Point::ORIGIN;
    let mut all_moves = 0u64;
    let mut missing_moves = 0u64;
    let mut missing_count = 0u64;
    let mut count = 0u64;
    let mut current_moves = 0u64;
    let mut hit = false;
    while count < iterations {
        let a = agent.step(&mut rng);
        if a.is_move() {
            current_moves += 1;
        }
        pos = apply_action(pos, a);
        if pos == target {
            hit = true;
        }
        if a == GridAction::Origin {
            count += 1;
            all_moves += current_moves;
            if !hit {
                missing_moves += current_moves;
                missing_count += 1;
            }
            current_moves = 0;
            hit = false;
        }
    }
    IterationStats {
        mean_all: all_moves as f64 / count as f64,
        mean_missing: if missing_count == 0 {
            0.0
        } else {
            missing_moves as f64 / missing_count as f64
        },
        iterations: count,
    }
}

impl Experiment for E14IterationLen {
    fn meta(&self) -> &ExperimentMeta {
        &META
    }

    fn config(&self, effort: Effort) -> SweepConfig {
        SweepConfig { cells: d_values(effort).len(), trials_per_cell: iterations(effort) }
    }

    fn run(&self, cfg: &RunConfig) -> Report {
        let iterations = iterations(cfg.effort);
        let mut report = Report::new(
            &META,
            cfg,
            vec![
                "D",
                "iterations",
                "mean R",
                "R <= 2D'",
                "mean R-hat (miss)",
                "R-hat / R",
                "R-hat <= 2R",
            ],
        );
        report.param("iterations", iterations);
        for &d in d_values(cfg.effort) {
            let st =
                measure(d, Point::new(d as i64 / 2, d as i64 / 2), iterations, cfg.seed(0xE14 ^ d));
            let d_prime = d.next_power_of_two();
            report.row(vec![
                d.into(),
                st.iterations.into(),
                st.mean_all.into(),
                (st.mean_all <= 2.0 * d_prime as f64 * 1.05).into(),
                st.mean_missing.into(),
                (st.mean_missing / st.mean_all).into(),
                (st.mean_missing <= 2.0 * st.mean_all).into(),
            ]);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_bounded_by_2d() {
        let st = measure(16, Point::new(8, 8), 20_000, 1);
        assert!(st.mean_all <= 34.0, "R = {} exceeds 2D + slack", st.mean_all);
        // And R is Theta(D): at least D/2.
        assert!(st.mean_all >= 8.0, "R = {} suspiciously small", st.mean_all);
    }

    #[test]
    fn rhat_bounded_by_2r() {
        let st = measure(8, Point::new(2, 2), 20_000, 2);
        assert!(
            st.mean_missing <= 2.0 * st.mean_all,
            "R-hat {} exceeds 2R (R = {})",
            st.mean_missing,
            st.mean_all
        );
    }

    #[test]
    fn all_checks_true_in_table() {
        let r = E14IterationLen.run(&RunConfig::smoke());
        assert_eq!(r.len(), E14IterationLen.config(Effort::Smoke).cells);
        assert!(r.all_checks_pass(), "a Lemma 3.1/3.2 check failed:\n{r}");
    }
}
