//! E8 — Theorem 4.1 / Corollary 4.11: algorithms with
//! `χ(A) ≤ log log D − ω(1)` cover only `o(D²)` cells and miss
//! adversarial targets within `D^{2−o(1)}` moves.
//!
//! We run a zoo of low-χ automata (uniform/lazy/biased walks plus seeded
//! random PFAs) with a per-agent budget of `D²` steps against a radius-`D`
//! ball, and report: joint coverage fraction (must fall as `D` grows),
//! whether an adversarial cell survives, and the rate at which a uniformly
//! random target is found (the theorem's `o(1)`). The contrast row runs
//! Algorithm 1 at the same budget: coverage near 1, adversarial target
//! found (against a *corner* target — the `target` column names the
//! placement).
//!
//! Implements [`Experiment`]; the find-rate scenarios (5 zoo members + 1
//! contrast per `D`) fan across one pool via [`run_sweep_with`]; the coverage
//! measurements stay serial (they are joint-grid walks, not trials).

use super::{Effort, Experiment, ExperimentMeta, Report, RunConfig, SweepConfig};
use ants_automaton::{library, Pfa};
use ants_core::baselines::AutomatonStrategy;
use ants_core::NonUniformSearch;
use ants_grid::{Rect, TargetPlacement};
use ants_rng::derive_rng;
use ants_sim::coverage::measure;
use ants_sim::{run_sweep_with, Scenario, StrategyFactory, SweepJob};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    key: "e8",
    id: "E8 (Theorem 4.1 / Corollary 4.11)",
    claim: "chi <= log log D - w(1) => joint coverage o(D^2) within D^2 steps; adversarial target missed, uniform target found with probability o(1)",
};

/// The E8 harness.
pub struct E8LowerBound;

const N_AGENTS: usize = 4;

fn d_values(effort: Effort) -> &'static [u64] {
    effort.pick(&[32][..], &[64, 128, 256][..])
}

fn trials(effort: Effort) -> u64 {
    effort.pick(10, 40)
}

/// The low-χ automaton zoo.
pub fn zoo() -> Vec<(&'static str, Pfa)> {
    let mut rng = derive_rng(0xE8_2001, 0);
    vec![
        ("uniform walk", library::random_walk()),
        ("lazy walk", library::lazy_random_walk()),
        ("drift walk (e=3)", library::drift_walk(3).expect("valid")),
        ("random pfa (4 states)", library::random_pfa(4, 2, &mut rng)),
        ("random pfa (8 states)", library::random_pfa(8, 2, &mut rng)),
    ]
}

/// Scenario: `n` agents of `pfa` hunting a uniform target at distance `d`.
fn zoo_scenario(pfa: &Pfa, d: u64, budget: u64) -> Scenario {
    let pfa = pfa.clone();
    Scenario::builder()
        .agents(N_AGENTS)
        .target(TargetPlacement::UniformInBall { distance: d })
        .move_budget(budget)
        .strategy(move |_| Box::new(AutomatonStrategy::new(pfa.clone())))
        .build()
}

impl Experiment for E8LowerBound {
    fn meta(&self) -> &ExperimentMeta {
        &META
    }

    fn config(&self, effort: Effort) -> SweepConfig {
        SweepConfig {
            cells: d_values(effort).len() * (zoo().len() + 1),
            trials_per_cell: trials(effort),
        }
    }

    fn run(&self, cfg: &RunConfig) -> Report {
        let trials = trials(cfg.effort);
        let mut report = Report::new(
            &META,
            cfg,
            vec![
                "automaton",
                "chi",
                "D",
                "coverage of ball",
                "adversarial cell left",
                "find rate",
                "target",
            ],
        );
        report.param("n_agents", N_AGENTS).param("trials", trials);
        // One batched job list: per D, the 5 zoo find-rate scenarios plus
        // the Algorithm 1 corner contrast.
        let mut jobs: Vec<SweepJob> = Vec::new();
        for &d in d_values(cfg.effort) {
            let budget = d * d;
            for (_, pfa) in zoo() {
                jobs.push(SweepJob::new(
                    zoo_scenario(&pfa, d, budget),
                    trials,
                    cfg.seed(0xE8_0001 ^ d),
                ));
            }
            let contrast = Scenario::builder()
                .agents(N_AGENTS)
                .target(TargetPlacement::Corner { distance: d })
                .move_budget(8 * budget)
                .strategy(move |_| Box::new(NonUniformSearch::new(d).expect("valid")))
                .build();
            jobs.push(SweepJob::new(contrast, trials, cfg.seed(0xE8_0300 ^ d)));
        }
        let mut outcomes = run_sweep_with(&jobs, &cfg.sweep_options()).into_iter();
        for &d in d_values(cfg.effort) {
            let budget = d * d;
            for (name, pfa) in zoo() {
                let factory: StrategyFactory = {
                    let pfa = pfa.clone();
                    Box::new(move |_| Box::new(AutomatonStrategy::new(pfa.clone())))
                };
                let cover =
                    measure(&factory, N_AGENTS, budget, Rect::ball(d), cfg.seed(0xE8_0100 ^ d));
                let find = outcomes.next().expect("zoo outcome").summary().success_rate();
                report.row(vec![
                    name.into(),
                    pfa.chi().into(),
                    d.into(),
                    cover.coverage().into(),
                    cover.adversarial_target().is_some().into(),
                    find.into(),
                    "uniform".into(),
                ]);
            }
            // Contrast: Algorithm 1 (above the threshold) at the same budget.
            let factory: StrategyFactory =
                Box::new(move |_| Box::new(NonUniformSearch::new(d).expect("valid")));
            let cover =
                measure(&factory, N_AGENTS, 8 * budget, Rect::ball(d), cfg.seed(0xE8_0200 ^ d));
            let corner_rate = outcomes.next().expect("contrast outcome").summary().success_rate();
            report.row(vec![
                "Algorithm 1 (contrast)".into(),
                (2.0 * (d as f64).log2().log2() + 4.0).into(),
                d.into(),
                cover.coverage().into(),
                cover.adversarial_target().is_some().into(),
                corner_rate.into(),
                "corner".into(),
            ]);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_chi_zoo_is_below_threshold_at_scale() {
        // At D = 2^32 (threshold 5), every zoo member has chi around or
        // below it; the *asymptotic* statement needs chi constant while
        // log log D -> infinity, which holds since the zoo is fixed.
        for (name, pfa) in zoo() {
            assert!(pfa.chi() <= 6.0, "{name} has chi {}", pfa.chi());
        }
    }

    #[test]
    fn coverage_fraction_decreases_with_d() {
        let pfa = library::random_walk();
        let cover = |d: u64| {
            let factory: StrategyFactory = {
                let pfa = pfa.clone();
                Box::new(move |_| Box::new(AutomatonStrategy::new(pfa.clone())))
            };
            measure(&factory, 2, d * d, Rect::ball(d), 1).coverage()
        };
        let c32 = cover(32);
        let c96 = cover(96);
        assert!(c96 < c32, "coverage should fall with D: c(32) = {c32}, c(96) = {c96}");
    }

    #[test]
    fn adversarial_cell_always_survives_for_walks() {
        for (name, pfa) in zoo() {
            let factory: StrategyFactory = {
                let pfa = pfa.clone();
                Box::new(move |_| Box::new(AutomatonStrategy::new(pfa.clone())))
            };
            let d = 48;
            let report = measure(&factory, 4, d * d, Rect::ball(d), 2);
            assert!(
                report.adversarial_target().is_some(),
                "{name} covered the whole ball — contradicts Theorem 4.1's mechanism"
            );
        }
    }

    #[test]
    fn smoke_runs() {
        let r = E8LowerBound.run(&RunConfig::smoke());
        assert_eq!(r.len(), 6); // 5 zoo members + contrast
        assert_eq!(r.len(), E8LowerBound.config(Effort::Smoke).cells);
        // The contrast row (Algorithm 1, above the threshold) covers more
        // of the ball than any zoo member at the same D.
        let contrast = r.num(5, "coverage of ball");
        for row in 0..5 {
            let zoo_cover = r.num(row, "coverage of ball");
            assert!(
                contrast > zoo_cover,
                "Algorithm 1 coverage {contrast} should beat zoo row {row} ({zoo_cover})"
            );
        }
    }
}
