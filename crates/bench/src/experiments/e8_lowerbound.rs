//! E8 — Theorem 4.1 / Corollary 4.11: algorithms with
//! `χ(A) ≤ log log D − ω(1)` cover only `o(D²)` cells and miss
//! adversarial targets within `D^{2−o(1)}` moves.
//!
//! We run a zoo of low-χ automata (uniform/lazy/biased walks plus seeded
//! random PFAs) with a per-agent budget of `D²` steps against a radius-`D`
//! ball, and report: joint coverage fraction (must fall as `D` grows),
//! whether an adversarial cell survives, and the rate at which a uniformly
//! random target is found (the theorem's `o(1)`). The contrast row runs
//! Algorithm 1 at the same budget: coverage near 1, adversarial target
//! found.

use super::{Effort, ExperimentMeta};
use ants_automaton::{library, Pfa};
use ants_core::baselines::AutomatonStrategy;
use ants_core::NonUniformSearch;
use ants_grid::{Rect, TargetPlacement};
use ants_rng::derive_rng;
use ants_sim::coverage::measure;
use ants_sim::report::{fnum, Table};
use ants_sim::{run_trials, Scenario, StrategyFactory};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    id: "E8 (Theorem 4.1 / Corollary 4.11)",
    claim: "chi <= log log D - w(1) => joint coverage o(D^2) within D^2 steps; adversarial target missed, uniform target found with probability o(1)",
};

/// The low-χ automaton zoo.
pub fn zoo() -> Vec<(&'static str, Pfa)> {
    let mut rng = derive_rng(0xE8_2001, 0);
    vec![
        ("uniform walk", library::random_walk()),
        ("lazy walk", library::lazy_random_walk()),
        ("drift walk (e=3)", library::drift_walk(3).expect("valid")),
        ("random pfa (4 states)", library::random_pfa(4, 2, &mut rng)),
        ("random pfa (8 states)", library::random_pfa(8, 2, &mut rng)),
    ]
}

/// Fraction of trials in which `n` agents find a uniformly placed target
/// within `budget` moves each.
fn uniform_target_find_rate(pfa: &Pfa, n: usize, d: u64, budget: u64, trials: u64) -> f64 {
    let pfa = pfa.clone();
    let scenario = Scenario::builder()
        .agents(n)
        .target(TargetPlacement::UniformInBall { distance: d })
        .move_budget(budget)
        .strategy(move |_| Box::new(AutomatonStrategy::new(pfa.clone())))
        .build();
    run_trials(&scenario, trials, 0xE8_0001 ^ d).summary().success_rate()
}

/// Run the sweep.
pub fn run(effort: Effort) -> Table {
    let d_values: &[u64] = effort.pick(&[32][..], &[64, 128, 256][..]);
    let n = 4usize;
    let trials = effort.pick(10, 40);
    let mut table = Table::new(vec![
        "automaton",
        "chi",
        "D",
        "coverage of ball",
        "adversarial cell left",
        "uniform-target find rate",
    ]);
    for &d in d_values {
        let budget = d * d;
        for (name, pfa) in zoo() {
            let factory: StrategyFactory = {
                let pfa = pfa.clone();
                Box::new(move |_| Box::new(AutomatonStrategy::new(pfa.clone())))
            };
            let report = measure(&factory, n, budget, Rect::ball(d), 0xE8_0100 ^ d);
            let find = uniform_target_find_rate(&pfa, n, d, budget, trials);
            table.row(vec![
                name.into(),
                fnum(pfa.chi()),
                d.to_string(),
                format!("{:.4}", report.coverage()),
                report.adversarial_target().is_some().to_string(),
                format!("{find:.2}"),
            ]);
        }
        // Contrast: Algorithm 1 (above the threshold) at the same budget.
        let factory: StrategyFactory =
            Box::new(move |_| Box::new(NonUniformSearch::new(d).expect("valid")));
        let report = measure(&factory, n, 8 * budget, Rect::ball(d), 0xE8_0200 ^ d);
        let scenario = Scenario::builder()
            .agents(n)
            .target(TargetPlacement::Corner { distance: d })
            .move_budget(8 * budget)
            .strategy(move |_| Box::new(NonUniformSearch::new(d).expect("valid")))
            .build();
        let corner_rate = run_trials(&scenario, trials, 0xE8_0300 ^ d).summary().success_rate();
        table.row(vec![
            "Algorithm 1 (contrast)".into(),
            fnum(2.0 * (d as f64).log2().log2() + 4.0),
            d.to_string(),
            format!("{:.4}", report.coverage()),
            report.adversarial_target().is_some().to_string(),
            format!("{corner_rate:.2} (corner!)"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_chi_zoo_is_below_threshold_at_scale() {
        // At D = 2^32 (threshold 5), every zoo member has chi around or
        // below it; the *asymptotic* statement needs chi constant while
        // log log D -> infinity, which holds since the zoo is fixed.
        for (name, pfa) in zoo() {
            assert!(pfa.chi() <= 6.0, "{name} has chi {}", pfa.chi());
        }
    }

    #[test]
    fn coverage_fraction_decreases_with_d() {
        let pfa = library::random_walk();
        let cover = |d: u64| {
            let factory: StrategyFactory = {
                let pfa = pfa.clone();
                Box::new(move |_| Box::new(AutomatonStrategy::new(pfa.clone())))
            };
            measure(&factory, 2, d * d, Rect::ball(d), 1).coverage()
        };
        let c32 = cover(32);
        let c96 = cover(96);
        assert!(c96 < c32, "coverage should fall with D: c(32) = {c32}, c(96) = {c96}");
    }

    #[test]
    fn adversarial_cell_always_survives_for_walks() {
        for (name, pfa) in zoo() {
            let factory: StrategyFactory = {
                let pfa = pfa.clone();
                Box::new(move |_| Box::new(AutomatonStrategy::new(pfa.clone())))
            };
            let d = 48;
            let report = measure(&factory, 4, d * d, Rect::ball(d), 2);
            assert!(
                report.adversarial_target().is_some(),
                "{name} covered the whole ball — contradicts Theorem 4.1's mechanism"
            );
        }
    }

    #[test]
    fn smoke_runs() {
        let t = run(Effort::Smoke);
        assert_eq!(t.len(), 6); // 5 zoo members + contrast
    }
}
