//! E15 — Corollary 4.6 / Lemma A.2: low-χ chains forget their state
//! within `D^{o(1)}` rounds.
//!
//! For representative automata we print the measured TV-distance-to-
//! stationarity curve next to the Rosenthal envelope
//! `(1 − p₀^{|S|})^{⌊k/|S|⌋}` the proof uses, and the paper's block
//! length `β = c·|S|·ln D / p₀^{|S|}`.

use super::{Effort, ExperimentMeta};
use ants_analysis::mixing;
use ants_automaton::library;
use ants_sim::report::{fnum, Table};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    id: "E15 (Corollary 4.6 / Lemma A.2)",
    claim: "TV distance to stationarity <= (1 - p0^{|S|})^{k/|S|}: small chains forget in D^{o(1)} rounds",
};

/// Run the mixing sweep.
pub fn run(effort: Effort) -> Table {
    let ks: &[u64] = effort.pick(&[1, 8, 64][..], &[1, 4, 16, 64, 256, 1024][..]);
    let d = 256u64;
    let mut table = Table::new(vec![
        "automaton",
        "k (rounds)",
        "measured TV",
        "Rosenthal bound",
        "bound holds",
        "beta (block length)",
    ]);
    for (name, pfa) in [
        ("lazy walk", library::lazy_random_walk()),
        ("drift walk (e=3)", library::drift_walk(3).expect("valid")),
        ("Alg 1 machine, D=16", library::algorithm1(4).expect("valid")),
    ] {
        let curve = mixing::mixing_curve(&pfa, ks);
        let beta = mixing::block_length(&pfa, 1.0, d);
        for p in &curve.points {
            table.row(vec![
                name.into(),
                p.k.to_string(),
                format!("{:.2e}", p.tv),
                format!("{:.2e}", p.rosenthal),
                (p.tv <= p.rosenthal + 1e-9).to_string(),
                fnum(beta),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_holds_everywhere() {
        let t = run(Effort::Smoke);
        assert!(!t.to_string().contains("false"), "Rosenthal envelope violated:\n{t}");
    }

    #[test]
    fn mixing_improves_with_k() {
        let curve = mixing::mixing_curve(&library::algorithm1(3).unwrap(), &[1, 512]);
        assert!(curve.points[1].tv <= curve.points[0].tv + 1e-12);
    }
}
