//! E15 — Corollary 4.6 / Lemma A.2: low-χ chains forget their state
//! within `D^{o(1)}` rounds.
//!
//! For representative automata we print the measured TV-distance-to-
//! stationarity curve next to the Rosenthal envelope
//! `(1 − p₀^{|S|})^{⌊k/|S|⌋}` the proof uses, and the paper's block
//! length `β = c·|S|·ln D / p₀^{|S|}`.
//!
//! Implements [`Experiment`]; the mixing curves are closed-form matrix
//! computations (no scenario engine), so the thread policy does not apply
//! here.

use super::{Effort, Experiment, ExperimentMeta, Report, RunConfig, SweepConfig};
use ants_analysis::mixing;
use ants_automaton::{library, Pfa};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    key: "e15",
    id: "E15 (Corollary 4.6 / Lemma A.2)",
    claim: "TV distance to stationarity <= (1 - p0^{|S|})^{k/|S|}: small chains forget in D^{o(1)} rounds",
};

/// The E15 harness.
pub struct E15Mixing;

const D_REF: u64 = 256;

fn ks(effort: Effort) -> &'static [u64] {
    effort.pick(&[1, 8, 64][..], &[1, 4, 16, 64, 256, 1024][..])
}

fn automata() -> Vec<(&'static str, Pfa)> {
    vec![
        ("lazy walk", library::lazy_random_walk()),
        ("drift walk (e=3)", library::drift_walk(3).expect("valid")),
        ("Alg 1 machine, D=16", library::algorithm1(4).expect("valid")),
    ]
}

impl Experiment for E15Mixing {
    fn meta(&self) -> &ExperimentMeta {
        &META
    }

    fn config(&self, effort: Effort) -> SweepConfig {
        // Closed-form rows: one per (automaton, k), no Monte-Carlo trials.
        SweepConfig { cells: automata().len() * ks(effort).len(), trials_per_cell: 1 }
    }

    fn run(&self, cfg: &RunConfig) -> Report {
        let mut report = Report::new(
            &META,
            cfg,
            vec![
                "automaton",
                "k (rounds)",
                "measured TV",
                "Rosenthal bound",
                "bound holds",
                "beta (block length)",
            ],
        );
        report.param("D_ref", D_REF);
        for (name, pfa) in automata() {
            let curve = mixing::mixing_curve(&pfa, ks(cfg.effort));
            let beta = mixing::block_length(&pfa, 1.0, D_REF);
            for p in &curve.points {
                report.row(vec![
                    name.into(),
                    p.k.into(),
                    p.tv.into(),
                    p.rosenthal.into(),
                    (p.tv <= p.rosenthal + 1e-9).into(),
                    beta.into(),
                ]);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_holds_everywhere() {
        let r = E15Mixing.run(&RunConfig::smoke());
        assert_eq!(r.len(), E15Mixing.config(Effort::Smoke).cells);
        assert!(r.all_checks_pass(), "Rosenthal envelope violated:\n{r}");
    }

    #[test]
    fn mixing_improves_with_k() {
        let curve = mixing::mixing_curve(&library::algorithm1(3).unwrap(), &[1, 512]);
        assert!(curve.points[1].tv <= curve.points[0].tv + 1e-12);
    }
}
