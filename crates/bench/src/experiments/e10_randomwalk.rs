//! E10 — the random-walk ceiling (the paper's ref.&nbsp;3, used as contrast):
//! `n` uniform random walkers speed search up by only `min{log n, D}`.
//!
//! Sweep `n`, measure mean `M_moves` to a fixed near target, and compare
//! the measured speed-up to `ln n`.

use super::{Effort, ExperimentMeta};
use ants_analysis::speedup;
use ants_core::baselines::RandomWalk;
use ants_grid::TargetPlacement;
use ants_sim::report::{fnum, Table};
use ants_sim::{run_trials, Scenario};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    id: "E10 (random-walk speed-up, paper ref [3])",
    claim: "n uniform random walkers achieve speed-up only min{log n, D}",
};

/// Median moves for `n` random walkers to a ring target at distance `d`.
///
/// Medians, not means: the hitting time of a fixed site by a planar
/// random walk has *infinite* expectation (the walk is recurrent but
/// null-recurrent toward single sites), so sample means are
/// budget-truncation artifacts. The `min{log n, D}` speed-up claim is
/// about typical behaviour, which the median captures.
pub fn median_moves(d: u64, n: usize, trials: u64, seed: u64) -> f64 {
    let scenario = Scenario::builder()
        .agents(n)
        .target(TargetPlacement::Ring { distance: d })
        .move_budget(d * d * d * 40 + 200_000) // generous tail room
        .strategy(|_| Box::new(RandomWalk::new()))
        .build();
    run_trials(&scenario, trials, seed).summary().median_moves()
}

/// Run the sweep.
pub fn run(effort: Effort) -> Table {
    let d = effort.pick(6u64, 10);
    let n_values: &[usize] = effort.pick(&[1, 8][..], &[1, 4, 16, 64, 256][..]);
    let trials = effort.pick(10, 50);
    let mut table = Table::new(vec![
        "n",
        "D",
        "median moves",
        "speed-up",
        "ln n ceiling",
        "optimal (min{n, D})",
    ]);
    let t1 = median_moves(d, 1, trials, 0xE10_001);
    for &n in n_values {
        let tn = if n == 1 { t1 } else { median_moves(d, n, trials, 0xE10_001 ^ (n as u64) << 8) };
        let sp = t1 / tn;
        table.row(vec![
            n.to_string(),
            d.to_string(),
            fnum(tn),
            fnum(sp),
            fnum(speedup::random_walk_ceiling(n as u64, d).max(1.0)),
            fnum(speedup::optimal_ceiling(n as u64, d)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_sublinear_in_n() {
        // 16 walkers vs 1 at d = 5 (medians): the claim is speed-up far
        // below n. ln 16 ~ 2.8; allow a generous band but require << 16.
        let d = 5;
        let t1 = median_moves(d, 1, 60, 1);
        let t16 = median_moves(d, 16, 60, 2);
        let sp = t1 / t16;
        assert!(sp < 13.0, "random-walk speed-up {sp} too close to linear");
        assert!(sp > 1.0, "more walkers should help at least a little: {sp}");
    }

    #[test]
    fn smoke_runs() {
        let t = run(Effort::Smoke);
        assert_eq!(t.len(), 2);
    }
}
