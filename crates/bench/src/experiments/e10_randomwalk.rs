//! E10 — the random-walk ceiling (the paper's ref.&nbsp;3, used as contrast):
//! `n` uniform random walkers speed search up by only `min{log n, D}`.
//!
//! Sweep `n`, measure median `M_moves` to a fixed near target, and compare
//! the measured speed-up to `ln n`.
//!
//! Implements [`Experiment`]; the `n` sweep fans across one pool via
//! [`run_sweep_with`].

use super::{Effort, Experiment, ExperimentMeta, Report, RunConfig, SweepConfig};
use ants_analysis::speedup;
use ants_core::baselines::RandomWalk;
use ants_grid::TargetPlacement;
use ants_sim::{run_sweep_with, run_trials, Scenario, SweepJob};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    key: "e10",
    id: "E10 (random-walk speed-up, paper ref [3])",
    claim: "n uniform random walkers achieve speed-up only min{log n, D}",
};

/// The E10 harness.
pub struct E10RandomWalk;

fn d_value(effort: Effort) -> u64 {
    effort.pick(6, 10)
}

fn n_values(effort: Effort) -> &'static [usize] {
    effort.pick(&[1, 8][..], &[1, 4, 16, 64, 256][..])
}

fn trials(effort: Effort) -> u64 {
    effort.pick(10, 50)
}

fn scenario(d: u64, n: usize) -> Scenario {
    Scenario::builder()
        .agents(n)
        .target(TargetPlacement::Ring { distance: d })
        .move_budget(d * d * d * 40 + 200_000) // generous tail room
        .strategy(|_| Box::new(RandomWalk::new()))
        .build()
}

/// Median moves for `n` random walkers to a ring target at distance `d`.
///
/// Medians, not means: the hitting time of a fixed site by a planar
/// random walk has *infinite* expectation (the walk is recurrent but
/// null-recurrent toward single sites), so sample means are
/// budget-truncation artifacts. The `min{log n, D}` speed-up claim is
/// about typical behaviour, which the median captures.
pub fn median_moves(d: u64, n: usize, trials: u64, seed: u64) -> f64 {
    run_trials(&scenario(d, n), trials, seed).summary().median_moves()
}

impl Experiment for E10RandomWalk {
    fn meta(&self) -> &ExperimentMeta {
        &META
    }

    fn config(&self, effort: Effort) -> SweepConfig {
        SweepConfig { cells: n_values(effort).len(), trials_per_cell: trials(effort) }
    }

    fn run(&self, cfg: &RunConfig) -> Report {
        let d = d_value(cfg.effort);
        let trials = trials(cfg.effort);
        let mut report = Report::new(
            &META,
            cfg,
            vec!["n", "D", "median moves", "speed-up", "ln n ceiling", "optimal (min{n, D})"],
        );
        report.param("D", d).param("trials", trials);
        // n = 1 is the speed-up baseline; reuse its outcome when it is
        // also the first sweep point.
        let base_seed = cfg.seed(0xE10_001);
        let jobs: Vec<SweepJob> = n_values(cfg.effort)
            .iter()
            .map(|&n| {
                let seed = if n == 1 { base_seed } else { base_seed ^ (n as u64) << 8 };
                SweepJob::new(scenario(d, n), trials, seed)
            })
            .collect();
        let outcomes = run_sweep_with(&jobs, &cfg.sweep_options());
        let t1 = match n_values(cfg.effort).iter().position(|&n| n == 1) {
            Some(i) => outcomes[i].summary().median_moves(),
            None => median_moves(d, 1, trials, base_seed),
        };
        for (&n, outcome) in n_values(cfg.effort).iter().zip(&outcomes) {
            let tn = outcome.summary().median_moves();
            report.row(vec![
                n.into(),
                d.into(),
                tn.into(),
                (t1 / tn).into(),
                speedup::random_walk_ceiling(n as u64, d).max(1.0).into(),
                speedup::optimal_ceiling(n as u64, d).into(),
            ]);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_sublinear_in_n() {
        // 16 walkers vs 1 at d = 5 (medians): the claim is speed-up far
        // below n. ln 16 ~ 2.8; allow a generous band but require << 16.
        let d = 5;
        let t1 = median_moves(d, 1, 60, 1);
        let t16 = median_moves(d, 16, 60, 2);
        let sp = t1 / t16;
        assert!(sp < 13.0, "random-walk speed-up {sp} too close to linear");
        assert!(sp > 1.0, "more walkers should help at least a little: {sp}");
    }

    #[test]
    fn smoke_runs() {
        let r = E10RandomWalk.run(&RunConfig::smoke());
        assert_eq!(r.len(), 2);
        assert_eq!(r.len(), E10RandomWalk.config(Effort::Smoke).cells);
        // The n = 1 row's speed-up is 1 by construction.
        assert!((r.num(0, "speed-up") - 1.0).abs() < 1e-12);
    }
}
