//! E6 — Theorem 3.7: `Non-Uniform-Search` keeps the `O(D²/n + D)` running
//! time while shrinking the selection complexity to `χ = log log D + O(1)`.
//!
//! Two tables in one: the χ audit across `D` (the additive gap between
//! measured χ and `log log D` must stay bounded) and a performance spot
//! check at fixed `D, n` comparing the composite-coin agent against the
//! plain one.
//!
//! Implements [`Experiment`]; the spot-check scenarios (coin + plain per
//! simulation-friendly `D`) fan across one pool via [`run_sweep_with`].

use super::{Effort, Experiment, ExperimentMeta, Report, RunConfig, SweepConfig};
use ants_core::{CoinNonUniformSearch, NonUniformSearch, SearchStrategy, SelectionComplexity};
use ants_grid::TargetPlacement;
use ants_sim::{run_sweep_with, Scenario, SweepJob};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    key: "e6",
    id: "E6 (Theorem 3.7)",
    claim: "composite-coin Algorithm 1: same O(D^2/n + D) moves, chi = log log D + O(1)",
};

/// The E6 harness.
pub struct E6Chi;

fn d_exps(effort: Effort) -> &'static [u32] {
    effort.pick(&[6][..], &[6, 8, 10, 12, 16, 20][..])
}

fn trials(effort: Effort) -> u64 {
    effort.pick(8, 40)
}

/// The spot-check pair (coin, plain) for one simulation-friendly `D`.
fn spot_check_jobs(d: u64, trials: u64, cfg: &RunConfig) -> [SweepJob; 2] {
    let coin = Scenario::builder()
        .agents(4)
        .target(TargetPlacement::UniformInBall { distance: d })
        .move_budget(d * d * 800)
        .strategy(move |_| Box::new(CoinNonUniformSearch::new(d, 1).expect("valid")))
        .build();
    let plain = Scenario::builder()
        .agents(4)
        .target(TargetPlacement::UniformInBall { distance: d })
        .move_budget(d * d * 800)
        .strategy(move |_| Box::new(NonUniformSearch::new(d).expect("valid")))
        .build();
    let seed = cfg.seed(0xE6 ^ d);
    [SweepJob::new(coin, trials, seed), SweepJob::new(plain, trials, seed)]
}

impl Experiment for E6Chi {
    fn meta(&self) -> &ExperimentMeta {
        &META
    }

    fn config(&self, effort: Effort) -> SweepConfig {
        SweepConfig { cells: d_exps(effort).len(), trials_per_cell: trials(effort) }
    }

    fn run(&self, cfg: &RunConfig) -> Report {
        let trials = trials(cfg.effort);
        let mut report = Report::new(
            &META,
            cfg,
            vec![
                "D",
                "ell",
                "b",
                "chi",
                "log log D",
                "chi - loglogD",
                "mean moves (n=4)",
                "plain Alg1 moves",
            ],
        );
        report.param("d_exps", format!("{:?}", d_exps(cfg.effort))).param("trials", trials);
        // Performance spot checks only at simulation-friendly sizes; the
        // chi audit covers every D.
        let sim_ds: Vec<u64> =
            d_exps(cfg.effort).iter().map(|&e| 1u64 << e).filter(|&d| d <= 256).collect();
        let jobs: Vec<SweepJob> =
            sim_ds.iter().flat_map(|&d| spot_check_jobs(d, trials, cfg)).collect();
        let outcomes = run_sweep_with(&jobs, &cfg.sweep_options());
        for &d_exp in d_exps(cfg.effort) {
            let d = 1u64 << d_exp;
            let agent = CoinNonUniformSearch::new(d, 1).expect("valid");
            let sc = agent.selection_complexity();
            let loglog = SelectionComplexity::threshold(d);
            let (coin_moves, plain_moves) = match sim_ds.iter().position(|&s| s == d) {
                Some(i) => (
                    outcomes[2 * i].summary().mean_moves(),
                    outcomes[2 * i + 1].summary().mean_moves(),
                ),
                None => (f64::NAN, f64::NAN),
            };
            report.row(vec![
                format!("2^{d_exp}").into(),
                sc.ell().into(),
                sc.memory_bits().into(),
                sc.chi().into(),
                loglog.into(),
                (sc.chi() - loglog).into(),
                coin_moves.into(),
                plain_moves.into(),
            ]);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_gap_stays_bounded() {
        // The additive gap chi - log log D must not grow with D.
        let mut gaps = Vec::new();
        for d_exp in [8u32, 16, 32, 48] {
            let d = 1u64 << d_exp.min(63);
            let agent = CoinNonUniformSearch::new(d, 1).expect("valid");
            let gap = agent.selection_complexity().chi() - SelectionComplexity::threshold(d);
            gaps.push(gap);
        }
        for gap in &gaps {
            assert!(*gap <= 5.0, "chi exceeds log log D + 5: gap {gap}");
            assert!(*gap >= 0.0, "chi below the threshold itself: gap {gap}");
        }
        // Bounded: the largest and smallest gap within 2 bits of each other.
        let spread = gaps.iter().cloned().fold(f64::MIN, f64::max)
            - gaps.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread <= 2.0, "gap spread {spread} suggests chi grows faster than log log D");
    }

    #[test]
    fn smoke_runs() {
        let r = E6Chi.run(&RunConfig::smoke());
        assert_eq!(r.len(), 1);
        assert_eq!(r.len(), E6Chi.config(Effort::Smoke).cells);
        // The smoke D = 2^6 = 64 is simulation-friendly, so the spot
        // check must have run (finite mean moves).
        assert!(r.num(0, "mean moves (n=4)").is_finite());
        assert!(r.num(0, "plain Alg1 moves").is_finite());
    }
}
