//! E6 — Theorem 3.7: `Non-Uniform-Search` keeps the `O(D²/n + D)` running
//! time while shrinking the selection complexity to `χ = log log D + O(1)`.
//!
//! Two tables in one: the χ audit across `D` (the additive gap between
//! measured χ and `log log D` must stay bounded) and a performance spot
//! check at fixed `D, n` comparing the composite-coin agent against the
//! plain one.

use super::{Effort, ExperimentMeta};
use ants_core::{CoinNonUniformSearch, NonUniformSearch, SearchStrategy, SelectionComplexity};
use ants_grid::TargetPlacement;
use ants_sim::report::{fnum, Table};
use ants_sim::{run_trials, Scenario};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    id: "E6 (Theorem 3.7)",
    claim: "composite-coin Algorithm 1: same O(D^2/n + D) moves, chi = log log D + O(1)",
};

/// Run the audit + spot check.
pub fn run(effort: Effort) -> Table {
    let mut table = Table::new(vec![
        "D",
        "ell",
        "b",
        "chi",
        "log log D",
        "chi - loglogD",
        "mean moves (n=4)",
        "plain Alg1 moves",
    ]);
    let d_exps: &[u32] = effort.pick(&[6][..], &[6, 8, 10, 12, 16, 20][..]);
    let trials = effort.pick(8, 40);
    for &d_exp in d_exps {
        let d = 1u64 << d_exp;
        let agent = CoinNonUniformSearch::new(d, 1).expect("valid");
        let sc = agent.selection_complexity();
        let loglog = SelectionComplexity::threshold(d);
        // Performance spot check only at simulation-friendly sizes.
        let (coin_moves, plain_moves) = if d <= 256 {
            let coin = Scenario::builder()
                .agents(4)
                .target(TargetPlacement::UniformInBall { distance: d })
                .move_budget(d * d * 800)
                .strategy(move |_| Box::new(CoinNonUniformSearch::new(d, 1).expect("valid")))
                .build();
            let plain = Scenario::builder()
                .agents(4)
                .target(TargetPlacement::UniformInBall { distance: d })
                .move_budget(d * d * 800)
                .strategy(move |_| Box::new(NonUniformSearch::new(d).expect("valid")))
                .build();
            (
                run_trials(&coin, trials, 0xE6 ^ d).summary().mean_moves(),
                run_trials(&plain, trials, 0xE6 ^ d).summary().mean_moves(),
            )
        } else {
            (f64::NAN, f64::NAN)
        };
        table.row(vec![
            format!("2^{d_exp}"),
            sc.ell().to_string(),
            sc.memory_bits().to_string(),
            fnum(sc.chi()),
            fnum(loglog),
            fnum(sc.chi() - loglog),
            if coin_moves.is_nan() { "-".into() } else { fnum(coin_moves) },
            if plain_moves.is_nan() { "-".into() } else { fnum(plain_moves) },
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_gap_stays_bounded() {
        // The additive gap chi - log log D must not grow with D.
        let mut gaps = Vec::new();
        for d_exp in [8u32, 16, 32, 48] {
            let d = 1u64 << d_exp.min(63);
            let agent = CoinNonUniformSearch::new(d, 1).expect("valid");
            let gap = agent.selection_complexity().chi() - SelectionComplexity::threshold(d);
            gaps.push(gap);
        }
        for gap in &gaps {
            assert!(*gap <= 5.0, "chi exceeds log log D + 5: gap {gap}");
            assert!(*gap >= 0.0, "chi below the threshold itself: gap {gap}");
        }
        // Bounded: the largest and smallest gap within 2 bits of each other.
        let spread = gaps.iter().cloned().fold(f64::MIN, f64::max)
            - gaps.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread <= 2.0, "gap spread {spread} suggests chi grows faster than log log D");
    }

    #[test]
    fn smoke_runs() {
        let t = run(Effort::Smoke);
        assert_eq!(t.len(), 1);
    }
}
