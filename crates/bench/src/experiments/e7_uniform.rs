//! E7 — Theorem 3.14: the uniform algorithm finds the target in
//! `(D²/n + D) · 2^{O(ℓ)}` expected moves with `χ ≤ 3 log log D + O(1)`.
//!
//! Two sweeps: `D × n` at fixed `ℓ = 1` (the envelope ratio must stay
//! bounded, like E1 but without knowing `D`), and `ℓ` at fixed `D, n`
//! (the overshoot factor should grow roughly like `2^{cℓ}`).

use super::{Effort, ExperimentMeta};
use ants_core::UniformSearch;
use ants_grid::TargetPlacement;
use ants_sim::report::{fnum, Table};
use ants_sim::{run_trials, Scenario};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    id: "E7 (Theorem 3.14)",
    claim: "uniform Algorithm 5: (D^2/n + D) * 2^{O(l)} moves, chi <= 3 log log D + O(1)",
};

/// Mean moves for the uniform algorithm at the given parameters.
pub fn mean_moves(d: u64, n: usize, ell: u32, trials: u64, seed: u64) -> f64 {
    let scenario = Scenario::builder()
        .agents(n)
        .target(TargetPlacement::UniformInBall { distance: d })
        .move_budget(d * d * 3000 + 50_000)
        .strategy(move |_| {
            Box::new(UniformSearch::new(ell, n as u64, 2).expect("valid parameters"))
        })
        .build();
    run_trials(&scenario, trials, seed).summary().mean_moves()
}

/// Run both sweeps.
pub fn run(effort: Effort) -> Table {
    let mut table = Table::new(vec![
        "sweep",
        "D",
        "n",
        "ell",
        "mean moves",
        "envelope D^2/n+D",
        "ratio (2^{O(l)} overshoot)",
    ]);
    // Sweep 1: D x n at ell = 1.
    let d_values: &[u64] = effort.pick(&[16][..], &[16, 32, 64, 128][..]);
    let n_values: &[usize] = effort.pick(&[1][..], &[1, 4, 16, 64][..]);
    let trials = effort.pick(6, 30);
    for &d in d_values {
        for &n in n_values {
            let m = mean_moves(d, n, 1, trials, 0xE7_0000 ^ d ^ (n as u64) << 20);
            let env = (d * d) as f64 / n as f64 + d as f64;
            table.row(vec![
                "D x n".into(),
                d.to_string(),
                n.to_string(),
                "1".into(),
                fnum(m),
                fnum(env),
                fnum(m / env),
            ]);
        }
    }
    // Sweep 2: ell at fixed D, n.
    let ells: &[u32] = effort.pick(&[1, 2][..], &[1, 2, 3, 4][..]);
    let (d, n) = (32u64, 4usize);
    for &ell in ells {
        let m = mean_moves(d, n, ell, trials, 0xE7_1111 ^ (ell as u64) << 8);
        let env = (d * d) as f64 / n as f64 + d as f64;
        table.row(vec![
            "ell".into(),
            d.to_string(),
            n.to_string(),
            ell.to_string(),
            fnum(m),
            fnum(env),
            fnum(m / env),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_bounded_at_ell_one() {
        // Theorem 3.14 is an upper bound with a 2^{O(l)}*K-driven constant;
        // measured ratios at tiny D sit near 30-140.
        let m = mean_moves(16, 2, 1, 15, 1);
        let env = 16.0 * 16.0 / 2.0 + 16.0;
        let ratio = m / env;
        assert!(ratio < 400.0, "uniform overshoot ratio {ratio} too large");
        assert!(ratio > 0.01, "ratio {ratio} suspiciously small");
    }

    #[test]
    fn overshoot_bounded_by_2_to_o_ell() {
        // The theorem gives (D^2/n + D) * 2^{O(l)} as an UPPER bound; it is
        // not monotone in l at small D (fewer phases can offset coarser
        // estimates). Check the envelope for both resolutions.
        let env = 16.0 * 16.0 + 16.0;
        for (ell, seed) in [(1u32, 2u64), (3, 3)] {
            let m = mean_moves(16, 1, ell, 25, seed);
            let bound = env * 500.0 * 2f64.powi(2 * ell as i32);
            assert!(m < bound, "ell = {ell}: {m} moves exceed the 2^{{O(l)}} envelope {bound}");
        }
    }

    #[test]
    fn smoke_runs() {
        let t = run(Effort::Smoke);
        assert_eq!(t.len(), 3);
    }
}
