//! E7 — Theorem 3.14: the uniform algorithm finds the target in
//! `(D²/n + D) · 2^{O(ℓ)}` expected moves with `χ ≤ 3 log log D + O(1)`.
//!
//! Two sweeps: `D × n` at fixed `ℓ = 1` (the envelope ratio must stay
//! bounded, like E1 but without knowing `D`), and `ℓ` at fixed `D, n`
//! (the overshoot factor should grow roughly like `2^{cℓ}`).
//!
//! Implements [`Experiment`]; both sweeps fan across one shared pool via
//! [`run_sweep_with`].

use super::{Effort, Experiment, ExperimentMeta, Report, RunConfig, SweepConfig};
use ants_core::UniformSearch;
use ants_grid::TargetPlacement;
use ants_sim::{run_sweep_with, run_trials, Scenario, SweepJob};

/// Identity and claim.
pub const META: ExperimentMeta = ExperimentMeta {
    key: "e7",
    id: "E7 (Theorem 3.14)",
    claim: "uniform Algorithm 5: (D^2/n + D) * 2^{O(l)} moves, chi <= 3 log log D + O(1)",
};

/// The E7 harness.
pub struct E7Uniform;

fn d_values(effort: Effort) -> &'static [u64] {
    effort.pick(&[16][..], &[16, 32, 64, 128][..])
}

fn n_values(effort: Effort) -> &'static [usize] {
    effort.pick(&[1][..], &[1, 4, 16, 64][..])
}

fn ells(effort: Effort) -> &'static [u32] {
    effort.pick(&[1, 2][..], &[1, 2, 3, 4][..])
}

fn trials(effort: Effort) -> u64 {
    effort.pick(6, 30)
}

fn scenario(d: u64, n: usize, ell: u32) -> Scenario {
    Scenario::builder()
        .agents(n)
        .target(TargetPlacement::UniformInBall { distance: d })
        .move_budget(d * d * 3000 + 50_000)
        .strategy(move |_| {
            Box::new(UniformSearch::new(ell, n as u64, 2).expect("valid parameters"))
        })
        .build()
}

/// Mean moves for the uniform algorithm at the given parameters.
pub fn mean_moves(d: u64, n: usize, ell: u32, trials: u64, seed: u64) -> f64 {
    run_trials(&scenario(d, n, ell), trials, seed).summary().mean_moves()
}

impl Experiment for E7Uniform {
    fn meta(&self) -> &ExperimentMeta {
        &META
    }

    fn config(&self, effort: Effort) -> SweepConfig {
        SweepConfig {
            cells: d_values(effort).len() * n_values(effort).len() + ells(effort).len(),
            trials_per_cell: trials(effort),
        }
    }

    fn run(&self, cfg: &RunConfig) -> Report {
        let trials = trials(cfg.effort);
        let mut report = Report::new(
            &META,
            cfg,
            vec![
                "sweep",
                "D",
                "n",
                "ell",
                "mean moves",
                "envelope D^2/n+D",
                "ratio (2^{O(l)} overshoot)",
            ],
        );
        report.param("trials", trials);
        // Sweep 1: D x n at ell = 1; sweep 2: ell at fixed D, n. One
        // batched job list covers both.
        let (fixed_d, fixed_n) = (32u64, 4usize);
        let mut cells: Vec<(&str, u64, usize, u32, u64)> = Vec::new();
        for &d in d_values(cfg.effort) {
            for &n in n_values(cfg.effort) {
                cells.push(("D x n", d, n, 1, 0xE7_0000 ^ d ^ (n as u64) << 20));
            }
        }
        for &ell in ells(cfg.effort) {
            cells.push(("ell", fixed_d, fixed_n, ell, 0xE7_1111 ^ (ell as u64) << 8));
        }
        let jobs: Vec<SweepJob> = cells
            .iter()
            .map(|&(_, d, n, ell, tag)| SweepJob::new(scenario(d, n, ell), trials, cfg.seed(tag)))
            .collect();
        for (&(sweep, d, n, ell, _), outcome) in
            cells.iter().zip(run_sweep_with(&jobs, &cfg.sweep_options()))
        {
            let m = outcome.summary().mean_moves();
            let env = (d * d) as f64 / n as f64 + d as f64;
            report.row(vec![
                sweep.into(),
                d.into(),
                n.into(),
                ell.into(),
                m.into(),
                env.into(),
                (m / env).into(),
            ]);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_bounded_at_ell_one() {
        // Theorem 3.14 is an upper bound with a 2^{O(l)}*K-driven constant;
        // measured ratios at tiny D sit near 30-140.
        let m = mean_moves(16, 2, 1, 15, 1);
        let env = 16.0 * 16.0 / 2.0 + 16.0;
        let ratio = m / env;
        assert!(ratio < 400.0, "uniform overshoot ratio {ratio} too large");
        assert!(ratio > 0.01, "ratio {ratio} suspiciously small");
    }

    #[test]
    fn overshoot_bounded_by_2_to_o_ell() {
        // The theorem gives (D^2/n + D) * 2^{O(l)} as an UPPER bound; it is
        // not monotone in l at small D (fewer phases can offset coarser
        // estimates). Check the envelope for both resolutions.
        let env = 16.0 * 16.0 + 16.0;
        for (ell, seed) in [(1u32, 2u64), (3, 3)] {
            let m = mean_moves(16, 1, ell, 25, seed);
            let bound = env * 500.0 * 2f64.powi(2 * ell as i32);
            assert!(m < bound, "ell = {ell}: {m} moves exceed the 2^{{O(l)}} envelope {bound}");
        }
    }

    #[test]
    fn smoke_runs() {
        let r = E7Uniform.run(&RunConfig::smoke());
        assert_eq!(r.len(), 3);
        assert_eq!(r.len(), E7Uniform.config(Effort::Smoke).cells);
    }
}
