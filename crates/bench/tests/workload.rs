//! Workload-experiment integration: the bundled χ-zoo spec's report is
//! pinned to a golden, and — the subsystem's acceptance contract — its
//! rows are byte-identical across `--threads 1` and
//! `--threads 4 --granularity agent --chunk 3`.

use ants_bench::experiments::{Effort, Experiment, RunConfig};
use ants_bench::WorkloadExperiment;
use ants_sim::Granularity;
use std::path::PathBuf;

fn bundled(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/workloads").join(name)
}

fn chi_zoo() -> WorkloadExperiment {
    WorkloadExperiment::from_file(&bundled("chi_tradeoff_zoo.toml")).expect("bundled spec loads")
}

/// The golden: the bundled χ-zoo spec at smoke effort, seed 0. Rendered
/// CSV is pinned byte for byte — a change here is a change to the
/// engine's numeric output (seeding, assignment, reduction) or to the
/// spec file, and must be deliberate.
#[test]
fn chi_zoo_smoke_report_matches_golden() {
    let report = chi_zoo().run(&RunConfig::smoke());
    let golden = "\
cell,population,target,n,trials,found,success,median moves,mean moves,max chi,exact
race/n4/d8,\"2:nonuniform(8) + 2:coin(8, 1) + 2:uniform(1, 4, 2) + 1:harmonic(4) + 1:automaton(alg1, 4) + 2:randomwalk\",ball(8),4,4,4,1.000,41.0,89.8,15.0,false
race/n4/d16,\"2:nonuniform(16) + 2:coin(16, 1) + 2:uniform(1, 4, 2) + 1:harmonic(4) + 1:automaton(alg1, 4) + 2:randomwalk\",ball(16),4,4,4,1.000,166.5,436.0,27.0,false
race/n16/d8,\"2:nonuniform(8) + 2:coin(8, 1) + 2:uniform(1, 16, 2) + 1:harmonic(16) + 1:automaton(alg1, 4) + 2:randomwalk\",ball(8),16,4,4,1.000,38.0,37.5,38.0,false
race/n16/d16,\"2:nonuniform(16) + 2:coin(16, 1) + 2:uniform(1, 16, 2) + 1:harmonic(16) + 1:automaton(alg1, 4) + 2:randomwalk\",ball(16),16,4,4,1.000,204.5,250.5,46.0,false
";
    assert_eq!(report.to_csv(), golden);
}

/// Acceptance pin: the mixed-population workload's data output is
/// byte-identical across `--threads 1` and
/// `--threads 4 --granularity agent --chunk 3` (and a trial-granularity
/// control). Only the `threads`/`wall_ms` stamps in the JSON envelope
/// may differ between the runs.
#[test]
fn chi_zoo_rows_are_byte_identical_across_schedulers() {
    let exp = chi_zoo();
    let reference = exp.run(&RunConfig::smoke().with_threads(Some(1)));
    let configs = [
        RunConfig::smoke()
            .with_threads(Some(4))
            .with_granularity(Granularity::Agent)
            .with_chunk(Some(3)),
        RunConfig::smoke().with_threads(Some(4)).with_granularity(Granularity::Trial),
        RunConfig::smoke().with_threads(Some(2)).with_granularity(Granularity::Agent),
    ];
    for cfg in configs {
        let got = exp.run(&cfg);
        assert_eq!(
            got.to_csv(),
            reference.to_csv(),
            "rows diverged at threads {:?}, {:?}, chunk {:?}",
            cfg.threads,
            cfg.granularity,
            cfg.chunk
        );
        assert_eq!(got.records(), reference.records(), "typed records must agree too");
    }
}

/// Every bundled spec runs end-to-end at smoke effort and produces a
/// validating report document.
#[test]
fn every_bundled_spec_smoke_runs() {
    for name in [
        "chi_tradeoff_zoo.toml",
        "mixed_targets.toml",
        "adversarial_battery.toml",
        "speculation_stress.toml",
        "dp_crosscheck.toml",
    ] {
        let exp = WorkloadExperiment::from_file(&bundled(name)).expect("spec loads");
        let report = exp.run(&RunConfig::smoke());
        assert!(!report.is_empty(), "{name}: no rows");
        assert_eq!(report.len(), exp.config(Effort::Smoke).cells, "{name}: row/cell mismatch");
        let parsed = ants_sim::json::Json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(parsed.get("schema").and_then(|v| v.as_str()), Some("ants-report/v1"), "{name}");
    }
}

/// The adversarial battery's claim actually holds in the data: the
/// above-threshold comparator cell beats the low-χ zoo's success rate
/// on the adversarial corner at standard effort.
#[test]
fn adversarial_battery_separates_low_chi_from_comparator() {
    let exp = WorkloadExperiment::from_file(&bundled("adversarial_battery.toml")).expect("loads");
    let report = exp.run(&RunConfig::standard());
    // Rows: lowchi/corner, lowchi/ring, comparator/corner, comparator/ring.
    let low_corner = report.num(0, "success");
    let cmp_corner = report.num(2, "success");
    assert!(
        cmp_corner > low_corner,
        "comparator ({cmp_corner}) must beat the low-chi zoo ({low_corner}) on the corner"
    );
    assert!(cmp_corner > 0.9, "comparator should nearly always find the corner: {cmp_corner}");
}
