//! The observability acceptance contract: telemetry is strictly
//! observational. Attaching a handle never changes a single report
//! byte, at any thread count or scheduling granularity — and the
//! instrumentation it feeds actually observes the run (counters move).

use ants_bench::experiments::{Experiment, RunConfig};
use ants_bench::WorkloadExperiment;
use ants_obs::{Counter, Phase, Telemetry};
use ants_sim::Granularity;
use std::path::PathBuf;

fn bundled(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/workloads").join(name)
}

fn chi_zoo() -> WorkloadExperiment {
    WorkloadExperiment::from_file(&bundled("chi_tradeoff_zoo.toml")).expect("bundled spec loads")
}

/// The ISSUE's headline pin: a chi-zoo smoke run with `--telemetry`
/// (4 threads, agent granularity, chunk 3) is byte-identical to the
/// same run without it — CSV and text rendering both (the JSON envelope
/// differs only in `wall_ms`, which is excluded from both renderings).
#[test]
fn telemetry_never_changes_report_bytes() {
    let exp = chi_zoo();
    let cfg = RunConfig::smoke()
        .with_threads(Some(4))
        .with_granularity(Granularity::Agent)
        .with_chunk(Some(3));
    let bare = exp.run(&cfg);
    let observed = exp.run(&cfg.with_telemetry(Some(Telemetry::new())));
    assert_eq!(observed.to_csv(), bare.to_csv());
    assert_eq!(observed.to_string(), bare.to_string());
}

/// The same identity across the full scheduling matrix: threads {1, 4}
/// × granularity {trial, agent}. Whatever the pool does — serial
/// fallback, trial units, chunked agents with cap hints — the observed
/// run's bytes match the unobserved reference.
#[test]
fn telemetry_is_invariant_across_schedulers() {
    let exp = chi_zoo();
    let reference = exp.run(&RunConfig::smoke().with_threads(Some(1)));
    for threads in [1usize, 4] {
        for granularity in [Granularity::Trial, Granularity::Agent] {
            let cfg = RunConfig::smoke()
                .with_threads(Some(threads))
                .with_granularity(granularity)
                .with_telemetry(Some(Telemetry::new()));
            let got = exp.run(&cfg);
            assert_eq!(
                got.to_csv(),
                reference.to_csv(),
                "telemetry moved bytes at threads {threads}, {granularity:?}"
            );
        }
    }
}

/// The handle attached through [`RunConfig`] really observes the sweep:
/// pool units, engine steps, and phase spans are all nonzero after a
/// parallel agent-granularity run (and steals appear at 4 threads,
/// where the cursor rebalances work off its static home).
#[cfg(feature = "parallel")]
#[test]
fn attached_telemetry_observes_the_sweep() {
    let tele = Telemetry::new();
    let cfg = RunConfig::smoke()
        .with_threads(Some(4))
        .with_granularity(Granularity::Agent)
        .with_chunk(Some(3))
        .with_telemetry(Some(tele));
    chi_zoo().run(&cfg);
    let snap = tele.snapshot();
    assert!(snap.counter(Counter::PoolUnits) > 0, "no units counted");
    assert!(snap.counter(Counter::EngineSteps) > 0, "no engine steps counted");
    assert!(snap.counter(Counter::HintPolls) > 0, "no cap-hint polls counted");
    assert!(snap.phase_total_ns(Phase::Execute) > 0, "no execute span recorded");
    assert_eq!(
        snap.counter(Counter::PoolUnits),
        snap.worker_units.iter().sum::<u64>(),
        "per-worker shards must sum to the total"
    );
    assert!(!snap.plans.is_empty(), "no plan decisions recorded");
    assert!(snap.plans.iter().all(|p| p.granularity == "agent"), "forced granularity not echoed");
}
