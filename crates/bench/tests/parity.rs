//! Cross-granularity parity for the whole registered battery.
//!
//! Acceptance contract for the agent-granularity engine: every
//! registered experiment, run in smoke mode, emits byte-identical data
//! across granularity {trial, agent} and threads {1, 2, 4}. Reports
//! render through `to_csv()` (the full typed record set, excluding
//! wall-clock time), so any drift in any cell of any experiment fails
//! here with the experiment named.

use ants_bench::experiments::{self, RunConfig};
use ants_sim::Granularity;

#[test]
fn battery_is_byte_identical_across_granularity_and_threads() {
    for exp in experiments::all() {
        let reference = exp.run(&RunConfig::smoke().with_threads(Some(1))).to_csv();
        for (threads, granularity, chunk) in [
            (2usize, Granularity::Trial, None),
            (2, Granularity::Agent, Some(3)),
            (4, Granularity::Agent, Some(2)),
            (4, Granularity::Auto, None),
        ] {
            let cfg = RunConfig::smoke()
                .with_threads(Some(threads))
                .with_granularity(granularity)
                .with_chunk(chunk);
            let got = exp.run(&cfg).to_csv();
            assert_eq!(
                got,
                reference,
                "{} drifted at threads {threads}, granularity {granularity:?}, chunk {chunk:?}",
                exp.meta().key
            );
        }
    }
}
