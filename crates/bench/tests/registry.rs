//! Registry completeness: every experiment module must be registered in
//! `experiments::all()`, with a well-formed unique key, so adding an E16
//! module without wiring it into the registry (and therefore the CLI)
//! fails CI.

use ants_bench::experiments::{self, Effort, Experiment as _};
use ants_bench::{RunConfig, WorkloadExperiment};
use std::path::PathBuf;

/// The experiment keys implied by the module list in
/// `src/experiments/mod.rs` — `pub mod e10_randomwalk;` implies `e10`.
fn module_keys() -> Vec<String> {
    let src = include_str!("../src/experiments/mod.rs");
    let mut keys: Vec<String> = src
        .lines()
        .filter_map(|line| line.trim().strip_prefix("pub mod "))
        .map(|m| {
            let module = m.trim_end_matches(';');
            module.split('_').next().expect("module name has a prefix").to_string()
        })
        .collect();
    keys.sort();
    keys
}

#[test]
fn registry_matches_the_module_list_exactly() {
    let mut registered: Vec<String> =
        experiments::all().iter().map(|e| e.meta().key.to_string()).collect();
    registered.sort();
    assert_eq!(
        registered,
        module_keys(),
        "experiments::all() and the `pub mod` list in experiments/mod.rs disagree — \
         register the new module (or remove the stale registration)"
    );
}

#[test]
fn registry_keys_are_unique_and_well_formed() {
    let all = experiments::all();
    let mut seen = std::collections::HashSet::new();
    for e in &all {
        let meta = e.meta();
        assert!(seen.insert(meta.key), "duplicate registry key '{}'", meta.key);
        assert!(
            meta.key.strip_prefix('e').is_some_and(|n| n.parse::<u32>().is_ok()),
            "key '{}' is not of the form e<N>",
            meta.key
        );
        assert!(!meta.id.is_empty() && !meta.claim.is_empty(), "{}: empty id/claim", meta.key);
        assert_eq!(
            experiments::find(meta.key).expect("find resolves every registered key").meta().id,
            meta.id
        );
    }
    assert!(experiments::find("e999").is_none());
}

#[test]
fn every_experiment_plans_a_nonempty_sweep() {
    for e in experiments::all() {
        for effort in [Effort::Smoke, Effort::Standard] {
            let cfg = e.config(effort);
            assert!(cfg.cells > 0, "{}: no cells at {effort:?}", e.meta().key);
            assert!(cfg.trials_per_cell > 0, "{}: no trials at {effort:?}", e.meta().key);
        }
    }
}

/// The bundled workload specs are part of the battery surface (`ants
/// list` previews them, CI smoke-runs them): every spec under
/// `examples/workloads/` must stay loadable, plan a non-empty sweep at
/// both efforts, and carry a report key that neither collides with the
/// built-in `e<N>` registry nor with another spec.
#[test]
fn bundled_workload_specs_stay_loadable() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/workloads");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("examples/workloads exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 4, "at least four bundled specs ship with the repo: {paths:?}");
    let builtin: Vec<String> =
        experiments::all().iter().map(|e| e.meta().key.to_string()).collect();
    let mut keys = std::collections::HashSet::new();
    for path in &paths {
        let exp = WorkloadExperiment::from_file(path)
            .unwrap_or_else(|e| panic!("{} failed to load: {e}", path.display()));
        let key = exp.meta().key;
        assert!(
            key.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "-_".contains(c)),
            "{}: key '{key}' is not file-name-safe",
            path.display()
        );
        assert!(!builtin.contains(&key.to_string()), "{key} collides with a built-in experiment");
        assert!(keys.insert(key.to_string()), "duplicate workload key '{key}'");
        for effort in [Effort::Smoke, Effort::Standard] {
            let cfg = exp.config(effort);
            assert!(cfg.cells > 0, "{key}: no cells at {effort:?}");
            assert!(cfg.trials_per_cell > 0, "{key}: no trials at {effort:?}");
        }
    }
}

#[test]
fn reports_serialize_with_stable_field_order() {
    // One cheap end-to-end check through a real experiment: run E15
    // (closed-form, fast), serialize, parse, and pin the field order the
    // dashboards rely on.
    let exp = experiments::find("e15").expect("registered");
    let report = ants_bench::Runner::new(RunConfig::smoke()).run(exp.as_ref());
    assert!(!report.is_empty(), "smoke run must produce rows");
    let parsed = ants_sim::json::Json::parse(&report.to_json()).expect("valid JSON");
    assert_eq!(
        parsed.keys(),
        vec![
            "schema", "id", "title", "claim", "effort", "seed", "threads", "wall_ms", "params",
            "columns", "rows"
        ]
    );
    assert_eq!(parsed.get("id").and_then(|v| v.as_str()), Some("e15"));
    assert_eq!(parsed.get("effort").and_then(|v| v.as_str()), Some("smoke"));
    let rows = parsed.get("rows").and_then(|v| v.as_array()).expect("rows array");
    assert_eq!(rows.len(), report.len());
    let columns = parsed.get("columns").and_then(|v| v.as_array()).expect("columns array");
    assert_eq!(columns.len(), report.records().columns().len());
    // Round-trip: a serialized-again document is byte-identical (stable
    // order is a property of the serializer, not of a hash map).
    assert_eq!(report.to_json(), report.to_json());
}
