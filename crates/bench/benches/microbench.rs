//! Criterion micro-benchmarks for the simulation substrate.
//!
//! These quantify the engine itself (PRNG, coins, PFA stepping, strategy
//! stepping, full trials, chain analysis) so that the experiment harness
//! numbers in EXPERIMENTS.md can be related to wall-clock budgets.

use ants_automaton::{library, markov, Walker};
use ants_core::baselines::{HarmonicSearch, RandomWalk, SpiralSearch};
use ants_core::{CoinNonUniformSearch, NonUniformSearch, SearchStrategy, UniformSearch};
use ants_grid::TargetPlacement;
use ants_rng::{derive_rng, BiasedCoin, Coin, CompositeCoin, Rng64};
use ants_sim::{run_trial, Scenario};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("xoshiro256pp/next_u64", |b| {
        let mut rng = derive_rng(1, 0);
        b.iter(|| black_box(rng.next_u64()));
    });
    g.bench_function("biased_coin/flip_1_over_1024", |b| {
        let mut rng = derive_rng(2, 0);
        let coin = BiasedCoin::base(10).unwrap();
        b.iter(|| black_box(coin.flip(&mut rng)));
    });
    g.bench_function("composite_coin/flip_k5_l2", |b| {
        let mut rng = derive_rng(3, 0);
        let coin = CompositeCoin::new(5, 2).unwrap();
        b.iter(|| black_box(coin.flip(&mut rng)));
    });
    g.finish();
}

fn bench_automaton(c: &mut Criterion) {
    let mut g = c.benchmark_group("automaton");
    let pfa = library::algorithm1(8).unwrap();
    g.bench_function("pfa/step_algorithm1", |b| {
        let mut rng = derive_rng(4, 0);
        let mut w = Walker::new(&pfa);
        b.iter(|| black_box(w.step(&mut rng)));
    });
    g.bench_function("markov/analyze_8_state_pfa", |b| {
        let mut rng = derive_rng(5, 0);
        let pfa = library::random_pfa(8, 3, &mut rng);
        b.iter(|| black_box(markov::analyze(&pfa)));
    });
    g.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("strategy_step");
    macro_rules! bench_strategy {
        ($name:literal, $mk:expr) => {
            g.bench_function($name, |b| {
                let mut rng = derive_rng(6, 0);
                let mut s = $mk;
                b.iter(|| black_box(s.step(&mut rng)));
            });
        };
    }
    bench_strategy!("random_walk", RandomWalk::new());
    bench_strategy!("spiral", SpiralSearch::new());
    bench_strategy!("non_uniform_d256", NonUniformSearch::new(256).unwrap());
    bench_strategy!("coin_non_uniform_d256_l1", CoinNonUniformSearch::new(256, 1).unwrap());
    bench_strategy!("uniform_l1", UniformSearch::new(1, 16, 2).unwrap());
    bench_strategy!("harmonic_n16", HarmonicSearch::new(16));
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    g.bench_function("trial/alg1_d32_n4", |b| {
        let scenario = Scenario::builder()
            .agents(4)
            .target(TargetPlacement::UniformInBall { distance: 32 })
            .move_budget(2_000_000)
            .strategy(|_| Box::new(NonUniformSearch::new(32).unwrap()))
            .build();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_trial(&scenario, seed))
        });
    });
    g.finish();
}

/// MC vs exact-DP wall clock on the bundled crosscheck grid: per cell,
/// `backend/mc/<cell>` measures the full trial count on a single-thread
/// pool, and the `backend/dp-*` variants measure one exact evaluation
/// per table representation — `dp-dense` (dense occupancy tables;
/// absent when the dense guard refuses the cell), `dp-sparse` (the
/// pruned frontier), and `dp-memo` (a warm cross-cell CDF memo, i.e.
/// the marginal cost of a repeated cell inside a sweep or a later
/// `ants serve` submission). `BENCH_dp.json` records the medians and
/// the MC crossover.
fn bench_backends(c: &mut Criterion) {
    use ants_bench::{RunConfig, WorkloadExperiment};
    use ants_dp::DpMode;
    use ants_workload::dp::{evaluate_cell_with, DpMemo};
    let spec = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/workloads/dp_crosscheck.toml");
    let exp = WorkloadExperiment::from_file(&spec).expect("bundled crosscheck spec loads");
    let opts = RunConfig::standard().with_threads(Some(1)).sweep_options();
    let no_metrics = ants_sim::MetricSet::empty();
    let mut g = c.benchmark_group("backend");
    g.sample_size(10);
    for cell in &exp.plan().cells {
        let label = cell.label.replace('/', "-");
        g.bench_function(&format!("mc/{label}"), |b| {
            b.iter(|| {
                let job = cell.job(false, 0).expect("cell builds");
                black_box(ants_sim::run_sweep_with(&[job], &opts))
            });
        });
        for (variant, mode) in [("dp-dense", DpMode::Dense), ("dp-sparse", DpMode::Sparse)] {
            if evaluate_cell_with(cell, false, no_metrics, Some(mode), None).is_err() {
                continue; // the dense guard refuses the over-budget cell
            }
            g.bench_function(&format!("{variant}/{label}"), |b| {
                b.iter(|| {
                    black_box(
                        evaluate_cell_with(cell, false, no_metrics, Some(mode), None)
                            .expect("dp-capable cell"),
                    )
                });
            });
        }
        g.bench_function(&format!("dp-memo/{label}"), |b| {
            let memo = DpMemo::new();
            evaluate_cell_with(cell, false, no_metrics, None, Some(&memo))
                .expect("dp-capable cell");
            b.iter(|| {
                black_box(
                    evaluate_cell_with(cell, false, no_metrics, None, Some(&memo))
                        .expect("dp-capable cell"),
                )
            });
        });
    }
    g.finish();
}

/// Telemetry overhead on the E9-style hot loop: the same
/// agent-granularity sweep (Algorithm 1, D = 32, 4 agents, 2M-move
/// budget) with and without a telemetry handle attached, plus the raw
/// cost of one sharded counter increment. `BENCH_obs.json` records the
/// medians; the observability contract pins the on/off delta under 2%
/// (the loop is dominated by engine stepping — counters flush once per
/// work unit, not per move).
fn bench_obs(c: &mut Criterion) {
    use ants_obs::{Counter, Telemetry};
    use ants_sim::{run_sweep_with, SweepJob, SweepOptions};

    let job = || {
        let scenario = Scenario::builder()
            .agents(4)
            .target(TargetPlacement::UniformInBall { distance: 32 })
            .move_budget(2_000_000)
            .strategy(|_| Box::new(NonUniformSearch::new(32).unwrap()))
            .build();
        SweepJob::new(scenario, 2, 0)
    };
    let opts =
        SweepOptions::with_threads(Some(2)).granularity(ants_sim::Granularity::Agent).chunk(1);

    let mut g = c.benchmark_group("obs");
    g.sample_size(10);
    g.bench_function("sweep_e9/telemetry_off", |b| {
        let opts = opts.clone();
        b.iter(|| black_box(run_sweep_with(&[job()], &opts)));
    });
    g.bench_function("sweep_e9/telemetry_on", |b| {
        let opts = opts.clone().with_telemetry(Telemetry::new());
        b.iter(|| black_box(run_sweep_with(&[job()], &opts)));
    });
    g.bench_function("counter/add", |b| {
        let tele = Telemetry::new();
        b.iter(|| tele.add(black_box(1), Counter::EngineSteps, black_box(3)));
    });
    g.bench_function("snapshot/freeze", |b| {
        let tele = Telemetry::new();
        tele.add(0, Counter::PoolUnits, 9);
        b.iter(|| black_box(tele.snapshot()));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_rng,
    bench_automaton,
    bench_strategies,
    bench_engine,
    bench_backends,
    bench_obs
);
criterion_main!(benches);
