//! The strategy-zoo grammar: textual entries like `nonuniform(dist)` or
//! `automaton(drift, 3)` parsed into symbolic [`ZooStrategy`] values,
//! resolved against a concrete cell into [`ResolvedStrategy`] factories.
//!
//! Grammar (one entry per population element):
//!
//! ```text
//! entry      := name | name '(' arg (',' arg)* ')'
//! name       := randomwalk | spiral | nonuniform | coin | uniform
//!             | fullyuniform | harmonic | levy | automaton | mortal
//! arg        := integer | float | dist | agents | ident   (automaton kinds)
//!             | entry                                      (mortal's inner)
//! ```
//!
//! The tokens `dist` and `agents` bind to the cell's resolved target
//! distance and agent count at expansion time, so one spec line like
//! `nonuniform(dist)` follows a `sweep.dist` axis across cells.
//! `mortal(inner, expiry)` nests: its first argument is a whole entry
//! (arguments split at *top-level* commas only), wrapping any inner
//! strategy with a deterministic lifetime of `expiry` moves.

use crate::WorkloadError;
use ants_automaton::{library, Pfa};
use ants_core::baselines::{
    AutomatonStrategy, Expiring, HarmonicSearch, LevyWalk, RandomWalk, SpiralSearch,
};
use ants_core::{CoinNonUniformSearch, FullyUniformSearch, NonUniformSearch, UniformSearch};
use ants_sim::StrategyFactory;
use std::fmt;

/// Largest accepted `mortal(…)` expiry: beyond `2^40` moves no workload
/// in this workspace could ever exhaust a lifetime, so bigger values are
/// almost certainly typos.
pub const MAX_MORTAL_EXPIRY: u64 = 1 << 40;

/// A symbolic strategy argument: a literal, or a binding to the cell's
/// resolved target distance / agent count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arg {
    /// A literal integer.
    Lit(u64),
    /// The cell's resolved target distance `D`.
    Dist,
    /// The cell's resolved agent count `n`.
    Agents,
}

impl Arg {
    /// Substitute the cell's concrete values.
    pub fn resolve(self, dist: u64, agents: u64) -> u64 {
        match self {
            Arg::Lit(v) => v,
            Arg::Dist => dist,
            Arg::Agents => agents,
        }
    }
}

impl fmt::Display for Arg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arg::Lit(v) => write!(f, "{v}"),
            Arg::Dist => write!(f, "dist"),
            Arg::Agents => write!(f, "agents"),
        }
    }
}

/// A canonical automaton from [`ants_automaton::library`], symbolically
/// parameterised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AutomatonKind {
    /// `automaton(walk)` — the uniform random-walk PFA.
    Walk,
    /// `automaton(lazy)` — the lazy random walk.
    Lazy,
    /// `automaton(line)` — the deterministic rightward ray.
    Line,
    /// `automaton(drift, e)` — rightward bias at resolution `e`.
    Drift(Arg),
    /// `automaton(cycle, len)` — a deterministic `len`-cycle.
    Cycle(Arg),
    /// `automaton(alg1, j)` — the paper's Algorithm 1 machine, `D = 2^j`.
    Alg1(Arg),
    /// `automaton(pfa, states, ell, seed)` — a seeded random PFA.
    Pfa(Arg, Arg, Arg),
}

/// A population entry before expansion: the strategy family plus its
/// (possibly symbolic) parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ZooStrategy {
    /// `randomwalk` — the paper's ref. 3 baseline.
    RandomWalk,
    /// `spiral` — the deterministic single-agent optimum.
    Spiral,
    /// `nonuniform(d)` — Algorithm 1 knowing `D = d`.
    NonUniform(Arg),
    /// `coin(d, ell)` — Algorithms 1+2 at resolution `ell`.
    Coin(Arg, Arg),
    /// `uniform(ell, n, K)` — Algorithm 5.
    Uniform(Arg, Arg, Arg),
    /// `fullyuniform(ell, K)` — uniform in `D` and `n`.
    FullyUniform(Arg, Arg),
    /// `harmonic(n)` — Feinerman–Korman-style comparator.
    Harmonic(Arg),
    /// `levy(mu, lmax)` — truncated Lévy walk (`mu` is a float literal).
    Levy(f64, Arg),
    /// `automaton(kind, …)` — a compiled library PFA.
    Automaton(AutomatonKind),
    /// `mortal(inner, expiry)` — any inner entry, halting after `expiry`
    /// moves (deterministic lifetime; see
    /// [`ants_core::baselines::Expiring`]).
    Mortal(Box<ZooStrategy>, Arg),
}

impl ZooStrategy {
    /// Parse one zoo entry.
    pub fn parse(text: &str) -> Result<ZooStrategy, String> {
        let text = text.trim();
        let (name, args) = split_call(text)?;
        let need = |n: usize| -> Result<(), String> {
            if args.len() == n {
                Ok(())
            } else {
                Err(format!("'{name}' takes {n} argument(s), got {}", args.len()))
            }
        };
        let arg = |i: usize| parse_arg(&args[i]);
        match name {
            "randomwalk" => {
                need(0)?;
                Ok(ZooStrategy::RandomWalk)
            }
            "spiral" => {
                need(0)?;
                Ok(ZooStrategy::Spiral)
            }
            "nonuniform" => {
                need(1)?;
                Ok(ZooStrategy::NonUniform(arg(0)?))
            }
            "coin" => {
                need(2)?;
                Ok(ZooStrategy::Coin(arg(0)?, arg(1)?))
            }
            "uniform" => {
                need(3)?;
                Ok(ZooStrategy::Uniform(arg(0)?, arg(1)?, arg(2)?))
            }
            "fullyuniform" => {
                need(2)?;
                Ok(ZooStrategy::FullyUniform(arg(0)?, arg(1)?))
            }
            "harmonic" => {
                need(1)?;
                Ok(ZooStrategy::Harmonic(arg(0)?))
            }
            "levy" => {
                need(2)?;
                let mu: f64 = args[0]
                    .parse()
                    .map_err(|_| format!("levy exponent '{}' is not a number", args[0]))?;
                Ok(ZooStrategy::Levy(mu, arg(1)?))
            }
            "automaton" => {
                if args.is_empty() {
                    return Err("'automaton' needs a kind (walk|lazy|line|drift|cycle|alg1|pfa)"
                        .to_string());
                }
                let kind_args = &args[1..];
                let need_k = |n: usize| -> Result<(), String> {
                    if kind_args.len() == n {
                        Ok(())
                    } else {
                        Err(format!(
                            "'automaton({})' takes {n} argument(s), got {}",
                            args[0],
                            kind_args.len()
                        ))
                    }
                };
                let karg = |i: usize| parse_arg(&kind_args[i]);
                let kind = match args[0].as_str() {
                    "walk" => {
                        need_k(0)?;
                        AutomatonKind::Walk
                    }
                    "lazy" => {
                        need_k(0)?;
                        AutomatonKind::Lazy
                    }
                    "line" => {
                        need_k(0)?;
                        AutomatonKind::Line
                    }
                    "drift" => {
                        need_k(1)?;
                        AutomatonKind::Drift(karg(0)?)
                    }
                    "cycle" => {
                        need_k(1)?;
                        AutomatonKind::Cycle(karg(0)?)
                    }
                    "alg1" => {
                        need_k(1)?;
                        AutomatonKind::Alg1(karg(0)?)
                    }
                    "pfa" => {
                        need_k(3)?;
                        AutomatonKind::Pfa(karg(0)?, karg(1)?, karg(2)?)
                    }
                    other => return Err(format!("unknown automaton kind '{other}'")),
                };
                Ok(ZooStrategy::Automaton(kind))
            }
            "mortal" => {
                need(2)?;
                let inner = ZooStrategy::parse(&args[0])
                    .map_err(|e| format!("mortal inner strategy: {e}"))?;
                Ok(ZooStrategy::Mortal(Box::new(inner), arg(1)?))
            }
            other => Err(format!(
                "unknown strategy '{other}' (try randomwalk, spiral, nonuniform, coin, uniform, \
                 fullyuniform, harmonic, levy, automaton, or mortal)"
            )),
        }
    }

    /// Resolve against a concrete cell: substitute `dist`/`agents`,
    /// validate parameter ranges, and precompile automata.
    pub fn resolve(&self, dist: u64, agents: u64) -> Result<ResolvedStrategy, String> {
        let kind = match *self {
            ZooStrategy::RandomWalk => ResolvedKind::RandomWalk,
            ZooStrategy::Spiral => ResolvedKind::Spiral,
            ZooStrategy::NonUniform(d) => {
                let d = d.resolve(dist, agents);
                if d < 2 {
                    return Err(format!("nonuniform needs D >= 2, got {d}"));
                }
                NonUniformSearch::new(d).map_err(|e| format!("nonuniform({d}): {e:?}"))?;
                ResolvedKind::NonUniform { d }
            }
            ZooStrategy::Coin(d, ell) => {
                let (d, ell) = (d.resolve(dist, agents), ell.resolve(dist, agents));
                if d < 2 || ell == 0 {
                    return Err(format!("coin needs D >= 2 and ell >= 1, got ({d}, {ell})"));
                }
                let ell = u32::try_from(ell).map_err(|_| format!("coin ell {ell} too large"))?;
                CoinNonUniformSearch::new(d, ell).map_err(|e| format!("coin({d},{ell}): {e:?}"))?;
                ResolvedKind::Coin { d, ell }
            }
            ZooStrategy::Uniform(ell, n, k) => {
                let (ell, n, k) =
                    (ell.resolve(dist, agents), n.resolve(dist, agents), k.resolve(dist, agents));
                if ell == 0 || n == 0 || k == 0 {
                    return Err(format!("uniform needs ell, n, K all >= 1, got ({ell}, {n}, {k})"));
                }
                let (ell, k) = (narrow(ell, "uniform ell")?, narrow(k, "uniform K")?);
                UniformSearch::new(ell, n, k).map_err(|e| format!("uniform: {e:?}"))?;
                ResolvedKind::Uniform { ell, n, k }
            }
            ZooStrategy::FullyUniform(ell, k) => {
                let (ell, k) = (ell.resolve(dist, agents), k.resolve(dist, agents));
                if ell == 0 || k == 0 {
                    return Err(format!("fullyuniform needs ell, K >= 1, got ({ell}, {k})"));
                }
                let (ell, k) = (narrow(ell, "fullyuniform ell")?, narrow(k, "fullyuniform K")?);
                FullyUniformSearch::new(ell, k).map_err(|e| format!("fullyuniform: {e:?}"))?;
                ResolvedKind::FullyUniform { ell, k }
            }
            ZooStrategy::Harmonic(n) => {
                let n = n.resolve(dist, agents);
                if n == 0 {
                    return Err("harmonic needs n >= 1".to_string());
                }
                ResolvedKind::Harmonic { n }
            }
            ZooStrategy::Levy(mu, l_max) => {
                let l_max = l_max.resolve(dist, agents);
                if !(mu > 1.0 && mu <= 4.0) {
                    return Err(format!("levy exponent must be in (1, 4], got {mu}"));
                }
                if !(1..=1 << 20).contains(&l_max) {
                    return Err(format!("levy l_max must be in 1..=2^20, got {l_max}"));
                }
                ResolvedKind::Levy { mu, l_max }
            }
            ZooStrategy::Automaton(kind) => {
                let (label, pfa) = compile_automaton(kind, dist, agents)?;
                ResolvedKind::Automaton { label, pfa }
            }
            ZooStrategy::Mortal(ref inner, expiry) => {
                let expiry = expiry.resolve(dist, agents);
                if !(1..=MAX_MORTAL_EXPIRY).contains(&expiry) {
                    return Err(format!(
                        "mortal expiry must be in 1..={MAX_MORTAL_EXPIRY}, got {expiry}"
                    ));
                }
                let inner = inner.resolve(dist, agents)?;
                ResolvedKind::Mortal { inner: Box::new(inner), expiry }
            }
        };
        Ok(ResolvedStrategy { kind })
    }
}

impl fmt::Display for ZooStrategy {
    /// The canonical text form — re-parses to an equal value.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZooStrategy::RandomWalk => write!(f, "randomwalk"),
            ZooStrategy::Spiral => write!(f, "spiral"),
            ZooStrategy::NonUniform(d) => write!(f, "nonuniform({d})"),
            ZooStrategy::Coin(d, ell) => write!(f, "coin({d}, {ell})"),
            ZooStrategy::Uniform(ell, n, k) => write!(f, "uniform({ell}, {n}, {k})"),
            ZooStrategy::FullyUniform(ell, k) => write!(f, "fullyuniform({ell}, {k})"),
            ZooStrategy::Harmonic(n) => write!(f, "harmonic({n})"),
            ZooStrategy::Levy(mu, l) => write!(f, "levy({mu}, {l})"),
            ZooStrategy::Automaton(kind) => match kind {
                AutomatonKind::Walk => write!(f, "automaton(walk)"),
                AutomatonKind::Lazy => write!(f, "automaton(lazy)"),
                AutomatonKind::Line => write!(f, "automaton(line)"),
                AutomatonKind::Drift(e) => write!(f, "automaton(drift, {e})"),
                AutomatonKind::Cycle(n) => write!(f, "automaton(cycle, {n})"),
                AutomatonKind::Alg1(j) => write!(f, "automaton(alg1, {j})"),
                AutomatonKind::Pfa(s, e, seed) => write!(f, "automaton(pfa, {s}, {e}, {seed})"),
            },
            ZooStrategy::Mortal(inner, expiry) => write!(f, "mortal({inner}, {expiry})"),
        }
    }
}

fn split_call(text: &str) -> Result<(&str, Vec<String>), String> {
    match text.find('(') {
        None => {
            if text.chars().all(|c| c.is_ascii_alphanumeric()) && !text.is_empty() {
                Ok((text, Vec::new()))
            } else {
                Err(format!("malformed strategy entry '{text}'"))
            }
        }
        Some(open) => {
            let name = &text[..open];
            let rest = &text[open + 1..];
            let close =
                rest.rfind(')').ok_or_else(|| format!("missing ')' in strategy '{text}'"))?;
            if !rest[close + 1..].trim().is_empty() {
                return Err(format!("trailing characters after ')' in strategy '{text}'"));
            }
            let inner = &rest[..close];
            let args =
                if inner.trim().is_empty() { Vec::new() } else { split_top_level(inner, text)? };
            Ok((name, args))
        }
    }
}

/// Split an argument list at *top-level* commas only, so nested entries
/// like `mortal(coin(dist, 2), 500)` keep their inner calls intact.
fn split_top_level(inner: &str, whole: &str) -> Result<Vec<String>, String> {
    let mut args = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in inner.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| format!("unbalanced ')' in strategy '{whole}'"))?;
            }
            ',' if depth == 0 => {
                args.push(inner[start..i].trim().to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(format!("unbalanced '(' in strategy '{whole}'"));
    }
    args.push(inner[start..].trim().to_string());
    Ok(args)
}

fn parse_arg(text: &str) -> Result<Arg, String> {
    match text {
        "dist" => Ok(Arg::Dist),
        "agents" => Ok(Arg::Agents),
        _ => text
            .parse::<u64>()
            .map(Arg::Lit)
            .map_err(|_| format!("'{text}' is not an integer, 'dist', or 'agents'")),
    }
}

fn narrow(v: u64, what: &str) -> Result<u32, String> {
    u32::try_from(v).map_err(|_| format!("{what} {v} does not fit in 32 bits"))
}

fn compile_automaton(kind: AutomatonKind, dist: u64, agents: u64) -> Result<(String, Pfa), String> {
    match kind {
        AutomatonKind::Walk => Ok(("automaton(walk)".to_string(), library::random_walk())),
        AutomatonKind::Lazy => Ok(("automaton(lazy)".to_string(), library::lazy_random_walk())),
        AutomatonKind::Line => Ok(("automaton(line)".to_string(), library::straight_line())),
        AutomatonKind::Drift(e) => {
            let e = e.resolve(dist, agents);
            if !(2..=63).contains(&e) {
                return Err(format!("automaton(drift) needs 2 <= e <= 63, got {e}"));
            }
            let pfa =
                library::drift_walk(e as u32).map_err(|err| format!("drift({e}): {err:?}"))?;
            Ok((format!("automaton(drift, {e})"), pfa))
        }
        AutomatonKind::Cycle(n) => {
            let n = n.resolve(dist, agents);
            if !(1..=4096).contains(&n) {
                return Err(format!("automaton(cycle) needs 1 <= len <= 4096, got {n}"));
            }
            Ok((format!("automaton(cycle, {n})"), library::cycle(n as usize)))
        }
        AutomatonKind::Alg1(j) => {
            let j = j.resolve(dist, agents);
            if !(1..=31).contains(&j) {
                return Err(format!("automaton(alg1) needs 1 <= j <= 31, got {j}"));
            }
            let pfa = library::algorithm1(j as u32).map_err(|err| format!("alg1({j}): {err:?}"))?;
            Ok((format!("automaton(alg1, {j})"), pfa))
        }
        AutomatonKind::Pfa(states, ell, seed) => {
            let (states, ell, seed) = (
                states.resolve(dist, agents),
                ell.resolve(dist, agents),
                seed.resolve(dist, agents),
            );
            if !(1..=256).contains(&states) {
                return Err(format!("automaton(pfa) needs 1 <= states <= 256, got {states}"));
            }
            if !(1..=16).contains(&ell) {
                return Err(format!("automaton(pfa) needs 1 <= ell <= 16, got {ell}"));
            }
            // Stream registered as salts::ZOO_PFA_STREAM: the base here
            // is the spec-authored seed, never a trial seed.
            let mut rng = ants_rng::derive_rng(seed, ants_sim::salts::ZOO_PFA_STREAM);
            let pfa = library::random_pfa(states as usize, ell as u32, &mut rng);
            Ok((format!("automaton(pfa, {states}, {ell}, {seed})"), pfa))
        }
    }
}

/// A fully-resolved population entry: concrete parameters, a precompiled
/// automaton where applicable, and a [`StrategyFactory`] builder.
#[derive(Debug, Clone)]
pub struct ResolvedStrategy {
    kind: ResolvedKind,
}

#[derive(Debug, Clone)]
enum ResolvedKind {
    RandomWalk,
    Spiral,
    NonUniform { d: u64 },
    Coin { d: u64, ell: u32 },
    Uniform { ell: u32, n: u64, k: u32 },
    FullyUniform { ell: u32, k: u32 },
    Harmonic { n: u64 },
    Levy { mu: f64, l_max: u64 },
    Automaton { label: String, pfa: Pfa },
    Mortal { inner: Box<ResolvedStrategy>, expiry: u64 },
}

impl ResolvedStrategy {
    /// A human-readable label with the concrete parameters.
    pub fn label(&self) -> String {
        match &self.kind {
            ResolvedKind::RandomWalk => "randomwalk".to_string(),
            ResolvedKind::Spiral => "spiral".to_string(),
            ResolvedKind::NonUniform { d } => format!("nonuniform({d})"),
            ResolvedKind::Coin { d, ell } => format!("coin({d}, {ell})"),
            ResolvedKind::Uniform { ell, n, k } => format!("uniform({ell}, {n}, {k})"),
            ResolvedKind::FullyUniform { ell, k } => format!("fullyuniform({ell}, {k})"),
            ResolvedKind::Harmonic { n } => format!("harmonic({n})"),
            ResolvedKind::Levy { mu, l_max } => format!("levy({mu}, {l_max})"),
            ResolvedKind::Automaton { label, .. } => label.clone(),
            ResolvedKind::Mortal { inner, expiry } => {
                format!("mortal({}, {expiry})", inner.label())
            }
        }
    }

    /// Build the per-agent factory this entry contributes to the
    /// scenario's population.
    ///
    /// Validation already happened in [`ZooStrategy::resolve`], so the
    /// constructors here cannot fail.
    pub fn factory(&self) -> StrategyFactory {
        match self.kind.clone() {
            ResolvedKind::RandomWalk => Box::new(|_| Box::new(RandomWalk::new())),
            ResolvedKind::Spiral => Box::new(|_| Box::new(SpiralSearch::new())),
            ResolvedKind::NonUniform { d } => {
                Box::new(move |_| Box::new(NonUniformSearch::new(d).expect("validated")))
            }
            ResolvedKind::Coin { d, ell } => {
                Box::new(move |_| Box::new(CoinNonUniformSearch::new(d, ell).expect("validated")))
            }
            ResolvedKind::Uniform { ell, n, k } => {
                Box::new(move |_| Box::new(UniformSearch::new(ell, n, k).expect("validated")))
            }
            ResolvedKind::FullyUniform { ell, k } => {
                Box::new(move |_| Box::new(FullyUniformSearch::new(ell, k).expect("validated")))
            }
            ResolvedKind::Harmonic { n } => Box::new(move |_| Box::new(HarmonicSearch::new(n))),
            ResolvedKind::Levy { mu, l_max } => {
                Box::new(move |_| Box::new(LevyWalk::new(mu, l_max)))
            }
            ResolvedKind::Automaton { pfa, .. } => {
                Box::new(move |_| Box::new(AutomatonStrategy::new(pfa.clone())))
            }
            ResolvedKind::Mortal { inner, expiry } => {
                let inner_factory = inner.factory();
                Box::new(move |agent| Box::new(Expiring::new(inner_factory(agent), expiry)))
            }
        }
    }

    /// Whether this entry admits an exact Markov kernel, i.e. whether a
    /// `backend = "dp"` cell containing it can validate. Cheap — no
    /// kernel is built.
    pub fn supports_dp(&self) -> bool {
        match &self.kind {
            ResolvedKind::RandomWalk
            | ResolvedKind::NonUniform { .. }
            | ResolvedKind::Coin { .. }
            | ResolvedKind::Uniform { .. }
            | ResolvedKind::Automaton { .. } => true,
            ResolvedKind::Spiral
            | ResolvedKind::FullyUniform { .. }
            | ResolvedKind::Harmonic { .. }
            | ResolvedKind::Levy { .. } => false,
            ResolvedKind::Mortal { inner, .. } => inner.supports_dp(),
        }
    }

    /// Build the exact [`ants_dp::MarkovKernel`] table for this entry.
    ///
    /// Errors for the non-Markovian zoo (`spiral`, `fullyuniform`,
    /// `harmonic`, `levy`) with a message naming the strategy — the DP
    /// backend never silently falls back to sampling — and for Markovian
    /// entries whose parameters overflow the exact solver's guards.
    pub fn kernel(&self) -> Result<ants_dp::TableKernel, String> {
        let unsupported = |why: &str| {
            Err(format!(
                "strategy '{}' is not supported by the exact backend ({why}); \
                 use backend = \"mc\" for this cell",
                self.label()
            ))
        };
        match &self.kind {
            ResolvedKind::RandomWalk => Ok(ants_dp::randomwalk_kernel()),
            ResolvedKind::NonUniform { d } => {
                ants_dp::nonuniform_kernel(*d).map_err(|e| e.to_string())
            }
            ResolvedKind::Coin { d, ell } => {
                ants_dp::coin_kernel(*d, *ell).map_err(|e| e.to_string())
            }
            ResolvedKind::Uniform { ell, n, k } => {
                ants_dp::uniform_kernel(*ell, *n, *k, ants_dp::UNIFORM_PHASE_CAP)
                    .map_err(|e| e.to_string())
            }
            ResolvedKind::Automaton { label, pfa } => Ok(ants_dp::pfa_kernel(label, pfa)),
            ResolvedKind::Mortal { inner, expiry } => {
                let inner_kernel = inner.kernel().map_err(|e| format!("mortal inner: {e}"))?;
                ants_dp::mortal_kernel(&inner_kernel, *expiry).map_err(|e| e.to_string())
            }
            ResolvedKind::Spiral => {
                unsupported("its move distribution depends on the unbounded path history")
            }
            ResolvedKind::FullyUniform { .. } => {
                unsupported("its phase schedule grows without a finite state bound")
            }
            ResolvedKind::Harmonic { .. } => {
                unsupported("its jump lengths are drawn from a non-dyadic distribution")
            }
            ResolvedKind::Levy { .. } => {
                unsupported("its step lengths are heavy-tailed, not finite-state Markov")
            }
        }
    }
}

/// Convenience: parse and resolve in one step (used by validation paths
/// that do not keep the symbolic form).
pub fn resolve_entry(
    text: &str,
    dist: u64,
    agents: u64,
    context: &str,
) -> Result<ResolvedStrategy, WorkloadError> {
    let sym = ZooStrategy::parse(text)
        .map_err(|message| WorkloadError { context: context.to_string(), message })?;
    sym.resolve(dist, agents)
        .map_err(|message| WorkloadError { context: context.to_string(), message })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_whole_grammar() {
        for (text, want) in [
            ("randomwalk", ZooStrategy::RandomWalk),
            ("spiral", ZooStrategy::Spiral),
            ("nonuniform(16)", ZooStrategy::NonUniform(Arg::Lit(16))),
            ("nonuniform(dist)", ZooStrategy::NonUniform(Arg::Dist)),
            ("coin(dist, 2)", ZooStrategy::Coin(Arg::Dist, Arg::Lit(2))),
            ("uniform(1, agents, 2)", ZooStrategy::Uniform(Arg::Lit(1), Arg::Agents, Arg::Lit(2))),
            ("fullyuniform(2, 2)", ZooStrategy::FullyUniform(Arg::Lit(2), Arg::Lit(2))),
            ("harmonic(agents)", ZooStrategy::Harmonic(Arg::Agents)),
            ("levy(2.0, 256)", ZooStrategy::Levy(2.0, Arg::Lit(256))),
            ("automaton(walk)", ZooStrategy::Automaton(AutomatonKind::Walk)),
            ("automaton(drift, 3)", ZooStrategy::Automaton(AutomatonKind::Drift(Arg::Lit(3)))),
            ("automaton(alg1, 4)", ZooStrategy::Automaton(AutomatonKind::Alg1(Arg::Lit(4)))),
            (
                "automaton(pfa, 4, 2, 7)",
                ZooStrategy::Automaton(AutomatonKind::Pfa(Arg::Lit(4), Arg::Lit(2), Arg::Lit(7))),
            ),
            (
                "mortal(randomwalk, 500)",
                ZooStrategy::Mortal(Box::new(ZooStrategy::RandomWalk), Arg::Lit(500)),
            ),
            (
                "mortal(nonuniform(dist), 1000)",
                ZooStrategy::Mortal(Box::new(ZooStrategy::NonUniform(Arg::Dist)), Arg::Lit(1000)),
            ),
            (
                "mortal(coin(dist, 2), agents)",
                ZooStrategy::Mortal(
                    Box::new(ZooStrategy::Coin(Arg::Dist, Arg::Lit(2))),
                    Arg::Agents,
                ),
            ),
            (
                "mortal(mortal(spiral, 9), 100)",
                ZooStrategy::Mortal(
                    Box::new(ZooStrategy::Mortal(Box::new(ZooStrategy::Spiral), Arg::Lit(9))),
                    Arg::Lit(100),
                ),
            ),
        ] {
            assert_eq!(ZooStrategy::parse(text).unwrap(), want, "{text}");
            // Canonical rendering re-parses to the same value.
            let rendered = want.to_string();
            assert_eq!(ZooStrategy::parse(&rendered).unwrap(), want, "{rendered}");
        }
    }

    #[test]
    fn rejects_malformed_entries() {
        for text in [
            "",
            "bogus",
            "nonuniform",
            "nonuniform()",
            "nonuniform(2, 3)",
            "nonuniform(x)",
            "levy(fast, 10)",
            "automaton",
            "automaton()",
            "automaton(bogus)",
            "automaton(drift)",
            "randomwalk(1)",
            "spiral(",
            "spiral)x",
            "mortal",
            "mortal(randomwalk)",
            "mortal(randomwalk, 10, 20)",
            "mortal(bogus, 10)",
            "mortal(coin(dist, 10)", // unbalanced nesting
        ] {
            assert!(ZooStrategy::parse(text).is_err(), "'{text}' should not parse");
        }
    }

    #[test]
    fn mortal_resolution_validates_expiry_and_inner() {
        let sym = ZooStrategy::parse("mortal(nonuniform(dist), 500)").unwrap();
        let r = sym.resolve(16, 4).unwrap();
        assert_eq!(r.label(), "mortal(nonuniform(16), 500)");
        // Zero expiry (e.g. via a literal) is rejected at resolve time.
        assert!(ZooStrategy::parse("mortal(spiral, 0)").unwrap().resolve(8, 2).is_err());
        let too_big = format!("mortal(spiral, {})", MAX_MORTAL_EXPIRY + 1);
        assert!(ZooStrategy::parse(&too_big).unwrap().resolve(8, 2).is_err());
        // Inner validation still applies through the wrapper.
        assert!(ZooStrategy::parse("mortal(nonuniform(1), 10)").unwrap().resolve(8, 2).is_err());
        // dist/agents bind inside and as the expiry.
        let sym = ZooStrategy::parse("mortal(spiral, agents)").unwrap();
        assert_eq!(sym.resolve(8, 6).unwrap().label(), "mortal(spiral, 6)");
    }

    #[test]
    fn mortal_factories_halt_after_expiry_moves() {
        let r = ZooStrategy::parse("mortal(randomwalk, 12)").unwrap().resolve(8, 2).unwrap();
        let factory = r.factory();
        let mut s = factory(0);
        let mut rng = ants_rng::derive_rng(4, 0);
        let mut moves = 0u64;
        for _ in 0..100 {
            if s.step(&mut rng).is_move() {
                moves += 1;
            }
        }
        assert_eq!(moves, 12, "the wrapper halts after exactly the expiry");
        assert!(s.is_halted());
        // The wrapper charges the lifetime counter in its footprint.
        let bare = ZooStrategy::parse("randomwalk").unwrap().resolve(8, 2).unwrap();
        let bare_bits = bare.factory()(0).selection_complexity().memory_bits();
        assert_eq!(s.selection_complexity().memory_bits(), bare_bits + 4);
    }

    #[test]
    fn dist_and_agents_bind_at_resolve_time() {
        let sym = ZooStrategy::parse("nonuniform(dist)").unwrap();
        let r = sym.resolve(16, 4).unwrap();
        assert_eq!(r.label(), "nonuniform(16)");
        let r = sym.resolve(64, 4).unwrap();
        assert_eq!(r.label(), "nonuniform(64)");
        let sym = ZooStrategy::parse("harmonic(agents)").unwrap();
        assert_eq!(sym.resolve(16, 8).unwrap().label(), "harmonic(8)");
    }

    #[test]
    fn resolution_validates_ranges() {
        assert!(ZooStrategy::parse("nonuniform(1)").unwrap().resolve(0, 1).is_err());
        assert!(ZooStrategy::parse("uniform(0, 2, 2)").unwrap().resolve(8, 2).is_err());
        assert!(ZooStrategy::parse("levy(9.0, 10)").unwrap().resolve(8, 2).is_err());
        assert!(ZooStrategy::parse("automaton(drift, 1)").unwrap().resolve(8, 2).is_err());
        assert!(ZooStrategy::parse("automaton(alg1, 40)").unwrap().resolve(8, 2).is_err());
        assert!(ZooStrategy::parse("automaton(pfa, 4, 99, 7)").unwrap().resolve(8, 2).is_err());
        // `dist` binding can push a parameter out of range: caught late.
        assert!(ZooStrategy::parse("nonuniform(dist)").unwrap().resolve(1, 4).is_err());
    }

    #[test]
    fn factories_build_working_strategies() {
        for text in [
            "randomwalk",
            "spiral",
            "nonuniform(8)",
            "coin(8, 1)",
            "uniform(1, 4, 2)",
            "fullyuniform(2, 2)",
            "harmonic(4)",
            "levy(2.0, 64)",
            "automaton(walk)",
            "automaton(alg1, 3)",
            "automaton(pfa, 4, 2, 7)",
            "mortal(randomwalk, 32)",
            "mortal(nonuniform(dist), 1000)",
        ] {
            let r = ZooStrategy::parse(text).unwrap().resolve(8, 4).unwrap();
            let factory = r.factory();
            let mut s = factory(0);
            let mut rng = ants_rng::derive_rng(1, 0);
            for _ in 0..64 {
                let _ = s.step(&mut rng);
            }
            let chi = s.selection_complexity();
            assert!(chi.chi() >= 0.0, "{text}");
        }
    }

    #[test]
    fn pfa_entries_are_seed_deterministic() {
        let a = ZooStrategy::parse("automaton(pfa, 6, 3, 11)").unwrap().resolve(8, 2).unwrap();
        let b = ZooStrategy::parse("automaton(pfa, 6, 3, 11)").unwrap().resolve(8, 2).unwrap();
        let mut ra = ants_rng::derive_rng(5, 0);
        let mut rb = ants_rng::derive_rng(5, 0);
        let (mut sa, mut sb) = (a.factory()(0), b.factory()(0));
        for _ in 0..256 {
            assert_eq!(sa.step(&mut ra), sb.step(&mut rb));
        }
    }
}
