//! A minimal, dependency-free TOML-subset parser producing the
//! [`ants_sim::json::Json`] value model.
//!
//! The workspace builds fully offline, so workload specs cannot lean on
//! a real TOML crate. This parser covers the subset the workload format
//! needs — and rejects everything else loudly:
//!
//! * `key = value` pairs with bare keys (`[A-Za-z0-9_-]+`);
//! * `[table]` / `[a.b]` headers and `[[array-of-tables]]` headers;
//! * basic strings (`"…"` with `\" \\ \n \r \t \uXXXX` escapes),
//!   integers, floats, booleans;
//! * arrays `[v, v, …]`, which may span lines and contain comments;
//! * single-line inline tables `{ k = v, … }`;
//! * `#` comments and blank lines.
//!
//! Out of scope (use the forms above instead): dotted keys, quoted keys,
//! multi-line/literal strings, dates, `+`/`_` digit separators, and
//! nested `[[a.b]]` under an array element.
//!
//! Numbers map to [`Json::Num`] (`f64`) — workload quantities are well
//! inside the exact-integer range. Object keys keep document order, so a
//! serializer round-trip test can assert field order.

use ants_sim::json::Json;
use std::fmt;

/// A TOML parse failure: 1-based line plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TOML error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

/// Parse a TOML-subset document into a [`Json`] object tree.
pub fn parse(text: &str) -> Result<Json, TomlError> {
    let mut p =
        Parser { bytes: text.as_bytes(), pos: 0, defined: std::collections::HashSet::new() };
    let mut root = Json::Obj(Vec::new());
    // Path from the root to the table new `key = value` pairs land in.
    let mut current: Vec<Seg> = Vec::new();
    loop {
        p.skip_trivia();
        let Some(b) = p.peek() else { break };
        if b == b'[' {
            current = p.header(&mut root)?;
        } else {
            let (key, value) = p.key_value()?;
            let table = node_at(&mut root, &current).map_err(|m| p.err(&m))?;
            insert_unique(table, key, value, &p)?;
            p.end_of_line()?;
        }
    }
    Ok(root)
}

/// One step of a table path: a named key, or an index into an
/// array-of-tables (always "the last element" at parse time, but stored
/// explicitly so the path stays valid as the tree grows).
#[derive(Debug, Clone)]
enum Seg {
    Key(String),
    Index(usize),
}

/// Navigate (without creating) to the table a path points at.
///
/// The paths are built by this parser, so a failure here means the tree
/// and the path disagree — but the daemon use case (arbitrary specs over
/// a socket) cannot afford a panic on any input, however malformed, so
/// every lookup is fallible and surfaces as a line-numbered
/// [`TomlError`] at the call site instead of killing the process.
fn node_at<'a>(root: &'a mut Json, path: &[Seg]) -> Result<&'a mut Json, String> {
    let mut node = root;
    for seg in path {
        node = match (seg, node) {
            (Seg::Key(k), Json::Obj(fields)) => {
                match fields.iter_mut().find(|(name, _)| name == k) {
                    Some((_, value)) => value,
                    None => return Err(format!("table path lost key '{k}'")),
                }
            }
            (Seg::Index(i), Json::Arr(items)) => match items.get_mut(*i) {
                Some(item) => item,
                None => return Err(format!("table path lost array element {i}")),
            },
            (Seg::Key(k), _) => return Err(format!("'{k}' no longer names a table")),
            (Seg::Index(i), _) => return Err(format!("element {i} no longer names an array")),
        };
    }
    Ok(node)
}

fn insert_unique(table: &mut Json, key: String, value: Json, p: &Parser) -> Result<(), TomlError> {
    let Json::Obj(fields) = table else {
        return Err(p.err(&format!("'{key}' would overwrite a non-table value")));
    };
    if fields.iter().any(|(name, _)| *name == key) {
        return Err(p.err(&format!("duplicate key '{key}'")));
    }
    fields.push((key, value));
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Resolved paths of plain `[table]` headers already opened (array
    /// indices included, so `[a.b]` under different `[[a]]` elements
    /// stay distinct). Real TOML rejects table redefinition; merging
    /// two `[defaults]` sections silently would hide merge accidents.
    defined: std::collections::HashSet<String>,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> TomlError {
        let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        TomlError { line, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Skip spaces and tabs (not newlines).
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    /// Skip whitespace, newlines, and comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\n' | b'\r') => self.pos += 1,
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    /// After a value or header: only trailing whitespace, a comment, then
    /// end of line or file.
    fn end_of_line(&mut self) -> Result<(), TomlError> {
        self.skip_ws();
        if self.peek() == Some(b'#') {
            while !matches!(self.peek(), None | Some(b'\n')) {
                self.pos += 1;
            }
        }
        match self.peek() {
            None => Ok(()),
            Some(b'\n') | Some(b'\r') => Ok(()),
            Some(c) => Err(self.err(&format!("unexpected '{}' after value", c as char))),
        }
    }

    fn bare_key(&mut self) -> Result<String, TomlError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'-')) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a bare key ([A-Za-z0-9_-]+)"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    /// Parse `[a.b]` or `[[a.b]]`; create the tables; return the new
    /// current path.
    fn header(&mut self, root: &mut Json) -> Result<Vec<Seg>, TomlError> {
        self.pos += 1; // consume '['
        let array = self.peek() == Some(b'[');
        if array {
            self.pos += 1;
        }
        let mut keys = Vec::new();
        loop {
            self.skip_ws();
            keys.push(self.bare_key()?);
            self.skip_ws();
            match self.peek() {
                Some(b'.') => self.pos += 1,
                Some(b']') => break,
                _ => return Err(self.err("expected '.' or ']' in table header")),
            }
        }
        self.pos += 1; // consume ']'
        if array {
            if self.peek() != Some(b']') {
                return Err(self.err("expected ']]' to close an array-of-tables header"));
            }
            self.pos += 1;
        }
        self.end_of_line()?;

        // Walk/create intermediate tables; the last key is a table or an
        // array-of-tables element.
        let mut path: Vec<Seg> = Vec::new();
        let (intermediate, last) = keys.split_at(keys.len() - 1);
        for key in intermediate {
            path = self.descend(root, path, key, false, false)?;
        }
        let path = self.descend(root, path, &last[0], array, true)?;
        if !array {
            let resolved = path
                .iter()
                .map(|seg| match seg {
                    Seg::Key(k) => k.clone(),
                    Seg::Index(i) => format!("#{i}"),
                })
                .collect::<Vec<_>>()
                .join(".");
            if !self.defined.insert(resolved) {
                return Err(self.err(&format!("table [{}] is defined twice", keys.join("."))));
            }
        }
        Ok(path)
    }

    /// Get-or-create `key` under the table at `path`; returns the
    /// extended path. With `array`, `key` is an array of tables and a
    /// fresh element is appended.
    fn descend(
        &self,
        root: &mut Json,
        mut path: Vec<Seg>,
        key: &str,
        array: bool,
        last: bool,
    ) -> Result<Vec<Seg>, TomlError> {
        let node = node_at(root, &path).map_err(|m| self.err(&m))?;
        let Json::Obj(fields) = node else {
            return Err(self.err(&format!("'{key}' would nest under a non-table value")));
        };
        let idx = match fields.iter().position(|(name, _)| name == key) {
            Some(i) => i,
            None => {
                let fresh = if array { Json::Arr(Vec::new()) } else { Json::Obj(Vec::new()) };
                fields.push((key.to_string(), fresh));
                fields.len() - 1
            }
        };
        let (_, existing) = &mut fields[idx];
        if array {
            let Json::Arr(items) = existing else {
                return Err(self.err(&format!("'{key}' is not an array of tables")));
            };
            items.push(Json::Obj(Vec::new()));
            path.push(Seg::Key(key.to_string()));
            path.push(Seg::Index(items.len() - 1));
        } else {
            match existing {
                Json::Obj(_) => path.push(Seg::Key(key.to_string())),
                // An intermediate segment crossing an array of tables
                // means "the latest element" (`[cells.sweep]` after
                // `[[cells]]`); re-opening one as a *final* plain header
                // (`[cells]`) is a redefinition and rejected, as in
                // real TOML.
                Json::Arr(items) if !last && !items.is_empty() => {
                    let idx = items.len() - 1;
                    path.push(Seg::Key(key.to_string()));
                    path.push(Seg::Index(idx));
                }
                Json::Arr(_) => {
                    return Err(self
                        .err(&format!("'{key}' is an array of tables — use [[{key}]] to append")))
                }
                _ => return Err(self.err(&format!("'{key}' is already a non-table value"))),
            }
        }
        Ok(path)
    }

    fn key_value(&mut self) -> Result<(String, Json), TomlError> {
        let key = self.bare_key()?;
        self.skip_ws();
        if self.peek() != Some(b'=') {
            return Err(self.err(&format!("expected '=' after key '{key}'")));
        }
        self.pos += 1;
        self.skip_ws();
        let value = self.value()?;
        Ok((key, value))
    }

    fn value(&mut self) -> Result<Json, TomlError> {
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.inline_table(),
            Some(b't') | Some(b'f') => self.boolean(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value (string, number, boolean, array, or table)")),
        }
    }

    fn boolean(&mut self) -> Result<Json, TomlError> {
        for (word, value) in [("true", true), ("false", false)] {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                return Ok(Json::Bool(value));
            }
        }
        Err(self.err("expected 'true' or 'false'"))
    }

    fn number(&mut self) -> Result<Json, TomlError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number span is ASCII by construction");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, TomlError> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'\n') => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let end = self.pos + 5;
                            if end > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let digits = std::str::from_utf8(&self.bytes[self.pos + 1..end])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let cp = u32::from_str_radix(digits, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?,
                            );
                            self.pos = end - 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Arrays may span lines and contain comments.
    fn array(&mut self) -> Result<Json, TomlError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            match self.peek() {
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                None => return Err(self.err("unterminated array")),
                _ => {}
            }
            items.push(self.value()?);
            self.skip_trivia();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    /// Inline tables are single-line: `{ k = v, k2 = v2 }`.
    fn inline_table(&mut self) -> Result<Json, TomlError> {
        self.pos += 1; // consume '{'
        let mut table = Json::Obj(Vec::new());
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(table);
        }
        loop {
            self.skip_ws();
            let (key, value) = self.key_value()?;
            insert_unique(&mut table, key, value, self)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(table);
                }
                _ => return Err(self.err("expected ',' or '}' in inline table")),
            }
        }
    }
}

/// Escape a string for a TOML basic string (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Missing keys resolve to `Null` so the assertion that follows
    /// fails with the actual-vs-expected values instead of a panic
    /// inside the helper.
    fn get<'a>(doc: &'a Json, path: &[&str]) -> &'a Json {
        path.iter().fold(doc, |node, key| node.get(key).unwrap_or(&Json::Null))
    }

    #[test]
    fn parses_scalars_and_tables() {
        let doc = parse(
            "name = \"zoo\"\ncount = 3\nratio = 1.5\nflag = true\n\n[defaults]\ntrials = 30\n",
        )
        .unwrap();
        assert_eq!(get(&doc, &["name"]).as_str(), Some("zoo"));
        assert_eq!(get(&doc, &["count"]).as_f64(), Some(3.0));
        assert_eq!(get(&doc, &["ratio"]).as_f64(), Some(1.5));
        assert_eq!(get(&doc, &["flag"]), &Json::Bool(true));
        assert_eq!(get(&doc, &["defaults", "trials"]).as_f64(), Some(30.0));
    }

    #[test]
    fn parses_arrays_of_tables_and_inline_tables() {
        let text = "\
[[cells]]
name = \"a\"
target = { model = \"ball\", dist = 16 }

[[cells]]
name = \"b\"
population = [
  { strategy = \"randomwalk\", weight = 1 }, # comment
  { strategy = \"spiral\", weight = 2 },
]
";
        let doc = parse(text).unwrap();
        let cells = get(&doc, &["cells"]).as_array().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(get(&cells[0], &["target", "model"]).as_str(), Some("ball"));
        let pop = cells[1].get("population").unwrap().as_array().unwrap();
        assert_eq!(pop.len(), 2);
        assert_eq!(pop[1].get("weight").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn nested_headers_and_comments() {
        let doc = parse("# top\n[a.b]\nx = 1 # trailing\n[a.c]\ny = 2\n").unwrap();
        assert_eq!(get(&doc, &["a", "b", "x"]).as_f64(), Some(1.0));
        assert_eq!(get(&doc, &["a", "c", "y"]).as_f64(), Some(2.0));
    }

    #[test]
    fn sub_table_of_array_element() {
        let doc = parse("[[cells]]\nname = \"a\"\n[cells.sweep]\nn = [1, 2]\n").unwrap();
        let cells = get(&doc, &["cells"]).as_array().unwrap();
        let n = get(&cells[0], &["sweep", "n"]).as_array().unwrap();
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te — ünïcode";
        let doc = parse(&format!("s = \"{}\"", escape(nasty))).unwrap();
        assert_eq!(doc.get("s").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbroken = \n").unwrap_err();
        assert_eq!(e.line, 2, "{e}");
        assert!(parse("dup = 1\ndup = 2\n").unwrap_err().to_string().contains("duplicate"));
        assert!(parse("x = 1 y = 2\n").is_err());
        assert!(parse("[unclosed\n").is_err());
        assert!(parse("x = \"unterminated\n").is_err());
        assert!(parse("[a]\n[a.b.\n").is_err());
    }

    #[test]
    fn rejects_table_redefinition() {
        // Two [defaults] sections (a classic merge accident) must not
        // silently merge.
        let e = parse("[defaults]\na = 1\n[defaults]\nb = 2\n").unwrap_err();
        assert!(e.to_string().contains("defined twice"), "{e}");
        // Re-opening an array of tables as a plain table is rejected...
        let e = parse("[[cells]]\nx = 1\n[cells]\ny = 2\n").unwrap_err();
        assert!(e.to_string().contains("[[cells]]"), "{e}");
        // ...but sub-tables under *different* array elements are fine.
        let doc =
            parse("[[cells]]\n[cells.sweep]\nn = 1\n[[cells]]\n[cells.sweep]\nn = 2\n").unwrap();
        assert_eq!(doc.get("cells").unwrap().as_array().unwrap().len(), 2);
        // The same element defining [cells.sweep] twice is not.
        assert!(parse("[[cells]]\n[cells.sweep]\nn = 1\n[cells.sweep]\nm = 2\n").is_err());
    }

    #[test]
    fn rejects_out_of_subset_constructs() {
        // Dotted keys are out of subset.
        assert!(parse("a.b = 1\n").is_err());
        // Re-opening a scalar as a table.
        assert!(parse("a = 1\n[a]\nb = 2\n").is_err());
        // Array-of-tables clash with a scalar.
        assert!(parse("a = 1\n[[a]]\nb = 2\n").is_err());
    }

    #[test]
    fn empty_document_is_an_empty_table() {
        assert_eq!(parse("").unwrap(), Json::Obj(Vec::new()));
        assert_eq!(parse("\n# only comments\n\n").unwrap(), Json::Obj(Vec::new()));
    }
}
