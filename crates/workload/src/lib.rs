//! # ants-workload — declarative workload specs
//!
//! Every scenario the battery can run, as a data file: a TOML-subset
//! spec names a grid of cells — agent count, target model(s), move
//! budget, a **heterogeneous strategy population** (weighted "zoo"
//! entries like `nonuniform(dist)` or `automaton(alg1, 4)`), trial
//! counts, seeds — plus `sweep` axes whose cross product expands each
//! cell into many concrete scenarios. The pipeline:
//!
//! ```text
//! .toml text ──toml::parse──▶ Json tree ──WorkloadSpec::parse──▶ spec
//!     spec ──WorkloadPlan::expand──▶ validated plan (axes crossed,
//!         dist/agents bound, every scenario proven constructible)
//!     plan ──PlannedCell::job──▶ ants_sim::SweepJob per cell
//! ```
//!
//! Determinism end to end: expansion order, per-cell seed tags, and the
//! per-agent population assignment (drawn from the trial seed inside
//! `ants_sim`) are all pure functions of the spec text and the base
//! seed — results are byte-identical at every thread count, granularity,
//! and chunk size, like everything else in the engine.
//!
//! ```
//! let text = r#"
//! name = "demo"
//! [defaults]
//! trials = 4
//! [[cells]]
//! name = "mixed"
//! agents = 4
//! target = { model = "ball", dist = 8 }
//! population = [
//!   { strategy = "nonuniform(dist)", weight = 2 },
//!   { strategy = "randomwalk", weight = 1 },
//! ]
//! "#;
//! let spec = ants_workload::WorkloadSpec::parse(text).unwrap();
//! let plan = ants_workload::WorkloadPlan::expand(&spec).unwrap();
//! let jobs = plan.jobs(false, 0).unwrap();
//! let outcomes = ants_sim::run_sweep(&jobs, Some(1));
//! assert_eq!(outcomes.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dp;
pub mod hash;
pub mod plan;
pub mod spec;
pub mod toml;
pub mod zoo;

use std::fmt;
use std::path::Path;

pub use hash::Fnv128;
pub use plan::{PlannedCell, WorkloadPlan};
pub use spec::{CellSpec, Defaults, Sweep, TargetSpec, WorkloadSpec, ZooEntry};
pub use toml::TomlError;
pub use zoo::{Arg, AutomatonKind, ResolvedStrategy, ZooStrategy};

/// A workload validation failure: where in the spec, and what went
/// wrong. Every message names the key or value to fix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadError {
    /// Where: a spec path like `cells[2].population[0].strategy`.
    pub context: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.context, self.message)
    }
}

impl std::error::Error for WorkloadError {}

/// Parse and expand a spec file in one step.
///
/// # Errors
///
/// I/O failures, TOML-subset syntax errors, schema violations, and
/// expansion/validation failures all come back as a [`WorkloadError`]
/// naming the file.
pub fn load(path: &Path) -> Result<WorkloadPlan, WorkloadError> {
    let text = std::fs::read_to_string(path).map_err(|e| WorkloadError {
        context: path.display().to_string(),
        message: format!("cannot read: {e}"),
    })?;
    let spec = WorkloadSpec::parse(&text).map_err(|e| WorkloadError {
        context: format!("{}: {}", path.display(), e.context),
        message: e.message,
    })?;
    WorkloadPlan::expand(&spec).map_err(|e| WorkloadError {
        context: format!("{}: {}", path.display(), e.context),
        message: e.message,
    })
}
