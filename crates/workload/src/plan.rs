//! Expansion: a parsed [`WorkloadSpec`] becomes a validated
//! [`WorkloadPlan`] — one [`PlannedCell`] per point of each cell's sweep
//! cross product, every symbolic strategy argument bound, every scenario
//! proven constructible (via `ScenarioBuilder::try_build`).
//!
//! Determinism: expansion order is the document order of cells crossed
//! with the axes in the fixed order *target → agents → dist →
//! move_budget* (later axes vary fastest), and each expanded cell's seed
//! tag is drawn from a `SplitMix64` stream over the spec seed at the
//! cell's global expansion ordinal — unless the cell carries an explicit
//! `seed`, in which case its tags come from a cell-local stream over
//! that value and survive edits elsewhere in the spec. Two parses of the
//! same file produce identical plans, trial seeds and all.

use crate::spec::{CellSpec, Defaults, TargetSpec, WorkloadSpec};
use crate::zoo::ResolvedStrategy;
use crate::WorkloadError;
use ants_dp::{Backend, DpMode};
use ants_grid::{Point, Rect, TargetPlacement};
use ants_rng::{Rng64, SplitMix64};
use ants_sim::{Metric, MetricSet, ObservedJob, ObserverSpec, Scenario, SweepJob};

// Salt folded into the spec seed before deriving per-cell seed tags —
// registered in `ants_sim::salts` so new engine streams cannot alias it.
const PLAN_SEED_SALT: u64 = ants_sim::salts::WORKLOAD_PLAN_SALT;

/// Expansion ceiling: a typo'd sweep axis should fail validation, not
/// allocate a million scenarios.
const MAX_CELLS: usize = 4096;

/// One concrete, validated scenario of the plan.
#[derive(Debug)]
pub struct PlannedCell {
    /// Cell label: the spec cell name plus one suffix per swept axis.
    pub label: String,
    /// Agent count `n`.
    pub agents: u64,
    /// The concrete target model.
    pub target: TargetSpec,
    /// Per-agent move budget.
    pub move_budget: u64,
    /// Per-guess move ceiling, if any.
    pub guess_move_ceiling: Option<u64>,
    /// Trials at standard effort.
    pub trials: u64,
    /// Trials at smoke effort.
    pub smoke_trials: u64,
    /// The seed tag the runner XORs with its base seed.
    pub seed_tag: u64,
    /// Evaluation backend: Monte Carlo sampling or the exact DP engine
    /// (validated at expansion time — a `"dp"` cell only contains
    /// Markovian strategies).
    pub backend: Backend,
    /// Exact-backend table representation (cell override, then the
    /// defaults, then `auto`). Carried even by `"mc"` cells (they ignore
    /// it) so sweeps can flip backends without re-planning.
    pub dp_mode: DpMode,
    /// The resolved weighted population.
    pub population: Vec<(u64, ResolvedStrategy)>,
}

impl PlannedCell {
    /// The target distance `D` (max-norm) the cell's zoo entries bound
    /// their `dist` argument to.
    pub fn dist(&self) -> u64 {
        match self.target {
            TargetSpec::Corner { dist } | TargetSpec::Ball { dist } | TargetSpec::Ring { dist } => {
                dist
            }
            TargetSpec::Fixed { x, y } => x.unsigned_abs().max(y.unsigned_abs()),
        }
    }

    /// Trials at the given effort.
    pub fn trials_at(&self, smoke: bool) -> u64 {
        if smoke {
            self.smoke_trials
        } else {
            self.trials
        }
    }

    /// The engine-level target placement.
    pub fn placement(&self) -> TargetPlacement {
        match self.target {
            TargetSpec::Corner { dist } => TargetPlacement::Corner { distance: dist },
            TargetSpec::Ball { dist } => TargetPlacement::UniformInBall { distance: dist },
            TargetSpec::Ring { dist } => TargetPlacement::Ring { distance: dist },
            TargetSpec::Fixed { x, y } => TargetPlacement::Fixed(Point::new(x, y)),
        }
    }

    /// `corner(16)`-style target label for reports.
    pub fn target_label(&self) -> String {
        match self.target {
            TargetSpec::Fixed { x, y } => format!("fixed({x},{y})"),
            _ => format!("{}({})", self.target.model(), self.dist()),
        }
    }

    /// `2:nonuniform(16) + 1:randomwalk`-style population label.
    pub fn population_label(&self) -> String {
        self.population
            .iter()
            .map(|(w, s)| format!("{w}:{}", s.label()))
            .collect::<Vec<_>>()
            .join(" + ")
    }

    /// Build the cell's scenario: the resolved population as a weighted
    /// mix (a one-entry mix assigns everyone entry 0, so no special
    /// case is needed).
    pub fn scenario(&self) -> Result<Scenario, WorkloadError> {
        let mut b = Scenario::builder()
            .agents(self.agents as usize)
            .target(self.placement())
            .move_budget(self.move_budget);
        if let Some(c) = self.guess_move_ceiling {
            b = b.guess_move_ceiling(c);
        }
        for (w, s) in &self.population {
            b = b.mix_boxed(*w, s.factory());
        }
        b.try_build().map_err(|e| WorkloadError {
            context: format!("cell '{}'", self.label),
            message: e.to_string(),
        })
    }

    /// The cell's [`SweepJob`] at the given effort and base seed.
    pub fn job(&self, smoke: bool, base_seed: u64) -> Result<SweepJob, WorkloadError> {
        Ok(SweepJob::new(self.scenario()?, self.trials_at(smoke), base_seed ^ self.seed_tag))
    }

    /// The round horizon of the cell's observed runs: the move budget
    /// read as a transition count (for the Theorem 4.1 measurements the
    /// spec sets `move_budget = D²`, which is exactly the theorem's step
    /// horizon).
    pub fn observe_rounds(&self) -> u64 {
        self.move_budget
    }

    /// The observer specs `metrics` induces for this cell, in canonical
    /// [`Metric::ALL`] order: coverage-style observers measure
    /// `Rect::ball(dist)` (the theorem's candidate region), and the
    /// round trace samples at quarter-horizon stride.
    pub fn observer_specs(&self, metrics: MetricSet) -> Vec<ObserverSpec> {
        let bounds = Rect::ball(self.dist());
        let rounds = self.observe_rounds();
        metrics
            .iter()
            .map(|m| match m {
                Metric::Coverage => ObserverSpec::JointCoverage { bounds },
                Metric::FirstVisit => ObserverSpec::FirstVisitTimes { bounds },
                Metric::RoundTrace => {
                    ObserverSpec::RoundTrace { bounds, stride: (rounds / 4).max(1) }
                }
                Metric::Chi => ObserverSpec::ChiFootprint,
                Metric::FoundRound => ObserverSpec::FirstFinder,
            })
            .collect()
    }

    /// The cell's [`ObservedJob`] for `metrics` at the given effort and
    /// base seed — same trial seeds as [`PlannedCell::job`], so trial
    /// metrics and observations describe the same random executions.
    pub fn observed_job(
        &self,
        smoke: bool,
        base_seed: u64,
        metrics: MetricSet,
    ) -> Result<ObservedJob, WorkloadError> {
        Ok(ObservedJob::new(
            self.scenario()?,
            self.trials_at(smoke),
            base_seed ^ self.seed_tag,
            self.observe_rounds(),
            self.observer_specs(metrics),
        ))
    }
}

/// A validated, fully-expanded workload.
#[derive(Debug)]
pub struct WorkloadPlan {
    /// The spec's display name.
    pub name: String,
    /// Report key: the name sanitized to `[a-z0-9_-]`.
    pub key: String,
    /// The spec's description.
    pub description: String,
    /// The spec's observation metrics (empty = trial metrics only).
    pub metrics: MetricSet,
    /// The expanded cells, in expansion order.
    pub cells: Vec<PlannedCell>,
}

impl WorkloadPlan {
    /// Expand and validate a parsed spec.
    pub fn expand(spec: &WorkloadSpec) -> Result<WorkloadPlan, WorkloadError> {
        let mut cells = Vec::new();
        let mut seed_stream = SplitMix64::new(spec.defaults.seed.unwrap_or(0) ^ PLAN_SEED_SALT);
        for cell in &spec.cells {
            expand_cell(cell, &spec.defaults, &mut cells, &mut seed_stream)?;
        }
        // Prove every scenario constructible now, so `workload validate`
        // and experiment construction catch bad ceilings/budgets before
        // anything runs. This is the single validation point:
        // `WorkloadExperiment` trusts plans produced here.
        for c in &cells {
            let _ = c.scenario()?;
        }
        // Labels encode every swept axis, so a duplicate label means two
        // byte-identical parameter combinations — e.g. a `dist` axis
        // clobbering the distances declared in a `target` axis, or a
        // repeated value inside one axis. That silently double-spends
        // trials and produces indistinguishable report rows; reject it.
        let mut labels: Vec<&str> = cells.iter().map(|c| c.label.as_str()).collect();
        labels.sort_unstable();
        if let Some(w) = labels.windows(2).find(|w| w[0] == w[1]) {
            return Err(WorkloadError {
                context: "cells".to_string(),
                message: format!(
                    "expansion produced duplicate cells '{}' — two sweep points resolve to the \
                     same parameters (a 'dist' axis overrides the distances of every 'target' \
                     axis entry; vary the models, not just their dists, or drop one axis)",
                    w[0]
                ),
            });
        }
        let key = sanitize_key(&spec.name);
        // The key doubles as the report file name: an empty key would
        // write a hidden `.json` that validate/trend silently skip, and
        // an `e<N>` key would overwrite a built-in experiment's report.
        if key.is_empty() {
            return Err(WorkloadError {
                context: "spec.name".to_string(),
                message: format!(
                    "name '{}' sanitizes to an empty report key — include at least one \
                     alphanumeric character",
                    spec.name
                ),
            });
        }
        if key
            .strip_prefix('e')
            .is_some_and(|n| !n.is_empty() && n.bytes().all(|b| b.is_ascii_digit()))
        {
            return Err(WorkloadError {
                context: "spec.name".to_string(),
                message: format!(
                    "report key '{key}' is reserved for the built-in e<N> experiments — \
                     rename the workload"
                ),
            });
        }
        Ok(WorkloadPlan {
            name: spec.name.clone(),
            key,
            description: spec.description.clone(),
            metrics: spec.metrics,
            cells,
        })
    }

    /// Total trials at the given effort (workload previews).
    pub fn total_trials(&self, smoke: bool) -> u64 {
        self.cells.iter().map(|c| c.trials_at(smoke)).sum()
    }

    /// The jobs of the whole plan at the given effort/base seed, in cell
    /// order — hand these to `ants_sim::run_sweep_with`.
    pub fn jobs(&self, smoke: bool, base_seed: u64) -> Result<Vec<SweepJob>, WorkloadError> {
        self.cells.iter().map(|c| c.job(smoke, base_seed)).collect()
    }

    /// The observed jobs of the whole plan for `metrics`, in cell order —
    /// hand these to `ants_sim::run_observed_sweep`. Callers typically
    /// pass `self.metrics` joined with any runner-level additions.
    pub fn observed_jobs(
        &self,
        smoke: bool,
        base_seed: u64,
        metrics: MetricSet,
    ) -> Result<Vec<ObservedJob>, WorkloadError> {
        self.cells.iter().map(|c| c.observed_job(smoke, base_seed, metrics)).collect()
    }
}

/// Lowercase and map everything outside `[a-z0-9_-]` to `-` (the report
/// key doubles as the JSON file name).
fn sanitize_key(name: &str) -> String {
    let mut key: String = name
        .to_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
        .collect();
    while key.contains("--") {
        key = key.replace("--", "-");
    }
    key.trim_matches('-').to_string()
}

fn expand_cell(
    cell: &CellSpec,
    defaults: &Defaults,
    out: &mut Vec<PlannedCell>,
    seed_stream: &mut SplitMix64,
) -> Result<(), WorkloadError> {
    let ctx = |message: String| WorkloadError { context: format!("cell '{}'", cell.name), message };

    // Base targets: the `target` sweep axis replaces the scalar field.
    let targets: Vec<TargetSpec> = if !cell.sweep.target.is_empty() {
        if cell.target.is_some() {
            return Err(ctx(
                "cell sets both 'target' and 'sweep.target' — use exactly one".to_string()
            ));
        }
        cell.sweep.target.clone()
    } else {
        vec![cell
            .target
            .ok_or_else(|| ctx("cell needs 'target' (or a 'sweep.target' axis)".to_string()))?]
    };
    let agent_counts: Vec<u64> = if cell.sweep.agents.is_empty() {
        vec![cell
            .agents
            .ok_or_else(|| ctx("cell needs 'agents' (or a 'sweep.agents' axis)".to_string()))?]
    } else {
        if cell.agents.is_some() {
            return Err(ctx(
                "cell sets both 'agents' and 'sweep.agents' — use exactly one".to_string()
            ));
        }
        cell.sweep.agents.clone()
    };
    if agent_counts.contains(&0) {
        return Err(ctx("agent counts must be >= 1".to_string()));
    }
    let dists: Vec<Option<u64>> = if cell.sweep.dist.is_empty() {
        vec![None]
    } else {
        cell.sweep.dist.iter().map(|&d| Some(d)).collect()
    };
    let budgets: Vec<Option<u64>> = if cell.sweep.move_budget.is_empty() {
        vec![None]
    } else {
        if cell.move_budget.is_some() {
            return Err(ctx(
                "cell sets both 'move_budget' and 'sweep.move_budget' — use exactly one"
                    .to_string(),
            ));
        }
        cell.sweep.move_budget.iter().map(|&b| Some(b)).collect()
    };

    // Reject runaway cross products *before* materializing anything: a
    // typo'd axis must fail validation, not allocate a million scenarios.
    let product = targets
        .len()
        .checked_mul(agent_counts.len())
        .and_then(|p| p.checked_mul(dists.len()))
        .and_then(|p| p.checked_mul(budgets.len()))
        .unwrap_or(usize::MAX);
    if out.len().saturating_add(product) > MAX_CELLS {
        return Err(ctx(format!(
            "expansion would exceed {MAX_CELLS} cells ({product} from this cell alone) — \
             shrink the sweep axes"
        )));
    }

    let trials = cell
        .trials
        .or(defaults.trials)
        .ok_or_else(|| ctx("cell needs 'trials' (cell-level or [defaults])".to_string()))?;
    if trials == 0 {
        return Err(ctx("'trials' must be >= 1".to_string()));
    }
    let smoke_trials =
        cell.smoke_trials.or(defaults.smoke_trials).unwrap_or_else(|| (trials / 8).max(1));
    if smoke_trials == 0 {
        return Err(ctx("'smoke_trials' must be >= 1".to_string()));
    }
    let ceiling = cell.guess_move_ceiling.or(defaults.guess_move_ceiling);
    if ceiling == Some(0) {
        return Err(ctx("'guess_move_ceiling' must be >= 1".to_string()));
    }
    let backend = cell.backend.or(defaults.backend).unwrap_or_default();
    let dp_mode = cell.dp_mode.or(defaults.dp_mode).unwrap_or_default();
    if backend == Backend::Dp && ceiling.is_some() {
        return Err(ctx(
            "backend = \"dp\" cannot model 'guess_move_ceiling' (the exact DP has no \
             per-guess clock) — drop the ceiling or use backend = \"mc\""
                .to_string(),
        ));
    }

    // An explicit cell-level seed pins this cell's tags regardless of
    // what surrounds it: its expansions draw from a *local* stream over
    // that seed, so inserting or resizing other cells cannot shift them.
    // Cells without one draw from the shared spec-seed stream (always
    // advanced below, so adding an explicit seed to one cell does not
    // reshuffle its neighbours either).
    let mut local_stream = cell.seed.map(|s| SplitMix64::new(s ^ PLAN_SEED_SALT));

    for base_target in &targets {
        for &agents in &agent_counts {
            for &dist_override in &dists {
                for &budget_override in &budgets {
                    let target = match dist_override {
                        Some(d) => {
                            if d == 0 || d > crate::spec::MAX_DIST {
                                return Err(ctx(format!(
                                    "sweep.dist values must be in 1..={}, got {d}",
                                    crate::spec::MAX_DIST
                                )));
                            }
                            base_target.with_dist(d).map_err(&ctx)?
                        }
                        None => *base_target,
                    };
                    let mut planned = PlannedCell {
                        label: String::new(),
                        agents,
                        target,
                        move_budget: 0,
                        guess_move_ceiling: ceiling,
                        trials,
                        smoke_trials,
                        seed_tag: {
                            let shared = seed_stream.next_u64();
                            match &mut local_stream {
                                Some(local) => local.next_u64(),
                                None => shared,
                            }
                        },
                        backend,
                        dp_mode,
                        population: Vec::new(),
                    };
                    let dist = planned.dist();
                    planned.move_budget = budget_override
                        .or(cell.move_budget)
                        .or(defaults.move_budget)
                        .unwrap_or_else(|| default_budget(dist));
                    if planned.move_budget == 0 {
                        return Err(ctx("'move_budget' must be >= 1".to_string()));
                    }
                    // Bind dist/agents into each population entry.
                    for (i, entry) in cell.population.iter().enumerate() {
                        let resolved = entry.strategy.resolve(dist, agents).map_err(|message| {
                            WorkloadError {
                                context: format!("cell '{}' population[{i}]", cell.name),
                                message,
                            }
                        })?;
                        if backend == Backend::Dp && !resolved.supports_dp() {
                            return Err(WorkloadError {
                                context: format!("cell '{}' population[{i}].strategy", cell.name),
                                message: format!(
                                    "strategy '{}' is not Markovian, so backend = \"dp\" \
                                     cannot evaluate it exactly — use backend = \"mc\" for \
                                     this cell",
                                    resolved.label()
                                ),
                            });
                        }
                        planned.population.push((entry.weight, resolved));
                    }
                    // Label: the name plus one suffix per *swept* axis.
                    let mut label = cell.name.clone();
                    if !cell.sweep.target.is_empty() {
                        label.push_str(&format!("/{}", planned.target_label()));
                    }
                    if !cell.sweep.agents.is_empty() {
                        label.push_str(&format!("/n{agents}"));
                    }
                    if !cell.sweep.dist.is_empty() {
                        label.push_str(&format!("/d{dist}"));
                    }
                    if !cell.sweep.move_budget.is_empty() {
                        label.push_str(&format!("/b{}", planned.move_budget));
                    }
                    planned.label = label;
                    out.push(planned);
                }
            }
        }
    }
    Ok(())
}

/// The default per-agent move budget at distance `D`: enough for the
/// paper's algorithms to finish comfortably (`Θ(D²)` with headroom),
/// matching the E9 harness's sizing.
fn default_budget(dist: u64) -> u64 {
    dist * dist * 400 + 100_000
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn plan(text: &str) -> WorkloadPlan {
        WorkloadPlan::expand(&WorkloadSpec::parse(text).unwrap()).unwrap()
    }

    const SWEPT: &str = "\
name = \"Grid Demo\"

[defaults]
trials = 8
seed = 3

[[cells]]
name = \"zoo\"
target = { model = \"ball\", dist = 8 }
population = [
  { strategy = \"nonuniform(dist)\", weight = 2 },
  { strategy = \"randomwalk\", weight = 1 },
]
sweep = { agents = [2, 4], dist = [4, 8] }
";

    #[test]
    fn cross_product_expansion_in_document_order() {
        let p = plan(SWEPT);
        assert_eq!(p.name, "Grid Demo");
        assert_eq!(p.key, "grid-demo");
        let labels: Vec<&str> = p.cells.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, vec!["zoo/n2/d4", "zoo/n2/d8", "zoo/n4/d4", "zoo/n4/d8"]);
        // dist binds into the population.
        assert_eq!(p.cells[0].population[0].1.label(), "nonuniform(4)");
        assert_eq!(p.cells[1].population[0].1.label(), "nonuniform(8)");
        // Budgets derive from the resolved dist.
        assert_eq!(p.cells[0].move_budget, 4 * 4 * 400 + 100_000);
    }

    #[test]
    fn expansion_is_deterministic_including_seeds() {
        let a = plan(SWEPT);
        let b = plan(SWEPT);
        let seeds_a: Vec<u64> = a.cells.iter().map(|c| c.seed_tag).collect();
        let seeds_b: Vec<u64> = b.cells.iter().map(|c| c.seed_tag).collect();
        assert_eq!(seeds_a, seeds_b);
        // Tags are distinct across cells.
        let mut dedup = seeds_a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds_a.len());
    }

    #[test]
    fn spec_seed_shifts_every_tag() {
        let shifted = SWEPT.replace("seed = 3", "seed = 4");
        let a = plan(SWEPT);
        let b = plan(&shifted);
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_ne!(ca.seed_tag, cb.seed_tag, "{}", ca.label);
        }
    }

    #[test]
    fn degenerate_and_reserved_report_keys_are_rejected() {
        let mk = |name: &str| {
            format!(
                "name = \"{name}\"\n[defaults]\ntrials = 2\n[[cells]]\nname = \"c\"\nagents = 1\n\
                 target = {{ model = \"ball\", dist = 4 }}\n\
                 population = [ {{ strategy = \"spiral\" }} ]\n"
            )
        };
        let e = WorkloadPlan::expand(&WorkloadSpec::parse(&mk("???")).unwrap()).unwrap_err();
        assert!(e.message.contains("empty report key"), "{e}");
        let e = WorkloadPlan::expand(&WorkloadSpec::parse(&mk("E1")).unwrap()).unwrap_err();
        assert!(e.message.contains("reserved"), "{e}");
        // Names that merely start with 'e' are fine.
        assert_eq!(plan(&mk("e2e-check")).key, "e2e-check");
    }

    #[test]
    fn collapsing_sweep_points_are_rejected() {
        // A dist axis overrides the distances declared inside a target
        // axis; two same-model target entries then collapse into
        // byte-identical cells — that must fail, not double-spend trials.
        let text = "\
name = \"dup\"
[defaults]
trials = 2
[[cells]]
name = \"c\"
agents = 1
population = [ { strategy = \"spiral\" } ]
sweep = { dist = [4], target = [
  { model = \"corner\", dist = 8 },
  { model = \"corner\", dist = 16 },
] }
";
        let e = WorkloadPlan::expand(&WorkloadSpec::parse(text).unwrap()).unwrap_err();
        assert!(e.message.contains("duplicate cells"), "{e}");
        // Repeated values inside one axis are caught by the same guard.
        let text = "\
name = \"dup2\"
[defaults]
trials = 2
[[cells]]
name = \"c\"
target = { model = \"ball\", dist = 4 }
population = [ { strategy = \"spiral\" } ]
sweep = { agents = [2, 2] }
";
        let e = WorkloadPlan::expand(&WorkloadSpec::parse(text).unwrap()).unwrap_err();
        assert!(e.message.contains("duplicate cells"), "{e}");
        // Distinct models under a shared dist axis stay legal (the
        // mixed-target pattern of the bundled specs).
        let text = "\
name = \"ok\"
[defaults]
trials = 2
[[cells]]
name = \"c\"
agents = 1
population = [ { strategy = \"spiral\" } ]
sweep = { dist = [4, 6], target = [
  { model = \"corner\", dist = 4 },
  { model = \"ring\", dist = 4 },
] }
";
        assert_eq!(plan(text).cells.len(), 4);
    }

    #[test]
    fn scalar_and_axis_conflicts_are_rejected() {
        let base = "\
name = \"s\"
[defaults]
trials = 2
[[cells]]
name = \"c\"
target = { model = \"ball\", dist = 4 }
population = [ { strategy = \"spiral\" } ]
";
        let agents_conflict = format!("{base}agents = 9\nsweep = {{ agents = [1, 2] }}\n");
        let e = WorkloadPlan::expand(&WorkloadSpec::parse(&agents_conflict).unwrap()).unwrap_err();
        assert!(e.message.contains("both 'agents' and 'sweep.agents'"), "{e}");
        let budget_conflict =
            format!("{base}agents = 2\nmove_budget = 900\nsweep = {{ move_budget = [800] }}\n");
        let e = WorkloadPlan::expand(&WorkloadSpec::parse(&budget_conflict).unwrap()).unwrap_err();
        assert!(e.message.contains("both 'move_budget'"), "{e}");
    }

    #[test]
    fn explicit_cell_seed_survives_neighbouring_edits() {
        // The pinned cell's tags must not move when a cell is inserted
        // before it or a sibling sweep grows.
        let pinned = "\
[[cells]]
name = \"pinned\"
seed = 123
agents = 2
target = { model = \"ball\", dist = 4 }
population = [ { strategy = \"spiral\" } ]
sweep = { dist = [3, 4] }
";
        let base = format!("name = \"s\"\n[defaults]\ntrials = 2\n{pinned}");
        let edited = format!(
            "name = \"s\"\n[defaults]\ntrials = 2\n\
             [[cells]]\nname = \"extra\"\n\
             target = {{ model = \"ball\", dist = 3 }}\n\
             population = [ {{ strategy = \"randomwalk\" }} ]\n\
             sweep = {{ agents = [1, 2, 3] }}\n{pinned}"
        );
        let tags = |text: &str| -> Vec<u64> {
            plan(text)
                .cells
                .iter()
                .filter(|c| c.label.starts_with("pinned"))
                .map(|c| c.seed_tag)
                .collect()
        };
        assert_eq!(tags(&base), tags(&edited), "explicit seed must pin the cell's tags");
        // And unpinned cells do move (the shared stream shifted).
        let unpinned_base = base.replace("seed = 123\n", "");
        let unpinned_edit = edited.replace("seed = 123\n", "");
        assert_ne!(tags(&unpinned_base), tags(&unpinned_edit));
    }

    #[test]
    fn runaway_cross_products_are_rejected_before_allocation() {
        let axis: String = (1..=100).map(|i| i.to_string()).collect::<Vec<_>>().join(", ");
        let text = format!(
            "name = \"big\"\n[defaults]\ntrials = 2\n\
             [[cells]]\nname = \"c\"\n\
             target = {{ model = \"ball\", dist = 4 }}\n\
             population = [ {{ strategy = \"spiral\" }} ]\n\
             sweep = {{ agents = [{axis}], dist = [{axis}], move_budget = [{axis}] }}\n"
        );
        let e = WorkloadPlan::expand(&WorkloadSpec::parse(&text).unwrap()).unwrap_err();
        assert!(e.message.contains("shrink the sweep axes"), "{e}");
        assert!(e.message.contains("1000000 from this cell"), "{e}");
    }

    #[test]
    fn target_axis_expands_models() {
        let text = "\
name = \"targets\"
[defaults]
trials = 4
[[cells]]
name = \"t\"
agents = 2
population = [ { strategy = \"spiral\" } ]
sweep = { target = [ { model = \"corner\", dist = 4 }, { model = \"ring\", dist = 6 } ] }
";
        let p = plan(text);
        assert_eq!(p.cells.len(), 2);
        assert_eq!(p.cells[0].label, "t/corner(4)");
        assert_eq!(p.cells[1].label, "t/ring(6)");
        assert_eq!(p.cells[1].placement(), TargetPlacement::Ring { distance: 6 });
    }

    #[test]
    fn scenarios_build_and_jobs_inherit_trials() {
        let p = plan(SWEPT);
        let jobs = p.jobs(false, 0).unwrap();
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].trials, 8);
        assert_eq!(p.total_trials(false), 32);
        // smoke_trials defaults to max(1, trials/8).
        assert_eq!(p.total_trials(true), 4);
        let s = p.cells[0].scenario().unwrap();
        assert_eq!(s.n_agents(), 2);
        assert_eq!(s.population_len(), 2);
    }

    #[test]
    fn validation_errors_carry_cell_context() {
        // Unreachable ceiling flows out of try_build with the cell name.
        let text = "\
name = \"bad\"
[defaults]
trials = 4
[[cells]]
name = \"c\"
agents = 1
guess_move_ceiling = 3
target = { model = \"corner\", dist = 4 }
population = [ { strategy = \"spiral\" } ]
";
        let e = WorkloadPlan::expand(&WorkloadSpec::parse(text).unwrap()).unwrap_err();
        assert!(e.context.contains("cell 'c'"), "{e}");
        assert!(e.message.contains("unreachable"), "{e}");
        // Missing trials everywhere.
        let text = "\
name = \"bad\"
[[cells]]
name = \"c\"
agents = 1
target = { model = \"ball\", dist = 4 }
population = [ { strategy = \"spiral\" } ]
";
        let e = WorkloadPlan::expand(&WorkloadSpec::parse(text).unwrap()).unwrap_err();
        assert!(e.message.contains("trials"), "{e}");
        // Sweeping dist over a fixed target is rejected.
        let text = "\
name = \"bad\"
[defaults]
trials = 4
[[cells]]
name = \"c\"
agents = 1
target = { model = \"fixed\", x = 2, y = 2 }
population = [ { strategy = \"spiral\" } ]
sweep = { dist = [2, 4] }
";
        let e = WorkloadPlan::expand(&WorkloadSpec::parse(text).unwrap()).unwrap_err();
        assert!(e.message.contains("fixed"), "{e}");
    }

    #[test]
    fn dp_backend_validates_markovian_populations() {
        let mk = |backend: &str, strategy: &str, extra: &str| {
            format!(
                "name = \"b\"\n[defaults]\ntrials = 2\n[[cells]]\nname = \"c\"\nagents = 2\n\
                 backend = \"{backend}\"\n{extra}target = {{ model = \"ball\", dist = 4 }}\n\
                 population = [ {{ strategy = \"{strategy}\" }} ]\n"
            )
        };
        // Markovian cells validate and carry the backend through.
        for s in ["randomwalk", "nonuniform(dist)", "coin(4, 2)", "mortal(randomwalk, 16)"] {
            let p = plan(&mk("dp", s, ""));
            assert_eq!(p.cells[0].backend, Backend::Dp, "{s}");
        }
        assert_eq!(plan(&mk("mc", "levy(2.0, 64)", "")).cells[0].backend, Backend::Mc);
        // Non-Markovian strategies fail with a spec path naming them.
        for s in ["levy(2.0, 64)", "harmonic(agents)", "spiral", "fullyuniform(2, 2)"] {
            let e =
                WorkloadPlan::expand(&WorkloadSpec::parse(&mk("dp", s, "")).unwrap()).unwrap_err();
            assert!(e.context.contains("cell 'c' population[0].strategy"), "{s}: {e}");
            assert!(e.message.contains("not Markovian"), "{s}: {e}");
            let family = s.split('(').next().unwrap();
            assert!(e.message.contains(&format!("'{family}")), "{s}: {e}");
        }
        // mortal of a non-Markovian inner is rejected too.
        let e = WorkloadPlan::expand(
            &WorkloadSpec::parse(&mk("dp", "mortal(levy(2.0, 64), 16)", "")).unwrap(),
        )
        .unwrap_err();
        assert!(e.message.contains("not Markovian"), "{e}");
        // A per-guess ceiling has no DP analogue.
        let e = WorkloadPlan::expand(
            &WorkloadSpec::parse(&mk("dp", "randomwalk", "guess_move_ceiling = 50\n")).unwrap(),
        )
        .unwrap_err();
        assert!(e.message.contains("guess_move_ceiling"), "{e}");
        // The defaults-level backend applies to cells without one.
        let text = "\
name = \"b\"
[defaults]
trials = 2
backend = \"dp\"
[[cells]]
name = \"c\"
agents = 2
target = { model = \"ball\", dist = 4 }
population = [ { strategy = \"spiral\" } ]
";
        let e = WorkloadPlan::expand(&WorkloadSpec::parse(text).unwrap()).unwrap_err();
        assert!(e.message.contains("'spiral' is not Markovian"), "{e}");
    }

    #[test]
    fn dp_mode_inherits_from_defaults_and_cells_override() {
        let mk = |defaults_mode: &str, cell_mode: &str| {
            format!(
                "name = \"m\"\n[defaults]\ntrials = 2\nbackend = \"dp\"\n{defaults_mode}\
                 [[cells]]\nname = \"c\"\nagents = 1\n{cell_mode}\
                 target = {{ model = \"ball\", dist = 4 }}\n\
                 population = [ {{ strategy = \"randomwalk\" }} ]\n"
            )
        };
        assert_eq!(plan(&mk("", "")).cells[0].dp_mode, DpMode::Auto);
        assert_eq!(plan(&mk("dp_mode = \"sparse\"\n", "")).cells[0].dp_mode, DpMode::Sparse);
        assert_eq!(
            plan(&mk("dp_mode = \"sparse\"\n", "dp_mode = \"dense\"\n")).cells[0].dp_mode,
            DpMode::Dense
        );
    }

    #[test]
    fn population_labels_read_well() {
        let p = plan(SWEPT);
        assert_eq!(p.cells[3].population_label(), "2:nonuniform(8) + 1:randomwalk");
        assert_eq!(p.cells[3].target_label(), "ball(8)");
    }
}
