//! The workload spec model: what a `.toml` workload file declares,
//! before expansion.
//!
//! A spec is a named grid of cells. Each cell describes one scenario
//! family — agent count, target model, move budget, a weighted strategy
//! population — plus optional `sweep` axes whose cross product expands
//! the cell into many concrete scenarios (see [`crate::plan`]).

use crate::toml;
use crate::zoo::ZooStrategy;
use crate::WorkloadError;
use ants_dp::{Backend, DpMode};
use ants_sim::json::Json;
use ants_sim::{Metric, MetricSet};

/// Largest accepted target distance (max-norm). Keeps derived move
/// budgets (`400·D² + 100 000`) comfortably inside `u64` and matches
/// the scale anything in this workspace can actually simulate.
pub const MAX_DIST: u64 = 1 << 20;

/// Spec-wide defaults, overridable per cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Defaults {
    /// Monte-Carlo trials per cell at standard effort.
    pub trials: Option<u64>,
    /// Trials per cell at smoke effort (default `max(1, trials / 8)`).
    pub smoke_trials: Option<u64>,
    /// Per-agent move budget (default `400·D² + 100 000`).
    pub move_budget: Option<u64>,
    /// Per-guess move ceiling (default unlimited).
    pub guess_move_ceiling: Option<u64>,
    /// Base seed the per-cell seed tags are derived from (default 0).
    pub seed: Option<u64>,
    /// Evaluation backend (`"mc"` Monte Carlo sampling, `"dp"` exact
    /// dynamic programming; default `"mc"`).
    pub backend: Option<Backend>,
    /// Exact-backend table representation (`"dense"`, `"sparse"`, or
    /// `"auto"`; default `"auto"`). Ignored by `"mc"` cells.
    pub dp_mode: Option<DpMode>,
}

/// A target model as declared in a spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetSpec {
    /// `{ model = "corner", dist = D }` — the adversarial corner `(D, D)`.
    Corner {
        /// Max-norm distance.
        dist: u64,
    },
    /// `{ model = "ball", dist = D }` — uniform in the punctured square.
    Ball {
        /// Max-norm radius.
        dist: u64,
    },
    /// `{ model = "ring", dist = D }` — uniform on the max-norm circle.
    Ring {
        /// Max-norm distance of every candidate.
        dist: u64,
    },
    /// `{ model = "fixed", x = X, y = Y }` — one known point.
    Fixed {
        /// x coordinate.
        x: i64,
        /// y coordinate.
        y: i64,
    },
}

impl TargetSpec {
    /// The model name as written in specs.
    pub fn model(&self) -> &'static str {
        match self {
            TargetSpec::Corner { .. } => "corner",
            TargetSpec::Ball { .. } => "ball",
            TargetSpec::Ring { .. } => "ring",
            TargetSpec::Fixed { .. } => "fixed",
        }
    }

    /// Rewrite the distance parameter (the `sweep.dist` axis).
    ///
    /// # Errors
    ///
    /// Fixed targets have no distance parameter.
    pub fn with_dist(self, dist: u64) -> Result<TargetSpec, String> {
        match self {
            TargetSpec::Corner { .. } => Ok(TargetSpec::Corner { dist }),
            TargetSpec::Ball { .. } => Ok(TargetSpec::Ball { dist }),
            TargetSpec::Ring { .. } => Ok(TargetSpec::Ring { dist }),
            TargetSpec::Fixed { .. } => {
                Err("a fixed target has no distance to sweep (use corner/ball/ring)".to_string())
            }
        }
    }

    fn to_inline_toml(self) -> String {
        match self {
            TargetSpec::Corner { dist } => format!("{{ model = \"corner\", dist = {dist} }}"),
            TargetSpec::Ball { dist } => format!("{{ model = \"ball\", dist = {dist} }}"),
            TargetSpec::Ring { dist } => format!("{{ model = \"ring\", dist = {dist} }}"),
            TargetSpec::Fixed { x, y } => format!("{{ model = \"fixed\", x = {x}, y = {y} }}"),
        }
    }
}

/// One weighted population entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ZooEntry {
    /// Relative weight (probability mass `weight / Σ weights`).
    pub weight: u64,
    /// The strategy, possibly with symbolic `dist`/`agents` arguments.
    pub strategy: ZooStrategy,
}

/// The sweep axes of a cell; the cross product of all non-empty axes is
/// expanded. Axis order here is expansion order (later axes vary
/// fastest).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sweep {
    /// Agent counts.
    pub agents: Vec<u64>,
    /// Target distances (rewrites the cell target's `dist`).
    pub dist: Vec<u64>,
    /// Move budgets.
    pub move_budget: Vec<u64>,
    /// Whole target models (mixed-target sweeps).
    pub target: Vec<TargetSpec>,
}

impl Sweep {
    /// Is any axis set?
    pub fn is_empty(&self) -> bool {
        self.agents.is_empty()
            && self.dist.is_empty()
            && self.move_budget.is_empty()
            && self.target.is_empty()
    }
}

/// One cell of the workload grid, pre-expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Cell name (expansion suffixes axis values onto it).
    pub name: String,
    /// Agent count (required here or via an `agents` sweep axis).
    pub agents: Option<u64>,
    /// Trials at standard effort (falls back to defaults).
    pub trials: Option<u64>,
    /// Trials at smoke effort.
    pub smoke_trials: Option<u64>,
    /// Per-agent move budget.
    pub move_budget: Option<u64>,
    /// Per-guess move ceiling.
    pub guess_move_ceiling: Option<u64>,
    /// Explicit cell seed: pins this cell's seed tags regardless of
    /// surrounding cells (its expansions draw from a local stream over
    /// this value, so editing other cells never reshuffles a pinned
    /// cell's trials; two cells sharing an explicit seed deliberately
    /// share randomness — common random numbers). Default: tags come
    /// from the spec-seed stream at the cell's expansion ordinal.
    pub seed: Option<u64>,
    /// Evaluation backend for this cell (overrides the default; `"dp"`
    /// requires every population entry to be Markovian — validated at
    /// expansion time).
    pub backend: Option<Backend>,
    /// Exact-backend table representation for this cell (overrides the
    /// default).
    pub dp_mode: Option<DpMode>,
    /// The target model (required here or via a `target` sweep axis).
    pub target: Option<TargetSpec>,
    /// The weighted strategy population (at least one entry).
    pub population: Vec<ZooEntry>,
    /// Sweep axes.
    pub sweep: Sweep,
}

/// A parsed workload spec.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name (becomes the report key, sanitized).
    pub name: String,
    /// Free-text description (becomes the report claim).
    pub description: String,
    /// Observation metrics (`metrics = ["coverage", "first_visit", …]`):
    /// every cell additionally runs through the observation layer and
    /// the report gains the corresponding columns (see the README's
    /// workload-format section). Empty = trial metrics only.
    pub metrics: MetricSet,
    /// Spec-wide defaults.
    pub defaults: Defaults,
    /// The cells, in document order.
    pub cells: Vec<CellSpec>,
}

fn err(context: impl Into<String>, message: impl Into<String>) -> WorkloadError {
    WorkloadError { context: context.into(), message: message.into() }
}

/// Read a non-negative integer (TOML numbers arrive as `f64`).
fn as_u64(v: &Json, context: &str) -> Result<u64, WorkloadError> {
    let x = v.as_f64().ok_or_else(|| err(context, "expected an integer"))?;
    if x < 0.0 || x.fract() != 0.0 || x > (1u64 << 53) as f64 {
        return Err(err(context, format!("expected a non-negative integer, got {x}")));
    }
    Ok(x as u64)
}

fn as_i64(v: &Json, context: &str) -> Result<i64, WorkloadError> {
    let x = v.as_f64().ok_or_else(|| err(context, "expected an integer"))?;
    if x.fract() != 0.0 || x.abs() > (1u64 << 53) as f64 {
        return Err(err(context, format!("expected an integer, got {x}")));
    }
    Ok(x as i64)
}

fn as_str<'a>(v: &'a Json, context: &str) -> Result<&'a str, WorkloadError> {
    v.as_str().ok_or_else(|| err(context, "expected a string"))
}

/// Reject non-tables and keys the schema does not know — typos in a
/// data file should fail validation, not be silently ignored (a
/// non-table value has no keys, so skipping this check would make every
/// lookup quietly return `None`).
fn check_keys(v: &Json, allowed: &[&str], context: &str) -> Result<(), WorkloadError> {
    if !matches!(v, Json::Obj(_)) {
        return Err(err(context, "expected a table (e.g. `{ key = value }` or a [section])"));
    }
    for key in v.keys() {
        if !allowed.contains(&key) {
            return Err(err(
                context,
                format!("unknown key '{key}' (allowed: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

fn parse_target(v: &Json, context: &str) -> Result<TargetSpec, WorkloadError> {
    check_keys(v, &["model", "dist", "x", "y"], context)?;
    let model = as_str(
        v.get("model").ok_or_else(|| err(context, "target needs a 'model' key"))?,
        &format!("{context}.model"),
    )?;
    let dist = |ctx: &str| -> Result<u64, WorkloadError> {
        let d = as_u64(
            v.get("dist")
                .ok_or_else(|| err(ctx, format!("target model '{model}' needs 'dist'")))?,
            &format!("{ctx}.dist"),
        )?;
        if d == 0 || d > MAX_DIST {
            return Err(err(
                format!("{ctx}.dist"),
                format!("target distance must be in 1..={MAX_DIST}, got {d}"),
            ));
        }
        Ok(d)
    };
    match model {
        "corner" => Ok(TargetSpec::Corner { dist: dist(context)? }),
        "ball" => Ok(TargetSpec::Ball { dist: dist(context)? }),
        "ring" => Ok(TargetSpec::Ring { dist: dist(context)? }),
        "fixed" => {
            let x = as_i64(
                v.get("x").ok_or_else(|| err(context, "fixed target needs 'x'"))?,
                &format!("{context}.x"),
            )?;
            let y = as_i64(
                v.get("y").ok_or_else(|| err(context, "fixed target needs 'y'"))?,
                &format!("{context}.y"),
            )?;
            if x == 0 && y == 0 {
                return Err(err(context, "fixed target must not be the origin"));
            }
            Ok(TargetSpec::Fixed { x, y })
        }
        other => Err(err(
            format!("{context}.model"),
            format!("unknown target model '{other}' (corner, ball, ring, fixed)"),
        )),
    }
}

fn parse_u64_list(v: &Json, context: &str) -> Result<Vec<u64>, WorkloadError> {
    let items = v.as_array().ok_or_else(|| err(context, "expected an array of integers"))?;
    if items.is_empty() {
        return Err(err(context, "a sweep axis must not be empty"));
    }
    items.iter().enumerate().map(|(i, x)| as_u64(x, &format!("{context}[{i}]"))).collect()
}

fn parse_sweep(v: &Json, context: &str) -> Result<Sweep, WorkloadError> {
    check_keys(v, &["agents", "dist", "move_budget", "target"], context)?;
    let mut sweep = Sweep::default();
    if let Some(a) = v.get("agents") {
        sweep.agents = parse_u64_list(a, &format!("{context}.agents"))?;
    }
    if let Some(d) = v.get("dist") {
        sweep.dist = parse_u64_list(d, &format!("{context}.dist"))?;
    }
    if let Some(b) = v.get("move_budget") {
        sweep.move_budget = parse_u64_list(b, &format!("{context}.move_budget"))?;
    }
    if let Some(t) = v.get("target") {
        let items =
            t.as_array().ok_or_else(|| err(format!("{context}.target"), "expected an array"))?;
        if items.is_empty() {
            return Err(err(format!("{context}.target"), "a sweep axis must not be empty"));
        }
        sweep.target = items
            .iter()
            .enumerate()
            .map(|(i, x)| parse_target(x, &format!("{context}.target[{i}]")))
            .collect::<Result<_, _>>()?;
    }
    Ok(sweep)
}

fn parse_population(v: &Json, context: &str) -> Result<Vec<ZooEntry>, WorkloadError> {
    let items = v.as_array().ok_or_else(|| err(context, "expected an array of zoo entries"))?;
    if items.is_empty() {
        return Err(err(context, "population must have at least one entry"));
    }
    items
        .iter()
        .enumerate()
        .map(|(i, entry)| {
            let ctx = format!("{context}[{i}]");
            check_keys(entry, &["strategy", "weight"], &ctx)?;
            let text = as_str(
                entry.get("strategy").ok_or_else(|| err(&*ctx, "entry needs a 'strategy' key"))?,
                &format!("{ctx}.strategy"),
            )?;
            let strategy = ZooStrategy::parse(text)
                .map_err(|message| err(format!("{ctx}.strategy"), message))?;
            let weight = match entry.get("weight") {
                Some(w) => as_u64(w, &format!("{ctx}.weight"))?,
                None => 1,
            };
            if weight == 0 {
                return Err(err(format!("{ctx}.weight"), "weight must be >= 1"));
            }
            Ok(ZooEntry { weight, strategy })
        })
        .collect()
}

/// Parse `metrics = ["coverage", ...]` against the observation layer's
/// vocabulary ([`Metric::ALL`]). Duplicates are harmless (it is a set);
/// unknown names fail with the allowed list.
fn parse_metrics(v: &Json, context: &str) -> Result<MetricSet, WorkloadError> {
    let items = v.as_array().ok_or_else(|| err(context, "expected an array of metric names"))?;
    let mut set = MetricSet::empty();
    for (i, item) in items.iter().enumerate() {
        let name = as_str(item, &format!("{context}[{i}]"))?;
        let metric = Metric::parse(name).ok_or_else(|| {
            err(
                format!("{context}[{i}]"),
                format!(
                    "unknown metric '{name}' (allowed: {})",
                    Metric::ALL.map(Metric::as_str).join(", ")
                ),
            )
        })?;
        set.insert(metric);
    }
    Ok(set)
}

/// Parse an optional `backend = "mc" | "dp"` key.
fn parse_backend(v: &Json, context: &str) -> Result<Option<Backend>, WorkloadError> {
    v.get("backend")
        .map(|b| {
            let ctx = format!("{context}.backend");
            let name = as_str(b, &ctx)?;
            Backend::parse(name)
                .ok_or_else(|| err(ctx, format!("unknown backend '{name}' (allowed: mc, dp)")))
        })
        .transpose()
}

/// Parse an optional `dp_mode = "dense" | "sparse" | "auto"` key.
fn parse_dp_mode(v: &Json, context: &str) -> Result<Option<DpMode>, WorkloadError> {
    v.get("dp_mode")
        .map(|m| {
            let ctx = format!("{context}.dp_mode");
            let name = as_str(m, &ctx)?;
            DpMode::parse(name).ok_or_else(|| {
                err(ctx, format!("unknown dp_mode '{name}' (allowed: dense, sparse, auto)"))
            })
        })
        .transpose()
}

fn parse_defaults(v: &Json, context: &str) -> Result<Defaults, WorkloadError> {
    check_keys(
        v,
        &[
            "trials",
            "smoke_trials",
            "move_budget",
            "guess_move_ceiling",
            "seed",
            "backend",
            "dp_mode",
        ],
        context,
    )?;
    let field = |key: &str| -> Result<Option<u64>, WorkloadError> {
        v.get(key).map(|x| as_u64(x, &format!("{context}.{key}"))).transpose()
    };
    Ok(Defaults {
        trials: field("trials")?,
        smoke_trials: field("smoke_trials")?,
        move_budget: field("move_budget")?,
        guess_move_ceiling: field("guess_move_ceiling")?,
        seed: field("seed")?,
        backend: parse_backend(v, context)?,
        dp_mode: parse_dp_mode(v, context)?,
    })
}

fn parse_cell(v: &Json, context: &str) -> Result<CellSpec, WorkloadError> {
    check_keys(
        v,
        &[
            "name",
            "agents",
            "trials",
            "smoke_trials",
            "move_budget",
            "guess_move_ceiling",
            "seed",
            "backend",
            "dp_mode",
            "target",
            "population",
            "sweep",
        ],
        context,
    )?;
    let name = as_str(
        v.get("name").ok_or_else(|| err(context, "cell needs a 'name' key"))?,
        &format!("{context}.name"),
    )?
    .to_string();
    if name.is_empty() {
        return Err(err(format!("{context}.name"), "cell name must not be empty"));
    }
    let field = |key: &str| -> Result<Option<u64>, WorkloadError> {
        v.get(key).map(|x| as_u64(x, &format!("{context}.{key}"))).transpose()
    };
    let target =
        v.get("target").map(|t| parse_target(t, &format!("{context}.target"))).transpose()?;
    let population = parse_population(
        v.get("population").ok_or_else(|| err(context, "cell needs a 'population' array"))?,
        &format!("{context}.population"),
    )?;
    let sweep = match v.get("sweep") {
        Some(s) => parse_sweep(s, &format!("{context}.sweep"))?,
        None => Sweep::default(),
    };
    Ok(CellSpec {
        name,
        agents: field("agents")?,
        trials: field("trials")?,
        smoke_trials: field("smoke_trials")?,
        move_budget: field("move_budget")?,
        guess_move_ceiling: field("guess_move_ceiling")?,
        seed: field("seed")?,
        backend: parse_backend(v, context)?,
        dp_mode: parse_dp_mode(v, context)?,
        target,
        population,
        sweep,
    })
}

impl WorkloadSpec {
    /// Parse a workload spec from TOML-subset text.
    pub fn parse(text: &str) -> Result<WorkloadSpec, WorkloadError> {
        let doc = toml::parse(text).map_err(|e| err("spec", format!("{e}")))?;
        check_keys(&doc, &["name", "description", "metrics", "defaults", "cells"], "spec")?;
        let name = as_str(
            doc.get("name").ok_or_else(|| err("spec", "spec needs a top-level 'name'"))?,
            "spec.name",
        )?
        .to_string();
        if name.is_empty() {
            return Err(err("spec.name", "name must not be empty"));
        }
        let description = doc
            .get("description")
            .map(|d| as_str(d, "spec.description"))
            .transpose()?
            .unwrap_or("");
        let metrics = match doc.get("metrics") {
            Some(m) => parse_metrics(m, "spec.metrics")?,
            None => MetricSet::empty(),
        };
        let defaults = match doc.get("defaults") {
            Some(d) => parse_defaults(d, "defaults")?,
            None => Defaults::default(),
        };
        let cells_json = doc
            .get("cells")
            .and_then(Json::as_array)
            .ok_or_else(|| err("spec", "spec needs at least one [[cells]] entry"))?;
        if cells_json.is_empty() {
            return Err(err("spec", "spec needs at least one [[cells]] entry"));
        }
        let cells = cells_json
            .iter()
            .enumerate()
            .map(|(i, c)| parse_cell(c, &format!("cells[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        // Duplicate cell names would collide after expansion.
        let mut names: Vec<&str> = cells.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(err("cells", format!("duplicate cell name '{}'", w[0])));
        }
        Ok(WorkloadSpec { name, description: description.to_string(), metrics, defaults, cells })
    }

    /// Serialize back to canonical TOML-subset text.
    ///
    /// `WorkloadSpec::parse(spec.to_toml())` reproduces the spec exactly
    /// (the round-trip property the proptest suite pins).
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("name = \"{}\"\n", toml::escape(&self.name)));
        if !self.description.is_empty() {
            out.push_str(&format!("description = \"{}\"\n", toml::escape(&self.description)));
        }
        if !self.metrics.is_empty() {
            let names: Vec<String> =
                self.metrics.iter().map(|m| format!("\"{}\"", m.as_str())).collect();
            out.push_str(&format!("metrics = [{}]\n", names.join(", ")));
        }
        let d = &self.defaults;
        if *d != Defaults::default() {
            out.push_str("\n[defaults]\n");
            for (key, v) in [
                ("trials", d.trials),
                ("smoke_trials", d.smoke_trials),
                ("move_budget", d.move_budget),
                ("guess_move_ceiling", d.guess_move_ceiling),
                ("seed", d.seed),
            ] {
                if let Some(v) = v {
                    out.push_str(&format!("{key} = {v}\n"));
                }
            }
            if let Some(b) = d.backend {
                out.push_str(&format!("backend = \"{b}\"\n"));
            }
            if let Some(m) = d.dp_mode {
                out.push_str(&format!("dp_mode = \"{m}\"\n"));
            }
        }
        for cell in &self.cells {
            out.push_str("\n[[cells]]\n");
            out.push_str(&format!("name = \"{}\"\n", toml::escape(&cell.name)));
            for (key, v) in [
                ("agents", cell.agents),
                ("trials", cell.trials),
                ("smoke_trials", cell.smoke_trials),
                ("move_budget", cell.move_budget),
                ("guess_move_ceiling", cell.guess_move_ceiling),
                ("seed", cell.seed),
            ] {
                if let Some(v) = v {
                    out.push_str(&format!("{key} = {v}\n"));
                }
            }
            if let Some(b) = cell.backend {
                out.push_str(&format!("backend = \"{b}\"\n"));
            }
            if let Some(m) = cell.dp_mode {
                out.push_str(&format!("dp_mode = \"{m}\"\n"));
            }
            if let Some(t) = cell.target {
                out.push_str(&format!("target = {}\n", t.to_inline_toml()));
            }
            out.push_str("population = [\n");
            for e in &cell.population {
                out.push_str(&format!(
                    "  {{ strategy = \"{}\", weight = {} }},\n",
                    toml::escape(&e.strategy.to_string()),
                    e.weight
                ));
            }
            out.push_str("]\n");
            if !cell.sweep.is_empty() {
                let fmt_list =
                    |xs: &[u64]| xs.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
                let mut parts: Vec<String> = Vec::new();
                if !cell.sweep.agents.is_empty() {
                    parts.push(format!("agents = [{}]", fmt_list(&cell.sweep.agents)));
                }
                if !cell.sweep.dist.is_empty() {
                    parts.push(format!("dist = [{}]", fmt_list(&cell.sweep.dist)));
                }
                if !cell.sweep.move_budget.is_empty() {
                    parts.push(format!("move_budget = [{}]", fmt_list(&cell.sweep.move_budget)));
                }
                if !cell.sweep.target.is_empty() {
                    let ts: Vec<String> =
                        cell.sweep.target.iter().map(|t| t.to_inline_toml()).collect();
                    parts.push(format!("target = [{}]", ts.join(", ")));
                }
                out.push_str(&format!("sweep = {{ {} }}\n", parts.join(", ")));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "\
name = \"mini\"

[[cells]]
name = \"one\"
agents = 4
trials = 8
target = { model = \"ball\", dist = 8 }
population = [ { strategy = \"randomwalk\" } ]
";

    #[test]
    fn parses_a_minimal_spec() {
        let spec = WorkloadSpec::parse(MINIMAL).unwrap();
        assert_eq!(spec.name, "mini");
        assert_eq!(spec.cells.len(), 1);
        let cell = &spec.cells[0];
        assert_eq!(cell.agents, Some(4));
        assert_eq!(cell.target, Some(TargetSpec::Ball { dist: 8 }));
        assert_eq!(cell.population.len(), 1);
        assert_eq!(cell.population[0].weight, 1, "weight defaults to 1");
    }

    #[test]
    fn parses_defaults_sweeps_and_mixed_populations() {
        let text = "\
name = \"full\"
description = \"all the knobs\"

[defaults]
trials = 30
smoke_trials = 4
seed = 7

[[cells]]
name = \"zoo\"
agents = 8
target = { model = \"corner\", dist = 16 }
move_budget = 500000
guess_move_ceiling = 9000
population = [
  { strategy = \"nonuniform(dist)\", weight = 2 },
  { strategy = \"uniform(1, agents, 2)\", weight = 1 },
  { strategy = \"randomwalk\", weight = 1 },
]
sweep = { agents = [4, 8], dist = [8, 16] }

[[cells]]
name = \"targets\"
agents = 2
target = { model = \"ball\", dist = 8 }
population = [ { strategy = \"spiral\" } ]
sweep = { target = [ { model = \"corner\", dist = 8 }, { model = \"ring\", dist = 8 } ] }
";
        let spec = WorkloadSpec::parse(text).unwrap();
        assert_eq!(spec.defaults.trials, Some(30));
        assert_eq!(spec.defaults.seed, Some(7));
        assert_eq!(spec.cells.len(), 2);
        assert_eq!(spec.cells[0].population.len(), 3);
        assert_eq!(spec.cells[0].sweep.agents, vec![4, 8]);
        assert_eq!(spec.cells[1].sweep.target.len(), 2);
    }

    #[test]
    fn round_trips_through_to_toml() {
        let spec = WorkloadSpec::parse(MINIMAL).unwrap();
        let again = WorkloadSpec::parse(&spec.to_toml()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn metrics_key_parses_validates_and_round_trips() {
        let text = format!("metrics = [\"found_round\", \"coverage\", \"coverage\"]\n{MINIMAL}");
        let spec = WorkloadSpec::parse(&text).unwrap();
        assert!(spec.metrics.contains(Metric::Coverage));
        assert!(spec.metrics.contains(Metric::FoundRound));
        assert!(!spec.metrics.contains(Metric::Chi));
        // Canonical serialization orders metrics by Metric::ALL.
        assert!(spec.to_toml().contains("metrics = [\"coverage\", \"found_round\"]"));
        assert_eq!(WorkloadSpec::parse(&spec.to_toml()).unwrap(), spec);
        // No metrics key = empty set.
        assert!(WorkloadSpec::parse(MINIMAL).unwrap().metrics.is_empty());
        // Unknown names fail with the vocabulary.
        let bad = format!("metrics = [\"warp\"]\n{MINIMAL}");
        let e = WorkloadSpec::parse(&bad).unwrap_err();
        assert!(e.to_string().contains("unknown metric 'warp'"), "{e}");
        assert!(e.to_string().contains("coverage"), "{e}");
        // Non-string entries fail too.
        let bad = format!("metrics = [3]\n{MINIMAL}");
        assert!(WorkloadSpec::parse(&bad).unwrap_err().to_string().contains("string"));
    }

    #[test]
    fn rejects_schema_violations_with_context() {
        let cases: &[(&str, &str)] = &[
            ("", "name"),
            ("name = \"x\"\n", "cells"),
            ("name = \"x\"\n[[cells]]\nagents = 1\n", "name"),
            (
                "name = \"x\"\n[[cells]]\nname = \"c\"\npopulation = []\n",
                "at least one entry",
            ),
            (
                "name = \"x\"\n[[cells]]\nname = \"c\"\nbogus = 1\npopulation = [ { strategy = \"spiral\" } ]\n",
                "unknown key 'bogus'",
            ),
            (
                "name = \"x\"\n[[cells]]\nname = \"c\"\ntarget = { model = \"wedge\", dist = 4 }\npopulation = [ { strategy = \"spiral\" } ]\n",
                "unknown target model",
            ),
            (
                "name = \"x\"\n[[cells]]\nname = \"c\"\npopulation = [ { strategy = \"warp\" } ]\n",
                "unknown strategy",
            ),
            (
                "name = \"x\"\n[[cells]]\nname = \"c\"\npopulation = [ { strategy = \"spiral\", weight = 0 } ]\n",
                "weight",
            ),
            (
                "name = \"x\"\n[[cells]]\nname = \"c\"\npopulation = [ { strategy = \"spiral\" } ]\n[[cells]]\nname = \"c\"\npopulation = [ { strategy = \"spiral\" } ]\n",
                "duplicate cell name",
            ),
            (
                "name = \"x\"\n[[cells]]\nname = \"c\"\ntrials = -3\npopulation = [ { strategy = \"spiral\" } ]\n",
                "non-negative",
            ),
            // A non-table where the schema expects one must fail, not be
            // silently ignored (its keys would all read as absent).
            (
                "name = \"x\"\n[[cells]]\nname = \"c\"\nagents = 2\nsweep = 5\ntarget = { model = \"ball\", dist = 4 }\npopulation = [ { strategy = \"spiral\" } ]\n",
                "expected a table",
            ),
            // Target distances beyond MAX_DIST would overflow derived
            // move budgets.
            (
                "name = \"x\"\n[[cells]]\nname = \"c\"\ntarget = { model = \"ball\", dist = 300000000 }\npopulation = [ { strategy = \"spiral\" } ]\n",
                "target distance must be in 1..=",
            ),
        ];
        for (text, needle) in cases {
            let e = WorkloadSpec::parse(text).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "expected '{needle}' in error for {text:?}, got: {e}"
            );
        }
    }

    #[test]
    fn backend_key_parses_defaults_cells_and_round_trips() {
        let text = "\
name = \"x\"

[defaults]
backend = \"dp\"

[[cells]]
name = \"c\"
agents = 2
backend = \"mc\"
target = { model = \"ball\", dist = 4 }
population = [ { strategy = \"randomwalk\" } ]
";
        let spec = WorkloadSpec::parse(text).unwrap();
        assert_eq!(spec.defaults.backend, Some(Backend::Dp));
        assert_eq!(spec.cells[0].backend, Some(Backend::Mc));
        assert_eq!(WorkloadSpec::parse(&spec.to_toml()).unwrap(), spec);
        // Absent key = None (the Monte Carlo default applies downstream).
        assert_eq!(WorkloadSpec::parse(MINIMAL).unwrap().defaults.backend, None);
        assert_eq!(WorkloadSpec::parse(MINIMAL).unwrap().cells[0].backend, None);
        // Unknown names fail with the allowed list and the spec path.
        let bad = text.replace("backend = \"mc\"", "backend = \"exact\"");
        let e = WorkloadSpec::parse(&bad).unwrap_err();
        assert!(e.to_string().contains("unknown backend 'exact'"), "{e}");
        assert!(e.to_string().contains("cells[0].backend"), "{e}");
    }

    #[test]
    fn dp_mode_key_parses_defaults_cells_and_round_trips() {
        let text = "\
name = \"x\"

[defaults]
backend = \"dp\"
dp_mode = \"sparse\"

[[cells]]
name = \"c\"
agents = 2
dp_mode = \"dense\"
target = { model = \"ball\", dist = 4 }
population = [ { strategy = \"randomwalk\" } ]
";
        let spec = WorkloadSpec::parse(text).unwrap();
        assert_eq!(spec.defaults.dp_mode, Some(DpMode::Sparse));
        assert_eq!(spec.cells[0].dp_mode, Some(DpMode::Dense));
        assert_eq!(WorkloadSpec::parse(&spec.to_toml()).unwrap(), spec);
        // Absent key = None (the Auto default applies downstream).
        assert_eq!(WorkloadSpec::parse(MINIMAL).unwrap().defaults.dp_mode, None);
        assert_eq!(WorkloadSpec::parse(MINIMAL).unwrap().cells[0].dp_mode, None);
        // Unknown names fail with the allowed list and the spec path.
        let bad = text.replace("dp_mode = \"dense\"", "dp_mode = \"hashed\"");
        let e = WorkloadSpec::parse(&bad).unwrap_err();
        assert!(e.to_string().contains("unknown dp_mode 'hashed'"), "{e}");
        assert!(e.to_string().contains("cells[0].dp_mode"), "{e}");
        assert!(e.to_string().contains("dense, sparse, auto"), "{e}");
    }

    #[test]
    fn fixed_targets_parse_and_validate() {
        let text = "\
name = \"x\"
[[cells]]
name = \"c\"
target = { model = \"fixed\", x = 3, y = -2 }
population = [ { strategy = \"spiral\" } ]
";
        let spec = WorkloadSpec::parse(text).unwrap();
        assert_eq!(spec.cells[0].target, Some(TargetSpec::Fixed { x: 3, y: -2 }));
        let origin = text.replace("x = 3, y = -2", "x = 0, y = 0");
        assert!(WorkloadSpec::parse(&origin).unwrap_err().to_string().contains("origin"));
    }
}
