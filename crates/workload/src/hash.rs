//! Content addressing for workloads: a canonical, expansion-level
//! descriptor and its FNV-1a hash, the cache key of the serve layer.
//!
//! Two spec texts that *mean* the same workload must hash to the same
//! key, however they were written: key order, whitespace, and comments
//! vanish in parsing; symbolic strategy arguments (`nonuniform(dist)`)
//! and their resolved forms (`nonuniform(8)`) converge at expansion.
//! Hashing the canonical serialization of the **expanded plan** — not
//! the raw text, and not even the canonical spec form — therefore keys
//! results by what would actually run. Everything that feeds report
//! bytes is in the descriptor: name, key, description, metrics, and
//! every planned cell down to its seed tag and resolved population.
//! Observability stays out by design: no telemetry handle, counter, or
//! snapshot ever reaches the descriptor, so attaching telemetry can
//! never change a cache key or flag drift
//! (`crates/serve/src/cache.rs` pins this from the key side).

use crate::plan::WorkloadPlan;
use std::fmt::Write as _;

/// 128-bit FNV-1a over a byte stream. Dependency-free, stable across
/// platforms, and wide enough that a content-addressed cache shared by
/// many users never worries about accidental collisions (the 64-bit
/// variant's birthday bound is within reach of a large cache; 128 bits
/// is not).
#[derive(Debug, Clone, Copy)]
pub struct Fnv128(u128);

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl Fnv128 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv128 {
        Fnv128(FNV128_OFFSET)
    }

    /// Fold bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Fold a length-delimited field: the bytes plus a NUL terminator,
    /// so `("ab", "c")` and `("a", "bc")` hash differently.
    pub fn field(&mut self, text: &str) {
        self.write(text.as_bytes());
        self.write(&[0]);
    }

    /// The digest as 32 lowercase hex characters.
    pub fn finish_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkloadPlan {
    /// The canonical descriptor the content hash covers: one line per
    /// fact, in a fixed order. Human-readable on purpose — the serve
    /// cache stores it next to each entry so a key can be audited by
    /// eye, and a test can assert *why* two specs collide or do not.
    pub fn cache_descriptor(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "plan-descriptor/v2");
        let _ = writeln!(out, "name={}", self.name);
        let _ = writeln!(out, "key={}", self.key);
        let _ = writeln!(out, "description={}", self.description.escape_default());
        let metrics: Vec<&str> = self.metrics.iter().map(|m| m.as_str()).collect();
        let _ = writeln!(out, "metrics={}", metrics.join(","));
        for cell in &self.cells {
            let _ = writeln!(
                out,
                "cell label={} agents={} target={} budget={} ceiling={} trials={} smoke={} \
                 seed_tag={:016x} backend={} dp_mode={} population={}",
                cell.label,
                cell.agents,
                cell.target_label(),
                cell.move_budget,
                cell.guess_move_ceiling.map_or_else(|| "-".to_string(), |c| c.to_string()),
                cell.trials,
                cell.smoke_trials,
                cell.seed_tag,
                cell.backend,
                cell.dp_mode,
                cell.population_label(),
            );
        }
        out
    }

    /// The 128-bit content hash of [`WorkloadPlan::cache_descriptor`],
    /// as 32 hex characters.
    pub fn content_hash(&self) -> String {
        let mut h = Fnv128::new();
        h.field(&self.cache_descriptor());
        h.finish_hex()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn hash_of(text: &str) -> String {
        WorkloadPlan::expand(&WorkloadSpec::parse(text).unwrap()).unwrap().content_hash()
    }

    const BASE: &str = "\
name = \"canon\"
[defaults]
trials = 8
seed = 5
[[cells]]
name = \"c\"
agents = 2
target = { model = \"ball\", dist = 8 }
population = [ { strategy = \"nonuniform(dist)\", weight = 2 } ]
";

    /// Key order, whitespace, comments, and symbolic-vs-resolved
    /// arguments are spelling, not meaning: all hash identically.
    #[test]
    fn semantically_identical_specs_hash_equal() {
        let reordered = "\
name = \"canon\"
[defaults]
seed = 5        # comment
trials = 8

[[cells]]
agents   = 2
name     = \"c\"
population = [
  { weight = 2, strategy = \"nonuniform(dist)\" },
]
target = { dist = 8, model = \"ball\" }
";
        // `dist` is 8, so the symbolic argument resolves to the same
        // strategy as writing it out.
        let resolved = BASE.replace("nonuniform(dist)", "nonuniform(8)");
        assert_eq!(hash_of(BASE), hash_of(reordered));
        assert_eq!(hash_of(BASE), hash_of(&resolved));
    }

    /// Any one-bit semantic change misses: different trials, seed,
    /// agents, weight, metric set, or description all move the key.
    #[test]
    fn semantic_changes_move_the_hash() {
        let base = hash_of(BASE);
        for (from, to) in [
            ("trials = 8", "trials = 9"),
            ("seed = 5", "seed = 6"),
            ("agents = 2", "agents = 3"),
            ("weight = 2", "weight = 3"),
            ("dist = 8", "dist = 9"),
            ("name = \"canon\"", "name = \"canon2\""),
        ] {
            let changed = BASE.replace(from, to);
            assert_ne!(base, hash_of(&changed), "{from} -> {to} did not move the hash");
        }
        let with_metrics = format!("{BASE}\n")
            .replace("name = \"canon\"\n", "name = \"canon\"\nmetrics = [\"coverage\"]\n");
        assert_ne!(base, hash_of(&with_metrics));
        let with_mode = BASE.replace("agents = 2", "agents = 2\ndp_mode = \"sparse\"");
        assert_ne!(base, hash_of(&with_mode), "dp_mode must move the hash");
    }

    #[test]
    fn descriptor_is_readable_and_versioned() {
        let plan = WorkloadPlan::expand(&WorkloadSpec::parse(BASE).unwrap()).unwrap();
        let d = plan.cache_descriptor();
        assert!(d.starts_with("plan-descriptor/v2\n"), "{d}");
        assert!(d.contains("cell label=c agents=2 target=ball(8)"), "{d}");
        assert!(d.contains("dp_mode=auto"), "{d}");
        assert!(d.contains("population=2:nonuniform(8)"), "{d}");
        assert_eq!(plan.content_hash().len(), 32);
    }

    #[test]
    fn fnv128_is_field_delimited() {
        let mut a = Fnv128::new();
        a.field("ab");
        a.field("c");
        let mut b = Fnv128::new();
        b.field("a");
        b.field("bc");
        assert_ne!(a.finish_hex(), b.finish_hex());
        assert_eq!(Fnv128::new().finish_hex(), Fnv128::default().finish_hex());
    }
}
