//! The bridge from planned cells to the exact backend: a
//! [`PlannedCell`] with `backend = "dp"` maps onto an
//! [`ants_dp::DpRequest`] — kernels built from the resolved zoo
//! entries, the target placement enumerated into its weighted support,
//! and the spec's observation metrics translated into the DP's
//! step-indexed curves.

use crate::plan::PlannedCell;
use crate::WorkloadError;
use ants_dp::{evaluate, target_support, DpCellReport, DpMetrics, DpRequest, DpStrategy};
use ants_sim::{Metric, MetricSet};

/// Build the exact-backend request for a cell.
///
/// `smoke` selects the trial count exactly as the Monte Carlo path does
/// — the DP's probabilities do not depend on it, but the reported
/// `found` expectation scales with the trials the row claims to cover.
///
/// # Errors
///
/// Non-Markovian population entries (with the strategy named) and
/// placements without finite support come back as a [`WorkloadError`]
/// carrying the cell label.
pub fn dp_request(
    cell: &PlannedCell,
    smoke: bool,
    metrics: MetricSet,
) -> Result<DpRequest, WorkloadError> {
    let ctx =
        |message: String| WorkloadError { context: format!("cell '{}'", cell.label), message };
    let population = cell
        .population
        .iter()
        .map(|(w, s)| Ok(DpStrategy { weight: *w, kernel: s.kernel()? }))
        .collect::<Result<Vec<_>, String>>()
        .map_err(&ctx)?;
    let targets = target_support(&cell.placement()).map_err(|e| ctx(e.to_string()))?;
    let dp_metrics = if metrics.is_empty() {
        None
    } else {
        Some(DpMetrics {
            coverage: metrics.contains(Metric::Coverage),
            first_visit: metrics.contains(Metric::FirstVisit),
            round_trace: metrics.contains(Metric::RoundTrace),
            chi: metrics.contains(Metric::Chi),
            found_round: metrics.contains(Metric::FoundRound),
            bounds_radius: cell.dist(),
            rounds: cell.observe_rounds(),
        })
    };
    Ok(DpRequest {
        agents: cell.agents,
        move_budget: cell.move_budget,
        trials: cell.trials_at(smoke),
        population,
        targets,
        metrics: dp_metrics,
    })
}

/// Evaluate a cell exactly: build the request and run the DP.
///
/// # Errors
///
/// Request-construction failures (see [`dp_request`]) plus the DP's own
/// guards — state-space, table-size, and metric-work ceilings, and
/// truncation mass beyond [`ants_dp::TRUNCATION_TOL`] — all labelled
/// with the cell.
pub fn evaluate_cell(
    cell: &PlannedCell,
    smoke: bool,
    metrics: MetricSet,
) -> Result<DpCellReport, WorkloadError> {
    let req = dp_request(cell, smoke, metrics)?;
    evaluate(&req).map_err(|e| WorkloadError {
        context: format!("cell '{}'", cell.label),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{WorkloadPlan, WorkloadSpec};

    fn cell_from(text: &str) -> PlannedCell {
        let plan = WorkloadPlan::expand(&WorkloadSpec::parse(text).unwrap()).unwrap();
        plan.cells.into_iter().next().unwrap()
    }

    const WALK: &str = "\
name = \"dp\"
[defaults]
trials = 64
backend = \"dp\"
[[cells]]
name = \"walk\"
agents = 3
move_budget = 24
target = { model = \"fixed\", x = 1, y = 1 }
population = [ { strategy = \"randomwalk\" } ]
";

    #[test]
    fn request_carries_cell_shape() {
        let cell = cell_from(WALK);
        let req = dp_request(&cell, false, MetricSet::empty()).unwrap();
        assert_eq!(req.agents, 3);
        assert_eq!(req.move_budget, 24);
        assert_eq!(req.trials, 64);
        assert_eq!(req.population.len(), 1);
        assert_eq!(req.targets, vec![(ants_grid::Point::new(1, 1), 1.0)]);
        assert!(req.metrics.is_none());
        // Smoke effort only changes the claimed trial count.
        assert_eq!(dp_request(&cell, true, MetricSet::empty()).unwrap().trials, 8);
    }

    #[test]
    fn evaluation_is_exact_and_deterministic() {
        let cell = cell_from(WALK);
        let a = evaluate_cell(&cell, false, MetricSet::empty()).unwrap();
        let b = evaluate_cell(&cell, false, MetricSet::empty()).unwrap();
        assert!(a.success > 0.0 && a.success < 1.0);
        // Bit-identical across reruns — the whole point of the backend.
        assert_eq!(a.success.to_bits(), b.success.to_bits());
        assert_eq!(a.mean_moves.to_bits(), b.mean_moves.to_bits());
    }

    #[test]
    fn metrics_translate_to_dp_curves() {
        let text = WALK
            .replace("move_budget = 24", "move_budget = 16")
            .replace("name = \"dp\"", "name = \"dpm\"\nmetrics = [\"coverage\", \"found_round\"]");
        let plan = WorkloadPlan::expand(&WorkloadSpec::parse(&text).unwrap()).unwrap();
        let cell = &plan.cells[0];
        let report = evaluate_cell(cell, false, plan.metrics).unwrap();
        let cov = report.coverage.expect("coverage requested");
        assert!(cov > 0.0 && cov <= 1.0, "{cov}");
        assert!(report.found_round.is_some());
        assert!(report.mean_first_visit.is_none(), "unrequested metrics stay None");
    }

    #[test]
    fn non_markovian_cells_error_with_the_strategy_name() {
        // Construct an MC cell, then ask the DP bridge to evaluate it:
        // the kernel constructor must refuse, naming the strategy.
        let text = WALK
            .replace("backend = \"dp\"", "backend = \"mc\"")
            .replace("randomwalk", "levy(2.0, 64)");
        let cell = cell_from(&text);
        let e = dp_request(&cell, false, MetricSet::empty()).unwrap_err();
        assert!(e.context.contains("cell 'walk'"), "{e}");
        assert!(e.message.contains("levy(2, 64)") || e.message.contains("levy"), "{e}");
        assert!(e.message.contains("mc"), "{e}");
    }
}
