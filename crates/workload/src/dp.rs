//! The bridge from planned cells to the exact backend: a
//! [`PlannedCell`] with `backend = "dp"` maps onto an
//! [`ants_dp::DpRequest`] — kernels built from the resolved zoo
//! entries, the target placement enumerated into its weighted support,
//! and the spec's observation metrics translated into the DP's
//! step-indexed curves.

use crate::plan::PlannedCell;
use crate::WorkloadError;
use ants_dp::{
    evaluate_with, target_support, DpCellReport, DpMetrics, DpMode, DpRequest, DpStrategy,
    SolveCache,
};
use ants_sim::{Metric, MetricSet};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A cross-cell DP curve memo: the workload-side [`SolveCache`].
///
/// One memo can be shared across every cell of a sweep (and, in `ants
/// serve`, across submissions): curves are keyed by kernel fingerprint,
/// point, clock, and [`DpMode`], so cells that differ only in agent
/// count or trial count reuse each other's solves byte-for-byte.
/// Thread-safe; the counters feed the `dp_memo_hits` / `dp_memo_misses`
/// telemetry.
#[derive(Debug, Default)]
pub struct DpMemo {
    curves: Mutex<HashMap<String, Arc<Vec<f64>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DpMemo {
    /// A fresh, empty memo.
    pub fn new() -> DpMemo {
        DpMemo::default()
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Number of memoized curves.
    pub fn len(&self) -> usize {
        self.curves.lock().expect("memo lock").len()
    }

    /// Is the memo empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SolveCache for DpMemo {
    fn get(&self, key: &str) -> Option<Arc<Vec<f64>>> {
        let hit = self.curves.lock().expect("memo lock").get(key).cloned();
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn put(&self, key: &str, value: Arc<Vec<f64>>) {
        self.curves.lock().expect("memo lock").insert(key.to_string(), value);
    }
}

/// Build the exact-backend request for a cell.
///
/// `smoke` selects the trial count exactly as the Monte Carlo path does
/// — the DP's probabilities do not depend on it, but the reported
/// `found` expectation scales with the trials the row claims to cover.
///
/// # Errors
///
/// Non-Markovian population entries (with the strategy named) and
/// placements without finite support come back as a [`WorkloadError`]
/// carrying the cell label.
pub fn dp_request(
    cell: &PlannedCell,
    smoke: bool,
    metrics: MetricSet,
) -> Result<DpRequest, WorkloadError> {
    let ctx =
        |message: String| WorkloadError { context: format!("cell '{}'", cell.label), message };
    let population = cell
        .population
        .iter()
        .map(|(w, s)| Ok(DpStrategy { weight: *w, kernel: s.kernel()? }))
        .collect::<Result<Vec<_>, String>>()
        .map_err(&ctx)?;
    let targets = target_support(&cell.placement()).map_err(|e| ctx(e.to_string()))?;
    let dp_metrics = if metrics.is_empty() {
        None
    } else {
        Some(DpMetrics {
            coverage: metrics.contains(Metric::Coverage),
            first_visit: metrics.contains(Metric::FirstVisit),
            round_trace: metrics.contains(Metric::RoundTrace),
            chi: metrics.contains(Metric::Chi),
            found_round: metrics.contains(Metric::FoundRound),
            bounds_radius: cell.dist(),
            rounds: cell.observe_rounds(),
        })
    };
    Ok(DpRequest {
        agents: cell.agents,
        move_budget: cell.move_budget,
        trials: cell.trials_at(smoke),
        population,
        targets,
        metrics: dp_metrics,
        mode: cell.dp_mode,
    })
}

/// Evaluate a cell exactly: build the request and run the DP.
///
/// # Errors
///
/// Request-construction failures (see [`dp_request`]) plus the DP's own
/// guards — state-space, table-size, frontier-size, and metric-work
/// ceilings, and truncation mass beyond [`ants_dp::TRUNCATION_TOL`] —
/// all labelled with the cell.
pub fn evaluate_cell(
    cell: &PlannedCell,
    smoke: bool,
    metrics: MetricSet,
) -> Result<DpCellReport, WorkloadError> {
    evaluate_cell_with(cell, smoke, metrics, None, None)
}

/// [`evaluate_cell`] with a [`DpMode`] override (`--dp-mode`) and an
/// optional cross-cell [`DpMemo`]. The override takes precedence over
/// the cell's planned `dp_mode`; memoized evaluations are byte-identical
/// to fresh ones (the memo returns the exact curves a fresh solve
/// produces).
///
/// # Errors
///
/// As [`evaluate_cell`].
pub fn evaluate_cell_with(
    cell: &PlannedCell,
    smoke: bool,
    metrics: MetricSet,
    mode_override: Option<DpMode>,
    memo: Option<&DpMemo>,
) -> Result<DpCellReport, WorkloadError> {
    let mut req = dp_request(cell, smoke, metrics)?;
    if let Some(mode) = mode_override {
        req.mode = mode;
    }
    evaluate_with(&req, memo.map(|m| m as &dyn SolveCache)).map_err(|e| WorkloadError {
        context: format!("cell '{}'", cell.label),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{WorkloadPlan, WorkloadSpec};

    fn cell_from(text: &str) -> PlannedCell {
        let plan = WorkloadPlan::expand(&WorkloadSpec::parse(text).unwrap()).unwrap();
        plan.cells.into_iter().next().unwrap()
    }

    const WALK: &str = "\
name = \"dp\"
[defaults]
trials = 64
backend = \"dp\"
[[cells]]
name = \"walk\"
agents = 3
move_budget = 24
target = { model = \"fixed\", x = 1, y = 1 }
population = [ { strategy = \"randomwalk\" } ]
";

    #[test]
    fn request_carries_cell_shape() {
        let cell = cell_from(WALK);
        let req = dp_request(&cell, false, MetricSet::empty()).unwrap();
        assert_eq!(req.agents, 3);
        assert_eq!(req.move_budget, 24);
        assert_eq!(req.trials, 64);
        assert_eq!(req.population.len(), 1);
        assert_eq!(req.targets, vec![(ants_grid::Point::new(1, 1), 1.0)]);
        assert!(req.metrics.is_none());
        // Smoke effort only changes the claimed trial count.
        assert_eq!(dp_request(&cell, true, MetricSet::empty()).unwrap().trials, 8);
    }

    #[test]
    fn evaluation_is_exact_and_deterministic() {
        let cell = cell_from(WALK);
        let a = evaluate_cell(&cell, false, MetricSet::empty()).unwrap();
        let b = evaluate_cell(&cell, false, MetricSet::empty()).unwrap();
        assert!(a.success > 0.0 && a.success < 1.0);
        // Bit-identical across reruns — the whole point of the backend.
        assert_eq!(a.success.to_bits(), b.success.to_bits());
        assert_eq!(a.mean_moves.to_bits(), b.mean_moves.to_bits());
    }

    #[test]
    fn metrics_translate_to_dp_curves() {
        let text = WALK
            .replace("move_budget = 24", "move_budget = 16")
            .replace("name = \"dp\"", "name = \"dpm\"\nmetrics = [\"coverage\", \"found_round\"]");
        let plan = WorkloadPlan::expand(&WorkloadSpec::parse(&text).unwrap()).unwrap();
        let cell = &plan.cells[0];
        let report = evaluate_cell(cell, false, plan.metrics).unwrap();
        let cov = report.coverage.expect("coverage requested");
        assert!(cov > 0.0 && cov <= 1.0, "{cov}");
        assert!(report.found_round.is_some());
        assert!(report.mean_first_visit.is_none(), "unrequested metrics stay None");
    }

    #[test]
    fn memo_shares_curves_across_cells_and_stays_byte_identical() {
        // Two cells over the same kernel/target/budget that differ only
        // in agent count: the second cell's curves all come from the
        // memo, and the reports match the unmemoized ones bit for bit.
        let text = "\
name = \"memo\"
[defaults]
trials = 64
backend = \"dp\"
[[cells]]
name = \"walk\"
move_budget = 24
target = { model = \"fixed\", x = 1, y = 1 }
population = [ { strategy = \"randomwalk\" } ]
sweep = { agents = [1, 2, 4] }
";
        let plan = WorkloadPlan::expand(&WorkloadSpec::parse(text).unwrap()).unwrap();
        assert_eq!(plan.cells.len(), 3);
        let memo = DpMemo::new();
        for cell in &plan.cells {
            let fresh = evaluate_cell(cell, false, MetricSet::empty()).unwrap();
            let memoized =
                evaluate_cell_with(cell, false, MetricSet::empty(), None, Some(&memo)).unwrap();
            assert_eq!(fresh.success.to_bits(), memoized.success.to_bits(), "{}", cell.label);
            assert_eq!(fresh.mean_moves.to_bits(), memoized.mean_moves.to_bits(), "{}", cell.label);
        }
        let (hits, misses) = memo.stats();
        assert_eq!(misses, 1, "one absorption solve covers the whole sweep");
        assert_eq!(hits, 2, "the other two cells reuse it");
        assert_eq!(memo.len(), 1);
        // A mode override changes the key, so it never aliases.
        let report = evaluate_cell_with(
            &plan.cells[0],
            false,
            MetricSet::empty(),
            Some(DpMode::Sparse),
            Some(&memo),
        )
        .unwrap();
        assert_eq!(memo.len(), 2);
        let base = evaluate_cell(&plan.cells[0], false, MetricSet::empty()).unwrap();
        assert!((report.success - base.success).abs() <= 1e-9);
    }

    #[test]
    fn non_markovian_cells_error_with_the_strategy_name() {
        // Construct an MC cell, then ask the DP bridge to evaluate it:
        // the kernel constructor must refuse, naming the strategy.
        let text = WALK
            .replace("backend = \"dp\"", "backend = \"mc\"")
            .replace("randomwalk", "levy(2.0, 64)");
        let cell = cell_from(&text);
        let e = dp_request(&cell, false, MetricSet::empty()).unwrap_err();
        assert!(e.context.contains("cell 'walk'"), "{e}");
        assert!(e.message.contains("levy(2, 64)") || e.message.contains("levy"), "{e}");
        assert!(e.message.contains("mc"), "{e}");
    }
}
