//! Property tests for the workload pipeline: parse → expand →
//! serialize round-trips, and expansion determinism.
//!
//! The generator builds structurally-valid random specs (the shapes a
//! user could actually write); the properties pin:
//!
//! * `WorkloadSpec::parse(spec.to_toml()) == spec` (serializer and
//!   parser are exact inverses on the canonical form);
//! * expansion of the round-tripped spec matches the original expansion
//!   cell for cell — labels, budgets, seeds, population labels;
//! * expansion is a pure function (two expansions agree).

use ants_workload::{
    CellSpec, Defaults, Sweep, TargetSpec, WorkloadPlan, WorkloadSpec, ZooEntry, ZooStrategy,
};
use proptest::prelude::*;

/// The symbolic strategy pool the generator draws from. All entries
/// resolve for any dist >= 2 and agents >= 1.
fn strategy_pool(idx: u8) -> ZooStrategy {
    let texts = [
        "randomwalk",
        "spiral",
        "nonuniform(dist)",
        "coin(dist, 1)",
        "uniform(1, agents, 2)",
        "harmonic(agents)",
        "levy(2.5, 64)",
        "automaton(walk)",
        "automaton(alg1, 3)",
        "automaton(pfa, 4, 2, 7)",
        "automaton(drift, 3)",
        "fullyuniform(2, 2)",
        "mortal(randomwalk, 64)",
        "mortal(nonuniform(dist), 500)",
    ];
    ZooStrategy::parse(texts[idx as usize % texts.len()]).expect("pool entries parse")
}

fn target_pool(idx: u8, dist: u64) -> TargetSpec {
    match idx % 4 {
        0 => TargetSpec::Corner { dist },
        1 => TargetSpec::Ball { dist },
        2 => TargetSpec::Ring { dist },
        _ => TargetSpec::Fixed { x: dist as i64, y: 2 },
    }
}

/// Deterministically derive one cell from drawn integers.
#[allow(clippy::too_many_arguments)]
fn build_cell(
    i: usize,
    target_kind: u8,
    dist: u64,
    agents: u64,
    pop: &[(u8, u64)],
    sweep_agents: bool,
    sweep_dist: bool,
    sweep_budget: bool,
) -> CellSpec {
    let target = target_pool(target_kind, dist);
    // Fixed targets cannot take a dist axis.
    let sweep_dist = sweep_dist && !matches!(target, TargetSpec::Fixed { .. });
    CellSpec {
        name: format!("cell{i}"),
        // A scalar next to its sweep axis is a validation error: the
        // generator picks exactly one source per knob.
        agents: (!sweep_agents).then_some(agents),
        trials: Some(3),
        smoke_trials: Some(1),
        move_budget: (!sweep_budget).then_some(5_000),
        guess_move_ceiling: None,
        seed: i.is_multiple_of(2).then_some(17 * i as u64),
        // MC everywhere: the pool mixes non-Markovian strategies, which
        // a "dp" cell would (correctly) refuse. The backend round-trip
        // is pinned by the spec unit tests instead.
        backend: i.is_multiple_of(3).then_some(ants_dp::Backend::Mc),
        dp_mode: i.is_multiple_of(4).then_some(ants_dp::DpMode::Sparse),
        target: Some(target),
        population: pop
            .iter()
            .map(|&(s, w)| ZooEntry { weight: w.max(1), strategy: strategy_pool(s) })
            .collect(),
        sweep: Sweep {
            agents: if sweep_agents { vec![1, agents.max(2)] } else { Vec::new() },
            dist: if sweep_dist { vec![2, dist.max(3)] } else { Vec::new() },
            move_budget: if sweep_budget { vec![4_000, 6_000] } else { Vec::new() },
            target: Vec::new(),
        },
    }
}

/// Fingerprint a plan for equality checks across round-trips.
fn fingerprint(plan: &WorkloadPlan) -> Vec<(String, u64, u64, u64, u64, String)> {
    plan.cells
        .iter()
        .map(|c| {
            (c.label.clone(), c.agents, c.move_budget, c.trials, c.seed_tag, c.population_label())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parse_expand_serialize_round_trips(
        seed in 0u64..1000,
        n_cells in 1usize..4,
        target_kind in any::<u8>(),
        dist in 2u64..12,
        agents in 1u64..7,
        pop in proptest::collection::vec((any::<u8>(), 1u64..5), 1..4),
        sweep_agents in any::<bool>(),
        sweep_dist in any::<bool>(),
        sweep_budget in any::<bool>(),
    ) {
        let cells: Vec<CellSpec> = (0..n_cells)
            .map(|i| build_cell(
                i,
                target_kind.wrapping_add(i as u8),
                dist,
                agents,
                &pop,
                sweep_agents,
                sweep_dist && i % 2 == 0,
                sweep_budget && i % 2 == 1,
            ))
            .collect();
        let spec = WorkloadSpec {
            name: format!("prop wl {seed}"),
            description: if seed % 3 == 0 { String::new() } else { format!("desc \"{seed}\"") },
            metrics: {
                // Exercise the metrics key in the round-trip: a varying
                // subset of the observation vocabulary.
                let mut m = ants_sim::MetricSet::empty();
                for (bit, metric) in ants_sim::Metric::ALL.into_iter().enumerate() {
                    if seed & (1 << bit) != 0 {
                        m.insert(metric);
                    }
                }
                m
            },
            defaults: Defaults {
                trials: Some(4),
                smoke_trials: (seed % 2 == 0).then_some(2),
                move_budget: None,
                guess_move_ceiling: None,
                seed: Some(seed),
                backend: None,
                dp_mode: (seed % 5 == 0).then_some(ants_dp::DpMode::Auto),
            },
            cells,
        };

        // Serialize → parse is the identity on the spec.
        let text = spec.to_toml();
        let reparsed = WorkloadSpec::parse(&text)
            .unwrap_or_else(|e| panic!("round-trip parse failed: {e}\n--- spec ---\n{text}"));
        prop_assert_eq!(&reparsed, &spec);

        // Expansion commutes with the round-trip, and is deterministic.
        let plan_a = WorkloadPlan::expand(&spec).expect("original expands");
        let plan_b = WorkloadPlan::expand(&reparsed).expect("round-tripped expands");
        prop_assert_eq!(fingerprint(&plan_a), fingerprint(&plan_b));
        let plan_c = WorkloadPlan::expand(&spec).expect("re-expansion");
        prop_assert_eq!(fingerprint(&plan_a), fingerprint(&plan_c));

        // Every expanded cell builds a runnable scenario.
        for cell in &plan_a.cells {
            let scenario = cell.scenario().expect("validated scenario builds");
            prop_assert_eq!(scenario.n_agents() as u64, cell.agents);
        }
    }
}
