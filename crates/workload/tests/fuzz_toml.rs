//! Fuzz the TOML-subset parser and the spec layer above it with
//! mutated copies of the bundled workload specs.
//!
//! The serve daemon feeds arbitrary client bytes straight into
//! `toml::parse` / `WorkloadSpec::parse`; a panic anywhere in that
//! path kills the process, so the property under test is simply
//! *total-ness*: every mutation — byte flips, deletions, insertions,
//! truncations, stacked in any combination — must come back as `Ok` or
//! as a line-numbered `TomlError`/`WorkloadError`, never a panic.

use ants_workload::{WorkloadPlan, WorkloadSpec};
use proptest::collection::vec;
use proptest::prelude::*;

/// Realistic corpus: the bundled example specs exercise every construct
/// the subset supports (tables, arrays of tables, inline tables,
/// sweeps, comments).
const SPECS: &[&str] = &[
    include_str!("../../../examples/workloads/dp_crosscheck.toml"),
    include_str!("../../../examples/workloads/mixed_targets.toml"),
    include_str!("../../../examples/workloads/chi_tradeoff_zoo.toml"),
    include_str!("../../../examples/workloads/coverage_lower_bound.toml"),
];

/// Apply one mutation; `pos` is reduced modulo the current length so
/// stacked mutations stay in range as the text shrinks and grows.
fn mutate(text: String, op: u8, pos: usize, byte: u8) -> String {
    let mut bytes = text.into_bytes();
    if bytes.is_empty() {
        return String::new();
    }
    let pos = pos % bytes.len();
    match op % 4 {
        0 => bytes[pos] = byte,
        1 => {
            bytes.remove(pos);
        }
        2 => bytes.insert(pos, byte),
        _ => bytes.truncate(pos),
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(768))]

    #[test]
    fn mutated_specs_never_panic(
        spec_idx in 0usize..SPECS.len(),
        edits in vec((any::<u8>(), any::<usize>(), any::<u8>()), 1..5),
    ) {
        let mut text = SPECS[spec_idx].to_string();
        for (op, pos, byte) in edits {
            text = mutate(text, op, pos, byte);
        }
        match ants_workload::toml::parse(&text) {
            Ok(_) => {}
            Err(e) => prop_assert!(e.line >= 1, "error without a line number: {e}"),
        }
        // The full pipeline must be just as total: spec validation and
        // plan expansion run over whatever the parser accepted.
        if let Ok(spec) = WorkloadSpec::parse(&text) {
            let _ = WorkloadPlan::expand(&spec);
        }
    }

    /// The unmutated corpus parses; mutations must not be vacuous
    /// because the baseline itself is broken.
    #[test]
    fn bundled_corpus_parses_clean(spec_idx in 0usize..SPECS.len()) {
        let spec = WorkloadSpec::parse(SPECS[spec_idx]);
        prop_assert!(spec.is_ok(), "corpus entry {spec_idx} failed: {:?}", spec.err());
    }
}
