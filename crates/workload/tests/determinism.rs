//! The workload determinism battery: a mixed-population workload is
//! byte-identical across every scheduling configuration.
//!
//! This is the spec-file-level extension of
//! `crates/sim/tests/determinism.rs`: the population assignment is drawn
//! per (trial, agent) from the trial seed, so it must survive trial- and
//! agent-granularity scheduling, any chunk size, and any thread count,
//! exactly like the walk randomness itself. The population deliberately
//! mixes a phase-based strategy (`uniform`, whose chi footprint grows
//! and shrinks across guess aborts) with fixed automata — the
//! combination that catches a sloppy chi reduction.

use ants_sim::{run_sweep_with, run_trials_serial, Granularity, SweepOptions};
use ants_workload::{WorkloadPlan, WorkloadSpec};

const MIXED: &str = r#"
name = "determinism-battery"

[defaults]
trials = 3
seed = 21

[[cells]]
name = "mixed"
guess_move_ceiling = 500
target = { model = "ball", dist = 5 }
move_budget = 6000
population = [
  { strategy = "uniform(1, agents, 2)", weight = 2 },
  { strategy = "nonuniform(dist)", weight = 2 },
  { strategy = "randomwalk", weight = 1 },
  { strategy = "automaton(alg1, 3)", weight = 1 },
]
sweep = { agents = [3, 10] }

[[cells]]
name = "narrow"
agents = 7
target = { model = "corner", dist = 3 }
move_budget = 6000
population = [
  { strategy = "spiral", weight = 1 },
  { strategy = "coin(4, 1)", weight = 3 },
]
"#;

fn plan() -> WorkloadPlan {
    WorkloadPlan::expand(&WorkloadSpec::parse(MIXED).expect("spec parses")).expect("plan expands")
}

/// Acceptance pin: every (threads, granularity, chunk) combination
/// reproduces the serial reference byte for byte, per cell.
#[test]
fn mixed_population_workload_is_schedule_invariant() {
    let plan = plan();
    let jobs = plan.jobs(false, 0).expect("jobs build");
    let reference: Vec<_> =
        jobs.iter().map(|j| run_trials_serial(&j.scenario, j.trials, j.seed)).collect();
    for threads in [1usize, 2, 4] {
        for granularity in [Granularity::Trial, Granularity::Agent] {
            for chunk in [1usize, 3] {
                let opts =
                    SweepOptions::with_threads(Some(threads)).granularity(granularity).chunk(chunk);
                let outcomes = run_sweep_with(&plan.jobs(false, 0).expect("jobs build"), &opts);
                for ((cell, got), want) in plan.cells.iter().zip(&outcomes).zip(&reference) {
                    assert_eq!(
                        got.trials(),
                        want.trials(),
                        "cell '{}' diverged at threads {threads}, {granularity:?}, chunk {chunk}",
                        cell.label
                    );
                }
            }
        }
    }
}

/// The per-agent assignment is a pure function of (trial seed, agent):
/// rebuilding the plan from text reproduces it, and shifting the base
/// seed genuinely reshuffles who runs what.
#[test]
fn assignment_is_seeded_by_the_trial_alone() {
    let a = plan();
    let b = plan();
    let sa = a.cells[0].scenario().expect("builds");
    let sb = b.cells[0].scenario().expect("builds");
    assert_eq!(sa.population_len(), 4);
    let mut saw_multiple = std::collections::HashSet::new();
    for trial_seed in 0..40u64 {
        for agent in 0..sa.n_agents() {
            let x = sa.population_assignment(trial_seed, agent);
            assert_eq!(x, sb.population_assignment(trial_seed, agent));
            saw_multiple.insert(x);
        }
    }
    // All four entries actually occur (weights 2:2:1:1 over 120 draws).
    assert_eq!(saw_multiple.len(), 4, "all population entries must be exercised");
}

/// Base-seed shifts flow through the jobs (the `--seed` contract).
#[test]
fn base_seed_shifts_job_seeds() {
    let plan = plan();
    let j0 = plan.jobs(false, 0).expect("jobs");
    let j7 = plan.jobs(false, 7).expect("jobs");
    for (a, b) in j0.iter().zip(&j7) {
        assert_eq!(a.seed ^ b.seed, 7, "base seed must XOR into every cell seed");
    }
    // And different cells keep distinct seeds under any base.
    let mut seeds: Vec<u64> = j7.iter().map(|j| j.seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), j7.len());
}
