//! Statistical helpers for validating probabilistic claims.
//!
//! Every statistical assertion in the workspace's test-suite goes through
//! these utilities so that tolerances are explicit and failure
//! probabilities are documented. They are also used by the experiment
//! harnesses to attach confidence intervals to reported numbers.

/// Running mean/variance accumulator (Welford's algorithm).
///
/// ```
/// use ants_rng::stats::Accumulator;
/// let mut acc = Accumulator::new();
/// for x in [1.0, 2.0, 3.0, 4.0] { acc.push(x); }
/// assert_eq!(acc.mean(), 2.5);
/// assert!((acc.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Normal-approximation confidence half-width at `z` standard errors.
    pub fn ci_half_width(&self, z: f64) -> f64 {
        z * self.std_error()
    }

    /// Merge another accumulator (parallel Welford/Chan update).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Wilson score interval for a binomial proportion.
///
/// Returns `(low, high)` at `z` standard deviations (z = 5 ⇒ failure
/// probability < 6e-7 per test). Preferred over the normal interval for
/// small proportions like `1/2^{kℓ}`.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(trials > 0, "wilson_interval requires at least one trial");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

/// Pearson chi-square statistic for observed vs expected counts.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or any expected count
/// is non-positive.
pub fn chi_square_statistic(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "length mismatch");
    assert!(!observed.is_empty(), "need at least one bucket");
    observed
        .iter()
        .zip(expected.iter())
        .map(|(&o, &e)| {
            assert!(e > 0.0, "expected counts must be positive");
            let d = o as f64 - e;
            d * d / e
        })
        .sum()
}

/// Conservative chi-square critical value at significance ~1e-6 for `df`
/// degrees of freedom, via the Wilson–Hilferty cube approximation.
///
/// Good to a few percent for `df ≥ 3`, always on the safe (larger) side for
/// the test-suite's purposes after the built-in 10% inflation.
pub fn chi_square_critical_1e6(df: u32) -> f64 {
    assert!(df >= 1, "df must be positive");
    let df = df as f64;
    // z-score for upper tail 1e-6.
    let z = 4.7534;
    let t = 1.0 - 2.0 / (9.0 * df) + z * (2.0 / (9.0 * df)).sqrt();
    df * t * t * t * 1.10
}

/// Two-sided Chernoff tolerance: the deviation `δ·μ` such that
/// `P[|X − μ| > δμ] ≤ 2·exp(−δ²μ/3) ≤ bound` (paper, Theorem A.4).
///
/// Used to size test tolerances with explicit failure probabilities.
pub fn chernoff_tolerance(mu: f64, bound: f64) -> f64 {
    assert!(mu > 0.0 && bound > 0.0 && bound < 1.0);
    let delta = (3.0 * (2.0 / bound).ln() / mu).sqrt();
    delta * mu
}

/// Ordinary least squares fit of `y = a + b·x`; returns `(a, b)`.
///
/// Used by experiments to fit exponents on log-log data.
///
/// # Panics
///
/// Panics given fewer than two points or zero variance in `x`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    assert!(sxx > 0.0, "x values must not be constant");
    let sxy: f64 = xs.iter().zip(ys.iter()).map(|(x, y)| (x - mx) * (y - my)).sum();
    let b = sxy / sxx;
    (my - b * mx, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_basic_moments() {
        let mut acc = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            acc.push(x);
        }
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        assert!((acc.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
    }

    #[test]
    fn accumulator_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut whole = Accumulator::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &data[..40] {
            left.push(x);
        }
        for &x in &data[40..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn accumulator_merge_with_empty() {
        let mut a = Accumulator::new();
        a.push(1.0);
        let before = a.clone();
        a.merge(&Accumulator::new());
        assert_eq!(a, before);
        let mut e = Accumulator::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn wilson_contains_true_p() {
        // 500 successes in 1000 trials: interval must contain 0.5.
        let (lo, hi) = wilson_interval(500, 1000, 5.0);
        assert!(lo < 0.5 && 0.5 < hi);
        // Extreme: zero successes still yields a valid interval.
        let (lo, hi) = wilson_interval(0, 1000, 5.0);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.05);
    }

    #[test]
    fn chi_square_statistic_zero_for_perfect_fit() {
        let observed = [10u64, 20, 30];
        let expected = [10.0, 20.0, 30.0];
        assert_eq!(chi_square_statistic(&observed, &expected), 0.0);
    }

    #[test]
    fn chi_square_critical_reasonable() {
        // Known value: chi2(df=10) upper 1e-6 ≈ 46.6 (Wilson–Hilferty within 10%+margin).
        let c = chi_square_critical_1e6(10);
        assert!(c > 40.0 && c < 60.0, "critical {c}");
        // Monotone in df.
        assert!(chi_square_critical_1e6(20) > c);
    }

    #[test]
    fn chernoff_tolerance_shrinks_relatively() {
        let t1 = chernoff_tolerance(100.0, 1e-9);
        let t2 = chernoff_tolerance(10_000.0, 1e-9);
        // Relative tolerance shrinks as mu grows.
        assert!(t1 / 100.0 > t2 / 10_000.0);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn linear_fit_needs_points() {
        let _ = linear_fit(&[1.0], &[2.0]);
    }
}
