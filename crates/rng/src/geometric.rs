//! Geometric distributions driven by coins.
//!
//! The paper's walks ("while coin `C_p` shows heads do move") have
//! geometrically distributed lengths: the number of heads before the first
//! tails. [`Geometric`] provides both the *faithful* sampler (flip the coin
//! repeatedly — what an actual agent does) and a *fast* sampler (inverse
//! transform) used by the high-throughput simulation paths where the
//! per-flip audit trail is not needed.

use crate::coin::{BiasedCoin, Coin};
use crate::dyadic::DyadicProb;
use crate::rng::Rng64;

/// Sampler for the number of heads of `C_p` before the first tails.
///
/// Support `{0, 1, 2, …}` with `P[X = i] = (1−p)^i · p`; mean `(1−p)/p`.
///
/// ```
/// use ants_rng::{Geometric, DyadicProb, SeedableRng64, Xoshiro256PlusPlus};
/// let g = Geometric::new(DyadicProb::half());
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
/// let x = g.sample_exact(&mut rng);
/// // Fair coin: runs are short.
/// assert!(x < 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometric {
    p_tails: DyadicProb,
    coin: BiasedCoin,
}

impl Geometric {
    /// Create a sampler for stopping probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero: the walk would never terminate.
    pub fn new(p_tails: DyadicProb) -> Self {
        assert!(!p_tails.is_zero(), "geometric distribution requires p > 0");
        Self { p_tails, coin: BiasedCoin::new(p_tails) }
    }

    /// The stopping probability `p`.
    pub fn p_tails(&self) -> DyadicProb {
        self.p_tails
    }

    /// The exact mean `(1−p)/p`.
    pub fn mean(&self) -> f64 {
        let p = self.p_tails.to_f64();
        (1.0 - p) / p
    }

    /// Sample by flipping the coin until tails — exactly what the paper's
    /// agents do, one state transition per flip.
    pub fn sample_exact<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut count = 0u64;
        while self.coin.flip(rng).is_heads() {
            count += 1;
        }
        count
    }

    /// Sample via inverse transform: `⌊ln U / ln(1−p)⌋`.
    ///
    /// Statistically equivalent to [`sample_exact`](Self::sample_exact) up
    /// to `f64` resolution, but O(1) instead of O(1/p) — used by the
    /// simulator's fast path where only the *move counts* matter.
    pub fn sample_fast<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p_tails.is_one() {
            return 0;
        }
        let q = 1.0 - self.p_tails.to_f64();
        // U in (0, 1]: avoid ln(0).
        let u = 1.0 - rng.next_f64();
        let x = u.ln() / q.ln();
        // Guard against pathological rounding.
        if x.is_finite() && x >= 0.0 {
            x as u64
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng64;
    use crate::Xoshiro256PlusPlus;

    #[test]
    fn exact_mean_matches_formula() {
        let g = Geometric::new(DyadicProb::one_over_pow2(4).unwrap()); // p = 1/16
        assert_eq!(g.mean(), 15.0);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let n = 100_000;
        let total: u64 = (0..n).map(|_| g.sample_exact(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        // std of the mean ≈ sqrt(240/1e5) ≈ 0.049; 5σ ≈ 0.25.
        assert!((mean - 15.0).abs() < 0.4, "mean {mean}");
    }

    #[test]
    fn fast_mean_matches_formula() {
        let g = Geometric::new(DyadicProb::one_over_pow2(6).unwrap()); // p = 1/64
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let n = 100_000;
        let total: u64 = (0..n).map(|_| g.sample_fast(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 63.0).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn exact_and_fast_agree_in_distribution() {
        let g = Geometric::new(DyadicProb::one_over_pow2(3).unwrap()); // p = 1/8
        let mut r1 = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut r2 = Xoshiro256PlusPlus::seed_from_u64(4);
        let n = 50_000;
        // Compare tail probabilities P[X >= 8] = (7/8)^8 ≈ 0.3436.
        let tail_exact = (0..n).filter(|_| g.sample_exact(&mut r1) >= 8).count() as f64 / n as f64;
        let tail_fast = (0..n).filter(|_| g.sample_fast(&mut r2) >= 8).count() as f64 / n as f64;
        let expect = (7.0f64 / 8.0).powi(8);
        assert!((tail_exact - expect).abs() < 0.02, "exact tail {tail_exact}");
        assert!((tail_fast - expect).abs() < 0.02, "fast tail {tail_fast}");
    }

    #[test]
    fn p_one_always_zero() {
        let g = Geometric::new(DyadicProb::ONE);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        for _ in 0..50 {
            assert_eq!(g.sample_exact(&mut rng), 0);
            assert_eq!(g.sample_fast(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "p > 0")]
    fn p_zero_rejected() {
        let _ = Geometric::new(DyadicProb::ZERO);
    }

    #[test]
    fn point_mass_lower_bound_lemma_3_8() {
        // Lemma 3.8 (specialised): P[X = i] >= 1/2^{kl+2} for i <= 2^{kl}.
        // Check empirically for kl = 4 (p = 1/16): P[X = i] = (15/16)^i/16.
        let g = Geometric::new(DyadicProb::one_over_pow2(4).unwrap());
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let n = 400_000u64;
        let mut counts = [0u64; 17];
        for _ in 0..n {
            let x = g.sample_exact(&mut rng);
            if x <= 16 {
                counts[x as usize] += 1;
            }
        }
        let floor = 1.0 / 64.0; // 1/2^{kl+2}
        for (i, &c) in counts.iter().enumerate() {
            let f = c as f64 / n as f64;
            assert!(f > floor * 0.8, "P[X = {i}] = {f} below Lemma 3.8 floor {floor}");
        }
    }
}
