//! Xoshiro256++: the workspace's default generator.
//!
//! Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
//! generators", ACM TOMS 2021. 256 bits of state, period `2^256 − 1`,
//! excellent statistical quality, and a `jump()` function for cheap
//! non-overlapping substreams.

use crate::rng::{Rng64, SeedableRng64};
use crate::splitmix::SplitMix64;

/// A xoshiro256++ generator.
///
/// ```
/// use ants_rng::{Xoshiro256PlusPlus, Rng64, SeedableRng64};
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Construct from raw state words.
    ///
    /// # Panics
    ///
    /// Panics if all four words are zero (the all-zero state is a fixed
    /// point of the linear engine and must never be used).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro256++ state must be non-zero");
        Self { s }
    }

    /// Expand a [`SplitMix64`] stream into a full 256-bit state, as
    /// recommended by the xoshiro authors.
    pub fn from_splitmix(mix: &mut SplitMix64) -> Self {
        let mut s = [0u64; 4];
        loop {
            for w in &mut s {
                *w = mix.next_u64();
            }
            if s.iter().any(|&w| w != 0) {
                return Self { s };
            }
        }
    }

    /// The raw internal state (useful for tests and serialization).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Advance the state by `2^128` steps.
    ///
    /// Produces a substream guaranteed not to overlap the parent for the
    /// next `2^128` outputs; calling `jump` `k` times yields `k` parallel
    /// streams.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut acc = [0u64; 4];
        for &word in &JUMP {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    for (a, &s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                let _ = self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl SeedableRng64 for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        Self::from_splitmix(&mut mix)
    }
}

impl Rng64 for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the xoshiro256++ C implementation with state
    /// {1, 2, 3, 4}.
    #[test]
    fn reference_vector() {
        let expected: [u64; 10] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), e, "output {i}");
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256PlusPlus::from_state([0; 4]);
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(77);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(77);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn jump_produces_disjoint_prefix() {
        let mut base = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut jumped = base.clone();
        jumped.jump();
        // The first outputs of the jumped stream should not appear in a
        // short prefix of the base stream.
        let prefix: Vec<u64> = (0..128).map(|_| base.next_u64()).collect();
        for _ in 0..32 {
            let x = jumped.next_u64();
            assert!(!prefix.contains(&x));
        }
    }

    #[test]
    fn equidistribution_smoke() {
        // Count bits over many outputs; each bit position should be ~50%.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let n = 20_000u64;
        let mut counts = [0u32; 64];
        for _ in 0..n {
            let x = rng.next_u64();
            for (bit, count) in counts.iter_mut().enumerate() {
                *count += ((x >> bit) & 1) as u32;
            }
        }
        for (bit, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.5).abs() < 0.02, "bit {bit} frequency {frac}");
        }
    }

    #[test]
    fn from_splitmix_matches_seed_from_u64() {
        let mut mix = SplitMix64::new(123);
        let a = Xoshiro256PlusPlus::from_splitmix(&mut mix);
        let b = Xoshiro256PlusPlus::seed_from_u64(123);
        assert_eq!(a.state(), b.state());
    }
}
