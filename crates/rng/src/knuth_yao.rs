//! Knuth–Yao sampling: arbitrary dyadic distributions from fair coins.
//!
//! The paper's Discussion section observes that memory can simulate fine
//! probabilities but not conversely. The classic constructive form of
//! that observation is the Knuth–Yao discrete distribution generator: any
//! distribution whose probabilities are dyadic rationals `a/2^m` can be
//! sampled *exactly* using only fair coin flips — at the cost of a state
//! machine whose depth (and hence memory) is `m`. [`KnuthYao`] implements
//! the DDG-tree walk and reports both costs, making the `b ↔ log ℓ`
//! exchange rate executable.
//!
//! Expected flips per sample is at most `m` and empirically close to the
//! entropy plus two — the Knuth–Yao optimality bound.

use crate::dyadic::DyadicProb;
use crate::rng::Rng64;

/// An exact sampler for a finite distribution with dyadic probabilities,
/// driven by fair coin flips only (`ℓ = 1`).
///
/// ```
/// use ants_rng::{DyadicProb, KnuthYao, SeedableRng64, Xoshiro256PlusPlus};
/// // P = (1/2, 1/4, 1/4) over three outcomes.
/// let ky = KnuthYao::new(&[
///     DyadicProb::half(),
///     DyadicProb::new(1, 2).unwrap(),
///     DyadicProb::new(1, 2).unwrap(),
/// ]).unwrap();
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
/// let (outcome, flips) = ky.sample_counted(&mut rng);
/// assert!(outcome < 3);
/// assert!(flips >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct KnuthYao {
    /// `bits[level][j]` lists the outcomes whose probability has a 1 bit
    /// at position `level + 1` (i.e. contributes `2^-(level+1)`).
    levels: Vec<Vec<usize>>,
    n: usize,
}

/// Error building a [`KnuthYao`] sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnuthYaoError {
    /// The probabilities do not sum to exactly one.
    NotADistribution,
    /// The distribution is empty.
    Empty,
}

impl std::fmt::Display for KnuthYaoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KnuthYaoError::NotADistribution => {
                write!(f, "probabilities must sum to exactly one")
            }
            KnuthYaoError::Empty => write!(f, "distribution must have at least one outcome"),
        }
    }
}

impl std::error::Error for KnuthYaoError {}

impl KnuthYao {
    /// Build the DDG tree for a distribution.
    ///
    /// # Errors
    ///
    /// [`KnuthYaoError::Empty`] for no outcomes,
    /// [`KnuthYaoError::NotADistribution`] if the probabilities do not sum
    /// to exactly one (checked in exact dyadic arithmetic).
    pub fn new(probs: &[DyadicProb]) -> Result<Self, KnuthYaoError> {
        if probs.is_empty() {
            return Err(KnuthYaoError::Empty);
        }
        // Exact sum check in units of 2^-64.
        let mut sum: u128 = 0;
        let mut max_m = 1u32;
        for p in probs {
            sum += match p.exponent() {
                64 => p.numerator() as u128,
                e => (p.numerator() as u128) << (64 - e),
            };
            max_m = max_m.max(p.exponent());
        }
        if sum != 1u128 << 64 {
            return Err(KnuthYaoError::NotADistribution);
        }
        let mut levels = vec![Vec::new(); max_m as usize];
        for (i, p) in probs.iter().enumerate() {
            if p.is_zero() {
                continue;
            }
            if p.is_one() {
                levels[0].push(i);
                // A probability-one outcome occupies both level-1 slots;
                // represent it by listing it twice.
                levels[0].push(i);
                continue;
            }
            // Bit j (from the MSB of the dyadic expansion) set means the
            // outcome has a leaf at depth j+1.
            let m = p.exponent();
            let a = p.numerator();
            for depth in 1..=m {
                if (a >> (m - depth)) & 1 == 1 {
                    levels[depth as usize - 1].push(i);
                }
            }
        }
        Ok(Self { levels, n: probs.len() })
    }

    /// Number of outcomes.
    pub fn num_outcomes(&self) -> usize {
        self.n
    }

    /// The DDG tree depth — the memory the agent needs (`≈ max exponent`
    /// bits of level counter).
    pub fn depth(&self) -> u32 {
        self.levels.len() as u32
    }

    /// Sample one outcome, returning `(outcome, fair flips used)`.
    ///
    /// The walk maintains the classic Knuth–Yao invariant: at depth `d`
    /// there are `2^d` equally likely tree positions; leaves assigned at
    /// depth `d` each absorb probability `2^-d`.
    pub fn sample_counted<R: Rng64 + ?Sized>(&self, rng: &mut R) -> (usize, u32) {
        let mut flips = 0u32;
        // `pos` = index of the current node among the internal nodes at
        // this depth; internal node count at depth d is
        // 2*prev_internal - leaves(d).
        let mut pos: u64 = 0;
        let mut internal: u64 = 1;
        loop {
            for (depth, leaves) in self.levels.iter().enumerate() {
                let _ = depth;
                // Descend one level: flip a fair coin.
                flips += 1;
                pos = 2 * pos + u64::from(rng.next_bool());
                let width = 2 * internal;
                let num_leaves = leaves.len() as u64;
                // The first `num_leaves` positions at this depth are leaves.
                if pos < num_leaves {
                    return (leaves[pos as usize], flips);
                }
                pos -= num_leaves;
                internal = width - num_leaves;
                if internal == 0 {
                    // Tree exhausted without hitting a leaf — impossible
                    // for a valid distribution.
                    unreachable!("DDG tree exhausted; distribution invariant violated");
                }
            }
            // Deeper than the finest probability: only possible through
            // rounding of repeated visits — restart (probability-0 path
            // for exact dyadic inputs, but keep the loop total).
        }
    }

    /// Sample one outcome.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample_counted(rng).0
    }

    /// Shannon entropy of the distribution in bits (diagnostic: expected
    /// flips is within `[H, H + 2)` by Knuth–Yao optimality).
    pub fn entropy(&self) -> f64 {
        // Reconstruct probabilities from the levels.
        let mut probs = vec![0.0f64; self.n];
        for (depth, leaves) in self.levels.iter().enumerate() {
            for &o in leaves {
                probs[o] += 2f64.powi(-(depth as i32 + 1));
            }
        }
        -probs.iter().filter(|&&p| p > 0.0).map(|&p| p * p.log2()).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng64;
    use crate::Xoshiro256PlusPlus;

    fn dp(a: u64, m: u32) -> DyadicProb {
        DyadicProb::new(a, m).unwrap()
    }

    #[test]
    fn rejects_non_distributions() {
        assert!(matches!(KnuthYao::new(&[]), Err(KnuthYaoError::Empty)));
        assert!(matches!(
            KnuthYao::new(&[DyadicProb::half()]),
            Err(KnuthYaoError::NotADistribution)
        ));
        assert!(matches!(
            KnuthYao::new(&[DyadicProb::half(), DyadicProb::half(), DyadicProb::half()]),
            Err(KnuthYaoError::NotADistribution)
        ));
    }

    #[test]
    fn fair_coin_as_ddg() {
        let ky = KnuthYao::new(&[DyadicProb::half(), DyadicProb::half()]).unwrap();
        assert_eq!(ky.depth(), 1);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let n = 100_000;
        let ones: usize = (0..n).map(|_| ky.sample(&mut rng)).sum();
        let f = ones as f64 / n as f64;
        assert!((f - 0.5).abs() < 0.01, "{f}");
        // Exactly one flip per sample.
        let (_, flips) = ky.sample_counted(&mut rng);
        assert_eq!(flips, 1);
    }

    #[test]
    fn skewed_distribution_frequencies() {
        // (1/2, 1/4, 1/8, 1/8).
        let ky = KnuthYao::new(&[dp(1, 1), dp(1, 2), dp(1, 3), dp(1, 3)]).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let n = 400_000u32;
        let mut counts = [0u32; 4];
        for _ in 0..n {
            counts[ky.sample(&mut rng)] += 1;
        }
        let expect = [0.5, 0.25, 0.125, 0.125];
        for (i, (&c, &e)) in counts.iter().zip(expect.iter()).enumerate() {
            let f = f64::from(c) / f64::from(n);
            assert!((f - e).abs() < 0.005, "outcome {i}: {f} vs {e}");
        }
    }

    #[test]
    fn non_power_probabilities() {
        // (3/8, 5/8): binary expansions .011 and .101.
        let ky = KnuthYao::new(&[dp(3, 3), dp(5, 3)]).unwrap();
        assert_eq!(ky.depth(), 3);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let n = 400_000u32;
        let zeros: u32 = (0..n).map(|_| u32::from(ky.sample(&mut rng) == 0)).sum();
        let f = f64::from(zeros) / f64::from(n);
        assert!((f - 0.375).abs() < 0.005, "{f}");
    }

    #[test]
    fn expected_flips_near_entropy() {
        // Knuth-Yao optimality: E[flips] < H + 2.
        let ky = KnuthYao::new(&[dp(1, 1), dp(1, 2), dp(1, 3), dp(1, 3)]).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let n = 100_000u32;
        let total: u64 = (0..n).map(|_| u64::from(ky.sample_counted(&mut rng).1)).sum();
        let mean = total as f64 / f64::from(n);
        let h = ky.entropy();
        assert!(mean < h + 2.0, "mean flips {mean} vs entropy {h}");
        assert!(mean >= h - 1e-9, "mean flips {mean} below entropy {h}?");
    }

    #[test]
    fn simulates_fine_coin_with_fair_flips() {
        // The b <-> log l exchange: C_{1/2^10} as a DDG needs depth 10
        // (10 bits of counter memory) but only fair coins.
        let fine = dp(1, 10);
        let ky = KnuthYao::new(&[fine, fine.complement()]).unwrap();
        assert_eq!(ky.depth(), 10);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let n = 2_000_000u32;
        let hits: u32 = (0..n).map(|_| u32::from(ky.sample(&mut rng) == 0)).sum();
        let f = f64::from(hits) / f64::from(n);
        let expect = 1.0 / 1024.0;
        assert!((f - expect).abs() < 3e-4, "{f} vs {expect}");
        // Expected flips ~ 2, far below depth: the DDG is lazy.
        let total: u64 = (0..10_000).map(|_| u64::from(ky.sample_counted(&mut rng).1)).sum();
        assert!(total as f64 / 10_000.0 < 3.0);
    }

    #[test]
    fn entropy_values() {
        let ky = KnuthYao::new(&[DyadicProb::half(), DyadicProb::half()]).unwrap();
        assert!((ky.entropy() - 1.0).abs() < 1e-12);
        let ky = KnuthYao::new(&[dp(1, 2), dp(1, 2), dp(1, 2), dp(1, 2)]).unwrap();
        assert!((ky.entropy() - 2.0).abs() < 1e-12);
    }
}
