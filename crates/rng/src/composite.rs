//! Algorithm 2 of the paper: composite coins.
//!
//! `coin(k, ℓ)` simulates a coin showing tails with probability `1/2^{kℓ}`
//! using only the base coin `C_{1/2^ℓ}`: flip the base coin up to `k` times
//! and return heads as soon as any flip shows heads; return tails only when
//! all `k` flips show tails. Since the flips are independent,
//! `P[tails] = (1/2^ℓ)^k = 1/2^{kℓ}` (Lemma 3.6).
//!
//! The agent only needs the loop counter — `⌈log₂ k⌉` bits of memory — which
//! is precisely how the paper converts *probability resolution* into
//! *memory*, the trade-off at the heart of the `χ = b + log ℓ` metric.
//!
//! Note on the paper's pseudocode: Algorithm 2 writes `for i = 0 · · · k`,
//! which read literally performs `k + 1` flips and yields `1/2^{(k+1)ℓ}`,
//! contradicting Lemma 3.6's statement `1/2^{kℓ}`. We implement `k` flips,
//! matching the lemma (the proof also speaks of "a total of k coin flips").

use crate::coin::{BiasedCoin, Coin, Flip};
use crate::dyadic::{DyadicError, DyadicProb};
use crate::ledger::ProbabilityLedger;
use crate::rng::Rng64;

/// The paper's `coin(k, ℓ)`: tails with probability `1/2^{kℓ}`, realised by
/// `k` flips of `C_{1/2^ℓ}`.
///
/// ```
/// use ants_rng::{CompositeCoin, Coin, SeedableRng64, Xoshiro256PlusPlus};
/// // coin(3, 2) == C_{1/64}.
/// let coin = CompositeCoin::new(3, 2).unwrap();
/// assert_eq!(coin.tails_probability().to_f64(), 1.0 / 64.0);
/// assert_eq!(coin.memory_bits(), 2); // ⌈log₂ 3⌉
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompositeCoin {
    k: u32,
    ell: u32,
    base: BiasedCoin,
}

impl CompositeCoin {
    /// Create `coin(k, ℓ)`.
    ///
    /// # Errors
    ///
    /// [`DyadicError::ExponentTooLarge`] if `ℓ > 64` or `k·ℓ > 64` (the
    /// resulting probability would be below the crate's `2^-64` floor).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `ℓ == 0`; both are degenerate (the paper
    /// assumes `ℓ ≥ 1`, and `k = 0` flips nothing).
    pub fn new(k: u32, ell: u32) -> Result<Self, DyadicError> {
        assert!(k > 0, "composite coin requires k >= 1");
        assert!(ell > 0, "composite coin requires ell >= 1");
        let total = k.checked_mul(ell).ok_or(DyadicError::ExponentTooLarge)?;
        if total > 64 {
            return Err(DyadicError::ExponentTooLarge);
        }
        Ok(Self { k, ell, base: BiasedCoin::base(ell)? })
    }

    /// Construct the coin used by `Non-Uniform-Search` (Theorem 3.7): the
    /// coin closest to `C_{1/D}` realisable at resolution `ℓ`, i.e.
    /// `coin(⌈log₂ D / ℓ⌉, ℓ)`.
    ///
    /// # Errors
    ///
    /// As [`CompositeCoin::new`].
    ///
    /// # Panics
    ///
    /// Panics if `d < 2` (the paper's algorithms assume `D > 1`).
    pub fn for_distance(d: u64, ell: u32) -> Result<Self, DyadicError> {
        assert!(d >= 2, "distance must be at least 2");
        let log_d = ceil_log2(d);
        let k = log_d.div_ceil(ell).max(1);
        Self::new(k, ell)
    }

    /// The number of base-coin flips `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The base-coin resolution `ℓ`.
    pub fn ell(&self) -> u32 {
        self.ell
    }

    /// The memory cost of the loop counter: `⌈log₂ k⌉` bits (Lemma 3.6).
    pub fn memory_bits(&self) -> u32 {
        ceil_log2(self.k as u64)
    }

    /// Flip while recording every *base* flip in the ledger. The recorded
    /// probabilities are the base coin's — that is exactly what makes the
    /// construction cheap in `ℓ`.
    pub fn flip_recorded_base<R: Rng64 + ?Sized>(
        &self,
        rng: &mut R,
        ledger: &mut ProbabilityLedger,
    ) -> Flip {
        for _ in 0..self.k {
            if self.base.flip_recorded(rng, ledger).is_heads() {
                return Flip::Heads;
            }
        }
        Flip::Tails
    }
}

impl Coin for CompositeCoin {
    fn flip<R: Rng64 + ?Sized>(&self, rng: &mut R) -> Flip {
        // Faithful to Algorithm 2: flip the base coin up to k times.
        for _ in 0..self.k {
            if self.base.flip(rng).is_heads() {
                return Flip::Heads;
            }
        }
        Flip::Tails
    }

    fn tails_probability(&self) -> DyadicProb {
        // 1/2^{kℓ}; the constructor guarantees kℓ ≤ 64.
        DyadicProb::one_over_pow2(self.k * self.ell).expect("checked in constructor")
    }

    fn required_ell(&self) -> u32 {
        self.base.required_ell()
    }
}

/// `⌈log₂ x⌉` for `x ≥ 1` (0 for `x = 1`).
pub(crate) fn ceil_log2(x: u64) -> u32 {
    assert!(x >= 1, "ceil_log2 requires x >= 1");
    64 - (x - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng64;
    use crate::Xoshiro256PlusPlus;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
        assert_eq!(ceil_log2(u64::MAX), 64);
    }

    #[test]
    fn probability_is_exactly_one_over_2_kl() {
        for (k, ell) in [(1u32, 1u32), (2, 3), (5, 2), (10, 4), (64, 1), (1, 64)] {
            let coin = CompositeCoin::new(k, ell).unwrap();
            assert_eq!(
                coin.tails_probability(),
                DyadicProb::one_over_pow2(k * ell).unwrap(),
                "coin({k},{ell})"
            );
        }
    }

    #[test]
    fn resolution_is_base_resolution() {
        let coin = CompositeCoin::new(10, 3).unwrap();
        assert_eq!(coin.required_ell(), 3, "composite coin must only need the base ell");
    }

    #[test]
    fn memory_bits_match_lemma_3_6() {
        assert_eq!(CompositeCoin::new(1, 4).unwrap().memory_bits(), 0);
        assert_eq!(CompositeCoin::new(2, 4).unwrap().memory_bits(), 1);
        assert_eq!(CompositeCoin::new(3, 4).unwrap().memory_bits(), 2);
        assert_eq!(CompositeCoin::new(16, 2).unwrap().memory_bits(), 4);
    }

    #[test]
    fn kl_overflow_rejected() {
        assert!(CompositeCoin::new(65, 1).is_err());
        assert!(CompositeCoin::new(9, 8).is_err());
        assert!(CompositeCoin::new(64, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let _ = CompositeCoin::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "ell >= 1")]
    fn zero_ell_panics() {
        let _ = CompositeCoin::new(1, 0);
    }

    #[test]
    fn empirical_frequency_matches() {
        // coin(3, 2) = C_{1/64}: in 640_000 flips expect ~10_000 tails.
        let coin = CompositeCoin::new(3, 2).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
        let n = 640_000u32;
        let tails: u32 = (0..n).map(|_| u32::from(coin.flip(&mut rng).is_tails())).sum();
        let f = tails as f64 / n as f64;
        let expect = 1.0 / 64.0;
        // 5σ ≈ 0.00078; tolerance 0.002 gives failure probability < 1e-9.
        assert!((f - expect).abs() < 0.002, "frequency {f} vs {expect}");
    }

    #[test]
    fn composite_equals_atomic_distribution() {
        // coin(4, 3) must match C_{1/2^12} statistically.
        let comp = CompositeCoin::new(4, 3).unwrap();
        let atom = BiasedCoin::base(12).unwrap();
        let n = 2_000_000u32;
        let mut rng1 = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut rng2 = Xoshiro256PlusPlus::seed_from_u64(8);
        let t1: u32 = (0..n).map(|_| u32::from(comp.flip(&mut rng1).is_tails())).sum();
        let t2: u32 = (0..n).map(|_| u32::from(atom.flip(&mut rng2).is_tails())).sum();
        // Expected ~488 each; allow ±5σ ≈ ±110 on the difference.
        let diff = (t1 as i64 - t2 as i64).abs();
        assert!(diff < 160, "tails counts {t1} vs {t2}");
    }

    #[test]
    fn for_distance_matches_paper_parameters() {
        // D = 1024, ℓ = 2 ⇒ k = ⌈10/2⌉ = 5, probability 1/2^10 = 1/1024 = 1/D.
        let coin = CompositeCoin::for_distance(1024, 2).unwrap();
        assert_eq!(coin.k(), 5);
        assert_eq!(coin.tails_probability().to_f64(), 1.0 / 1024.0);
        // Non-power-of-two D rounds up: D = 1000 ⇒ log₂ D = 10 ⇒ same coin.
        let coin = CompositeCoin::for_distance(1000, 2).unwrap();
        assert_eq!(coin.tails_probability().to_f64(), 1.0 / 1024.0);
    }

    #[test]
    fn recorded_base_flips_expose_only_base_ell() {
        let coin = CompositeCoin::new(8, 2).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut ledger = ProbabilityLedger::new();
        for _ in 0..100 {
            let _ = coin.flip_recorded_base(&mut rng, &mut ledger);
        }
        assert_eq!(ledger.max_ell(), Some(2), "ledger must only ever see the base coin");
        assert!(ledger.flips() >= 100);
    }
}
