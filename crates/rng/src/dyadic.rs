//! Exact dyadic probabilities `a / 2^m`.
//!
//! A finite-state agent that realises its randomness by flipping coins with
//! probabilities of the form `1/2^ℓ` can only ever produce event
//! probabilities that are *dyadic rationals*. Representing them exactly (a
//! 64-bit numerator and an exponent) lets the workspace compute the paper's
//! resolution parameter `ℓ` — "the smallest value such that all
//! probabilities used are at least `1/2^ℓ`" — without any floating-point
//! ambiguity.

use std::cmp::Ordering;
use std::fmt;

/// Error produced by fallible [`DyadicProb`] constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DyadicError {
    /// Numerator exceeds the denominator: the value would be > 1.
    AboveOne,
    /// Exponent larger than the supported maximum (64).
    ExponentTooLarge,
}

impl fmt::Display for DyadicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DyadicError::AboveOne => write!(f, "probability numerator exceeds 2^exponent"),
            DyadicError::ExponentTooLarge => {
                write!(f, "dyadic exponent exceeds the supported maximum of 64")
            }
        }
    }
}

impl std::error::Error for DyadicError {}

/// An exact probability of the form `numerator / 2^exponent`, in `[0, 1]`.
///
/// Stored in *canonical* form: the numerator is odd (or zero, or the value
/// is exactly one stored as `1/2^0`), so equality of values coincides with
/// structural equality.
///
/// The exponent is capped at 64, which admits every probability down to
/// `2^-64` ≈ 5.4e-20 — far below anything a finite experiment can resolve,
/// and comfortably beyond the `1/D` coins (`D ≤ 2^40`) used by the paper's
/// algorithms.
///
/// ```
/// use ants_rng::DyadicProb;
/// let p = DyadicProb::new(3, 3).unwrap(); // 3/8
/// assert_eq!(p.to_f64(), 0.375);
/// assert_eq!(p.ell(), 2); // 3/8 >= 1/4 = 1/2^2
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct DyadicProb {
    numerator: u64,
    exponent: u32,
}

impl DyadicProb {
    /// Probability zero.
    pub const ZERO: DyadicProb = DyadicProb { numerator: 0, exponent: 0 };
    /// Probability one.
    pub const ONE: DyadicProb = DyadicProb { numerator: 1, exponent: 0 };

    /// Create `numerator / 2^exponent`, canonicalised.
    ///
    /// # Errors
    ///
    /// * [`DyadicError::ExponentTooLarge`] if `exponent > 64`;
    /// * [`DyadicError::AboveOne`] if the value exceeds one.
    pub fn new(numerator: u64, exponent: u32) -> Result<Self, DyadicError> {
        if exponent > 64 {
            return Err(DyadicError::ExponentTooLarge);
        }
        if exponent < 64 && numerator > (1u64 << exponent) {
            return Err(DyadicError::AboveOne);
        }
        Ok(Self { numerator, exponent }.canonicalize())
    }

    /// The probability `1/2^exponent` — the paper's base coin bias.
    ///
    /// # Errors
    ///
    /// [`DyadicError::ExponentTooLarge`] if `exponent > 64`.
    pub fn one_over_pow2(exponent: u32) -> Result<Self, DyadicError> {
        if exponent > 64 {
            return Err(DyadicError::ExponentTooLarge);
        }
        Ok(Self { numerator: 1, exponent })
    }

    /// Probability one half.
    pub fn half() -> Self {
        Self { numerator: 1, exponent: 1 }
    }

    fn canonicalize(mut self) -> Self {
        if self.numerator == 0 {
            return Self::ZERO;
        }
        while self.exponent > 0 && self.numerator.is_multiple_of(2) {
            self.numerator /= 2;
            self.exponent -= 1;
        }
        if self.exponent == 0 {
            // numerator must be 1 (value one) after canonicalisation.
            debug_assert_eq!(self.numerator, 1);
        }
        self
    }

    /// The canonical numerator `a`.
    pub fn numerator(&self) -> u64 {
        self.numerator
    }

    /// The canonical exponent `m` of the denominator `2^m`.
    pub fn exponent(&self) -> u32 {
        self.exponent
    }

    /// Is this exactly zero?
    pub fn is_zero(&self) -> bool {
        self.numerator == 0
    }

    /// Is this exactly one?
    pub fn is_one(&self) -> bool {
        self.numerator == 1 && self.exponent == 0
    }

    /// Convert to `f64` (exact for exponents ≤ 53 up to representability).
    pub fn to_f64(&self) -> f64 {
        self.numerator as f64 / 2f64.powi(self.exponent as i32)
    }

    /// The paper's resolution requirement for this probability: the smallest
    /// `ℓ` with `self ≥ 1/2^ℓ`.
    ///
    /// For `a/2^m` (canonical, `a ≥ 1` odd) this is `m − ⌊log₂ a⌋`.
    ///
    /// # Panics
    ///
    /// Panics on the zero probability, which has no finite resolution; the
    /// paper's metric only quantifies over *non-zero* transition
    /// probabilities.
    pub fn ell(&self) -> u32 {
        assert!(!self.is_zero(), "ell() is undefined for probability zero");
        self.exponent - (63 - self.numerator.leading_zeros())
    }

    /// The complement `1 − p`.
    pub fn complement(&self) -> Self {
        if self.is_zero() {
            return Self::ONE;
        }
        if self.exponent == 64 {
            // 1 - a/2^64 = (2^64 - a)/2^64; compute in u128-free wrapping form.
            let num = 0u64.wrapping_sub(self.numerator);
            return Self { numerator: num, exponent: 64 }.canonicalize();
        }
        let denom = 1u64 << self.exponent;
        Self { numerator: denom - self.numerator, exponent: self.exponent }.canonicalize()
    }

    /// The product `p · q`, exact if representable.
    ///
    /// Returns `None` when the exact product needs an exponent above 64 or a
    /// numerator above `u64::MAX` (callers fall back to `f64` diagnostics).
    pub fn checked_mul(&self, other: &Self) -> Option<Self> {
        let num = (self.numerator as u128).checked_mul(other.numerator as u128)?;
        let exp = self.exponent.checked_add(other.exponent)?;
        // Canonicalise in u128 first so wide intermediates can still fit.
        let mut num = num;
        let mut exp = exp;
        while exp > 0 && num % 2 == 0 {
            num /= 2;
            exp -= 1;
        }
        if exp > 64 || num > u64::MAX as u128 {
            return None;
        }
        Some(Self { numerator: num as u64, exponent: exp })
    }

    /// Threshold against a uniform 64-bit word: `u < threshold` has
    /// probability exactly `p` for `u` uniform on `[0, 2^64)`.
    ///
    /// Returns `None` for probability one (every `u64` qualifies), which
    /// callers special-case.
    pub(crate) fn u64_threshold(&self) -> Option<u64> {
        if self.is_one() {
            return None;
        }
        if self.is_zero() {
            return Some(0);
        }
        // threshold = a * 2^(64 - m); exponent ≤ 64 and value < 1 guarantee fit.
        Some(self.numerator << (64 - self.exponent))
    }
}

impl PartialOrd for DyadicProb {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DyadicProb {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare a/2^m vs b/2^k  ⇔  a·2^k vs b·2^m, in u128.
        let lhs = (self.numerator as u128) << other.exponent.min(64);
        let rhs = (other.numerator as u128) << self.exponent.min(64);
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for DyadicProb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/2^{}", self.numerator, self.exponent)
    }
}

impl fmt::Display for DyadicProb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            write!(f, "0")
        } else if self.is_one() {
            write!(f, "1")
        } else {
            write!(f, "{}/2^{}", self.numerator, self.exponent)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalisation_reduces_even_numerators() {
        let p = DyadicProb::new(4, 3).unwrap(); // 4/8 = 1/2
        assert_eq!(p, DyadicProb::half());
        assert_eq!(p.numerator(), 1);
        assert_eq!(p.exponent(), 1);
    }

    #[test]
    fn zero_and_one_are_canonical() {
        assert_eq!(DyadicProb::new(0, 17).unwrap(), DyadicProb::ZERO);
        assert_eq!(DyadicProb::new(8, 3).unwrap(), DyadicProb::ONE);
        assert!(DyadicProb::new(8, 3).unwrap().is_one());
    }

    #[test]
    fn above_one_rejected() {
        assert_eq!(DyadicProb::new(9, 3), Err(DyadicError::AboveOne));
    }

    #[test]
    fn exponent_cap() {
        assert_eq!(DyadicProb::new(1, 65), Err(DyadicError::ExponentTooLarge));
        assert!(DyadicProb::one_over_pow2(64).is_ok());
        assert_eq!(DyadicProb::one_over_pow2(65), Err(DyadicError::ExponentTooLarge));
    }

    #[test]
    fn ell_of_powers_of_two() {
        for m in 1..=60 {
            let p = DyadicProb::one_over_pow2(m).unwrap();
            assert_eq!(p.ell(), m, "ell of 1/2^{m}");
        }
    }

    #[test]
    fn ell_of_non_powers() {
        // 3/8 ∈ [1/4, 1/2) ⇒ ℓ = 2.
        assert_eq!(DyadicProb::new(3, 3).unwrap().ell(), 2);
        // 5/16 ∈ [1/4, 1/2) ⇒ ℓ = 2.
        assert_eq!(DyadicProb::new(5, 4).unwrap().ell(), 2);
        // 7/8 ∈ [1/2, 1) ⇒ ℓ = 1.
        assert_eq!(DyadicProb::new(7, 3).unwrap().ell(), 1);
        // 1 ⇒ ℓ = 0.
        assert_eq!(DyadicProb::ONE.ell(), 0);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn ell_of_zero_panics() {
        let _ = DyadicProb::ZERO.ell();
    }

    #[test]
    fn complement_roundtrip() {
        let cases = [(1u64, 1u32), (3, 3), (1, 10), (255, 8), (1, 64)];
        for (a, m) in cases {
            let p = DyadicProb::new(a, m).unwrap();
            let c = p.complement();
            assert!((p.to_f64() + c.to_f64() - 1.0).abs() < 1e-15);
            assert_eq!(c.complement(), p);
        }
    }

    #[test]
    fn complement_of_extremes() {
        assert_eq!(DyadicProb::ZERO.complement(), DyadicProb::ONE);
        assert_eq!(DyadicProb::ONE.complement(), DyadicProb::ZERO);
    }

    #[test]
    fn mul_exact() {
        let a = DyadicProb::new(3, 3).unwrap(); // 3/8
        let b = DyadicProb::half(); // 1/2
        let c = a.checked_mul(&b).unwrap();
        assert_eq!(c, DyadicProb::new(3, 4).unwrap()); // 3/16
    }

    #[test]
    fn mul_overflow_returns_none() {
        let a = DyadicProb::one_over_pow2(40).unwrap();
        let b = DyadicProb::one_over_pow2(40).unwrap();
        assert_eq!(a.checked_mul(&b), None); // exponent 80 > 64
    }

    #[test]
    fn ordering_matches_f64() {
        let probs = [
            DyadicProb::ZERO,
            DyadicProb::one_over_pow2(10).unwrap(),
            DyadicProb::new(3, 5).unwrap(),
            DyadicProb::new(3, 3).unwrap(),
            DyadicProb::half(),
            DyadicProb::new(7, 3).unwrap(),
            DyadicProb::ONE,
        ];
        for p in &probs {
            for q in &probs {
                assert_eq!(p.cmp(q), p.to_f64().partial_cmp(&q.to_f64()).unwrap(), "{p} vs {q}");
            }
        }
    }

    #[test]
    fn threshold_matches_probability() {
        let p = DyadicProb::new(3, 3).unwrap();
        let t = p.u64_threshold().unwrap();
        assert_eq!(t, 3u64 << 61);
        assert_eq!(DyadicProb::ONE.u64_threshold(), None);
        assert_eq!(DyadicProb::ZERO.u64_threshold(), Some(0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(DyadicProb::ZERO.to_string(), "0");
        assert_eq!(DyadicProb::ONE.to_string(), "1");
        assert_eq!(DyadicProb::new(3, 3).unwrap().to_string(), "3/2^3");
    }
}
