//! A batching adaptor over any [`Rng64`].
//!
//! The simulator's hot loop asks its generator for one word per automaton
//! transition. Drawing those words one call at a time keeps the generator's
//! state round-tripping through memory between consumers; refilling a small
//! linear buffer lets the state-update recurrence run back-to-back (the
//! compiler keeps the 256-bit state in registers across the refill loop) and
//! amortises the per-call bookkeeping over [`BUF_WORDS`] outputs.
//!
//! The adaptor is *stream-preserving*: it serves the inner generator's
//! outputs in their exact original order, so wrapping a generator changes
//! performance, never results. The workspace-wide [`crate::DefaultRng`]
//! alias is the intended use site — the RNG-stream golden tests in
//! `ants-sim` pin that this wrapper emits the same words the bare generator
//! would.

use crate::rng::{Rng64, SeedableRng64};

/// Words fetched from the inner generator per refill.
///
/// Large enough to amortise call overhead, small enough that a buffer lives
/// comfortably in a cache line pair and cloning a stepper stays cheap.
pub const BUF_WORDS: usize = 16;

/// A stream-preserving batching wrapper around an [`Rng64`].
///
/// ```
/// use ants_rng::{BufferedRng, Rng64, SeedableRng64, Xoshiro256PlusPlus};
///
/// let mut bare = Xoshiro256PlusPlus::seed_from_u64(9);
/// let mut buffered = BufferedRng::new(Xoshiro256PlusPlus::seed_from_u64(9));
/// for _ in 0..100 {
///     assert_eq!(bare.next_u64(), buffered.next_u64());
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BufferedRng<R> {
    inner: R,
    buf: [u64; BUF_WORDS],
    /// Index of the next unserved word; `BUF_WORDS` means the buffer is
    /// exhausted and the next draw triggers a refill.
    pos: usize,
}

impl<R: Rng64> BufferedRng<R> {
    /// Wrap a generator. No words are drawn until the first request.
    pub fn new(inner: R) -> Self {
        Self { inner, buf: [0; BUF_WORDS], pos: BUF_WORDS }
    }

    #[cold]
    fn refill(&mut self) {
        for w in &mut self.buf {
            *w = self.inner.next_u64();
        }
        self.pos = 0;
    }
}

impl<R: Rng64> Rng64 for BufferedRng<R> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.pos == BUF_WORDS {
            self.refill();
        }
        let word = self.buf[self.pos];
        self.pos += 1;
        word
    }
}

impl<R: Rng64 + SeedableRng64> SeedableRng64 for BufferedRng<R> {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(R::seed_from_u64(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SplitMix64, Xoshiro256PlusPlus};

    #[test]
    fn stream_matches_inner_across_refills() {
        let mut bare = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut buffered = BufferedRng::new(Xoshiro256PlusPlus::seed_from_u64(1));
        // Cover several refill boundaries plus a non-aligned tail.
        for i in 0..(BUF_WORDS as u64 * 5 + 3) {
            assert_eq!(bare.next_u64(), buffered.next_u64(), "word {i}");
        }
    }

    #[test]
    fn clone_preserves_position_mid_buffer() {
        let mut a = BufferedRng::new(SplitMix64::new(7));
        for _ in 0..5 {
            let _ = a.next_u64();
        }
        let mut b = a.clone();
        for _ in 0..(BUF_WORDS * 2) {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_samplers_match_inner() {
        // next_below / next_f64 / next_bool all route through next_u64, so
        // they must agree word-for-word with the bare generator too.
        let mut bare = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut buffered = BufferedRng::new(Xoshiro256PlusPlus::seed_from_u64(2));
        for _ in 0..200 {
            assert_eq!(bare.next_below(97), buffered.next_below(97));
            assert_eq!(bare.next_bool(), buffered.next_bool());
        }
    }

    #[test]
    fn seed_from_u64_delegates() {
        let mut a: BufferedRng<Xoshiro256PlusPlus> = BufferedRng::seed_from_u64(33);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(33);
        for _ in 0..BUF_WORDS + 1 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
