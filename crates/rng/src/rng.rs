//! Core PRNG traits.
//!
//! We intentionally define our own minimal trait instead of depending on
//! `rand_core`: the whole workspace only ever needs uniform `u64`s and a few
//! convenience derivations, and owning the trait keeps every sampling
//! decision (especially how dyadic coins consume entropy) local and
//! auditable.

/// A source of uniformly distributed 64-bit words.
pub trait Rng64 {
    /// Return the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// Return a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's rejection method, which is unbiased for every bound.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        // Lemire's method: multiply-shift with rejection of the biased zone.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Return a uniformly distributed `f64` in `[0, 1)` with 53 random bits.
    ///
    /// Only used by *diagnostic* code (statistics, fast geometric sampling);
    /// the agent algorithms themselves flip exact dyadic coins.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Return a uniformly distributed bool.
    fn next_bool(&mut self) -> bool {
        // Use the top bit: low bits of some generators are weaker.
        self.next_u64() >> 63 == 1
    }
}

/// PRNGs that can be constructed from a 64-bit seed.
pub trait SeedableRng64: Sized {
    /// Construct the generator from a 64-bit seed.
    ///
    /// Two equal seeds yield identical streams; unequal seeds yield
    /// (overwhelmingly likely) unrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn next_below_in_range() {
        let mut rng = SplitMix64::seed_from_u64(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_bound_one_is_zero() {
        let mut rng = SplitMix64::seed_from_u64(4);
        for _ in 0..10 {
            assert_eq!(rng.next_below(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn next_below_zero_panics() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let _ = rng.next_below(0);
    }

    #[test]
    fn next_below_roughly_uniform() {
        let mut rng = SplitMix64::seed_from_u64(6);
        let bound = 10u64;
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.next_below(bound) as usize] += 1;
        }
        let expected = n as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {i} deviates {dev}");
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_bool_balanced() {
        let mut rng = SplitMix64::seed_from_u64(8);
        let n = 100_000;
        let heads: u32 = (0..n).map(|_| u32::from(rng.next_bool())).sum();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "bool frequency {frac}");
    }
}
