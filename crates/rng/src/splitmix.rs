//! SplitMix64: the canonical seeding/mixing generator.
//!
//! Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
//! generators", OOPSLA 2014. The exact constants below are the widely used
//! ones from the public-domain reference implementation.

use crate::rng::{Rng64, SeedableRng64};

/// A SplitMix64 generator.
///
/// Tiny state, passes BigCrush on its own, and is the standard way to expand
/// a 64-bit seed into the larger state of [`crate::Xoshiro256PlusPlus`].
///
/// ```
/// use ants_rng::{SplitMix64, Rng64, SeedableRng64};
/// let mut rng = SplitMix64::seed_from_u64(0);
/// // First output of the reference implementation for seed 0:
/// assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator whose first outputs are the mix of `seed + γ`,
    /// `seed + 2γ`, … for the golden-ratio increment γ.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The raw internal counter (useful for tests and serialization).
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl SeedableRng64 for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

impl Rng64 for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First ten outputs of the public-domain reference implementation with
    /// seed 0. Guards against silent constant typos.
    #[test]
    fn reference_vector_seed0() {
        let expected: [u64; 10] = [
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
            0x53CB_9F0C_747E_A2EA,
            0x2C82_9ABE_1F45_32E1,
            0xC584_133A_C916_AB3C,
            0x3EE5_7890_41C9_8AC3,
            0xF3B8_488C_368C_B0A6,
        ];
        let mut rng = SplitMix64::seed_from_u64(0);
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), e, "output {i}");
        }
    }

    #[test]
    fn reference_vector_seed1234567() {
        // Cross-checked against the C reference implementation.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_ne!(first, second);
        // Determinism:
        let mut rng2 = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng2.next_u64(), first);
        assert_eq!(rng2.next_u64(), second);
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn state_advances() {
        let mut rng = SplitMix64::new(10);
        let s0 = rng.state();
        let _ = rng.next_u64();
        assert_ne!(rng.state(), s0);
    }
}
