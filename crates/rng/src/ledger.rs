//! Audit trail for exercised probabilities.
//!
//! The selection complexity `χ(A) = b + log ℓ` is defined over the
//! probabilities an algorithm *uses*. Algorithms in this workspace declare
//! their `ℓ` statically, but tests and experiments also *measure* it: every
//! recorded coin flip feeds a [`ProbabilityLedger`], and the ledger's
//! [`max_ell`](ProbabilityLedger::max_ell) is the empirical resolution. A
//! declared `ℓ` smaller than the measured one is a bug the test-suite
//! catches.

use crate::dyadic::DyadicProb;

/// Records the set of probability resolutions exercised by an agent.
///
/// ```
/// use ants_rng::{DyadicProb, ProbabilityLedger};
/// let mut ledger = ProbabilityLedger::new();
/// ledger.record(DyadicProb::half());
/// ledger.record(DyadicProb::one_over_pow2(7).unwrap());
/// assert_eq!(ledger.max_ell(), Some(7));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProbabilityLedger {
    max_ell: Option<u32>,
    min_prob: Option<DyadicProb>,
    flips: u64,
    records: u64,
}

impl ProbabilityLedger {
    /// Create an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one *flip event* (one RNG consultation).
    pub fn count_flip(&mut self) {
        self.flips += 1;
    }

    /// Record a probability that was just exercised.
    ///
    /// Zero/one probabilities are ignored: the metric quantifies over
    /// non-trivial transition probabilities only.
    pub fn record(&mut self, p: DyadicProb) {
        if p.is_zero() || p.is_one() {
            return;
        }
        self.records += 1;
        let ell = p.ell();
        self.max_ell = Some(self.max_ell.map_or(ell, |m| m.max(ell)));
        self.min_prob = Some(match self.min_prob {
            None => p,
            Some(q) if p < q => p,
            Some(q) => q,
        });
    }

    /// The empirical `ℓ`: resolution of the finest probability recorded, or
    /// `None` when only trivial probabilities were used.
    pub fn max_ell(&self) -> Option<u32> {
        self.max_ell
    }

    /// The smallest non-trivial probability recorded.
    pub fn min_probability(&self) -> Option<DyadicProb> {
        self.min_prob
    }

    /// The number of flip events counted via [`count_flip`](Self::count_flip).
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// The number of non-trivial probabilities recorded.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Merge another ledger into this one (used when aggregating agents).
    pub fn merge(&mut self, other: &ProbabilityLedger) {
        if let Some(e) = other.max_ell {
            self.max_ell = Some(self.max_ell.map_or(e, |m| m.max(e)));
        }
        if let Some(p) = other.min_prob {
            self.min_prob = Some(match self.min_prob {
                None => p,
                Some(q) if p < q => p,
                Some(q) => q,
            });
        }
        self.flips += other.flips;
        self.records += other.records;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger() {
        let ledger = ProbabilityLedger::new();
        assert_eq!(ledger.max_ell(), None);
        assert_eq!(ledger.min_probability(), None);
        assert_eq!(ledger.flips(), 0);
    }

    #[test]
    fn trivial_probabilities_ignored() {
        let mut ledger = ProbabilityLedger::new();
        ledger.record(DyadicProb::ZERO);
        ledger.record(DyadicProb::ONE);
        assert_eq!(ledger.max_ell(), None);
        assert_eq!(ledger.records(), 0);
    }

    #[test]
    fn tracks_finest_resolution() {
        let mut ledger = ProbabilityLedger::new();
        ledger.record(DyadicProb::half());
        assert_eq!(ledger.max_ell(), Some(1));
        ledger.record(DyadicProb::one_over_pow2(9).unwrap());
        assert_eq!(ledger.max_ell(), Some(9));
        ledger.record(DyadicProb::one_over_pow2(4).unwrap());
        assert_eq!(ledger.max_ell(), Some(9), "coarser probability must not lower ell");
        assert_eq!(ledger.min_probability(), Some(DyadicProb::one_over_pow2(9).unwrap()));
    }

    #[test]
    fn ell_vs_min_probability_consistency() {
        // 3/8 is smaller than 1/2 but has ell 2 > 1.
        let mut ledger = ProbabilityLedger::new();
        ledger.record(DyadicProb::new(3, 3).unwrap());
        assert_eq!(ledger.max_ell(), Some(2));
        assert_eq!(ledger.min_probability(), Some(DyadicProb::new(3, 3).unwrap()));
    }

    #[test]
    fn merge_combines() {
        let mut a = ProbabilityLedger::new();
        a.record(DyadicProb::half());
        a.count_flip();
        let mut b = ProbabilityLedger::new();
        b.record(DyadicProb::one_over_pow2(12).unwrap());
        b.count_flip();
        b.count_flip();
        a.merge(&b);
        assert_eq!(a.max_ell(), Some(12));
        assert_eq!(a.flips(), 3);
        assert_eq!(a.records(), 2);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = ProbabilityLedger::new();
        a.record(DyadicProb::half());
        let before = a.clone();
        a.merge(&ProbabilityLedger::new());
        assert_eq!(a, before);
    }
}
