//! Biased coins in the paper's convention.
//!
//! Section 3 of the paper fixes the convention: "Let coin `C_p` denote a
//! coin that shows **tails** with probability `p`." All pseudocode in the
//! paper ("while coin `C_{1/D}` shows heads do move") relies on it, so we
//! keep it verbatim: [`Flip::Tails`] is the probability-`p` outcome.

use crate::dyadic::DyadicProb;
use crate::ledger::ProbabilityLedger;
use crate::rng::Rng64;

/// The outcome of a coin flip.
///
/// Following the paper, the *rare* outcome of `C_p` (for small `p`) is
/// `Tails`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flip {
    /// The probability-`1−p` outcome of `C_p`.
    Heads,
    /// The probability-`p` outcome of `C_p`.
    Tails,
}

impl Flip {
    /// Is this `Tails`?
    pub fn is_tails(self) -> bool {
        matches!(self, Flip::Tails)
    }

    /// Is this `Heads`?
    pub fn is_heads(self) -> bool {
        matches!(self, Flip::Heads)
    }
}

/// A coin that can be flipped with a [`Rng64`].
///
/// The two implementors are [`BiasedCoin`] (an atomic coin, one RNG draw)
/// and [`CompositeCoin`](crate::CompositeCoin) (the paper's Algorithm 2,
/// built from repeated flips of an atomic coin).
pub trait Coin {
    /// Flip the coin once.
    fn flip<R: Rng64 + ?Sized>(&self, rng: &mut R) -> Flip;

    /// The exact probability of [`Flip::Tails`].
    fn tails_probability(&self) -> DyadicProb;

    /// The resolution `ℓ` this coin requires of the agent: the smallest `ℓ`
    /// such that every *atomic* probability used is at least `1/2^ℓ`.
    ///
    /// For an atomic coin this is `min(p, 1−p).ell()` (both outcomes are
    /// transition probabilities of the agent's state machine); composite
    /// coins report the resolution of their *base* coin, which is the whole
    /// point of the construction.
    fn required_ell(&self) -> u32;

    /// Flip and record the exercised probability in a ledger.
    fn flip_recorded<R: Rng64 + ?Sized>(
        &self,
        rng: &mut R,
        ledger: &mut ProbabilityLedger,
    ) -> Flip {
        ledger.count_flip();
        let p = self.tails_probability();
        if !p.is_zero() && !p.is_one() {
            ledger.record(p);
            ledger.record(p.complement());
        }
        self.flip(rng)
    }
}

/// An atomic biased coin `C_p` with exact dyadic bias.
///
/// ```
/// use ants_rng::{BiasedCoin, Coin, DyadicProb, SeedableRng64, Xoshiro256PlusPlus};
/// let coin = BiasedCoin::new(DyadicProb::one_over_pow2(3).unwrap()); // tails w.p. 1/8
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
/// let mut tails = 0u32;
/// for _ in 0..8000 { if coin.flip(&mut rng).is_tails() { tails += 1; } }
/// assert!((tails as f64 / 8000.0 - 0.125).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BiasedCoin {
    p_tails: DyadicProb,
}

impl BiasedCoin {
    /// Create `C_p`: a coin showing tails with probability `p`.
    pub fn new(p_tails: DyadicProb) -> Self {
        Self { p_tails }
    }

    /// The paper's base coin `C_{1/2^ℓ}`.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::DyadicError::ExponentTooLarge`] for `ell > 64`.
    pub fn base(ell: u32) -> Result<Self, crate::DyadicError> {
        Ok(Self::new(DyadicProb::one_over_pow2(ell)?))
    }

    /// A fair coin (`C_{1/2}`).
    pub fn fair() -> Self {
        Self::new(DyadicProb::half())
    }
}

impl Coin for BiasedCoin {
    #[inline]
    fn flip<R: Rng64 + ?Sized>(&self, rng: &mut R) -> Flip {
        match self.p_tails.u64_threshold() {
            None => Flip::Tails, // probability one
            Some(0) => Flip::Heads,
            Some(t) => {
                if rng.next_u64() < t {
                    Flip::Tails
                } else {
                    Flip::Heads
                }
            }
        }
    }

    fn tails_probability(&self) -> DyadicProb {
        self.p_tails
    }

    fn required_ell(&self) -> u32 {
        if self.p_tails.is_zero() || self.p_tails.is_one() {
            return 0; // deterministic coin: no probabilistic resolution needed
        }
        let c = self.p_tails.complement();
        self.p_tails.ell().max(c.ell())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng64;
    use crate::Xoshiro256PlusPlus;

    fn frequency(coin: &BiasedCoin, n: u32, seed: u64) -> f64 {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let tails: u32 = (0..n).map(|_| u32::from(coin.flip(&mut rng).is_tails())).sum();
        tails as f64 / n as f64
    }

    #[test]
    fn fair_coin_balanced() {
        let f = frequency(&BiasedCoin::fair(), 200_000, 1);
        // 5σ ≈ 0.0056 at n = 200k; failure probability < 1e-6.
        assert!((f - 0.5).abs() < 0.01, "fair frequency {f}");
    }

    #[test]
    fn eighth_coin_frequency() {
        let coin = BiasedCoin::base(3).unwrap();
        let f = frequency(&coin, 200_000, 2);
        assert!((f - 0.125).abs() < 0.01, "1/8 frequency {f}");
    }

    #[test]
    fn extreme_coins_are_deterministic() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let always = BiasedCoin::new(DyadicProb::ONE);
        let never = BiasedCoin::new(DyadicProb::ZERO);
        for _ in 0..100 {
            assert_eq!(always.flip(&mut rng), Flip::Tails);
            assert_eq!(never.flip(&mut rng), Flip::Heads);
        }
    }

    #[test]
    fn required_ell_counts_both_sides() {
        // C_{1/8}: tails needs ℓ=3, heads (7/8) needs ℓ=1 ⇒ max 3.
        assert_eq!(BiasedCoin::base(3).unwrap().required_ell(), 3);
        // C_{7/8}: symmetric.
        assert_eq!(BiasedCoin::new(DyadicProb::new(7, 3).unwrap()).required_ell(), 3);
        // Fair coin: ℓ = 1.
        assert_eq!(BiasedCoin::fair().required_ell(), 1);
        // Deterministic coins need no randomness at all.
        assert_eq!(BiasedCoin::new(DyadicProb::ONE).required_ell(), 0);
    }

    #[test]
    fn tiny_probability_still_sampled() {
        // p = 1/2^40: expect ~0 tails in 10^5 flips but no panic.
        let coin = BiasedCoin::base(40).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let tails: u32 = (0..100_000).map(|_| u32::from(coin.flip(&mut rng).is_tails())).sum();
        assert!(tails <= 2);
    }

    #[test]
    fn flip_recorded_updates_ledger() {
        let coin = BiasedCoin::base(5).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut ledger = ProbabilityLedger::new();
        let _ = coin.flip_recorded(&mut rng, &mut ledger);
        assert_eq!(ledger.max_ell(), Some(5));
        assert_eq!(ledger.flips(), 1);
    }
}
