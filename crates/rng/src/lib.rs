//! # ants-rng — deterministic randomness substrate
//!
//! The ANTS plane-search model (Lenzen, Lynch, Newport, Radeva; PODC 2014)
//! equips every agent with biased coins whose probabilities are bounded from
//! below by `1/2^ℓ`. The parameter `ℓ` enters the paper's *selection
//! complexity* metric `χ(A) = b + log ℓ`, so the randomness layer of a
//! faithful reproduction has to make probability *resolution* a first-class,
//! auditable quantity rather than an `f64` afterthought.
//!
//! This crate provides:
//!
//! * [`SplitMix64`] and [`Xoshiro256PlusPlus`] — fast, seedable,
//!   from-scratch PRNGs (no external dependencies) with stream splitting for
//!   deterministic per-agent randomness;
//! * [`DyadicProb`] — exact probabilities of the form `a/2^m`, the only
//!   probabilities a finite-state coin-flipping agent can realise;
//! * [`BiasedCoin`] — the paper's coin `C_p` ("shows **tails** with
//!   probability `p`");
//! * [`CompositeCoin`] — Algorithm 2 of the paper: simulating `C_{1/2^{kℓ}}`
//!   from `k` flips of `C_{1/2^ℓ}` using `⌈log k⌉` bits of loop counter;
//! * [`ProbabilityLedger`] — an audit trail recording the smallest
//!   probability actually exercised, so the empirical `ℓ` of an algorithm can
//!   be *measured* instead of merely asserted;
//! * samplers ([`Geometric`]) and statistical helpers ([`stats`]) used by the
//!   test-suite and the experiment harnesses.
//!
//! ## Example
//!
//! ```
//! use ants_rng::{Xoshiro256PlusPlus, BiasedCoin, Coin, DyadicProb, Flip, SeedableRng64};
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
//! // The paper's C_{1/2}: a fair coin.
//! let fair = BiasedCoin::new(DyadicProb::half());
//! let flip = fair.flip(&mut rng);
//! assert!(flip == Flip::Heads || flip == Flip::Tails);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffered;
mod coin;
mod composite;
mod dyadic;
mod geometric;
mod knuth_yao;
mod ledger;
mod rng;
mod splitmix;
pub mod stats;
mod xoshiro;

pub use buffered::{BufferedRng, BUF_WORDS};
pub use coin::{BiasedCoin, Coin, Flip};
pub use composite::CompositeCoin;
pub use dyadic::{DyadicError, DyadicProb};
pub use geometric::Geometric;
pub use knuth_yao::{KnuthYao, KnuthYaoError};
pub use ledger::ProbabilityLedger;
pub use rng::{Rng64, SeedableRng64};
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256PlusPlus;

/// The default PRNG used across the workspace.
///
/// An alias so downstream crates can switch generators in one place —
/// e.g. to wrap the generator in the batching [`BufferedRng`] adaptor
/// (stream-preserving, so the simulator's golden tests hold across the
/// swap). The bare generator is the measured winner here: serving draws
/// from a buffer costs a memory round-trip per word that xoshiro's
/// register-only update beats (~15% on the simulator's hot loop,
/// `BENCH_sweep.json` v3), so the buffer stays opt-in.
pub type DefaultRng = Xoshiro256PlusPlus;

/// Derive a deterministic per-entity RNG from a base seed and an index.
///
/// Used by the simulator to give every `(trial, agent)` pair an independent,
/// reproducible stream. Mixing goes through [`SplitMix64`] so that related
/// indices (0, 1, 2, …) produce unrelated states.
///
/// ```
/// use ants_rng::{derive_rng, Rng64};
/// let mut a = derive_rng(42, 0);
/// let mut b = derive_rng(42, 1);
/// assert_ne!(a.next_u64(), b.next_u64());
/// ```
pub fn derive_rng(base_seed: u64, index: u64) -> DefaultRng {
    let mut mixer = SplitMix64::new(base_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    Xoshiro256PlusPlus::from_splitmix(&mut mixer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_rng_deterministic() {
        let mut a = derive_rng(1, 2);
        let mut b = derive_rng(1, 2);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_rng_streams_differ_across_indices() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            let mut r = derive_rng(99, i);
            assert!(seen.insert(r.next_u64()), "stream collision at index {i}");
        }
    }

    #[test]
    fn derive_rng_streams_differ_across_seeds() {
        let mut a = derive_rng(1, 0);
        let mut b = derive_rng(2, 0);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
