//! Property-based tests for the randomness substrate.

use ants_rng::{
    BiasedCoin, Coin, CompositeCoin, DyadicProb, Geometric, ProbabilityLedger, Rng64,
    SeedableRng64, SplitMix64, Xoshiro256PlusPlus,
};
use proptest::prelude::*;

/// Strategy producing an arbitrary valid dyadic probability.
fn dyadic() -> impl Strategy<Value = DyadicProb> {
    (0u32..=40).prop_flat_map(|m| {
        let max = 1u64 << m;
        (0..=max).prop_map(move |a| DyadicProb::new(a, m).unwrap())
    })
}

proptest! {
    #[test]
    fn dyadic_roundtrips_to_f64(p in dyadic()) {
        // Canonicalisation never changes the value.
        let f = p.to_f64();
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn dyadic_canonical_numerator_odd_or_trivial(p in dyadic()) {
        prop_assert!(
            p.is_zero() || p.is_one() || p.numerator() % 2 == 1,
            "canonical form must have odd numerator: {p:?}"
        );
    }

    #[test]
    fn complement_is_involution(p in dyadic()) {
        prop_assert_eq!(p.complement().complement(), p);
    }

    #[test]
    fn complement_sums_to_one(p in dyadic()) {
        let s = p.to_f64() + p.complement().to_f64();
        prop_assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ell_is_tight(p in dyadic().prop_filter("non-zero", |p| !p.is_zero())) {
        let ell = p.ell();
        // p >= 1/2^ell …
        prop_assert!(p >= DyadicProb::one_over_pow2(ell.min(64)).unwrap());
        // … and ell is minimal (p < 1/2^{ell-1} fails only when ell = 0).
        if ell > 0 {
            prop_assert!(p < DyadicProb::one_over_pow2(ell - 1).unwrap());
        }
    }

    #[test]
    fn mul_matches_f64(p in dyadic(), q in dyadic()) {
        if let Some(prod) = p.checked_mul(&q) {
            let f = p.to_f64() * q.to_f64();
            prop_assert!((prod.to_f64() - f).abs() < 1e-12);
        }
    }

    #[test]
    fn ordering_total_and_consistent(p in dyadic(), q in dyadic()) {
        let by_dyadic = p.cmp(&q);
        let by_f64 = p.to_f64().partial_cmp(&q.to_f64()).unwrap();
        // f64 is exact for exponents <= 52, which covers the strategy.
        prop_assert_eq!(by_dyadic, by_f64);
    }

    #[test]
    fn next_below_always_in_range(seed in any::<u64>(), bound in 1u64..=u64::MAX) {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let x = rng.next_below(bound);
        prop_assert!(x < bound);
    }

    #[test]
    fn xoshiro_deterministic(seed in any::<u64>()) {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(seed);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn composite_coin_probability_identity(k in 1u32..=16, ell in 1u32..=4) {
        // coin(k, l) has tails probability exactly 1/2^{kl}.
        let coin = CompositeCoin::new(k, ell).unwrap();
        prop_assert_eq!(
            coin.tails_probability(),
            DyadicProb::one_over_pow2(k * ell).unwrap()
        );
        // Memory bound of Lemma 3.6.
        prop_assert!(coin.memory_bits() <= 32 - k.leading_zeros());
    }

    #[test]
    fn ledger_merge_commutes(
        exps_a in proptest::collection::vec(1u32..40, 0..8),
        exps_b in proptest::collection::vec(1u32..40, 0..8),
    ) {
        let fill = |exps: &[u32]| {
            let mut l = ProbabilityLedger::new();
            for &e in exps {
                l.record(DyadicProb::one_over_pow2(e).unwrap());
            }
            l
        };
        let mut ab = fill(&exps_a);
        ab.merge(&fill(&exps_b));
        let mut ba = fill(&exps_b);
        ba.merge(&fill(&exps_a));
        prop_assert_eq!(ab.max_ell(), ba.max_ell());
        prop_assert_eq!(ab.min_probability(), ba.min_probability());
    }

    #[test]
    fn geometric_exact_nonnegative_and_finite(exp in 1u32..=8, seed in any::<u64>()) {
        let g = Geometric::new(DyadicProb::one_over_pow2(exp).unwrap());
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let x = g.sample_exact(&mut rng);
        // With p >= 1/256 a sample beyond 2^20 has probability < 1e-1000.
        prop_assert!(x < 1 << 20);
    }

    #[test]
    fn coin_required_ell_bounds_probability(p in dyadic()) {
        let coin = BiasedCoin::new(p);
        let ell = coin.required_ell();
        if !p.is_zero() && !p.is_one() {
            // Both outcome probabilities are at least 1/2^ell.
            prop_assert!(p >= DyadicProb::one_over_pow2(ell).unwrap());
            prop_assert!(p.complement() >= DyadicProb::one_over_pow2(ell).unwrap());
        }
    }
}

/// Deterministic regression: a fixed seed must yield a fixed stream forever.
#[test]
fn xoshiro_pinned_stream() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xDEADBEEF);
    let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    let mut rng2 = Xoshiro256PlusPlus::seed_from_u64(0xDEADBEEF);
    let second: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
    assert_eq!(first, second);
}
