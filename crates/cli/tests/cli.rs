//! End-to-end tests of the `ants` binary: exit codes and the flag
//! surface, driven through the real executable.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn ants(args: &[&str], cwd: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ants"))
        .args(args)
        .current_dir(cwd)
        // An ambient ANTS_COMMIT (a developer shell, a CI job) would
        // hijack the trend --record content-hash assertions.
        .env_remove("ANTS_COMMIT")
        .output()
        .expect("spawn ants")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ants-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// `ants validate` must exit non-zero when the report directory is
/// missing entirely — a battery run that wrote nothing can never
/// validate vacuously.
#[test]
fn validate_missing_directory_fails() {
    let cwd = temp_dir("validate-missing");
    // Default directory (target/reports relative to cwd): absent.
    let out = ants(&["validate"], &cwd);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("does not exist"), "stderr: {}", stderr(&out));
    // Explicit missing directory: same contract.
    let out = ants(&["validate", "no/such/dir"], &cwd);
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&cwd).ok();
}

/// An existing directory with no reports is a failure too.
#[test]
fn validate_empty_directory_fails() {
    let cwd = temp_dir("validate-empty");
    let reports = cwd.join("reports");
    std::fs::create_dir_all(&reports).unwrap();
    let out = ants(&["validate", "reports"], &cwd);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("no .json reports"), "stderr: {}", stderr(&out));
    std::fs::remove_dir_all(&cwd).ok();
}

/// A well-formed report validates; a malformed one flips the exit code.
#[test]
fn validate_checks_report_schema() {
    let cwd = temp_dir("validate-schema");
    let reports = cwd.join("reports");
    std::fs::create_dir_all(&reports).unwrap();
    std::fs::write(
        reports.join("e0.json"),
        r#"{"schema":"ants-report/v1","id":"e0","columns":["x"],"rows":[[1]]}"#,
    )
    .unwrap();
    let out = ants(&["validate", "reports"], &cwd);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));

    std::fs::write(reports.join("bad.json"), r#"{"schema":"wrong/v0","rows":[[1]]}"#).unwrap();
    let out = ants(&["validate", "reports"], &cwd);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unexpected schema"), "stderr: {}", stderr(&out));
    std::fs::remove_dir_all(&cwd).ok();
}

/// The scheduling flag surface is accepted on a real run and the output
/// is identical across granularities (the CLI-level determinism
/// contract).
#[test]
fn granularity_flags_round_trip() {
    let cwd = temp_dir("granularity");
    let base = ants(&["run", "e4", "--smoke", "--threads", "2"], &cwd);
    assert_eq!(base.status.code(), Some(0), "stderr: {}", stderr(&base));
    for extra in [&["--granularity", "trial"][..], &["--granularity", "agent", "--chunk", "3"][..]]
    {
        let mut args = vec!["run", "e4", "--smoke", "--threads", "2"];
        args.extend_from_slice(extra);
        let out = ants(&args, &cwd);
        assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
        assert_eq!(
            out.stdout, base.stdout,
            "stdout drifted under {extra:?} — scheduling leaked into results"
        );
    }
    std::fs::remove_dir_all(&cwd).ok();
}

/// Bad scheduling flags are rejected with the usage exit code.
#[test]
fn bad_granularity_flags_are_rejected() {
    let cwd = temp_dir("bad-flags");
    for args in [
        &["list", "--granularity", "cell"][..],
        &["list", "--granularity"][..],
        &["list", "--chunk", "0"][..],
        &["run", "e4", "--chunk", "x"][..],
    ] {
        let out = ants(args, &cwd);
        assert_eq!(out.status.code(), Some(2), "args {args:?} stderr: {}", stderr(&out));
    }
    std::fs::remove_dir_all(&cwd).ok();
}

/// A spec the workload CLI tests write into their temp cwd.
const TEST_SPEC: &str = r#"
name = "cli demo"

[defaults]
trials = 4
smoke_trials = 2
seed = 31

[[cells]]
name = "mixed"
agents = 5
target = { model = "ball", dist = 6 }
move_budget = 8000
population = [
  { strategy = "nonuniform(dist)", weight = 2 },
  { strategy = "randomwalk", weight = 1 },
  { strategy = "spiral", weight = 1 },
]
"#;

/// `ants workload validate` accepts a good spec, rejects a broken one
/// (naming the failing key), and exits non-zero.
#[test]
fn workload_validate_exit_codes() {
    let cwd = temp_dir("wl-validate");
    std::fs::write(cwd.join("good.toml"), TEST_SPEC).unwrap();
    std::fs::write(cwd.join("bad.toml"), TEST_SPEC.replace("nonuniform(dist)", "warpdrive(9)"))
        .unwrap();
    let out = ants(&["workload", "validate", "good.toml"], &cwd);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("key cli-demo"), "stdout: {stdout}");
    let out = ants(&["workload", "validate", "good.toml", "bad.toml"], &cwd);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("unknown strategy"), "stderr: {}", stderr(&out));
    // A missing file fails too.
    let out = ants(&["workload", "validate", "no-such.toml"], &cwd);
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&cwd).ok();
}

/// `ants workload run --json` writes a report keyed by the spec name
/// that `ants validate` accepts, and the stdout is byte-identical
/// across granularities at a fixed thread count.
#[test]
fn workload_run_writes_report_and_is_schedule_invariant() {
    let cwd = temp_dir("wl-run");
    std::fs::write(cwd.join("spec.toml"), TEST_SPEC).unwrap();
    let base = ants(&["workload", "run", "spec.toml", "--smoke", "--threads", "2", "--json"], &cwd);
    assert_eq!(base.status.code(), Some(0), "stderr: {}", stderr(&base));
    assert!(cwd.join("target/reports/cli-demo.json").is_file());
    let out = ants(&["validate", "target/reports"], &cwd);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    for extra in [&["--granularity", "trial"][..], &["--granularity", "agent", "--chunk", "2"][..]]
    {
        let mut args = vec!["workload", "run", "spec.toml", "--smoke", "--threads", "2", "--json"];
        args.extend_from_slice(extra);
        let out = ants(&args, &cwd);
        assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
        assert_eq!(
            out.stdout, base.stdout,
            "workload stdout drifted under {extra:?} — scheduling leaked into results"
        );
    }
    std::fs::remove_dir_all(&cwd).ok();
}

/// `ants workload list` prints the expanded plan; a broken file exits 1.
#[test]
fn workload_list_prints_the_plan() {
    let cwd = temp_dir("wl-list");
    std::fs::write(cwd.join("spec.toml"), TEST_SPEC).unwrap();
    let out = ants(&["workload", "list", "spec.toml"], &cwd);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("2:nonuniform(6) + 1:randomwalk + 1:spiral"), "stdout: {stdout}");
    assert!(stdout.contains("ball(6)"), "stdout: {stdout}");
    std::fs::write(cwd.join("broken.toml"), "name = \n").unwrap();
    let out = ants(&["workload", "list", "broken.toml"], &cwd);
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&cwd).ok();
}

/// `ants workload run --metrics coverage` on a metric-less spec appends
/// the coverage columns to the report, and a spec-declared `metrics`
/// key does the same without any flag.
#[test]
fn workload_metrics_flag_and_spec_key_add_columns() {
    let cwd = temp_dir("wl-metrics");
    std::fs::write(cwd.join("spec.toml"), TEST_SPEC).unwrap();
    let out = ants(
        &["workload", "run", "spec.toml", "--smoke", "--metrics", "coverage,found_round", "--json"],
        &cwd,
    );
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("coverage"), "stdout: {stdout}");
    assert!(stdout.contains("found@R"), "stdout: {stdout}");
    let report = std::fs::read_to_string(cwd.join("target/reports/cli-demo.json")).unwrap();
    assert!(report.contains("\"adversarial left\""), "report: {report}");
    assert!(report.contains("\"metrics\":\"coverage,found_round\""), "report: {report}");

    // The spec-level key needs no flag.
    let spec_with_metrics = TEST_SPEC
        .replace("name = \"cli demo\"", "name = \"cli demo keyed\"\nmetrics = [\"coverage\"]");
    std::fs::write(cwd.join("keyed.toml"), spec_with_metrics).unwrap();
    let out = ants(&["workload", "run", "keyed.toml", "--smoke"], &cwd);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("adversarial left"), "stdout: {stdout}");

    // Bad metric names are rejected with the usage exit code.
    let out = ants(&["workload", "run", "spec.toml", "--metrics", "warp"], &cwd);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("unknown metric"), "stderr: {}", stderr(&out));
    std::fs::remove_dir_all(&cwd).ok();
}

/// A fully Markovian spec: every cell is exactly evaluable by the DP
/// backend.
const DP_SPEC: &str = r#"
name = "cli dp"

[defaults]
trials = 64
smoke_trials = 16

[[cells]]
name = "walk"
agents = 2
move_budget = 16
target = { model = "fixed", x = 1, y = 1 }
population = [ { strategy = "randomwalk" } ]
"#;

/// A heavy-tailed cell the exact backend must refuse.
const LEVY_SPEC: &str = r#"
name = "cli levy"

[defaults]
trials = 8

[[cells]]
name = "heavy"
agents = 1
move_budget = 32
target = { model = "fixed", x = 2, y = 0 }
population = [ { strategy = "levy(2.0, 64)" } ]
"#;

/// `--backend dp` routes a Markovian workload onto the exact backend
/// (the `exact` column flips to true) and is rejected — naming the
/// strategy — when any cell is not Markovian.
#[test]
fn workload_backend_flag_routes_and_validates() {
    let cwd = temp_dir("wl-backend");
    std::fs::write(cwd.join("dp.toml"), DP_SPEC).unwrap();
    std::fs::write(cwd.join("spec.toml"), TEST_SPEC).unwrap();
    let out = ants(&["workload", "run", "dp.toml", "--smoke", "--backend", "dp", "--csv"], &cwd);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("exact"), "stdout: {stdout}");
    assert!(stdout.contains(",true"), "stdout: {stdout}");
    // The same spec on the sampler: exact stays false.
    let out = ants(&["workload", "run", "dp.toml", "--smoke", "--backend", "mc", "--csv"], &cwd);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains(",false"));
    // TEST_SPEC carries a spiral walker: a forced dp backend must fail
    // validation before any trial runs, naming the strategy.
    let out = ants(&["workload", "run", "spec.toml", "--smoke", "--backend", "dp"], &cwd);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("spiral"), "stderr: {}", stderr(&out));
    // Unknown backend names get the usage exit code.
    let out = ants(&["workload", "run", "dp.toml", "--backend", "exact"], &cwd);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("unknown backend"), "stderr: {}", stderr(&out));
    std::fs::remove_dir_all(&cwd).ok();
}

/// A spec-level `backend = "dp"` on a non-Markovian cell fails
/// `ants workload validate` with a spec-path error naming the strategy.
#[test]
fn workload_validate_rejects_dp_on_non_markovian_cells() {
    let cwd = temp_dir("wl-backend-validate");
    let spec = LEVY_SPEC.replace("move_budget = 32", "move_budget = 32\nbackend = \"dp\"");
    std::fs::write(cwd.join("levy.toml"), spec).unwrap();
    let out = ants(&["workload", "validate", "levy.toml"], &cwd);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("'levy"), "stderr: {err}");
    assert!(err.contains("not Markovian"), "stderr: {err}");
    assert!(err.contains("population[0]"), "stderr: {err}");
    std::fs::remove_dir_all(&cwd).ok();
}

/// `ants workload crosscheck`: a Markovian spec passes (exit 0), a spec
/// with nothing the DP can evaluate is vacuous (exit 1), and a missing
/// file fails.
#[test]
fn workload_crosscheck_exit_codes() {
    let cwd = temp_dir("wl-crosscheck");
    std::fs::write(cwd.join("dp.toml"), DP_SPEC).unwrap();
    std::fs::write(cwd.join("levy.toml"), LEVY_SPEC).unwrap();
    let out = ants(&["workload", "crosscheck", "dp.toml", "--threads", "2"], &cwd);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("pass walk"), "stdout: {stdout}");
    assert!(stdout.contains("1 checked, 0 skipped, 0 failed"), "stdout: {stdout}");
    // All cells skipped: the comparison would be vacuous, so it fails.
    let out = ants(&["workload", "crosscheck", "levy.toml"], &cwd);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("no crosscheckable cells"), "stderr: {}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("skip heavy"));
    let out = ants(&["workload", "crosscheck", "no-such.toml"], &cwd);
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&cwd).ok();
}

/// The built-in harnesses are Monte Carlo only: `--backend dp` on
/// `ants run`/`ants all` is an error pointing at the workload surface.
#[test]
fn run_rejects_dp_backend_on_builtins() {
    let cwd = temp_dir("run-backend");
    for args in [&["run", "e4", "--smoke", "--backend", "dp"][..], &["all", "--backend", "dp"][..]]
    {
        let out = ants(args, &cwd);
        assert_eq!(out.status.code(), Some(2), "args {args:?} stderr: {}", stderr(&out));
        assert!(stderr(&out).contains("ants workload run"), "stderr: {}", stderr(&out));
    }
    // `--backend mc` is the default engine: accepted everywhere.
    let out = ants(&["run", "e4", "--smoke", "--backend", "mc"], &cwd);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    std::fs::remove_dir_all(&cwd).ok();
}

/// `ants trend history <dir>` prints oldest-first per-cell timelines
/// across recorded snapshots and fails on an empty or missing root.
#[test]
fn trend_history_prints_timelines() {
    let cwd = temp_dir("trend-history");
    let reports = cwd.join("target/reports");
    std::fs::create_dir_all(&reports).unwrap();
    let report = |x: f64| {
        format!(
            r#"{{"schema":"ants-report/v1","id":"w","columns":["cell","x"],"rows":[["r",{x}]]}}"#
        )
    };
    std::fs::write(reports.join("w.json"), report(2.0)).unwrap();
    let out = ants(&["trend", "--record", "history", "--commit", "aaa"], &cwd);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    std::fs::write(reports.join("w.json"), report(3.5)).unwrap();
    let out = ants(&["trend", "--record", "history", "--commit", "bbb"], &cwd);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));

    let out = ants(&["trend", "history", "history"], &cwd);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("2 snapshot(s)"), "stdout: {stdout}");
    assert!(stdout.contains("order: aaa -> bbb"), "stdout: {stdout}");
    assert!(stdout.contains("x: 2 -> 3.5"), "stdout: {stdout}");

    // A snapshot that never ran the report shows a gap, not a crash.
    std::fs::create_dir_all(cwd.join("history/ccc")).unwrap();
    std::fs::write(
        cwd.join("history/ccc/other.json"),
        r#"{"schema":"ants-report/v1","id":"o","columns":["cell","y"],"rows":[["q",1]]}"#,
    )
    .unwrap();
    let out = ants(&["trend", "history", "history"], &cwd);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("x: 2 -> 3.5 -> -"), "stdout: {stdout}");
    assert!(stdout.contains("y: - -> - -> 1"), "stdout: {stdout}");

    // Unparseable snapshot contents fail the exit code.
    std::fs::write(cwd.join("history/ccc/bad.json"), "{").unwrap();
    let out = ants(&["trend", "history", "history"], &cwd);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));

    // Empty root and missing root both fail loudly.
    std::fs::create_dir_all(cwd.join("empty")).unwrap();
    for root in ["empty", "no-such-dir"] {
        let out = ants(&["trend", "history", root], &cwd);
        assert_eq!(out.status.code(), Some(1), "root {root:?} stderr: {}", stderr(&out));
    }
    std::fs::remove_dir_all(&cwd).ok();
}

/// `ants trend --record <dir>` snapshots the report directory into a
/// per-commit subdirectory: flag, env var, and content-hash addressing.
#[test]
fn trend_record_snapshots_reports() {
    let cwd = temp_dir("trend-record");
    let reports = cwd.join("target/reports");
    std::fs::create_dir_all(&reports).unwrap();
    std::fs::write(
        reports.join("e9.json"),
        r#"{"schema":"ants-report/v1","id":"e9","columns":["x"],"rows":[[1]]}"#,
    )
    .unwrap();

    // Explicit --commit: files land in <dir>/<commit>/.
    let out = ants(&["trend", "--record", "history", "--commit", "abc123"], &cwd);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(cwd.join("history/abc123/e9.json").is_file());

    // The snapshot diffs cleanly against the live reports.
    let out = ants(&["trend", "target/reports", "history/abc123"], &cwd);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("rows identical"), "stdout: {stdout}");

    // No commit anywhere: content addressing kicks in, and recording the
    // same content twice is idempotent (same directory).
    let out = ants(&["trend", "--record", "history"], &cwd);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("history/content-"), "stdout: {stdout}");
    let out2 = ants(&["trend", "--record", "history"], &cwd);
    assert_eq!(String::from_utf8_lossy(&out2.stdout), stdout, "content addressing must be stable");

    // --reports points at a different source directory.
    let out = ants(
        &["trend", "--record", "history", "--commit", "def456", "--reports", "target/reports"],
        &cwd,
    );
    assert_eq!(out.status.code(), Some(0));
    assert!(cwd.join("history/def456/e9.json").is_file());

    // An empty source directory fails loudly.
    std::fs::remove_file(reports.join("e9.json")).unwrap();
    let out = ants(&["trend", "--record", "history", "--commit", "zzz"], &cwd);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("no .json reports"), "stderr: {}", stderr(&out));

    // Unsafe commit ids are rejected — including the dot-only names
    // that would escape or collapse into the destination directory.
    std::fs::write(reports.join("e9.json"), "{}").unwrap();
    for bad in ["../escape", "..", ".", "...", "a/b"] {
        let out = ants(&["trend", "--record", "history", "--commit", bad], &cwd);
        assert_eq!(out.status.code(), Some(1), "commit id {bad:?} must be rejected");
        assert!(stderr(&out).contains("not a safe directory name"), "stderr: {}", stderr(&out));
    }
    std::fs::remove_dir_all(&cwd).ok();
}

/// The `ANTS_COMMIT` environment variable names the snapshot when no
/// `--commit` flag is given.
#[test]
fn trend_record_reads_commit_from_env() {
    let cwd = temp_dir("trend-record-env");
    let reports = cwd.join("target/reports");
    std::fs::create_dir_all(&reports).unwrap();
    std::fs::write(
        reports.join("w.json"),
        r#"{"schema":"ants-report/v1","id":"w","columns":["x"],"rows":[[2]]}"#,
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_ants"))
        .args(["trend", "--record", "snaps"])
        .env("ANTS_COMMIT", "envhash9")
        .current_dir(&cwd)
        .output()
        .expect("spawn ants");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(cwd.join("snaps/envhash9/w.json").is_file());
    std::fs::remove_dir_all(&cwd).ok();
}

/// Keeps the `ants serve` child from outliving a failed test.
struct DaemonGuard(std::process::Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Start `ants serve --cache <cwd>/cache` and wait for the discovery
/// file. `--threads 2` pins the pooled scheduler so cache-hit
/// assertions about pool work are not vacuous on single-core machines.
fn spawn_daemon(cwd: &Path) -> DaemonGuard {
    let child = Command::new(env!("CARGO_BIN_EXE_ants"))
        .args(["serve", "--cache", "cache", "--threads", "2", "--commit", "clitest"])
        .current_dir(cwd)
        .env_remove("ANTS_COMMIT")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn ants serve");
    let mut guard = DaemonGuard(child);
    let addr_file = cwd.join("cache/serve.addr");
    for _ in 0..200 {
        if addr_file.is_file() {
            return guard;
        }
        if let Some(status) = guard.0.try_wait().expect("poll daemon") {
            panic!("daemon exited during startup: {status}");
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    panic!("daemon never wrote {}", addr_file.display());
}

/// The full daemon round trip through the real binary: a miss, a
/// byte-identical hit, stats, a failing drift gate, and shutdown.
#[test]
fn serve_and_query_end_to_end() {
    let cwd = temp_dir("serve-e2e");
    std::fs::write(cwd.join("spec.toml"), TEST_SPEC).unwrap();
    let mut daemon = spawn_daemon(&cwd);

    // First submission is a miss and streams the body to stdout.
    let submit = ["query", "submit", "spec.toml", "--cache", "cache", "--smoke"];
    let miss = ants(&submit, &cwd);
    assert_eq!(miss.status.code(), Some(0), "stderr: {}", stderr(&miss));
    assert!(stderr(&miss).contains("cache miss"), "stderr: {}", stderr(&miss));
    let body = String::from_utf8_lossy(&miss.stdout).into_owned();
    assert!(body.contains("\"event\":\"cell\""), "stdout: {body}");
    assert!(body.contains("\"event\":\"report\""), "stdout: {body}");
    assert!(body.contains("ants-report/v1"), "stdout: {body}");

    // Resubmitting the identical spec is a hit with a byte-identical
    // body — the shell-level statement of the cache contract.
    let hit = ants(&submit, &cwd);
    assert_eq!(hit.status.code(), Some(0), "stderr: {}", stderr(&hit));
    assert!(stderr(&hit).contains("cache hit"), "stderr: {}", stderr(&hit));
    assert_eq!(hit.stdout, miss.stdout, "cache hit body drifted from the original response");

    let stats = ants(&["query", "stats", "--cache", "cache"], &cwd);
    assert_eq!(stats.status.code(), Some(0), "stderr: {}", stderr(&stats));
    let stats_out = String::from_utf8_lossy(&stats.stdout).into_owned();
    assert!(stats_out.contains("\"event\":\"stats\""), "stdout: {stats_out}");
    assert!(stats_out.contains("\"hits\":1"), "stdout: {stats_out}");
    assert!(stats_out.contains("\"misses\":1"), "stdout: {stats_out}");

    // A different seed drifts the metrics: the gate runs the cell (a
    // miss under its own key), compares against the seed-31 baseline,
    // and fails loudly.
    let gate =
        ants(&["query", "gate", "spec.toml", "--cache", "cache", "--smoke", "--seed", "99"], &cwd);
    assert_eq!(gate.status.code(), Some(1), "stderr: {}", stderr(&gate));
    let gate_out = String::from_utf8_lossy(&gate.stdout).into_owned();
    assert!(gate_out.contains("\"event\":\"gate\""), "stdout: {gate_out}");
    assert!(gate_out.contains("\"pass\":false"), "stdout: {gate_out}");
    assert!(stderr(&gate).contains("gate: FAIL"), "stderr: {}", stderr(&gate));

    // Shutdown stops the daemon and removes the discovery file.
    let down = ants(&["query", "shutdown", "--cache", "cache"], &cwd);
    assert_eq!(down.status.code(), Some(0), "stderr: {}", stderr(&down));
    let status = daemon.0.wait().expect("join daemon");
    assert!(status.success(), "daemon exit: {status}");
    assert!(!cwd.join("cache/serve.addr").is_file(), "serve.addr must be removed on shutdown");
    std::fs::remove_dir_all(&cwd).ok();
}

/// `ants query` argument errors exit non-zero without a daemon: missing
/// op, missing spec file, no address, and a stale cache directory.
#[test]
fn query_argument_errors_fail_loudly() {
    let cwd = temp_dir("query-args");
    std::fs::write(cwd.join("spec.toml"), TEST_SPEC).unwrap();
    std::fs::create_dir_all(cwd.join("stale")).unwrap();
    for args in [
        &["query"][..],
        &["query", "warp"][..],
        &["query", "submit"][..],
        &["query", "submit", "spec.toml"][..],
        &["query", "submit", "no-such.toml", "--cache", "stale"][..],
        &["query", "stats", "--cache", "stale"][..],
        &["query", "stats", "--addr", "x", "--cache", "stale"][..],
    ] {
        let out = ants(args, &cwd);
        assert_eq!(out.status.code(), Some(1), "args {args:?} stderr: {}", stderr(&out));
    }
    // The stale-cache error points at how to start the daemon.
    let out = ants(&["query", "stats", "--cache", "stale"], &cwd);
    assert!(stderr(&out).contains("ants serve"), "stderr: {}", stderr(&out));
    std::fs::remove_dir_all(&cwd).ok();
}

/// `ants trend`: identical reports exit 0, numeric drift is reported
/// per row but still exits 0, schema mismatches exit 1, and one-sided
/// reports are flagged.
#[test]
fn trend_diffs_report_directories() {
    let cwd = temp_dir("trend");
    let (a, b) = (cwd.join("a"), cwd.join("b"));
    std::fs::create_dir_all(&a).unwrap();
    std::fs::create_dir_all(&b).unwrap();
    let report = |x: f64| {
        format!(
            "{{\"schema\":\"ants-report/v1\",\"id\":\"w\",\"title\":\"t\",\"claim\":\"c\",\
             \"effort\":\"smoke\",\"seed\":0,\"threads\":null,\"wall_ms\":1.5,\"params\":{{}},\
             \"columns\":[\"cell\",\"x\"],\"rows\":[[\"r\",{x}]]}}"
        )
    };
    std::fs::write(a.join("w.json"), report(2.0)).unwrap();
    std::fs::write(b.join("w.json"), report(2.0)).unwrap();
    std::fs::write(a.join("gone.json"), report(1.0)).unwrap();
    let out = ants(&["trend", "a", "b"], &cwd);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("w.json: rows identical"), "stdout: {stdout}");
    assert!(stdout.contains("gone.json: missing in"), "stdout: {stdout}");

    // Numeric drift: reported with a delta, exit stays 0.
    std::fs::write(b.join("w.json"), report(3.5)).unwrap();
    let out = ants(&["trend", "a", "b"], &cwd);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("2 -> 3.5"), "stdout: {stdout}");
    assert!(stdout.contains("+1.5"), "stdout: {stdout}");

    // Schema mismatch: exit 1.
    std::fs::write(b.join("w.json"), report(2.0).replace("ants-report/v1", "other/v9")).unwrap();
    let out = ants(&["trend", "a", "b"], &cwd);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));

    // Column mismatch is a schema failure too.
    std::fs::write(b.join("w.json"), report(2.0).replace("\"x\"", "\"y\"")).unwrap();
    let out = ants(&["trend", "a", "b"], &cwd);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("schema mismatch"), "stderr: {}", stderr(&out));

    // Missing directory: exit 1.
    let out = ants(&["trend", "a", "nope"], &cwd);
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&cwd).ok();
}
