//! End-to-end tests of the `ants` binary: exit codes and the flag
//! surface, driven through the real executable.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn ants(args: &[&str], cwd: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ants"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn ants")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ants-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// `ants validate` must exit non-zero when the report directory is
/// missing entirely — a battery run that wrote nothing can never
/// validate vacuously.
#[test]
fn validate_missing_directory_fails() {
    let cwd = temp_dir("validate-missing");
    // Default directory (target/reports relative to cwd): absent.
    let out = ants(&["validate"], &cwd);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("does not exist"), "stderr: {}", stderr(&out));
    // Explicit missing directory: same contract.
    let out = ants(&["validate", "no/such/dir"], &cwd);
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&cwd).ok();
}

/// An existing directory with no reports is a failure too.
#[test]
fn validate_empty_directory_fails() {
    let cwd = temp_dir("validate-empty");
    let reports = cwd.join("reports");
    std::fs::create_dir_all(&reports).unwrap();
    let out = ants(&["validate", "reports"], &cwd);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("no .json reports"), "stderr: {}", stderr(&out));
    std::fs::remove_dir_all(&cwd).ok();
}

/// A well-formed report validates; a malformed one flips the exit code.
#[test]
fn validate_checks_report_schema() {
    let cwd = temp_dir("validate-schema");
    let reports = cwd.join("reports");
    std::fs::create_dir_all(&reports).unwrap();
    std::fs::write(
        reports.join("e0.json"),
        r#"{"schema":"ants-report/v1","id":"e0","columns":["x"],"rows":[[1]]}"#,
    )
    .unwrap();
    let out = ants(&["validate", "reports"], &cwd);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));

    std::fs::write(reports.join("bad.json"), r#"{"schema":"wrong/v0","rows":[[1]]}"#).unwrap();
    let out = ants(&["validate", "reports"], &cwd);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unexpected schema"), "stderr: {}", stderr(&out));
    std::fs::remove_dir_all(&cwd).ok();
}

/// The scheduling flag surface is accepted on a real run and the output
/// is identical across granularities (the CLI-level determinism
/// contract).
#[test]
fn granularity_flags_round_trip() {
    let cwd = temp_dir("granularity");
    let base = ants(&["run", "e4", "--smoke", "--threads", "2"], &cwd);
    assert_eq!(base.status.code(), Some(0), "stderr: {}", stderr(&base));
    for extra in [&["--granularity", "trial"][..], &["--granularity", "agent", "--chunk", "3"][..]]
    {
        let mut args = vec!["run", "e4", "--smoke", "--threads", "2"];
        args.extend_from_slice(extra);
        let out = ants(&args, &cwd);
        assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
        assert_eq!(
            out.stdout, base.stdout,
            "stdout drifted under {extra:?} — scheduling leaked into results"
        );
    }
    std::fs::remove_dir_all(&cwd).ok();
}

/// Bad scheduling flags are rejected with the usage exit code.
#[test]
fn bad_granularity_flags_are_rejected() {
    let cwd = temp_dir("bad-flags");
    for args in [
        &["list", "--granularity", "cell"][..],
        &["list", "--granularity"][..],
        &["list", "--chunk", "0"][..],
        &["run", "e4", "--chunk", "x"][..],
    ] {
        let out = ants(args, &cwd);
        assert_eq!(out.status.code(), Some(2), "args {args:?} stderr: {}", stderr(&out));
    }
    std::fs::remove_dir_all(&cwd).ok();
}
