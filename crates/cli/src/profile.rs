//! `ants profile <spec.toml>` — run a workload with telemetry forced on
//! and print where the time and the work went: per-cell wall clock,
//! the plan → execute → reduce → report phase breakdown, the counter
//! catalogue, per-worker pool balance, and every scheduling decision
//! with the inputs that drove it.
//!
//! Profiling never changes what runs: telemetry is observational by
//! construction (report bytes are pinned identical with it on or off),
//! so the numbers printed here describe exactly the run `ants workload
//! run` would have done with the same flags.

use ants_bench::runner::{emit_for, parse_flags, write_telemetry, Flags};
use ants_bench::WorkloadExperiment;
use ants_obs::{Counter, Gauge, Phase, Snapshot, Telemetry};
use ants_sim::report::Table;
use std::path::Path;
use std::time::Instant;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// `ants profile <spec.toml> [shared flags]`: the spec file comes
/// first, then the same flag surface as `ants workload run`. With
/// `--telemetry <path>` the snapshot is additionally written as NDJSON.
pub fn profile(args: &[String]) {
    let Some(file) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("error: `ants profile <spec.toml> [flags]` needs a spec file first");
        std::process::exit(2);
    };
    let exp =
        WorkloadExperiment::from_file(Path::new(file)).unwrap_or_else(|e| fail(&e.to_string()));
    let mut flags = parse_flags(&args[1..]).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    // Profiling *is* observing: attach a handle even without
    // `--telemetry` (the flag only adds the NDJSON snapshot file).
    if flags.cfg.telemetry.is_none() {
        flags.cfg.telemetry = Some(Telemetry::new());
    }
    if let Err(e) = exp.validate_backends(&flags.cfg) {
        fail(&e.to_string());
    }

    let opts = flags.cfg.sweep_options();
    let started = Instant::now();
    let mut cells: Vec<(String, f64)> = Vec::new();
    let mut last = started;
    let outcome = exp.try_run_streamed(&flags.cfg, &opts, |_i, cell, _row| {
        // The delta between row callbacks is the cell's wall clock:
        // cells run in order, and the callback fires as each finishes.
        let now = Instant::now();
        cells.push((cell.label.clone(), now.duration_since(last).as_secs_f64() * 1e3));
        last = now;
    });
    let mut report = outcome.unwrap_or_else(|e| fail(&e.to_string()));
    report.set_wall_ms(started.elapsed().as_secs_f64() * 1e3);

    emit_for(&report, &flags);
    let tele = flags.cfg.telemetry.expect("profile always attaches telemetry");
    print_profile(&flags, &cells, &tele.snapshot());
    write_telemetry(&flags);
}

/// Render the profile sections from the frozen snapshot.
fn print_profile(flags: &Flags, cells: &[(String, f64)], snap: &Snapshot) {
    let threads = flags.cfg.threads.map_or_else(|| "auto".to_string(), |t| t.to_string());
    println!(
        "\nprofile: effort {}, seed {}, threads {threads}, granularity {}{}",
        flags.cfg.effort.as_str(),
        flags.cfg.base_seed,
        flags.cfg.granularity.as_str(),
        flags.cfg.chunk.map_or_else(String::new, |c| format!(", chunk {c}")),
    );

    let mut t = Table::new(vec!["cell", "wall_ms"]);
    for (label, ms) in cells {
        t.row(vec![label.clone(), format!("{ms:.1}")]);
    }
    println!("\nper-cell wall clock:\n\n{t}");

    let mut t = Table::new(vec!["phase", "spans", "total_ms"]);
    for phase in Phase::ALL {
        t.row(vec![
            phase.as_str().to_string(),
            snap.phase_count[phase as usize].to_string(),
            format!("{:.1}", snap.phase_ns[phase as usize] as f64 / 1e6),
        ]);
    }
    println!("phases (plan -> execute -> reduce -> report; dp_solve = exact cells):\n\n{t}");

    let mut t = Table::new(vec!["counter", "value"]);
    for counter in Counter::ALL {
        // Serve counters only move inside the daemon, and dp counters
        // only move when a cell ran the exact backend; gauges likewise.
        let value = snap.counter(counter);
        let prefixed =
            counter.as_str().starts_with("serve_") || counter.as_str().starts_with("dp_");
        if value == 0 && prefixed {
            continue;
        }
        t.row(vec![counter.as_str().to_string(), value.to_string()]);
    }
    if snap.gauge(Gauge::CacheEntries) != 0 || snap.gauge(Gauge::CacheBytes) != 0 {
        t.row(vec!["cache_entries".to_string(), snap.gauge(Gauge::CacheEntries).to_string()]);
        t.row(vec!["cache_bytes".to_string(), snap.gauge(Gauge::CacheBytes).to_string()]);
    }
    println!("counters:\n\n{t}");

    if !snap.worker_units.is_empty() {
        let mut t = Table::new(vec!["worker", "units", "stolen", "polls", "busy_ms", "idle_ms"]);
        for w in 0..snap.worker_units.len() {
            let at = |v: &[u64]| v.get(w).copied().unwrap_or(0);
            t.row(vec![
                w.to_string(),
                at(&snap.worker_units).to_string(),
                at(&snap.worker_steals).to_string(),
                at(&snap.worker_polls).to_string(),
                format!("{:.1}", at(&snap.worker_busy_ns) as f64 / 1e6),
                format!("{:.1}", at(&snap.worker_idle_ns) as f64 / 1e6),
            ]);
        }
        println!("pool balance ('stolen' = units run off their home worker):\n\n{t}");
    }

    if !snap.plans.is_empty() {
        let mut t = Table::new(vec![
            "job",
            "granularity",
            "agents",
            "weight",
            "sweep_trials",
            "threads",
            "chunk",
        ]);
        for p in &snap.plans {
            t.row(vec![
                p.job.to_string(),
                p.granularity.clone(),
                p.agents.to_string(),
                p.weight.to_string(),
                p.sweep_trials.to_string(),
                p.threads.to_string(),
                p.chunk.to_string(),
            ]);
        }
        let first = &snap.plans[0];
        println!(
            "plan decisions (agent split iff weight >= {} and sweep_trials < {}*threads):\n\n{t}",
            first.split_weight, first.saturation
        );
    }
}
