//! `ants trend` — the JSON-report dashboard tooling.
//!
//! Three modes:
//!
//! * `ants trend <dir-a> <dir-b>` diffs two report directories (e.g. two
//!   commits' dashboards);
//! * `ants trend --record <dir>` snapshots the current report directory
//!   into a content-addressed per-commit subdirectory of `<dir>` — the
//!   first concrete step of wiring trends to version history without a
//!   git dependency (the commit id comes from `--commit`, the
//!   `ANTS_COMMIT` environment variable, or, failing both, a hash of the
//!   report contents themselves);
//! * `ants trend history <dir>` reads every snapshot under `<dir>` and
//!   prints per-cell timelines: one `v0 -> v1 -> ...` line per report
//!   column, oldest snapshot first, so a metric drifting across commits
//!   is visible at a glance instead of pairwise diff by diff.
//!
//! Diff contract:
//!
//! * reports are matched by file name; experiments present only on one
//!   side are flagged (`missing in B` / `new in B`) but do not fail;
//! * schema problems *do* fail: unparseable files, a schema tag other
//!   than `ants-report/v1`, or column sets that disagree exit non-zero —
//!   a dashboard diffing apples to oranges is worse than no dashboard;
//! * row-by-row, cell-by-cell deltas: numeric cells print `a -> b (Δ)`,
//!   text/bool cells print `a -> b`; `wall_ms` is reported separately
//!   and never counts as a data change (it is the only field allowed to
//!   drift between identical runs);
//! * observability never counts either: the diff reads only `columns`
//!   and `rows`, so a `telemetry` block (or any other side-channel key a
//!   report may carry) can differ arbitrarily without flagging a change
//!   — telemetry is strictly observational and must not look like
//!   drift.

use ants_sim::json::Json;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Outcome of a trend run, for the process exit code.
pub struct TrendOutcome {
    /// Schema mismatches or unreadable/unparseable reports.
    pub failures: usize,
    /// Reports whose data rows differ.
    pub changed: usize,
}

fn json_names(dir: &Path) -> Result<BTreeSet<String>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    Ok(entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
        .collect())
}

fn load_report(path: &Path) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("unreadable {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let schema = doc.get("schema").and_then(Json::as_str);
    if schema != Some("ants-report/v1") {
        return Err(format!("{}: unexpected schema {schema:?}", path.display()));
    }
    Ok(doc)
}

fn cell_text(cell: &Json) -> String {
    match cell {
        Json::Str(s) => s.clone(),
        Json::Num(x) => format!("{x}"),
        Json::Bool(b) => b.to_string(),
        Json::Null => "null".to_string(),
        other => format!("{other:?}"),
    }
}

/// Cell equality with total-order semantics on numbers: two cells are
/// equal iff they would render the same dashboard. The derived
/// `PartialEq` on [`Json`] compares raw `f64`s, which is wrong at both
/// edges: `NaN != NaN` reports an unchanged NaN cell as changed on every
/// diff forever, and `-0.0 == 0.0` hides a genuine sign flip. Comparing
/// numbers via [`f64::total_cmp`] fixes both (and distinguishes NaN
/// payloads only if their bit patterns actually differ, which round-trips
/// through our writer as the same token anyway). Numbers are read
/// through [`Json::as_number`], so the non-finite string sentinels the
/// report writer emits (`"NaN"`, `"Inf"`, `"-Inf"`) compare as the
/// numbers they encode — a NaN cell parsed back from disk is equal to a
/// freshly computed one.
fn cells_equal(a: &Json, b: &Json) -> bool {
    if let (Some(x), Some(y)) = (a.as_number(), b.as_number()) {
        return x.total_cmp(&y) == std::cmp::Ordering::Equal;
    }
    match (a, b) {
        (Json::Arr(xs), Json::Arr(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| cells_equal(x, y))
        }
        (Json::Obj(xs), Json::Obj(ys)) => {
            xs.len() == ys.len()
                && xs.iter().zip(ys).all(|((ka, x), (kb, y))| ka == kb && cells_equal(x, y))
        }
        _ => a == b,
    }
}

/// Diff one matched pair of reports; returns `Ok(changed_cells)` or a
/// schema-mismatch description.
fn diff_pair(name: &str, a: &Json, b: &Json) -> Result<usize, String> {
    let cols_a = a.get("columns").and_then(Json::as_array).ok_or("missing columns in A")?;
    let cols_b = b.get("columns").and_then(Json::as_array).ok_or("missing columns in B")?;
    if cols_a != cols_b {
        return Err(format!("column sets differ ({} vs {} columns)", cols_a.len(), cols_b.len()));
    }
    let empty: &[Json] = &[];
    let rows_a = a.get("rows").and_then(Json::as_array).unwrap_or(empty);
    let rows_b = b.get("rows").and_then(Json::as_array).unwrap_or(empty);
    let mut changed = 0usize;
    if rows_a.len() != rows_b.len() {
        println!("  {name}: row count {} -> {}", rows_a.len(), rows_b.len());
        changed += rows_a.len().abs_diff(rows_b.len());
    }
    for (i, (ra, rb)) in rows_a.iter().zip(rows_b.iter()).enumerate() {
        let (ca, cb) = (ra.as_array().unwrap_or(empty), rb.as_array().unwrap_or(empty));
        for (col, (va, vb)) in ca.iter().zip(cb.iter()).enumerate() {
            if cells_equal(va, vb) {
                continue;
            }
            changed += 1;
            let col_name = cols_a.get(col).and_then(Json::as_str).unwrap_or("?");
            match (va.as_number(), vb.as_number()) {
                (Some(x), Some(y)) => {
                    println!("  {name} row {i} [{col_name}]: {x} -> {y} (Δ {:+})", y - x)
                }
                _ => println!(
                    "  {name} row {i} [{col_name}]: {} -> {}",
                    cell_text(va),
                    cell_text(vb)
                ),
            }
        }
    }
    Ok(changed)
}

/// Resolve the commit id for a snapshot: explicit flag, then the
/// `ANTS_COMMIT` environment variable, then a content hash of the
/// reports themselves (prefixed so the two namespaces cannot collide).
/// Always content-addressable, never a git invocation.
fn snapshot_id(commit: Option<&str>, reports: &[(String, String)]) -> Result<String, String> {
    let explicit = match commit {
        Some(c) => Some(c.to_string()),
        None => std::env::var("ANTS_COMMIT").ok().filter(|c| !c.is_empty()),
    };
    if let Some(c) = explicit {
        // "." and ".." pass a plain character filter but escape (or
        // collapse into) the destination directory — reject dot-only
        // names explicitly.
        if c.chars().all(|ch| ch.is_ascii_alphanumeric() || ch == '-' || ch == '_' || ch == '.')
            && !c.is_empty()
            && !c.chars().all(|ch| ch == '.')
        {
            return Ok(c);
        }
        return Err(format!("commit id '{c}' is not a safe directory name (use [A-Za-z0-9._-])"));
    }
    // FNV-1a over (name, contents) pairs in sorted name order: stable
    // across platforms, no dependencies, good enough to address content.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (name, text) in reports {
        fold(name.as_bytes());
        fold(&[0]);
        fold(text.as_bytes());
        fold(&[0]);
    }
    Ok(format!("content-{hash:016x}"))
}

/// `ants trend --record <dest>`: copy every `*.json` report from
/// `reports_dir` into `<dest>/<commit>/`, creating directories as
/// needed. Returns the snapshot directory.
///
/// Recording the same reports twice (same commit id or same content
/// hash) is idempotent: the files are simply rewritten in place.
pub fn record(
    dest_root: &Path,
    reports_dir: &Path,
    commit: Option<&str>,
) -> Result<PathBuf, String> {
    let names = json_names(reports_dir)?;
    if names.is_empty() {
        return Err(format!(
            "no .json reports in {} (run `ants all --smoke --json` first)",
            reports_dir.display()
        ));
    }
    let mut reports: Vec<(String, String)> = Vec::new();
    for name in &names {
        let path = reports_dir.join(name);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("unreadable {}: {e}", path.display()))?;
        reports.push((name.clone(), text));
    }
    let id = snapshot_id(commit, &reports)?;
    let dest = dest_root.join(&id);
    std::fs::create_dir_all(&dest).map_err(|e| format!("cannot create {}: {e}", dest.display()))?;
    for (name, text) in &reports {
        let path = dest.join(name);
        std::fs::write(&path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    println!("recorded {} report(s) at {}", reports.len(), dest.display());
    Ok(dest)
}

/// Look up one cell of a report document by (key-column value, column
/// name): tolerant of column sets that changed between snapshots — a
/// column a snapshot does not have simply yields `None`.
fn lookup_cell<'a>(doc: &'a Json, label: &str, column: &str) -> Option<&'a Json> {
    let cols = doc.get("columns")?.as_array()?;
    let idx = cols.iter().position(|c| c.as_str() == Some(column))?;
    let rows = doc.get("rows")?.as_array()?;
    rows.iter().filter_map(Json::as_array).find_map(|cells| {
        if cell_text(cells.first()?) == label {
            cells.get(idx)
        } else {
            None
        }
    })
}

/// `ants trend history <root>`: per-cell timelines across every
/// snapshot `ants trend --record <root>` wrote.
///
/// Snapshots are ordered oldest-first by directory modification time
/// (name breaks ties), so successive `--record` runs read left to
/// right. Cells are keyed by each report's first column; every other
/// column prints one `v0 -> v1 -> ...` line, with `-` filling the
/// snapshots where the report, cell, or column is absent.
///
/// Returns the number of unreadable/off-schema reports (non-zero is an
/// exit-code failure for the caller); an empty or unreadable `root` is
/// an `Err` — a history of nothing should never "pass".
pub fn history(root: &Path) -> Result<usize, String> {
    let entries =
        std::fs::read_dir(root).map_err(|e| format!("cannot read {}: {e}", root.display()))?;
    let mut snaps: Vec<(std::time::SystemTime, String, PathBuf)> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .map(|p| {
            let mtime = std::fs::metadata(&p)
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            let name = p.file_name().map_or_else(String::new, |n| n.to_string_lossy().into_owned());
            (mtime, name, p)
        })
        .collect();
    if snaps.is_empty() {
        return Err(format!(
            "no snapshot directories in {} (run `ants trend --record` first)",
            root.display()
        ));
    }
    snaps.sort();
    let mut failures = 0usize;
    // (snapshot id, report name -> parsed document), oldest first.
    let mut loaded: Vec<(String, std::collections::BTreeMap<String, Json>)> = Vec::new();
    for (_, id, dir) in &snaps {
        let mut docs = std::collections::BTreeMap::new();
        for name in json_names(dir)? {
            match load_report(&dir.join(&name)) {
                Ok(doc) => {
                    docs.insert(name, doc);
                }
                Err(e) => {
                    eprintln!("FAIL {e}");
                    failures += 1;
                }
            }
        }
        loaded.push((id.clone(), docs));
    }
    let ids: Vec<&str> = loaded.iter().map(|(id, _)| id.as_str()).collect();
    println!("history: {} snapshot(s) under {} (oldest first)", ids.len(), root.display());
    println!("order: {}\n", ids.join(" -> "));
    let reports: BTreeSet<&String> = loaded.iter().flat_map(|(_, docs)| docs.keys()).collect();
    for name in reports {
        println!("{name}:");
        // Schema of record: the newest snapshot that has this report.
        let newest = loaded.iter().rev().find_map(|(_, docs)| docs.get(name.as_str()));
        let columns: Vec<String> = newest
            .and_then(|doc| doc.get("columns"))
            .and_then(Json::as_array)
            .map(|cols| cols.iter().filter_map(Json::as_str).map(str::to_owned).collect())
            .unwrap_or_default();
        // Cell labels in first-appearance order, oldest snapshot first,
        // so rows removed since then still show their partial history.
        let mut labels: Vec<String> = Vec::new();
        for (_, docs) in &loaded {
            let rows = docs
                .get(name.as_str())
                .and_then(|doc| doc.get("rows"))
                .and_then(Json::as_array)
                .unwrap_or(&[]);
            for cells in rows.iter().filter_map(Json::as_array) {
                let label = cells.first().map(cell_text).unwrap_or_default();
                if !labels.contains(&label) {
                    labels.push(label);
                }
            }
        }
        for label in &labels {
            println!("  {} {label}:", columns.first().map_or("cell", String::as_str));
            for column in columns.iter().skip(1) {
                let timeline: Vec<String> = loaded
                    .iter()
                    .map(|(_, docs)| {
                        docs.get(name.as_str())
                            .and_then(|doc| lookup_cell(doc, label, column))
                            .map_or_else(|| "-".to_string(), cell_text)
                    })
                    .collect();
                println!("    {column}: {}", timeline.join(" -> "));
            }
        }
    }
    Ok(failures)
}

/// Run the diff; prints to stdout/stderr and returns the counts the
/// caller turns into an exit code.
pub fn trend(dir_a: &Path, dir_b: &Path) -> TrendOutcome {
    let mut out = TrendOutcome { failures: 0, changed: 0 };
    let (names_a, names_b) = match (json_names(dir_a), json_names(dir_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (a, b) => {
            for r in [a.err(), b.err()].into_iter().flatten() {
                eprintln!("error: {r}");
            }
            out.failures += 1;
            return out;
        }
    };
    if names_a.is_empty() && names_b.is_empty() {
        eprintln!("error: no .json reports in {} or {}", dir_a.display(), dir_b.display());
        out.failures += 1;
        return out;
    }
    let union: BTreeSet<&String> = names_a.union(&names_b).collect();
    let mut identical = 0usize;
    for name in union {
        match (names_a.contains(name.as_str()), names_b.contains(name.as_str())) {
            (true, false) => println!("- {name}: missing in {}", dir_b.display()),
            (false, true) => println!("+ {name}: new in {}", dir_b.display()),
            _ => {
                let (pa, pb) = (dir_a.join(name.as_str()), dir_b.join(name.as_str()));
                let (a, b) = match (load_report(&pa), load_report(&pb)) {
                    (Ok(a), Ok(b)) => (a, b),
                    (a, b) => {
                        for e in [a.err(), b.err()].into_iter().flatten() {
                            eprintln!("FAIL {e}");
                        }
                        out.failures += 1;
                        continue;
                    }
                };
                match diff_pair(name, &a, &b) {
                    Err(e) => {
                        eprintln!("FAIL {name}: schema mismatch: {e}");
                        out.failures += 1;
                    }
                    Ok(0) => {
                        identical += 1;
                        let wall = |doc: &Json| doc.get("wall_ms").and_then(Json::as_f64);
                        if let (Some(wa), Some(wb)) = (wall(&a), wall(&b)) {
                            println!("= {name}: rows identical (wall {wa:.1}ms -> {wb:.1}ms)");
                        } else {
                            println!("= {name}: rows identical");
                        }
                    }
                    Ok(n) => {
                        out.changed += 1;
                        println!("~ {name}: {n} changed cell(s)");
                    }
                }
            }
        }
    }
    println!(
        "trend: {} identical, {} changed, {} failure(s)",
        identical, out.changed, out.failures
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_equal_treats_nan_as_equal_to_itself() {
        assert!(cells_equal(&Json::Num(f64::NAN), &Json::Num(f64::NAN)));
        assert!(!cells_equal(&Json::Num(f64::NAN), &Json::Num(1.0)));
        assert!(!cells_equal(&Json::Num(1.0), &Json::Num(f64::NAN)));
    }

    #[test]
    fn cells_equal_distinguishes_signed_zero() {
        assert!(!cells_equal(&Json::Num(0.0), &Json::Num(-0.0)));
        assert!(cells_equal(&Json::Num(0.0), &Json::Num(0.0)));
        assert!(cells_equal(&Json::Num(-0.0), &Json::Num(-0.0)));
    }

    /// Snapshots parsed back from disk carry the non-finite string
    /// sentinels; they must compare as the numbers they encode, so a
    /// report → JSON → parse → diff round trip over NaN/±Inf/-0.0 is
    /// change-free.
    #[test]
    fn cells_equal_honours_non_finite_sentinels() {
        use ants_sim::json::number;
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0] {
            let parsed = Json::parse(&number(x)).unwrap();
            assert!(cells_equal(&parsed, &Json::Num(x)), "sentinel for {x:?}");
            assert!(cells_equal(&parsed, &parsed));
        }
        assert!(!cells_equal(&Json::parse(&number(f64::NAN)).unwrap(), &Json::Num(1.0)));
        assert!(!cells_equal(
            &Json::parse(&number(f64::INFINITY)).unwrap(),
            &Json::Num(f64::NEG_INFINITY)
        ));
        // -0.0 still differs from 0.0 after a round trip.
        assert!(!cells_equal(&Json::parse(&number(-0.0)).unwrap(), &Json::Num(0.0)));
        // An ordinary string that merely looks numeric is not a number.
        assert!(!cells_equal(&Json::Str("nan".into()), &Json::Num(f64::NAN)));
    }

    #[test]
    fn cells_equal_recurses_into_containers() {
        let a = Json::Arr(vec![Json::Num(f64::NAN), Json::Str("x".into())]);
        let b = Json::Arr(vec![Json::Num(f64::NAN), Json::Str("x".into())]);
        assert!(cells_equal(&a, &b));
        let c = Json::Obj(vec![("k".into(), Json::Num(f64::NAN))]);
        let d = Json::Obj(vec![("k".into(), Json::Num(f64::NAN))]);
        assert!(cells_equal(&c, &d));
        let e = Json::Obj(vec![("other".into(), Json::Num(f64::NAN))]);
        assert!(!cells_equal(&c, &e));
        assert!(!cells_equal(&a, &Json::Arr(vec![Json::Num(f64::NAN)])));
    }

    fn report(rows: Vec<Vec<Json>>) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str("ants-report/v1".into())),
            ("columns".into(), Json::Arr(vec![Json::Str("value".into())])),
            ("rows".into(), Json::Arr(rows.into_iter().map(Json::Arr).collect())),
        ])
    }

    #[test]
    fn diff_pair_ignores_identical_nan_cells() {
        let a = report(vec![vec![Json::Num(f64::NAN)]]);
        let b = report(vec![vec![Json::Num(f64::NAN)]]);
        assert_eq!(diff_pair("t", &a, &b), Ok(0));
    }

    #[test]
    fn diff_pair_reports_zero_sign_flips_and_real_changes() {
        let a = report(vec![vec![Json::Num(0.0)], vec![Json::Num(1.0)]]);
        let b = report(vec![vec![Json::Num(-0.0)], vec![Json::Num(2.0)]]);
        assert_eq!(diff_pair("t", &a, &b), Ok(2));
    }

    /// Telemetry is observational: two reports whose data rows match
    /// but whose `telemetry` blocks differ wildly are *identical* to
    /// the dashboard. Flagging them would turn every profiled run into
    /// fake drift.
    #[test]
    fn diff_pair_ignores_telemetry_blocks() {
        let with_tele = |busy: f64| {
            let Json::Obj(mut fields) = report(vec![vec![Json::Num(3.0)]]) else { unreachable!() };
            fields.push((
                "telemetry".into(),
                Json::Obj(vec![("pool_busy_ns".into(), Json::Num(busy))]),
            ));
            Json::Obj(fields)
        };
        assert_eq!(diff_pair("t", &with_tele(1.0), &with_tele(9e9)), Ok(0));
        // One-sided blocks are equally invisible.
        assert_eq!(diff_pair("t", &with_tele(1.0), &report(vec![vec![Json::Num(3.0)]])), Ok(0));
    }
}
