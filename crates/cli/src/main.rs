//! `ants` — the experiment runner.
//!
//! ```text
//! ants list [--smoke]            # list experiments, claims, workloads
//! ants run <id> [flags]          # run one experiment (e.g. `ants run e7`)
//! ants all [flags]               # run the whole battery
//! ants demo [D]                  # coverage of low- vs high-chi agents
//! ants validate [dir]            # validate emitted JSON reports
//! ants workload run <file>       # run a declarative workload spec
//! ants profile <file>            # run a spec with telemetry forced on:
//!                                #   per-cell wall clock, phase breakdown
//!                                #   (plan -> execute -> reduce -> report),
//!                                #   counters, and plan decisions
//! ants workload validate <f>...  # parse + expand + validate spec files
//! ants workload list <file>      # print a spec's expanded plan
//! ants workload crosscheck <f>   # MC vs exact-DP Wilson cross-validation
//! ants trend <dir-a> <dir-b>     # diff two report directories
//! ants trend --record <dir>      # snapshot target/reports per commit
//!                                #   [--commit H] [--reports DIR]
//!                                #   (commit also read from $ANTS_COMMIT;
//!                                #    falls back to a content hash)
//! ants trend history <dir>       # per-cell timelines across snapshots
//! ants serve --cache <dir>       # content-addressed workload daemon
//!                                #   [--listen H:P] [--commit H]
//!                                #   [--threads K] [--granularity G]
//!                                #   [--chunk N]
//! ants query submit <file>       # submit a spec (body -> stdout)
//! ants query gate <file>         # submit + drift-gate vs newest entry
//!                                #   (exit 1 on drift)
//! ants query stats|shutdown      # daemon counters / stop the daemon
//!                                #   query targets: --addr H:P or
//!                                #   --cache <dir> (discovery file)
//!
//! flags: --smoke | --effort smoke|standard   effort (default standard)
//!        --seed N                            shift every sweep's seeds
//!        --threads K                         pin the sweep thread pool
//!        --granularity auto|trial|agent      sweep unit of work (default auto)
//!        --chunk N                           agents per chunk (agent granularity)
//!        --metrics a,b,...                   observation columns for workload
//!                                            runs (coverage, first_visit,
//!                                            round_trace, chi, found_round)
//!        --backend mc|dp                     force every workload cell onto
//!                                            the Monte Carlo pool or the
//!                                            exact DP backend
//!        --dp-mode dense|sparse|auto         force the exact backend's
//!                                            occupancy representation (dense
//!                                            tables, sparse frontier, or the
//!                                            per-cell size heuristic)
//!        --json                              write target/reports/<id>.json
//!        --csv                               print CSV after the table
//!        --telemetry PATH                    write an NDJSON telemetry
//!                                            snapshot (ants-telemetry/v1)
//!                                            after the run
//! ```
//!
//! Granularity and chunk size change scheduling only: report output is
//! byte-identical across every `--threads`/`--granularity`/`--chunk`
//! combination (pinned by `crates/sim/tests/determinism.rs` and the
//! bench parity test).
//!
//! Experiments come from the `ants_bench::experiments` registry (the
//! [`Experiment`](ants_bench::Experiment) trait); this binary only
//! parses arguments, streams reports, and validates JSON output.

mod profile;
mod serve_cmd;
mod trend;

use ants_bench::experiments;
use ants_bench::runner::{self, emit_for, parse_flags, write_telemetry, Runner};
use ants_bench::WorkloadExperiment;
use ants_sim::json::Json;
use ants_sim::report::Table;
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: ants <list|run <id>|all|demo [D]|validate [dir]|\
         workload run|validate|list|crosscheck <file>...|profile <file>|\
         trend <dir-a> <dir-b>|\
         trend --record <dir> [--commit H] [--reports DIR]|trend history <dir>|\
         serve --cache <dir> [--listen H:P] [--commit H]|\
         query submit|gate <file>|stats|shutdown [--addr H:P | --cache <dir>]> \
         [--smoke | --effort smoke|standard] [--seed N] [--threads K] \
         [--granularity auto|trial|agent] [--chunk N] [--metrics a,b,...] \
         [--backend mc|dp] [--dp-mode dense|sparse|auto] [--csv] [--json] \
         [--telemetry PATH]\n\
         reproduction harness for Lenzen-Lynch-Newport-Radeva, PODC 2014"
    );
    std::process::exit(2);
}

fn list(args: &[String]) {
    // Accept the shared flag surface so `ants list --effort smoke` works
    // and typos are rejected; only the effort matters for the preview.
    let flags = parse_flags(args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage()
    });
    let effort = flags.cfg.effort;
    let mut t = Table::new(vec!["id", "cells", "trials/cell", "claim"]);
    for exp in experiments::all() {
        let cfg = exp.config(effort);
        t.row(vec![
            exp.meta().key.into(),
            cfg.cells.to_string(),
            cfg.trials_per_cell.to_string(),
            exp.meta().claim.into(),
        ]);
    }
    println!("effort: {}\n\n{t}", effort.as_str());
    list_bundled_specs(effort);
}

/// Default location of the bundled workload specs, relative to the
/// working directory (present when running from a repo checkout).
const BUNDLED_SPEC_DIR: &str = "examples/workloads";

/// Append the bundled workload specs to `ants list` when running from a
/// checkout: workload-backed experiments are part of the battery surface
/// even though they live in data files.
fn list_bundled_specs(effort: ants_bench::Effort) {
    let dir = Path::new(BUNDLED_SPEC_DIR);
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    if paths.is_empty() {
        return;
    }
    paths.sort();
    let mut t = Table::new(vec!["key", "cells", "trials total", "spec"]);
    for path in paths {
        match WorkloadExperiment::from_file(&path) {
            Ok(exp) => {
                let smoke = effort == ants_bench::Effort::Smoke;
                t.row(vec![
                    exp.plan().key.clone(),
                    exp.plan().cells.len().to_string(),
                    exp.plan().total_trials(smoke).to_string(),
                    path.display().to_string(),
                ]);
            }
            Err(e) => {
                t.row(vec![
                    "INVALID".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    format!("{}: {e}", path.display()),
                ]);
            }
        }
    }
    println!(
        "bundled workload specs ({BUNDLED_SPEC_DIR}; run with `ants workload run <file>`):\n\n{t}"
    );
}

/// `ants workload run|validate|list|crosscheck <file>...` — the
/// declarative workload surface. `run` and `crosscheck` accept the
/// shared flag set after the file.
fn workload(args: &[String]) {
    let Some(verb) = args.first().map(String::as_str) else { usage() };
    match verb {
        "run" => {
            // The spec file comes first; everything after it is the
            // shared flag surface (`--threads 4` etc.).
            let Some(file) = args.get(1).filter(|a| !a.starts_with("--")) else {
                eprintln!("error: `ants workload run <file> [flags]` needs a spec file first");
                usage()
            };
            let exp = WorkloadExperiment::from_file(Path::new(file)).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            let flags = parse_flags(&args[2..]).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                usage()
            });
            // Surface backend problems (a forced `--backend dp` on a
            // non-Markovian cell) as a named spec error before any
            // trials run, not as a panic mid-sweep.
            if let Err(e) = exp.validate_backends(&flags.cfg) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
            emit_for(&Runner::new(flags.cfg).run(&exp), &flags);
            write_telemetry(&flags);
        }
        "crosscheck" => {
            let Some(file) = args.get(1).filter(|a| !a.starts_with("--")) else {
                eprintln!(
                    "error: `ants workload crosscheck <file> [flags]` needs a spec file first"
                );
                usage()
            };
            let exp = WorkloadExperiment::from_file(Path::new(file)).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            let flags = parse_flags(&args[2..]).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                usage()
            });
            let report = ants_bench::crosscheck(&exp, &flags.cfg).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            print!("{report}");
            if report.cells.is_empty() {
                eprintln!(
                    "error: no crosscheckable cells in {file} — every cell was skipped, \
                     so the Wilson comparison is vacuous"
                );
                std::process::exit(1);
            }
            if !report.all_pass() {
                std::process::exit(1);
            }
        }
        "validate" => {
            let files = &args[1..];
            if files.is_empty() || files.iter().any(|a| a.starts_with("--")) {
                eprintln!("error: `ants workload validate` takes spec files only (no flags)");
                usage()
            }
            let mut failures = 0usize;
            for file in files {
                match WorkloadExperiment::from_file(Path::new(file)) {
                    Ok(exp) => println!(
                        "ok   {}: key {}, {} cell(s), {} trial(s) standard / {} smoke",
                        file,
                        exp.plan().key,
                        exp.plan().cells.len(),
                        exp.plan().total_trials(false),
                        exp.plan().total_trials(true),
                    ),
                    Err(e) => {
                        eprintln!("FAIL {e}");
                        failures += 1;
                    }
                }
            }
            println!("validated {} spec(s), {failures} failure(s)", files.len());
            if failures > 0 {
                std::process::exit(1);
            }
        }
        "list" => {
            let (Some(file), None) = (args.get(1), args.get(2)) else {
                eprintln!("error: `ants workload list` takes exactly one spec file");
                usage()
            };
            let exp = WorkloadExperiment::from_file(Path::new(file)).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            let plan = exp.plan();
            println!("workload '{}' (key {}): {} cell(s)", plan.name, plan.key, plan.cells.len());
            if !plan.description.is_empty() {
                println!("claim: {}", plan.description);
            }
            if !plan.metrics.is_empty() {
                let names: Vec<&str> = plan.metrics.iter().map(ants_sim::Metric::as_str).collect();
                println!("metrics: {}", names.join(", "));
            }
            println!();
            let mut t = Table::new(vec![
                "cell",
                "n",
                "target",
                "budget",
                "trials",
                "smoke",
                "seed tag",
                "population",
            ]);
            for c in &plan.cells {
                t.row(vec![
                    c.label.clone(),
                    c.agents.to_string(),
                    c.target_label(),
                    c.move_budget.to_string(),
                    c.trials.to_string(),
                    c.smoke_trials.to_string(),
                    format!("{:#x}", c.seed_tag),
                    c.population_label(),
                ]);
            }
            print!("{t}");
        }
        _ => usage(),
    }
}

/// The built-in experiment harnesses are Monte Carlo by construction;
/// a forced `--backend dp` would be silently meaningless, so reject it
/// with a pointer at the surface that does honour it.
fn reject_dp_on_builtins(cfg: &ants_bench::RunConfig) {
    if cfg.backend == Some(ants_dp::Backend::Dp) {
        eprintln!(
            "error: the built-in experiments are Monte Carlo harnesses; \
             --backend dp only applies to workload cells (`ants workload run <file> --backend dp`)"
        );
        std::process::exit(2);
    }
}

fn run_one(args: &[String]) {
    let Some(id) = args.first().filter(|a| !a.starts_with("--")) else { usage() };
    let Some(exp) = experiments::find(id) else {
        eprintln!("unknown experiment {id}; try `ants list`");
        std::process::exit(2);
    };
    let flags = parse_flags(&args[1..]).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage()
    });
    reject_dp_on_builtins(&flags.cfg);
    emit_for(&Runner::new(flags.cfg).run(exp.as_ref()), &flags);
    write_telemetry(&flags);
}

fn run_all(args: &[String]) {
    let flags = parse_flags(args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage()
    });
    reject_dp_on_builtins(&flags.cfg);
    let runner = Runner::new(flags.cfg);
    for exp in experiments::all() {
        emit_for(&runner.run(exp.as_ref()), &flags);
        println!();
    }
    // One snapshot covering the whole battery: the handle is shared by
    // every sweep the config induced.
    write_telemetry(&flags);
}

/// Validate every `*.json` report in `dir`: parseable, the right schema,
/// and at least one data row. Exit code 1 on any failure — including a
/// missing or empty report directory, so a battery run that silently
/// wrote nothing can never validate vacuously.
fn validate(dir: &Path) {
    if !dir.is_dir() {
        eprintln!(
            "error: report directory {} does not exist (run `ants all --json` first)",
            dir.display()
        );
        std::process::exit(1);
    }
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    let mut checked = 0usize;
    let mut failures = 0usize;
    let mut paths: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for path in paths {
        checked += 1;
        let name = path.display();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {name}: unreadable: {e}");
                failures += 1;
                continue;
            }
        };
        match Json::parse(&text) {
            Ok(doc) => {
                let schema = doc.get("schema").and_then(|v| v.as_str());
                let rows = doc.get("rows").and_then(|v| v.as_array()).map_or(0, <[Json]>::len);
                let id = doc.get("id").and_then(|v| v.as_str()).unwrap_or("");
                if schema != Some("ants-report/v1") {
                    eprintln!("FAIL {name}: unexpected schema {schema:?}");
                    failures += 1;
                } else if rows == 0 {
                    eprintln!("FAIL {name}: no data rows");
                    failures += 1;
                } else {
                    println!("ok   {name}: id {id}, {rows} rows");
                }
            }
            Err(e) => {
                eprintln!("FAIL {name}: {e}");
                failures += 1;
            }
        }
    }
    if checked == 0 {
        eprintln!("error: no .json reports in {}", dir.display());
        std::process::exit(1);
    }
    println!("validated {checked} report(s), {failures} failure(s)");
    if failures > 0 {
        std::process::exit(1);
    }
}

fn demo(d: u64) {
    use ants_automaton::library;
    use ants_core::baselines::AutomatonStrategy;
    use ants_core::NonUniformSearch;
    use ants_grid::{render, Rect};
    use ants_sim::coverage;
    use ants_sim::StrategyFactory;

    // Validate both strategies up front: a user-facing subcommand must
    // report a bad parameter, never panic. The validated instances are
    // cloned into the per-agent factories below.
    let drift = library::drift_walk(3).unwrap_or_else(|e| {
        eprintln!("error: cannot build the drift-walk automaton: {e}");
        std::process::exit(1);
    });
    let nonuniform = NonUniformSearch::new(d).unwrap_or_else(|e| {
        eprintln!("error: cannot build Algorithm 1 for D = {d}: {e} (try `ants demo 24`)");
        std::process::exit(1);
    });

    println!("Joint coverage of the radius-{d} ball after D^2 steps per agent (4 agents):\n");
    let chi = drift.chi();
    let low: StrategyFactory = Box::new(move |_| Box::new(AutomatonStrategy::new(drift.clone())));
    let report = coverage::measure(&low, 4, d * d, Rect::ball(d), 7);
    println!("low-chi drift walk (chi = {chi:.1}):");
    println!("{}", render::ascii(&report.grid, report.adversarial_target()));
    println!("{}\n", render::coverage_summary(&report.grid));

    let high: StrategyFactory = Box::new(move |_| Box::new(nonuniform.clone()));
    let report = coverage::measure(&high, 4, 8 * d * d, Rect::ball(d), 7);
    println!("Algorithm 1 (chi = log log D + O(1)):");
    println!("{}", render::ascii(&report.grid, report.adversarial_target()));
    println!("{}", render::coverage_summary(&report.grid));
    println!("\n('X' marks the farthest cell no agent ever visited — Theorem 4.1's adversarial placement.)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(&args[1..]),
        Some("run") => run_one(&args[1..]),
        Some("all") => run_all(&args[1..]),
        Some("demo") => {
            let d = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(24);
            demo(d);
        }
        Some("validate") => {
            let dir = args.get(1).map_or_else(|| runner::REPORT_DIR.to_string(), Clone::clone);
            validate(Path::new(&dir));
        }
        Some("workload") => workload(&args[1..]),
        Some("profile") => profile::profile(&args[1..]),
        Some("serve") => serve_cmd::serve(&args[1..]),
        Some("query") => serve_cmd::query(&args[1..]),
        Some("trend") => trend_cmd(&args[1..]),
        _ => usage(),
    }
}

/// `ants trend <dir-a> <dir-b>` (diff),
/// `ants trend --record <dir> [--commit H] [--reports DIR]` (snapshot),
/// or `ants trend history <dir>` (per-cell timelines across snapshots).
fn trend_cmd(args: &[String]) {
    if args.first().map(String::as_str) == Some("history") {
        let (Some(dir), None) = (args.get(1).filter(|a| !a.starts_with("--")), args.get(2)) else {
            eprintln!("error: `ants trend history <dir>` takes exactly one snapshot directory");
            usage()
        };
        match trend::history(Path::new(dir)) {
            Ok(0) => {}
            Ok(_) => std::process::exit(1),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if args.first().map(String::as_str) == Some("--record") {
        let Some(dest) = args.get(1).filter(|a| !a.starts_with("--")) else {
            eprintln!("error: `ants trend --record <dir>` needs a destination directory");
            usage()
        };
        let mut commit: Option<&str> = None;
        let mut reports = runner::REPORT_DIR.to_string();
        let mut it = args[2..].iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--commit" => match it.next() {
                    Some(c) => commit = Some(c),
                    None => {
                        eprintln!("error: --commit needs a value");
                        usage()
                    }
                },
                "--reports" => match it.next() {
                    Some(r) => reports = r.clone(),
                    None => {
                        eprintln!("error: --reports needs a value");
                        usage()
                    }
                },
                other => {
                    eprintln!("error: unknown `trend --record` argument '{other}'");
                    usage()
                }
            }
        }
        if let Err(e) = trend::record(Path::new(dest), Path::new(&reports), commit) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    } else {
        let (Some(a), Some(b), None) = (args.first(), args.get(1), args.get(2)) else { usage() };
        let outcome = trend::trend(Path::new(a), Path::new(b));
        if outcome.failures > 0 {
            std::process::exit(1);
        }
    }
}
