//! `ants` — the experiment runner.
//!
//! ```text
//! ants list                 # list experiments with their claims
//! ants run <id> [--smoke]   # run one experiment (e.g. `ants run e7`)
//! ants all [--smoke]        # run the whole battery
//! ants demo [D]             # quick visual: coverage of low- vs high-chi agents
//! ```

use ants_bench::experiments::{self, Effort};
use ants_sim::report::Table;

type Runner = fn(Effort) -> Table;

/// The experiment registry: id, claim, runner.
fn registry() -> Vec<(&'static str, &'static str, Runner)> {
    use experiments::*;
    vec![
        ("e1", e1_nonuniform::META.claim, e1_nonuniform::run as Runner),
        ("e2", e2_iteration::META.claim, e2_iteration::run),
        ("e3", e3_coin::META.claim, e3_coin::run),
        ("e4", e4_walk::META.claim, e4_walk::run),
        ("e5", e5_square::META.claim, e5_square::run),
        ("e6", e6_chi::META.claim, e6_chi::run),
        ("e7", e7_uniform::META.claim, e7_uniform::run),
        ("e8", e8_lowerbound::META.claim, e8_lowerbound::run),
        ("e9", e9_tradeoff::META.claim, e9_tradeoff::run),
        ("e10", e10_randomwalk::META.claim, e10_randomwalk::run),
        ("e11", e11_b_vs_ell::META.claim, e11_b_vs_ell::run),
        ("e12", e12_comparator::META.claim, e12_comparator::run),
        ("e13", e13_drift::META.claim, e13_drift::run),
        ("e14", e14_iteration_len::META.claim, e14_iteration_len::run),
        ("e15", e15_mixing::META.claim, e15_mixing::run),
    ]
}

fn effort_from_args(args: &[String]) -> Effort {
    if args.iter().any(|a| a == "--smoke") {
        Effort::Smoke
    } else {
        Effort::Standard
    }
}

fn demo(d: u64) {
    use ants_automaton::library;
    use ants_core::baselines::AutomatonStrategy;
    use ants_core::NonUniformSearch;
    use ants_grid::{render, Rect};
    use ants_sim::coverage;
    use ants_sim::StrategyFactory;

    println!("Joint coverage of the radius-{d} ball after D^2 steps per agent (4 agents):\n");
    let low: StrategyFactory =
        Box::new(|_| Box::new(AutomatonStrategy::new(library::drift_walk(3).expect("valid"))));
    let report = coverage::measure(&low, 4, d * d, Rect::ball(d), 7);
    println!("low-chi drift walk (chi = {:.1}):", library::drift_walk(3).unwrap().chi());
    println!("{}", render::ascii(&report.grid, report.adversarial_target()));
    println!("{}\n", render::coverage_summary(&report.grid));

    let high: StrategyFactory =
        Box::new(move |_| Box::new(NonUniformSearch::new(d).expect("valid")));
    let report = coverage::measure(&high, 4, 8 * d * d, Rect::ball(d), 7);
    println!("Algorithm 1 (chi = log log D + O(1)):");
    println!("{}", render::ascii(&report.grid, report.adversarial_target()));
    println!("{}", render::coverage_summary(&report.grid));
    println!("\n('X' marks the farthest cell no agent ever visited — Theorem 4.1's adversarial placement.)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            let mut t = Table::new(vec!["id", "claim"]);
            for (id, claim, _) in registry() {
                t.row(vec![id.into(), claim.into()]);
            }
            println!("{t}");
        }
        Some("run") => {
            let Some(id) = args.get(1) else {
                eprintln!("usage: ants run <id> [--smoke] [--csv]");
                std::process::exit(2);
            };
            let Some((_, claim, runner)) = registry().into_iter().find(|(rid, _, _)| rid == id)
            else {
                eprintln!("unknown experiment {id}; try `ants list`");
                std::process::exit(2);
            };
            println!("== {id} ==\nclaim: {claim}\n");
            let table = runner(effort_from_args(&args));
            println!("{table}");
            if args.iter().any(|a| a == "--csv") {
                print!("{}", table.to_csv());
            }
        }
        Some("all") => {
            experiments::run_all(effort_from_args(&args));
        }
        Some("demo") => {
            let d = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(24);
            demo(d);
        }
        _ => {
            eprintln!(
                "usage: ants <list|run <id>|all|demo [D]> [--smoke] [--csv]\n\
                 reproduction harness for Lenzen-Lynch-Newport-Radeva, PODC 2014"
            );
            std::process::exit(2);
        }
    }
}
