//! `ants serve` (daemon) and `ants query` (client) — the CLI front end
//! of the content-addressed workload service in `ants-serve`.
//!
//! Output routing in `query` is deliberate: protocol chatter (`status`,
//! `error`, human gate summaries) goes to stderr, while the response
//! *body* — cell and report event lines, stats, the raw gate event —
//! goes to stdout. A cache-hit contract check is therefore one shell
//! line: submit twice, compare stdouts byte for byte.

use ants_serve::protocol::{Op, Request};
use ants_serve::{discover_addr, request_streamed, ServeOptions, Server};
use ants_sim::json::Json;
use ants_sim::Granularity;
use std::path::{Path, PathBuf};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// `ants serve --cache DIR [--listen ADDR] [--commit H] [--threads K]
/// [--granularity auto|trial|agent] [--chunk N]`
///
/// Runs until a `shutdown` request arrives. The commit id falls back to
/// `$ANTS_COMMIT`, then `"local"` — same resolution order as `trend
/// --record`.
pub fn serve(args: &[String]) {
    let mut cache: Option<PathBuf> = None;
    let mut listen = "127.0.0.1:0".to_string();
    let mut commit: Option<String> = None;
    let mut opts_threads: Option<usize> = None;
    let mut granularity = Granularity::Auto;
    let mut chunk: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => fail(&format!("{name} needs a value")),
            }
        };
        match arg.as_str() {
            "--cache" => cache = Some(PathBuf::from(value("--cache"))),
            "--listen" => listen = value("--listen"),
            "--commit" => commit = Some(value("--commit")),
            "--threads" => {
                let v = value("--threads");
                match v.parse() {
                    Ok(t) if t > 0 => opts_threads = Some(t),
                    _ => fail(&format!("invalid thread count '{v}'")),
                }
            }
            "--granularity" => {
                let v = value("--granularity");
                granularity = Granularity::parse(&v)
                    .unwrap_or_else(|| fail(&format!("unknown granularity '{v}'")));
            }
            "--chunk" => {
                let v = value("--chunk");
                match v.parse() {
                    Ok(c) if c > 0 => chunk = Some(c),
                    _ => fail(&format!("invalid chunk size '{v}'")),
                }
            }
            other => fail(&format!("unknown `ants serve` argument '{other}'")),
        }
    }
    let Some(cache) = cache else {
        fail("`ants serve` needs --cache <dir> (the content-addressed result store)")
    };
    let commit = commit
        .or_else(|| std::env::var("ANTS_COMMIT").ok().filter(|c| !c.is_empty()))
        .unwrap_or_else(|| "local".to_string());
    let opts = ServeOptions { cache, commit, threads: opts_threads, granularity, chunk };
    let cache_display = opts.cache.display().to_string();
    let commit_display = opts.commit.clone();
    let server = Server::bind(opts, &listen).unwrap_or_else(|e| fail(&e));
    println!(
        "listening on {} (cache {cache_display}, commit {commit_display})",
        server.local_addr()
    );
    if let Err(e) = server.run() {
        fail(&e);
    }
}

/// `ants query <submit|gate|stats|shutdown> [spec.toml] [--addr A |
/// --cache DIR] [--smoke | --effort E] [--seed N] [--metrics a,b]
/// [--backend mc|dp] [--dp-mode dense|sparse|auto]`
pub fn query(args: &[String]) {
    let Some(op) = args.first().and_then(|v| Op::parse(v)) else {
        fail("`ants query` needs an op first: submit, gate, stats, or shutdown")
    };
    let mut rest = &args[1..];
    let mut req = Request::bare(op);
    if matches!(op, Op::Submit | Op::Gate) {
        let Some(file) = rest.first().filter(|a| !a.starts_with("--")) else {
            fail(&format!("`ants query {}` needs a spec file first", op.as_str()))
        };
        req.spec = std::fs::read_to_string(Path::new(file))
            .unwrap_or_else(|e| fail(&format!("cannot read {file}: {e}")));
        rest = &rest[1..];
    }
    let mut addr: Option<String> = None;
    let mut cache: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => fail(&format!("{name} needs a value")),
            }
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--cache" => cache = Some(PathBuf::from(value("--cache"))),
            "--smoke" => req.effort = ants_bench::Effort::Smoke,
            "--effort" => {
                let v = value("--effort");
                req.effort = ants_bench::Effort::parse(&v)
                    .unwrap_or_else(|| fail(&format!("unknown effort '{v}'")));
            }
            "--seed" => {
                let v = value("--seed");
                req.seed = v.parse().unwrap_or_else(|_| fail(&format!("invalid seed '{v}'")));
            }
            "--metrics" => {
                let v = value("--metrics");
                req.metrics = req
                    .metrics
                    .union(ants_sim::MetricSet::parse_list(&v).unwrap_or_else(|e| fail(&e)));
            }
            "--backend" => {
                let v = value("--backend");
                req.backend = Some(
                    ants_dp::Backend::parse(&v)
                        .unwrap_or_else(|| fail(&format!("unknown backend '{v}' (mc|dp)"))),
                );
            }
            "--dp-mode" => {
                let v = value("--dp-mode");
                req.dp_mode = Some(ants_dp::DpMode::parse(&v).unwrap_or_else(|| {
                    fail(&format!("unknown dp mode '{v}' (dense|sparse|auto)"))
                }));
            }
            other => fail(&format!("unknown `ants query` argument '{other}'")),
        }
    }
    let addr = match (addr, cache) {
        (Some(a), None) => a,
        (None, Some(c)) => discover_addr(&c).unwrap_or_else(|e| fail(&e)),
        (Some(_), Some(_)) => fail("--addr and --cache are mutually exclusive"),
        (None, None) => fail("`ants query` needs --addr <host:port> or --cache <dir>"),
    };
    let mut exit = 0;
    let outcome = request_streamed(&addr, &req, |line| {
        route_line(line, &mut exit);
    });
    if let Err(e) = outcome {
        fail(&format!("cannot reach daemon at {addr}: {e}"));
    }
    std::process::exit(exit);
}

/// Route one response line: body to stdout, chatter to stderr, exit
/// code from `error` and failed `gate` events.
fn route_line(line: &str, exit: &mut i32) {
    let event = Json::parse(line).ok().and_then(|doc| {
        doc.get("event").and_then(Json::as_str).map(str::to_owned).map(|e| (e, doc))
    });
    match event {
        Some((ref ev, ref doc)) if ev == "status" => {
            let cached = doc.get("cached") == Some(&Json::Bool(true));
            let key = doc.get("key").and_then(Json::as_str).unwrap_or("?");
            eprintln!("{} {key}", if cached { "cache hit " } else { "cache miss" });
        }
        Some((ref ev, ref doc)) if ev == "error" => {
            let msg = doc.get("message").and_then(Json::as_str).unwrap_or(line);
            eprintln!("error: {msg}");
            *exit = 1;
        }
        Some((ref ev, ref doc)) if ev == "stats" => {
            // The machine-readable line is the body; the human table
            // rides stderr like all other chatter, so scripted
            // consumers keep a single-line JSON contract.
            println!("{line}");
            stats_table(doc);
        }
        Some((ref ev, ref doc)) if ev == "gate" => {
            // The raw event is the machine-readable record; the human
            // summary rides stderr.
            println!("{line}");
            let pass = doc.get("pass") == Some(&Json::Bool(true));
            let violations =
                doc.get("violations").and_then(Json::as_array).map_or(0, <[Json]>::len);
            if let Some(note) = doc.get("note").and_then(Json::as_str) {
                eprintln!("gate: {note}");
            }
            if pass {
                eprintln!("gate: pass ({violations} violation(s))");
            } else {
                eprintln!("gate: FAIL ({violations} violation(s))");
                *exit = 1;
            }
        }
        _ => println!("{line}"),
    }
}

/// Render the `stats` event's `telemetry` block as a human-readable
/// table on stderr. Absent or partial blocks degrade gracefully (an
/// older daemon simply prints fewer rows).
fn stats_table(doc: &Json) {
    use ants_sim::report::Table;
    let num = |node: Option<&Json>, key: &str| -> Option<f64> {
        node.and_then(|n| n.get(key)).and_then(Json::as_number)
    };
    let int = |node: Option<&Json>, key: &str| -> String {
        num(node, key).map_or_else(|| "-".to_string(), |v| format!("{v:.0}"))
    };
    let tele = doc.get("telemetry");
    let serve = tele.and_then(|t| t.get("serve"));
    let pool = tele.and_then(|t| t.get("pool"));
    let engine = tele.and_then(|t| t.get("engine"));

    let mut t = Table::new(vec!["stat", "value"]);
    for key in ["requests", "hits", "misses", "pool_work", "entries"] {
        t.row(vec![key.to_string(), int(Some(doc), key)]);
    }
    if let Some(uptime) = num(serve, "uptime_ns") {
        t.row(vec!["uptime_s".to_string(), format!("{:.1}", uptime / 1e9)]);
    }
    t.row(vec!["cache_bytes".to_string(), int(serve, "cache_bytes")]);
    for (label, node, key) in [
        ("pool units", pool, "units"),
        ("pool steals", pool, "steals"),
        ("pool reduces", pool, "reduces"),
        ("engine steps", engine, "steps"),
        ("hint steps saved", engine, "hint_steps_saved"),
    ] {
        t.row(vec![label.to_string(), int(node, key)]);
    }
    for kind in ["hit", "miss"] {
        if let Some((count, median)) = latency_summary(serve, kind) {
            t.row(vec![format!("{kind} latency (median)"), format!("~{median} ({count} obs)")]);
        }
    }
    eprint!("\n{t}");
}

/// Count and approximate median of a log2-ns latency histogram: the
/// bucket holding the middle observation, rendered as a human duration.
fn latency_summary(serve: Option<&Json>, kind: &str) -> Option<(u64, String)> {
    let hist = serve?.get(&format!("{kind}_latency_ns"))?.as_array()?;
    let counts: Vec<u64> =
        hist.iter().map(|v| v.as_number().unwrap_or(0.0).max(0.0) as u64).collect();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let mut seen = 0u64;
    let bucket = counts.iter().position(|&c| {
        seen += c;
        seen * 2 > total
    })?;
    let ns = (1u64 << bucket.min(63)) as f64;
    let human = if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.0}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.0}ms", ns / 1e6)
    } else {
        format!("{:.1}s", ns / 1e9)
    };
    Some((total, human))
}
