//! `ants serve` (daemon) and `ants query` (client) — the CLI front end
//! of the content-addressed workload service in `ants-serve`.
//!
//! Output routing in `query` is deliberate: protocol chatter (`status`,
//! `error`, human gate summaries) goes to stderr, while the response
//! *body* — cell and report event lines, stats, the raw gate event —
//! goes to stdout. A cache-hit contract check is therefore one shell
//! line: submit twice, compare stdouts byte for byte.

use ants_serve::protocol::{Op, Request};
use ants_serve::{discover_addr, request_streamed, ServeOptions, Server};
use ants_sim::json::Json;
use ants_sim::Granularity;
use std::path::{Path, PathBuf};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// `ants serve --cache DIR [--listen ADDR] [--commit H] [--threads K]
/// [--granularity auto|trial|agent] [--chunk N]`
///
/// Runs until a `shutdown` request arrives. The commit id falls back to
/// `$ANTS_COMMIT`, then `"local"` — same resolution order as `trend
/// --record`.
pub fn serve(args: &[String]) {
    let mut cache: Option<PathBuf> = None;
    let mut listen = "127.0.0.1:0".to_string();
    let mut commit: Option<String> = None;
    let mut opts_threads: Option<usize> = None;
    let mut granularity = Granularity::Auto;
    let mut chunk: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => fail(&format!("{name} needs a value")),
            }
        };
        match arg.as_str() {
            "--cache" => cache = Some(PathBuf::from(value("--cache"))),
            "--listen" => listen = value("--listen"),
            "--commit" => commit = Some(value("--commit")),
            "--threads" => {
                let v = value("--threads");
                match v.parse() {
                    Ok(t) if t > 0 => opts_threads = Some(t),
                    _ => fail(&format!("invalid thread count '{v}'")),
                }
            }
            "--granularity" => {
                let v = value("--granularity");
                granularity = Granularity::parse(&v)
                    .unwrap_or_else(|| fail(&format!("unknown granularity '{v}'")));
            }
            "--chunk" => {
                let v = value("--chunk");
                match v.parse() {
                    Ok(c) if c > 0 => chunk = Some(c),
                    _ => fail(&format!("invalid chunk size '{v}'")),
                }
            }
            other => fail(&format!("unknown `ants serve` argument '{other}'")),
        }
    }
    let Some(cache) = cache else {
        fail("`ants serve` needs --cache <dir> (the content-addressed result store)")
    };
    let commit = commit
        .or_else(|| std::env::var("ANTS_COMMIT").ok().filter(|c| !c.is_empty()))
        .unwrap_or_else(|| "local".to_string());
    let opts = ServeOptions { cache, commit, threads: opts_threads, granularity, chunk };
    let cache_display = opts.cache.display().to_string();
    let commit_display = opts.commit.clone();
    let server = Server::bind(opts, &listen).unwrap_or_else(|e| fail(&e));
    println!(
        "listening on {} (cache {cache_display}, commit {commit_display})",
        server.local_addr()
    );
    if let Err(e) = server.run() {
        fail(&e);
    }
}

/// `ants query <submit|gate|stats|shutdown> [spec.toml] [--addr A |
/// --cache DIR] [--smoke | --effort E] [--seed N] [--metrics a,b]
/// [--backend mc|dp]`
pub fn query(args: &[String]) {
    let Some(op) = args.first().and_then(|v| Op::parse(v)) else {
        fail("`ants query` needs an op first: submit, gate, stats, or shutdown")
    };
    let mut rest = &args[1..];
    let mut req = Request::bare(op);
    if matches!(op, Op::Submit | Op::Gate) {
        let Some(file) = rest.first().filter(|a| !a.starts_with("--")) else {
            fail(&format!("`ants query {}` needs a spec file first", op.as_str()))
        };
        req.spec = std::fs::read_to_string(Path::new(file))
            .unwrap_or_else(|e| fail(&format!("cannot read {file}: {e}")));
        rest = &rest[1..];
    }
    let mut addr: Option<String> = None;
    let mut cache: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => fail(&format!("{name} needs a value")),
            }
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--cache" => cache = Some(PathBuf::from(value("--cache"))),
            "--smoke" => req.effort = ants_bench::Effort::Smoke,
            "--effort" => {
                let v = value("--effort");
                req.effort = ants_bench::Effort::parse(&v)
                    .unwrap_or_else(|| fail(&format!("unknown effort '{v}'")));
            }
            "--seed" => {
                let v = value("--seed");
                req.seed = v.parse().unwrap_or_else(|_| fail(&format!("invalid seed '{v}'")));
            }
            "--metrics" => {
                let v = value("--metrics");
                req.metrics = req
                    .metrics
                    .union(ants_sim::MetricSet::parse_list(&v).unwrap_or_else(|e| fail(&e)));
            }
            "--backend" => {
                let v = value("--backend");
                req.backend = Some(
                    ants_dp::Backend::parse(&v)
                        .unwrap_or_else(|| fail(&format!("unknown backend '{v}' (mc|dp)"))),
                );
            }
            other => fail(&format!("unknown `ants query` argument '{other}'")),
        }
    }
    let addr = match (addr, cache) {
        (Some(a), None) => a,
        (None, Some(c)) => discover_addr(&c).unwrap_or_else(|e| fail(&e)),
        (Some(_), Some(_)) => fail("--addr and --cache are mutually exclusive"),
        (None, None) => fail("`ants query` needs --addr <host:port> or --cache <dir>"),
    };
    let mut exit = 0;
    let outcome = request_streamed(&addr, &req, |line| {
        route_line(line, &mut exit);
    });
    if let Err(e) = outcome {
        fail(&format!("cannot reach daemon at {addr}: {e}"));
    }
    std::process::exit(exit);
}

/// Route one response line: body to stdout, chatter to stderr, exit
/// code from `error` and failed `gate` events.
fn route_line(line: &str, exit: &mut i32) {
    let event = Json::parse(line).ok().and_then(|doc| {
        doc.get("event").and_then(Json::as_str).map(str::to_owned).map(|e| (e, doc))
    });
    match event {
        Some((ref ev, ref doc)) if ev == "status" => {
            let cached = doc.get("cached") == Some(&Json::Bool(true));
            let key = doc.get("key").and_then(Json::as_str).unwrap_or("?");
            eprintln!("{} {key}", if cached { "cache hit " } else { "cache miss" });
        }
        Some((ref ev, ref doc)) if ev == "error" => {
            let msg = doc.get("message").and_then(Json::as_str).unwrap_or(line);
            eprintln!("error: {msg}");
            *exit = 1;
        }
        Some((ref ev, ref doc)) if ev == "gate" => {
            // The raw event is the machine-readable record; the human
            // summary rides stderr.
            println!("{line}");
            let pass = doc.get("pass") == Some(&Json::Bool(true));
            let violations =
                doc.get("violations").and_then(Json::as_array).map_or(0, <[Json]>::len);
            if let Some(note) = doc.get("note").and_then(Json::as_str) {
                eprintln!("gate: {note}");
            }
            if pass {
                eprintln!("gate: pass ({violations} violation(s))");
            } else {
                eprintln!("gate: FAIL ({violations} violation(s))");
                *exit = 1;
            }
        }
        _ => println!("{line}"),
    }
}
