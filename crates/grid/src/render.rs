//! ASCII rendering of occupancy grids.
//!
//! Used by the examples (`lower_bound_demo`) to make the drift-line
//! concentration of low-χ agents visible at a glance, and handy when
//! debugging strategies interactively.

use crate::dense::DenseGrid;
use crate::point::Point;

/// Density glyphs from empty to saturated.
const RAMP: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Render a [`DenseGrid`] as ASCII art, one character per cell, rows from
/// the top (largest `y`) down, with `O` marking the origin and `X` marking
/// an optional target.
///
/// Cell glyphs scale logarithmically with visit count so that heavily
/// revisited drift lines do not wash out the rest of the picture.
///
/// ```
/// use ants_grid::{render, DenseGrid, Point, Rect};
/// let mut g = DenseGrid::new(Rect::ball(1));
/// g.visit(&Point::new(1, 1));
/// let art = render::ascii(&g, None);
/// assert_eq!(art.lines().count(), 3);
/// ```
pub fn ascii(grid: &DenseGrid, target: Option<Point>) -> String {
    let bounds = grid.bounds();
    let (x_min, x_max) = bounds.x_range();
    let (y_min, y_max) = bounds.y_range();
    let max_count = grid.max_count().max(1);
    let log_max = (max_count as f64).ln_1p();
    let mut out = String::with_capacity((bounds.area() + bounds.height()) as usize);
    for y in (y_min..=y_max).rev() {
        for x in x_min..=x_max {
            let p = Point::new(x, y);
            let ch = if Some(p) == target {
                'X'
            } else if p == Point::ORIGIN {
                'O'
            } else {
                let c = grid.visits(&p);
                if c == 0 {
                    RAMP[0]
                } else {
                    let t = (c as f64).ln_1p() / log_max;
                    let idx = 1 + (t * (RAMP.len() - 2) as f64).round() as usize;
                    RAMP[idx.min(RAMP.len() - 1)]
                }
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

/// A one-line coverage summary suitable for experiment logs.
pub fn coverage_summary(grid: &DenseGrid) -> String {
    format!(
        "coverage {:.4}% ({} / {} cells, {} visits, {} out of bounds)",
        grid.coverage() * 100.0,
        grid.distinct(),
        grid.bounds().area(),
        grid.total_visits(),
        grid.outside(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Rect;

    #[test]
    fn dimensions_match_bounds() {
        let g = DenseGrid::new(Rect::new(-2, 2, -1, 1));
        let art = ascii(&g, None);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.chars().count() == 5));
    }

    #[test]
    fn origin_and_target_marked() {
        let mut g = DenseGrid::new(Rect::ball(1));
        g.visit(&Point::ORIGIN);
        let art = ascii(&g, Some(Point::new(1, 1)));
        assert!(art.contains('O'));
        assert!(art.contains('X'));
        // Target is in the top row (y = 1), rightmost column.
        let first_line = art.lines().next().unwrap();
        assert_eq!(first_line.chars().last().unwrap(), 'X');
    }

    #[test]
    fn heavier_cells_get_denser_glyphs() {
        let mut g = DenseGrid::new(Rect::ball(1));
        for _ in 0..100 {
            g.visit(&Point::new(1, 0));
        }
        g.visit(&Point::new(-1, 0));
        let art = ascii(&g, None);
        let middle = art.lines().nth(1).unwrap();
        let chars: Vec<char> = middle.chars().collect();
        // Row y = 0: [(-1,0), origin, (1,0)].
        let light = RAMP.iter().position(|&c| c == chars[0]).unwrap();
        let heavy = RAMP.iter().position(|&c| c == chars[2]).unwrap();
        assert!(heavy > light, "expected {} denser than {}", chars[2], chars[0]);
    }

    #[test]
    fn unvisited_cells_blank() {
        let g = DenseGrid::new(Rect::ball(1));
        let art = ascii(&g, None);
        // Only the origin marker is non-blank.
        let non_blank: Vec<char> = art.chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(non_blank, vec!['O']);
    }

    #[test]
    fn summary_mentions_counts() {
        let mut g = DenseGrid::new(Rect::ball(1));
        g.visit(&Point::new(1, 1));
        let s = coverage_summary(&g);
        assert!(s.contains("1 / 9"));
        assert!(s.contains("1 visits"));
    }
}
