//! Dense, bounded occupancy grids.

use crate::point::{Point, Rect};

/// A dense visit-count grid over a bounded rectangle.
///
/// Used by the lower-bound experiments (Theorem 4.1) which need the exact
/// fraction of the `Θ(D²)` candidate cells covered by all agents together —
/// a workload where hash sets are too slow and too big.
///
/// Points outside the rectangle are counted in an overflow tally instead of
/// being dropped silently, so coverage statistics remain auditable.
///
/// ```
/// use ants_grid::{DenseGrid, Point, Rect};
/// let mut g = DenseGrid::new(Rect::ball(2));
/// g.visit(&Point::ORIGIN);
/// g.visit(&Point::new(2, -2));
/// g.visit(&Point::new(99, 0)); // outside: tallied separately
/// assert_eq!(g.distinct(), 2);
/// assert_eq!(g.outside(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseGrid {
    bounds: Rect,
    counts: Vec<u32>,
    distinct: usize,
    total: u64,
    outside: u64,
}

impl DenseGrid {
    /// Create a zeroed grid over `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle has more than `2^32` cells (≈ 65k × 65k) —
    /// far beyond any experiment in this workspace and a sign of a
    /// mis-parameterised caller.
    pub fn new(bounds: Rect) -> Self {
        let area = bounds.area();
        assert!(area <= u32::MAX as u64, "dense grid of {area} cells is too large");
        Self { bounds, counts: vec![0; area as usize], distinct: 0, total: 0, outside: 0 }
    }

    fn index(&self, p: &Point) -> Option<usize> {
        if !self.bounds.contains(p) {
            return None;
        }
        let (x_min, _) = self.bounds.x_range();
        let (y_min, _) = self.bounds.y_range();
        let col = (p.x - x_min) as u64;
        let row = (p.y - y_min) as u64;
        Some((row * self.bounds.width() + col) as usize)
    }

    /// Record a visit; returns `true` if this was the first visit to an
    /// in-bounds cell.
    pub fn visit(&mut self, p: &Point) -> bool {
        self.total += 1;
        match self.index(p) {
            Some(i) => {
                let c = &mut self.counts[i];
                *c = c.saturating_add(1);
                if *c == 1 {
                    self.distinct += 1;
                    true
                } else {
                    false
                }
            }
            None => {
                self.outside += 1;
                false
            }
        }
    }

    /// Visit count of a cell (0 if outside the bounds).
    pub fn visits(&self, p: &Point) -> u32 {
        self.index(p).map_or(0, |i| self.counts[i])
    }

    /// The grid's bounds.
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }

    /// Number of distinct in-bounds cells visited.
    pub fn distinct(&self) -> usize {
        self.distinct
    }

    /// Total visit events (including out-of-bounds ones).
    pub fn total_visits(&self) -> u64 {
        self.total
    }

    /// Number of visit events that fell outside the bounds.
    pub fn outside(&self) -> u64 {
        self.outside
    }

    /// Fraction of in-bounds cells visited at least once.
    pub fn coverage(&self) -> f64 {
        self.distinct as f64 / self.bounds.area() as f64
    }

    /// Cells never visited (useful for adversarial target placement:
    /// Theorem 4.1 places the target on exactly such a cell).
    pub fn unvisited(&self) -> impl Iterator<Item = Point> + '_ {
        self.bounds.points().filter(move |p| self.visits(p) == 0)
    }

    /// The unvisited cell farthest from the origin (max-norm), if any.
    pub fn farthest_unvisited(&self) -> Option<Point> {
        self.unvisited().max_by_key(Point::norm_max)
    }

    /// Merge another grid with identical bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bounds differ.
    pub fn merge(&mut self, other: &DenseGrid) {
        assert_eq!(self.bounds, other.bounds, "bounds mismatch in DenseGrid::merge");
        self.distinct = 0;
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
            if *a > 0 {
                self.distinct += 1;
            }
        }
        self.total += other.total;
        self.outside += other.outside;
    }

    /// Maximum visit count over all cells.
    pub fn max_count(&self) -> u32 {
        self.counts.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_grid_is_empty() {
        let g = DenseGrid::new(Rect::ball(3));
        assert_eq!(g.distinct(), 0);
        assert_eq!(g.coverage(), 0.0);
        assert_eq!(g.total_visits(), 0);
        assert_eq!(g.max_count(), 0);
    }

    #[test]
    fn visit_accounting() {
        let mut g = DenseGrid::new(Rect::ball(1));
        assert!(g.visit(&Point::ORIGIN));
        assert!(!g.visit(&Point::ORIGIN));
        assert!(g.visit(&Point::new(-1, 1)));
        assert_eq!(g.visits(&Point::ORIGIN), 2);
        assert_eq!(g.distinct(), 2);
        assert_eq!(g.total_visits(), 3);
        assert!((g.coverage() - 2.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_bounds_tallied() {
        let mut g = DenseGrid::new(Rect::ball(1));
        assert!(!g.visit(&Point::new(5, 5)));
        assert_eq!(g.outside(), 1);
        assert_eq!(g.distinct(), 0);
        assert_eq!(g.visits(&Point::new(5, 5)), 0);
    }

    #[test]
    fn indexing_covers_every_cell_uniquely() {
        let r = Rect::new(-2, 3, -1, 4);
        let mut g = DenseGrid::new(r);
        for p in r.points() {
            assert!(g.visit(&p), "cell {p} double-indexed");
        }
        assert_eq!(g.distinct() as u64, r.area());
        assert_eq!(g.coverage(), 1.0);
        assert_eq!(g.outside(), 0);
    }

    #[test]
    fn unvisited_and_farthest() {
        let mut g = DenseGrid::new(Rect::ball(2));
        // Visit everything except the corners.
        for p in Rect::ball(2).points() {
            if p.norm_max() < 2 || p.x.abs() != 2 || p.y.abs() != 2 {
                g.visit(&p);
            }
        }
        let far = g.farthest_unvisited().unwrap();
        assert_eq!(far.norm_max(), 2);
        assert_eq!(far.x.abs(), 2);
        assert_eq!(far.y.abs(), 2);
        assert_eq!(g.unvisited().count(), 4);
    }

    #[test]
    fn merge_combines_coverage() {
        let r = Rect::ball(1);
        let mut a = DenseGrid::new(r);
        a.visit(&Point::new(-1, 0));
        let mut b = DenseGrid::new(r);
        b.visit(&Point::new(1, 0));
        b.visit(&Point::new(-1, 0));
        a.merge(&b);
        assert_eq!(a.distinct(), 2);
        assert_eq!(a.visits(&Point::new(-1, 0)), 2);
        assert_eq!(a.total_visits(), 3);
    }

    #[test]
    #[should_panic(expected = "bounds mismatch")]
    fn merge_rejects_different_bounds() {
        let mut a = DenseGrid::new(Rect::ball(1));
        let b = DenseGrid::new(Rect::ball(2));
        a.merge(&b);
    }
}
