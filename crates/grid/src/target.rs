//! Target placement models.
//!
//! The paper's statements quantify over two placements: an *adversarial*
//! one ("there is a placement of the target within distance `D` such that
//! …", Theorem 4.1) and a *uniformly random* one ("a target placed uniformly
//! at random in the square of side `2D`"). The experiments additionally use
//! fixed and ring placements for calibration.

use crate::point::{Point, Rect};
use ants_rng::Rng64;

/// How the target is placed relative to the origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetPlacement {
    /// A fixed, known point (calibration runs).
    Fixed(Point),
    /// The corner `(D, D)` — the hardest deterministic spot at distance `D`.
    Corner {
        /// Max-norm distance of the corner.
        distance: u64,
    },
    /// Uniformly random in the square `[-D, D]²` minus the origin — the
    /// placement of Theorem 4.1's second claim.
    UniformInBall {
        /// Max-norm radius `D` of the square.
        distance: u64,
    },
    /// Uniformly random on the max-norm circle of radius exactly `D`.
    Ring {
        /// Max-norm distance of every candidate point.
        distance: u64,
    },
}

impl TargetPlacement {
    /// Draw a concrete target position.
    ///
    /// Never returns the origin (a target there is found at time zero and
    /// the paper explicitly excludes it — "without loss of generality, we
    /// will assume that this is not the case").
    pub fn place<R: Rng64 + ?Sized>(&self, rng: &mut R) -> Point {
        match *self {
            TargetPlacement::Fixed(p) => {
                assert_ne!(p, Point::ORIGIN, "fixed target must not be the origin");
                p
            }
            TargetPlacement::Corner { distance } => {
                assert!(distance > 0, "corner target requires distance >= 1");
                Point::new(distance as i64, distance as i64)
            }
            TargetPlacement::UniformInBall { distance } => {
                assert!(distance > 0, "ball target requires distance >= 1");
                let side = 2 * distance + 1;
                loop {
                    let x = rng.next_below(side) as i64 - distance as i64;
                    let y = rng.next_below(side) as i64 - distance as i64;
                    let p = Point::new(x, y);
                    if p != Point::ORIGIN {
                        return p;
                    }
                }
            }
            TargetPlacement::Ring { distance } => {
                assert!(distance > 0, "ring target requires distance >= 1");
                let d = distance as i64;
                // The max-norm circle has 8d points; index them.
                let idx = rng.next_below(8 * distance) as i64;
                // 0: top, 1: bottom, 2: left, 3: right.
                let side = idx / (2 * d);
                // Offset in [-d, d). Each side takes 2d points; corners are
                // assigned uniquely (top owns (d,d), left owns (-d,d),
                // bottom owns (-d,-d), right owns (d,-d)), so all 8d circle
                // points are equally likely.
                let off = idx % (2 * d) - d;
                match side {
                    0 => Point::new(off + 1, d),
                    1 => Point::new(off, -d),
                    2 => Point::new(-d, off + 1),
                    _ => Point::new(d, off),
                }
            }
        }
    }

    /// The maximum max-norm distance any placement drawn from this model
    /// can have.
    pub fn max_distance(&self) -> u64 {
        match *self {
            TargetPlacement::Fixed(p) => p.norm_max(),
            TargetPlacement::Corner { distance }
            | TargetPlacement::UniformInBall { distance }
            | TargetPlacement::Ring { distance } => distance,
        }
    }

    /// The region guaranteed to contain the target.
    pub fn region(&self) -> Rect {
        Rect::ball(self.max_distance())
    }

    /// The smallest L1 (taxicab) distance any candidate target drawn from
    /// this model can have — the minimum number of moves an agent must
    /// make inside one origin-to-origin excursion to reach *any* target.
    ///
    /// Scenario validation uses this to reject per-guess ceilings under
    /// which every target of the model is unreachable.
    pub fn min_l1(&self) -> u64 {
        match *self {
            TargetPlacement::Fixed(p) => p.x.unsigned_abs() + p.y.unsigned_abs(),
            // The corner (D, D) is the only candidate: 2D moves.
            TargetPlacement::Corner { distance } => 2 * distance,
            // (1, 0) is always a candidate of the punctured square.
            TargetPlacement::UniformInBall { .. } => 1,
            // The cheapest circle point is an axis point like (D, 0).
            TargetPlacement::Ring { distance } => distance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ants_rng::{SeedableRng64, Xoshiro256PlusPlus};

    #[test]
    fn fixed_returns_point() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let t = TargetPlacement::Fixed(Point::new(3, -1));
        assert_eq!(t.place(&mut rng), Point::new(3, -1));
        assert_eq!(t.max_distance(), 3);
    }

    #[test]
    #[should_panic(expected = "origin")]
    fn fixed_origin_rejected() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let _ = TargetPlacement::Fixed(Point::ORIGIN).place(&mut rng);
    }

    #[test]
    fn corner_is_at_distance() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let t = TargetPlacement::Corner { distance: 9 };
        let p = t.place(&mut rng);
        assert_eq!(p.norm_max(), 9);
        assert_eq!(p, Point::new(9, 9));
    }

    #[test]
    fn uniform_ball_within_bounds_and_not_origin() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let t = TargetPlacement::UniformInBall { distance: 5 };
        for _ in 0..2000 {
            let p = t.place(&mut rng);
            assert!(p.norm_max() <= 5);
            assert_ne!(p, Point::ORIGIN);
        }
    }

    #[test]
    fn uniform_ball_roughly_uniform() {
        // Quadrant frequencies should be near 1/4 each.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let t = TargetPlacement::UniformInBall { distance: 20 };
        let n = 40_000;
        let mut quads = [0u32; 4];
        for _ in 0..n {
            let p = t.place(&mut rng);
            let q = match (p.x >= 0, p.y >= 0) {
                (true, true) => 0,
                (true, false) => 1,
                (false, true) => 2,
                (false, false) => 3,
            };
            quads[q] += 1;
        }
        for (i, &c) in quads.iter().enumerate() {
            let f = c as f64 / n as f64;
            // Axis cells bias quadrant counts slightly; 5% tolerance is ample.
            assert!((f - 0.25).abs() < 0.05, "quadrant {i} frequency {f}");
        }
    }

    #[test]
    fn ring_points_exactly_at_distance() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let t = TargetPlacement::Ring { distance: 7 };
        for _ in 0..2000 {
            let p = t.place(&mut rng);
            assert_eq!(p.norm_max(), 7, "{p}");
        }
    }

    #[test]
    fn ring_covers_all_sides() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let t = TargetPlacement::Ring { distance: 3 };
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            seen.insert(t.place(&mut rng));
        }
        // The max-norm circle of radius 3 has 24 points; a uniform sampler
        // hits all of them in 5000 draws with overwhelming probability.
        assert_eq!(seen.len(), 24, "ring sampler missed points: {seen:?}");
    }

    #[test]
    fn region_contains_all_draws() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        for t in [
            TargetPlacement::Corner { distance: 4 },
            TargetPlacement::UniformInBall { distance: 4 },
            TargetPlacement::Ring { distance: 4 },
        ] {
            let region = t.region();
            for _ in 0..200 {
                assert!(region.contains(&t.place(&mut rng)));
            }
        }
    }
}
