//! The return-to-origin oracle.
//!
//! Section 2 of the paper: "we assume that an agent can return to the
//! origin, and … this action is based on information provided by an oracle.
//! In this case, the agent returns on a shortest path in the grid that
//! keeps closest to the straight line connecting the origin to its current
//! position."
//!
//! The oracle's path is excluded from the `M_moves` metric (it is at most as
//! long as the outbound path, so it costs at most a factor two, which the
//! paper discards). We still implement it faithfully: the examples render
//! it, and the synchronous executor charges it when asked to model
//! *physical* time.

use crate::point::Point;

/// The shortest grid path from `from` back to the origin that stays closest
/// to the straight segment, as produced by the model's oracle.
///
/// The path is returned as the sequence of points *after* `from`, ending at
/// the origin; an agent already at the origin gets an empty path.
///
/// Properties (checked by the test-suite):
/// * length is exactly `from.norm_l1()` (a shortest path);
/// * consecutive points are grid-adjacent;
/// * every point lies within half a cell of the straight segment.
///
/// ```
/// use ants_grid::{oracle, Point};
/// let path = oracle::return_path(Point::new(2, 1));
/// assert_eq!(path.len(), 3);
/// assert_eq!(*path.last().unwrap(), Point::ORIGIN);
/// ```
pub fn return_path(from: Point) -> Vec<Point> {
    let mut path = Vec::with_capacity(from.norm_l1() as usize);
    let mut cur = from;
    while cur != Point::ORIGIN {
        cur = next_step_toward_origin(cur, from);
        path.push(cur);
    }
    path
}

/// The length of the oracle's return path (equals the L1 norm).
pub fn return_cost(from: Point) -> u64 {
    from.norm_l1()
}

/// One greedy step of the oracle: among the moves that reduce L1 distance
/// to the origin, pick the one whose endpoint is closest to the straight
/// line `origin → anchor`.
fn next_step_toward_origin(cur: Point, anchor: Point) -> Point {
    debug_assert_ne!(cur, Point::ORIGIN);
    let mut best: Option<(Point, i64)> = None;
    for cand in candidate_steps(cur) {
        let d = line_distance_metric(cand, anchor);
        match best {
            None => best = Some((cand, d)),
            Some((_, bd)) if d < bd => best = Some((cand, d)),
            _ => {}
        }
    }
    best.expect("a non-origin point always has a reducing move").0
}

/// The moves from `cur` that reduce L1 distance to the origin (1 or 2).
fn candidate_steps(cur: Point) -> Vec<Point> {
    let mut out = Vec::with_capacity(2);
    if cur.x != 0 {
        out.push(Point::new(cur.x - cur.x.signum(), cur.y));
    }
    if cur.y != 0 {
        out.push(Point::new(cur.x, cur.y - cur.y.signum()));
    }
    out
}

/// Twice the (signed-squared) area of the triangle (origin, anchor, p):
/// proportional to p's distance from the line through origin and anchor.
/// Integer-exact, so ties are broken deterministically.
fn line_distance_metric(p: Point, anchor: Point) -> i64 {
    let cross = p.x * anchor.y - p.y * anchor.x;
    cross.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_path(from: Point) {
        let path = return_path(from);
        // Shortest: length equals the L1 norm.
        assert_eq!(path.len() as u64, from.norm_l1(), "path length from {from}");
        assert_eq!(path.len() as u64, return_cost(from));
        // Ends at the origin (when non-empty).
        if from != Point::ORIGIN {
            assert_eq!(*path.last().unwrap(), Point::ORIGIN);
        }
        // Steps are adjacent and L1-monotone.
        let mut prev = from;
        for &p in &path {
            assert!(prev.is_adjacent(&p), "{prev} -> {p} not adjacent");
            assert_eq!(p.norm_l1() + 1, prev.norm_l1(), "step not monotone at {p}");
            prev = p;
        }
    }

    #[test]
    fn origin_needs_no_path() {
        assert!(return_path(Point::ORIGIN).is_empty());
        assert_eq!(return_cost(Point::ORIGIN), 0);
    }

    #[test]
    fn axis_paths_are_straight() {
        let path = return_path(Point::new(4, 0));
        assert_eq!(path, vec![Point::new(3, 0), Point::new(2, 0), Point::new(1, 0), Point::ORIGIN]);
        let path = return_path(Point::new(0, -3));
        assert_eq!(path, vec![Point::new(0, -2), Point::new(0, -1), Point::ORIGIN]);
    }

    #[test]
    fn diagonal_path_alternates() {
        // From (2,2) the path must stay within one cell of the diagonal.
        let path = return_path(Point::new(2, 2));
        for p in &path {
            assert!((p.x - p.y).abs() <= 1, "point {p} strays from the diagonal");
        }
    }

    #[test]
    fn paths_valid_in_all_quadrants() {
        for &p in &[
            Point::new(5, 3),
            Point::new(-5, 3),
            Point::new(5, -3),
            Point::new(-5, -3),
            Point::new(1, 7),
            Point::new(-7, -1),
        ] {
            check_path(p);
        }
    }

    #[test]
    fn paths_valid_exhaustively_small() {
        for x in -6..=6i64 {
            for y in -6..=6i64 {
                check_path(Point::new(x, y));
            }
        }
    }

    #[test]
    fn path_hugs_line() {
        // Every path point of (6,2) lies within max cross-product 6 of the
        // segment: |cross| <= max(|x|,|y|) guarantees half-cell proximity
        // after normalisation. We check the tighter empirical bound.
        let anchor = Point::new(6, 2);
        for p in return_path(anchor) {
            let cross = (p.x * anchor.y - p.y * anchor.x).abs();
            // Distance to line = cross / |anchor| <= ~0.95 cells.
            let dist = cross as f64 / ((anchor.x * anchor.x + anchor.y * anchor.y) as f64).sqrt();
            assert!(dist < 1.0, "point {p} at line distance {dist}");
        }
    }

    #[test]
    fn return_cost_halves_total_accounting() {
        // The paper's argument: the return path is never longer than the
        // outbound path. For any point, cost == L1 norm == minimum possible
        // outbound length.
        for x in -8..=8i64 {
            for y in -8..=8i64 {
                let p = Point::new(x, y);
                assert!(return_cost(p) <= p.norm_l1());
            }
        }
    }
}
