//! # ants-grid — the two-dimensional lattice substrate
//!
//! The ANTS problem (Lenzen, Lynch, Newport, Radeva; PODC 2014) is played on
//! the infinite grid `Z²`: `n` agents start at the origin and look for a
//! target at max-norm distance at most `D`. This crate is the geometry
//! substrate shared by every other crate in the workspace:
//!
//! * [`Point`] / [`Direction`] / [`Rect`] — coordinates, the four grid
//!   moves, and axis-aligned regions, with the paper's max-norm metric
//!   ([`Point::norm_max`]) as the primary distance;
//! * [`VisitedSet`] and [`DenseGrid`] — sparse and dense occupancy tracking
//!   used for coverage measurements in the lower-bound experiments;
//! * [`TargetPlacement`] — the target models used by the experiments
//!   (fixed, adversarial corner, uniform in the `2D × 2D` square, ring);
//! * [`oracle`] — the model's return-to-origin oracle: a shortest grid path
//!   that hugs the straight segment back to the origin (Section 2 of the
//!   paper);
//! * [`render`] — ASCII heat-maps for the examples and for debugging.
//!
//! ## Example
//!
//! ```
//! use ants_grid::{Direction, Point};
//! let p = Point::ORIGIN.step(Direction::Up).step(Direction::Right);
//! assert_eq!(p, Point::new(1, 1));
//! assert_eq!(p.norm_max(), 1); // the paper measures distance in max-norm
//! assert_eq!(p.norm_l1(), 2); // hop distance
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
pub mod oracle;
mod point;
pub mod render;
mod target;
mod visited;

pub use dense::DenseGrid;
pub use point::{Direction, Point, Rect};
pub use target::TargetPlacement;
pub use visited::VisitedSet;
