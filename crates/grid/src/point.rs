//! Points, directions and rectangles on `Z²`.

use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A lattice point in `Z²`.
///
/// `i64` coordinates stand in for the paper's infinite grid: every
/// experiment in this workspace keeps agents within `O(D · polylog D)` of
/// the origin with `D ≤ 2^40`, so overflow is structurally impossible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Point {
    /// Horizontal coordinate (positive = right).
    pub x: i64,
    /// Vertical coordinate (positive = up).
    pub y: i64,
}

impl Point {
    /// The origin `(0, 0)` — where all agents start.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Create a point.
    pub const fn new(x: i64, y: i64) -> Self {
        Self { x, y }
    }

    /// Max-norm (Chebyshev) distance from the origin — the paper's `D`.
    ///
    /// Section 2: "distance (measured in terms of the max-norm) … gives a
    /// constant-factor approximation of the actual hop distance."
    pub fn norm_max(&self) -> u64 {
        self.x.unsigned_abs().max(self.y.unsigned_abs())
    }

    /// L1 (Manhattan) norm — the exact hop distance from the origin.
    pub fn norm_l1(&self) -> u64 {
        self.x.unsigned_abs() + self.y.unsigned_abs()
    }

    /// Max-norm distance to another point.
    pub fn dist_max(&self, other: &Point) -> u64 {
        (*self - *other).norm_max()
    }

    /// L1 distance to another point.
    pub fn dist_l1(&self, other: &Point) -> u64 {
        (*self - *other).norm_l1()
    }

    /// The adjacent point one step in `dir`.
    pub fn step(&self, dir: Direction) -> Point {
        let (dx, dy) = dir.delta();
        Point::new(self.x + dx, self.y + dy)
    }

    /// Are the two points grid-adjacent (exactly one hop apart)?
    pub fn is_adjacent(&self, other: &Point) -> bool {
        self.dist_l1(other) == 1
    }

    /// Reflect through the origin.
    pub fn antipode(&self) -> Point {
        -*self
    }

    /// The four grid neighbours in [`Direction::ALL`] order.
    pub fn neighbors(&self) -> [Point; 4] {
        [
            self.step(Direction::Up),
            self.step(Direction::Down),
            self.step(Direction::Left),
            self.step(Direction::Right),
        ]
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// One of the four grid moves.
///
/// Matches the paper's labelling function range (minus `origin`/`none`,
/// which are *state* labels, not geometric moves — they live in
/// `ants-automaton`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// `y + 1`.
    Up,
    /// `y − 1`.
    Down,
    /// `x − 1`.
    Left,
    /// `x + 1`.
    Right,
}

impl Direction {
    /// All four directions, in declaration order.
    pub const ALL: [Direction; 4] =
        [Direction::Up, Direction::Down, Direction::Left, Direction::Right];

    /// The coordinate delta `(dx, dy)` of one step.
    pub fn delta(&self) -> (i64, i64) {
        match self {
            Direction::Up => (0, 1),
            Direction::Down => (0, -1),
            Direction::Left => (-1, 0),
            Direction::Right => (1, 0),
        }
    }

    /// The opposite direction.
    pub fn opposite(&self) -> Direction {
        match self {
            Direction::Up => Direction::Down,
            Direction::Down => Direction::Up,
            Direction::Left => Direction::Right,
            Direction::Right => Direction::Left,
        }
    }

    /// Is this a vertical move?
    pub fn is_vertical(&self) -> bool {
        matches!(self, Direction::Up | Direction::Down)
    }

    /// Index in `ALL` (stable; used by dense per-direction tallies).
    pub fn index(&self) -> usize {
        match self {
            Direction::Up => 0,
            Direction::Down => 1,
            Direction::Left => 2,
            Direction::Right => 3,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::Up => "up",
            Direction::Down => "down",
            Direction::Left => "left",
            Direction::Right => "right",
        };
        f.write_str(s)
    }
}

/// A closed axis-aligned rectangle `[x_min, x_max] × [y_min, y_max]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    x_min: i64,
    x_max: i64,
    y_min: i64,
    y_max: i64,
}

impl Rect {
    /// Create a rectangle from inclusive bounds.
    ///
    /// # Panics
    ///
    /// Panics if `x_min > x_max` or `y_min > y_max`.
    pub fn new(x_min: i64, x_max: i64, y_min: i64, y_max: i64) -> Self {
        assert!(x_min <= x_max && y_min <= y_max, "degenerate rectangle bounds");
        Self { x_min, x_max, y_min, y_max }
    }

    /// The max-norm ball of radius `d` centred at the origin: the square
    /// `[-d, d]²` containing every candidate target at distance ≤ `d`.
    pub fn ball(d: u64) -> Self {
        let d = d as i64;
        Self::new(-d, d, -d, d)
    }

    /// Inclusive x-range.
    pub fn x_range(&self) -> (i64, i64) {
        (self.x_min, self.x_max)
    }

    /// Inclusive y-range.
    pub fn y_range(&self) -> (i64, i64) {
        (self.y_min, self.y_max)
    }

    /// Width (number of columns).
    pub fn width(&self) -> u64 {
        (self.x_max - self.x_min) as u64 + 1
    }

    /// Height (number of rows).
    pub fn height(&self) -> u64 {
        (self.y_max - self.y_min) as u64 + 1
    }

    /// Total number of lattice points.
    pub fn area(&self) -> u64 {
        self.width() * self.height()
    }

    /// Does the rectangle contain `p`?
    pub fn contains(&self, p: &Point) -> bool {
        (self.x_min..=self.x_max).contains(&p.x) && (self.y_min..=self.y_max).contains(&p.y)
    }

    /// Iterate over all lattice points, row-major from the bottom-left.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        let (x_min, x_max) = self.x_range();
        (self.y_min..=self.y_max).flat_map(move |y| (x_min..=x_max).map(move |x| Point::new(x, y)))
    }

    /// Clamp a point into the rectangle.
    pub fn clamp(&self, p: &Point) -> Point {
        Point::new(p.x.clamp(self.x_min, self.x_max), p.y.clamp(self.y_min, self.y_max))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}] x [{}, {}]", self.x_min, self.x_max, self.y_min, self.y_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        let p = Point::new(3, -4);
        assert_eq!(p.norm_max(), 4);
        assert_eq!(p.norm_l1(), 7);
        assert_eq!(Point::ORIGIN.norm_max(), 0);
    }

    #[test]
    fn max_norm_is_constant_factor_of_l1() {
        // Section 2's claim: max-norm approximates hop distance within 2x.
        for x in -10..=10i64 {
            for y in -10..=10i64 {
                let p = Point::new(x, y);
                assert!(p.norm_max() <= p.norm_l1());
                assert!(p.norm_l1() <= 2 * p.norm_max());
            }
        }
    }

    #[test]
    fn step_deltas() {
        assert_eq!(Point::ORIGIN.step(Direction::Up), Point::new(0, 1));
        assert_eq!(Point::ORIGIN.step(Direction::Down), Point::new(0, -1));
        assert_eq!(Point::ORIGIN.step(Direction::Left), Point::new(-1, 0));
        assert_eq!(Point::ORIGIN.step(Direction::Right), Point::new(1, 0));
    }

    #[test]
    fn step_then_opposite_roundtrips() {
        let p = Point::new(5, 7);
        for d in Direction::ALL {
            assert_eq!(p.step(d).step(d.opposite()), p);
        }
    }

    #[test]
    fn adjacency() {
        let p = Point::new(2, 2);
        for n in p.neighbors() {
            assert!(p.is_adjacent(&n));
        }
        assert!(!p.is_adjacent(&p));
        assert!(!p.is_adjacent(&Point::new(3, 3)));
    }

    #[test]
    fn arithmetic() {
        let a = Point::new(1, 2);
        let b = Point::new(-3, 4);
        assert_eq!(a + b, Point::new(-2, 6));
        assert_eq!(a - b, Point::new(4, -2));
        assert_eq!(-a, Point::new(-1, -2));
        assert_eq!(a.antipode(), -a);
    }

    #[test]
    fn direction_indices_are_distinct() {
        let mut seen = [false; 4];
        for d in Direction::ALL {
            assert!(!seen[d.index()]);
            seen[d.index()] = true;
        }
    }

    #[test]
    fn rect_ball_contains_exactly_the_max_norm_ball() {
        let r = Rect::ball(3);
        for x in -5..=5i64 {
            for y in -5..=5i64 {
                let p = Point::new(x, y);
                assert_eq!(r.contains(&p), p.norm_max() <= 3, "{p}");
            }
        }
        assert_eq!(r.area(), 49);
    }

    #[test]
    fn rect_points_enumerates_area() {
        let r = Rect::new(-1, 1, 0, 2);
        let pts: Vec<Point> = r.points().collect();
        assert_eq!(pts.len() as u64, r.area());
        // All distinct:
        let set: std::collections::HashSet<_> = pts.iter().collect();
        assert_eq!(set.len(), pts.len());
        // All contained:
        assert!(pts.iter().all(|p| r.contains(p)));
    }

    #[test]
    fn rect_clamp() {
        let r = Rect::new(-2, 2, -2, 2);
        assert_eq!(r.clamp(&Point::new(10, -10)), Point::new(2, -2));
        assert_eq!(r.clamp(&Point::new(0, 1)), Point::new(0, 1));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rect_rejects_inverted_bounds() {
        let _ = Rect::new(1, 0, 0, 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Point::new(1, -2).to_string(), "(1, -2)");
        assert_eq!(Direction::Up.to_string(), "up");
        assert_eq!(Rect::new(0, 1, 2, 3).to_string(), "[0, 1] x [2, 3]");
    }
}
