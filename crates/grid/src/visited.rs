//! Sparse visit tracking.

use crate::point::{Point, Rect};
use std::collections::HashMap;

/// A sparse set of visited lattice points with visit counts.
///
/// Backed by a hash map, suitable for the unbounded walks of individual
/// agents. For dense, bounded coverage measurement use
/// [`DenseGrid`](crate::DenseGrid) instead.
///
/// ```
/// use ants_grid::{Point, VisitedSet};
/// let mut v = VisitedSet::new();
/// assert!(v.visit(Point::new(1, 2))); // first visit
/// assert!(!v.visit(Point::new(1, 2))); // revisit
/// assert_eq!(v.distinct(), 1);
/// assert_eq!(v.total_visits(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VisitedSet {
    counts: HashMap<Point, u64>,
    total: u64,
}

impl VisitedSet {
    /// Create an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a visit; returns `true` if the point was new.
    pub fn visit(&mut self, p: Point) -> bool {
        self.total += 1;
        let c = self.counts.entry(p).or_insert(0);
        *c += 1;
        *c == 1
    }

    /// Has the point ever been visited?
    pub fn contains(&self, p: &Point) -> bool {
        self.counts.contains_key(p)
    }

    /// Number of visits to a point.
    pub fn visits(&self, p: &Point) -> u64 {
        self.counts.get(p).copied().unwrap_or(0)
    }

    /// Number of distinct visited points.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total number of visit events.
    pub fn total_visits(&self) -> u64 {
        self.total
    }

    /// Number of distinct visited points inside a rectangle.
    pub fn distinct_in(&self, rect: &Rect) -> usize {
        self.counts.keys().filter(|p| rect.contains(p)).count()
    }

    /// Fraction of the rectangle's lattice points that have been visited.
    pub fn coverage_of(&self, rect: &Rect) -> f64 {
        self.distinct_in(rect) as f64 / rect.area() as f64
    }

    /// The farthest max-norm distance from the origin ever visited.
    pub fn max_norm_reached(&self) -> u64 {
        self.counts.keys().map(Point::norm_max).max().unwrap_or(0)
    }

    /// Iterate over `(point, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Point, &u64)> {
        self.counts.iter()
    }

    /// Merge another visit set into this one.
    pub fn merge(&mut self, other: &VisitedSet) {
        for (p, c) in other.counts.iter() {
            *self.counts.entry(*p).or_insert(0) += c;
        }
        self.total += other.total;
    }
}

impl Extend<Point> for VisitedSet {
    fn extend<T: IntoIterator<Item = Point>>(&mut self, iter: T) {
        for p in iter {
            self.visit(p);
        }
    }
}

impl FromIterator<Point> for VisitedSet {
    fn from_iter<T: IntoIterator<Item = Point>>(iter: T) -> Self {
        let mut v = VisitedSet::new();
        v.extend(iter);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set() {
        let v = VisitedSet::new();
        assert_eq!(v.distinct(), 0);
        assert_eq!(v.total_visits(), 0);
        assert_eq!(v.max_norm_reached(), 0);
        assert!(!v.contains(&Point::ORIGIN));
    }

    #[test]
    fn visit_counts() {
        let mut v = VisitedSet::new();
        assert!(v.visit(Point::ORIGIN));
        assert!(!v.visit(Point::ORIGIN));
        assert!(v.visit(Point::new(1, 0)));
        assert_eq!(v.visits(&Point::ORIGIN), 2);
        assert_eq!(v.visits(&Point::new(1, 0)), 1);
        assert_eq!(v.visits(&Point::new(9, 9)), 0);
        assert_eq!(v.distinct(), 2);
        assert_eq!(v.total_visits(), 3);
    }

    #[test]
    fn coverage_fraction() {
        let mut v = VisitedSet::new();
        let r = Rect::ball(1); // 9 points
        v.visit(Point::ORIGIN);
        v.visit(Point::new(1, 1));
        v.visit(Point::new(5, 5)); // outside
        assert_eq!(v.distinct_in(&r), 2);
        assert!((v.coverage_of(&r) - 2.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn max_norm_reached_tracks_frontier() {
        let mut v = VisitedSet::new();
        v.visit(Point::new(2, -7));
        v.visit(Point::new(-3, 1));
        assert_eq!(v.max_norm_reached(), 7);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a: VisitedSet = [Point::ORIGIN, Point::new(1, 0)].into_iter().collect();
        let b: VisitedSet = [Point::ORIGIN, Point::new(0, 1)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.visits(&Point::ORIGIN), 2);
        assert_eq!(a.distinct(), 3);
        assert_eq!(a.total_visits(), 4);
    }

    #[test]
    fn from_iterator() {
        let v: VisitedSet = (0..5).map(|i| Point::new(i, 0)).collect();
        assert_eq!(v.distinct(), 5);
    }
}
